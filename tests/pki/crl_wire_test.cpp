// CRL wire codec: round trip and damage rejection.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "pki/authority.h"
#include "pki/identity.h"
#include "pki/trust_store.h"

namespace agrarsec::pki {
namespace {

struct Fixture {
  crypto::Drbg drbg{51, "crl-wire"};
  CertificateAuthority root = CertificateAuthority::create_root(
      "root", drbg.generate32(), 0, 1000 * core::kHour);
};

TEST(CrlWire, RoundTrip) {
  Fixture f;
  f.root.revoke(CertSerial{5});
  f.root.revoke(CertSerial{9});
  f.root.revoke(CertSerial{7});
  const Crl original = f.root.current_crl(1234);
  const auto decoded = Crl::decode(original.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->issuer, "root");
  EXPECT_EQ(decoded->issued_at, 1234);
  EXPECT_EQ(decoded->revoked_serials, (std::vector<std::uint64_t>{5, 7, 9}));
  EXPECT_TRUE(decoded->verify_signature(f.root.certificate().body.signing_key));
  EXPECT_TRUE(decoded->covers(CertSerial{7}));
  EXPECT_FALSE(decoded->covers(CertSerial{8}));
}

TEST(CrlWire, EmptyCrlRoundTrips) {
  Fixture f;
  const Crl crl = f.root.current_crl(10);
  const auto decoded = Crl::decode(crl.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->revoked_serials.empty());
  EXPECT_TRUE(decoded->verify_signature(f.root.certificate().body.signing_key));
}

TEST(CrlWire, TruncationRejected) {
  Fixture f;
  f.root.revoke(CertSerial{5});
  const auto bytes = f.root.current_crl(10).encode();
  for (std::size_t len = 0; len < bytes.size(); len += 5) {
    EXPECT_FALSE(Crl::decode(std::span(bytes.data(), len)).has_value());
  }
}

TEST(CrlWire, UnsortedSerialsRejected) {
  // Hand-craft a CRL with out-of-order serials: decode must refuse (a
  // tampered list would break binary_search-based coverage checks).
  Fixture f;
  Crl crl;
  crl.issuer = "root";
  crl.issued_at = 10;
  crl.revoked_serials = {9, 5};  // wrong order
  const auto bytes = crl.encode();
  EXPECT_FALSE(Crl::decode(bytes).has_value());
}

TEST(CrlWire, TamperedSerialFailsSignature) {
  Fixture f;
  f.root.revoke(CertSerial{5});
  auto bytes = f.root.current_crl(10).encode();
  // The serial bytes live after magic+framed issuer+issued_at+count.
  const std::size_t serial_offset = 15 + 4 + 4 + 8 + 8;
  bytes[serial_offset] ^= 0xFF;
  const auto decoded = Crl::decode(bytes);
  if (decoded) {
    EXPECT_FALSE(decoded->verify_signature(f.root.certificate().body.signing_key));
  }
}

TEST(CrlWire, InstallsIntoTrustStoreAfterTransit) {
  Fixture f;
  auto machine = enroll(f.root, f.drbg, "m", CertRole::kMachine, 0, 100 * core::kHour);
  ASSERT_TRUE(machine.ok());
  f.root.revoke(machine.value().leaf().body.serial);

  // Simulated over-the-air delivery: encode -> bytes -> decode -> install.
  const auto wire = f.root.current_crl(50).encode();
  const auto received = Crl::decode(wire);
  ASSERT_TRUE(received.has_value());

  TrustStore trust;
  ASSERT_TRUE(trust.add_root(f.root.certificate()).ok());
  ASSERT_TRUE(trust.add_crl(*received, f.root.certificate()).ok());
  const auto validated = trust.validate(machine.value().chain, 60);
  ASSERT_FALSE(validated.ok());
  EXPECT_EQ(validated.error().code, "revoked");
}

}  // namespace
}  // namespace agrarsec::pki
