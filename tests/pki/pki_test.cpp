// Certificate, CA, CRL and chain-validation behaviour.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "pki/authority.h"
#include "pki/identity.h"
#include "pki/trust_store.h"

namespace agrarsec::pki {
namespace {

struct Fixture {
  crypto::Drbg drbg{42, "pki-test"};
  CertificateAuthority root = CertificateAuthority::create_root(
      "site-root-ca", seed_of(), 0, 365 * 24 * core::kHour);
  TrustStore trust;

  crypto::Ed25519Seed seed_of() {
    return drbg.generate32();
  }

  Fixture() { EXPECT_TRUE(trust.add_root(root.certificate()).ok()); }

  Identity enroll_machine(const std::string& name) {
    auto id = enroll(root, drbg, name, CertRole::kMachine, 0, 24 * core::kHour);
    EXPECT_TRUE(id.ok());
    return std::move(id).take();
  }
};

TEST(Certificate, SelfSignedRootVerifies) {
  crypto::Drbg drbg{1, "x"};
  auto root = CertificateAuthority::create_root("root", drbg.generate32(), 0, 1000);
  EXPECT_TRUE(root.certificate().verify_signature(root.certificate().body.signing_key));
  EXPECT_EQ(root.certificate().body.subject, root.certificate().body.issuer);
  EXPECT_TRUE(root.certificate().body.usage.can_issue);
}

TEST(Certificate, ValidityWindow) {
  crypto::Drbg drbg{1, "x"};
  auto root = CertificateAuthority::create_root("root", drbg.generate32(), 100, 200);
  EXPECT_FALSE(root.certificate().valid_at(99));
  EXPECT_TRUE(root.certificate().valid_at(100));
  EXPECT_TRUE(root.certificate().valid_at(200));
  EXPECT_FALSE(root.certificate().valid_at(201));
}

TEST(Certificate, TamperedBodyFailsVerification) {
  crypto::Drbg drbg{1, "x"};
  auto root = CertificateAuthority::create_root("root", drbg.generate32(), 0, 1000);
  IssueRequest req;
  req.subject = "machine-1";
  req.signing_key = crypto::ed25519_keypair(drbg.generate32()).public_key;
  req.not_after = 1000;
  auto cert = root.issue(req);
  ASSERT_TRUE(cert.ok());
  Certificate tampered = cert.value();
  tampered.body.subject = "machine-2";  // rename attack
  EXPECT_FALSE(tampered.verify_signature(root.certificate().body.signing_key));
}

TEST(Certificate, FingerprintStableAndDistinct) {
  crypto::Drbg drbg{1, "x"};
  auto root = CertificateAuthority::create_root("root", drbg.generate32(), 0, 1000);
  IssueRequest req;
  req.subject = "m";
  req.not_after = 1;
  auto c1 = root.issue(req);
  req.subject = "n";
  auto c2 = root.issue(req);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1.value().fingerprint(), c1.value().fingerprint());
  EXPECT_NE(c1.value().fingerprint(), c2.value().fingerprint());
}

TEST(Authority, SerialsIncrease) {
  crypto::Drbg drbg{2, "x"};
  auto root = CertificateAuthority::create_root("root", drbg.generate32(), 0, 1000);
  IssueRequest req;
  req.subject = "a";
  req.not_after = 10;
  const auto c1 = root.issue(req);
  const auto c2 = root.issue(req);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_LT(c1.value().body.serial.value(), c2.value().body.serial.value());
  EXPECT_EQ(root.issued_count(), 2u);
}

TEST(Authority, RejectsInvertedValidity) {
  crypto::Drbg drbg{2, "x"};
  auto root = CertificateAuthority::create_root("root", drbg.generate32(), 0, 1000);
  IssueRequest req;
  req.subject = "a";
  req.not_before = 100;
  req.not_after = 50;
  const auto r = root.issue(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "bad_validity");
}

TEST(Authority, RejectsIssuingRightsOnNonCaRole) {
  crypto::Drbg drbg{2, "x"};
  auto root = CertificateAuthority::create_root("root", drbg.generate32(), 0, 1000);
  IssueRequest req;
  req.subject = "sneaky-machine";
  req.role = CertRole::kMachine;
  req.usage.can_issue = true;
  req.not_after = 10;
  const auto r = root.issue(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "role_mismatch");
}

TEST(Authority, IntermediateChainValidates) {
  Fixture f;
  auto intermediate = CertificateAuthority::create_intermediate(
      f.root, "site-intermediate", f.seed_of(), 0, 1000);
  ASSERT_TRUE(intermediate.ok());

  crypto::Drbg drbg2{7, "y"};
  auto leaf = enroll(intermediate.value(), drbg2, "machine-x", CertRole::kMachine, 0,
                     1000, {intermediate.value().certificate()});
  ASSERT_TRUE(leaf.ok());
  const auto validated = f.trust.validate(leaf.value().chain, 10);
  ASSERT_TRUE(validated.ok()) << validated.error().to_string();
  EXPECT_EQ(validated.value().body.subject, "machine-x");
}

TEST(Authority, IntermediatePathLengthExhausts) {
  Fixture f;
  auto i1 = CertificateAuthority::create_intermediate(f.root, "i1", f.seed_of(), 0, 1000);
  ASSERT_TRUE(i1.ok());
  auto i2 = CertificateAuthority::create_intermediate(i1.value(), "i2", f.seed_of(), 0, 1000);
  ASSERT_TRUE(i2.ok());
  // Root path_length=2: i2 has path_length 0 and must refuse further CAs.
  auto i3 = CertificateAuthority::create_intermediate(i2.value(), "i3", f.seed_of(), 0, 1000);
  ASSERT_FALSE(i3.ok());
  EXPECT_EQ(i3.error().code, "path_length");
}

TEST(Crl, CoversRevokedSerials) {
  Fixture f;
  const Identity m = f.enroll_machine("machine-1");
  f.root.revoke(m.leaf().body.serial);
  const Crl crl = f.root.current_crl(50);
  EXPECT_TRUE(crl.covers(m.leaf().body.serial));
  EXPECT_FALSE(crl.covers(CertSerial{999999}));
  EXPECT_TRUE(crl.verify_signature(f.root.certificate().body.signing_key));
}

TEST(TrustStore, RejectsNonSelfSignedRoot) {
  Fixture f;
  const Identity m = f.enroll_machine("machine-1");
  TrustStore store;
  const auto status = store.add_root(m.leaf());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "not_self_signed");
}

TEST(TrustStore, ValidatesDirectlyIssuedLeaf) {
  Fixture f;
  const Identity m = f.enroll_machine("machine-1");
  const auto r = f.trust.validate(m.chain, 10);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().body.subject, "machine-1");
}

TEST(TrustStore, RejectsEmptyChain) {
  Fixture f;
  const auto r = f.trust.validate({}, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "empty_chain");
}

TEST(TrustStore, RejectsExpiredLeaf) {
  Fixture f;
  const Identity m = f.enroll_machine("machine-1");
  const auto r = f.trust.validate(m.chain, 25 * core::kHour);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "expired");
}

TEST(TrustStore, RejectsUnknownIssuer) {
  Fixture f;
  crypto::Drbg other_drbg{99, "other"};
  auto other_root =
      CertificateAuthority::create_root("other-root", other_drbg.generate32(), 0, 1000);
  auto foreign = enroll(other_root, other_drbg, "foreign-machine", CertRole::kMachine,
                        0, 1000);
  ASSERT_TRUE(foreign.ok());
  const auto r = f.trust.validate(foreign.value().chain, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "untrusted_root");
}

TEST(TrustStore, RejectsRevokedLeaf) {
  Fixture f;
  const Identity m = f.enroll_machine("machine-1");
  f.root.revoke(m.leaf().body.serial);
  ASSERT_TRUE(f.trust.add_crl(f.root.current_crl(5), f.root.certificate()).ok());
  const auto r = f.trust.validate(m.chain, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "revoked");
}

TEST(TrustStore, RejectsStaleCrlInstall) {
  Fixture f;
  const Crl newer = f.root.current_crl(100);
  const Crl older = f.root.current_crl(50);
  ASSERT_TRUE(f.trust.add_crl(newer, f.root.certificate()).ok());
  const auto status = f.trust.add_crl(older, f.root.certificate());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "stale_crl");
}

TEST(TrustStore, RejectsCrlWithWrongIssuerCert) {
  Fixture f;
  const Identity m = f.enroll_machine("machine-1");
  const Crl crl = f.root.current_crl(5);
  const auto status = f.trust.add_crl(crl, m.leaf());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "issuer_mismatch");
}

TEST(TrustStore, RejectsCaPresentedAsLeaf) {
  Fixture f;
  auto intermediate = CertificateAuthority::create_intermediate(
      f.root, "interm", f.seed_of(), 0, 1000);
  ASSERT_TRUE(intermediate.ok());
  const auto r = f.trust.validate({intermediate.value().certificate()}, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "ca_as_leaf");
  // ...unless explicitly allowed.
  EXPECT_TRUE(f.trust.validate({intermediate.value().certificate()}, 10, true).ok());
}

TEST(TrustStore, RejectsForgedSignature) {
  Fixture f;
  Identity m = f.enroll_machine("machine-1");
  m.chain.front().signature[0] ^= 1;
  const auto r = f.trust.validate(m.chain, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "bad_signature");
}

TEST(TrustStore, RevocationOfIntermediateKillsSubtree) {
  Fixture f;
  auto intermediate = CertificateAuthority::create_intermediate(
      f.root, "interm", f.seed_of(), 0, 1000);
  ASSERT_TRUE(intermediate.ok());
  crypto::Drbg drbg2{5, "z"};
  auto leaf = enroll(intermediate.value(), drbg2, "m", CertRole::kMachine, 0, 1000,
                     {intermediate.value().certificate()});
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(f.trust.validate(leaf.value().chain, 10).ok());

  f.root.revoke(intermediate.value().certificate().body.serial);
  ASSERT_TRUE(f.trust.add_crl(f.root.current_crl(5), f.root.certificate()).ok());
  const auto r = f.trust.validate(leaf.value().chain, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "revoked");
}

TEST(Identity, EnrollProducesUsableKeys) {
  Fixture f;
  const Identity m = f.enroll_machine("machine-1");
  EXPECT_EQ(m.subject(), "machine-1");
  EXPECT_TRUE(m.leaf().body.usage.can_sign);
  EXPECT_TRUE(m.leaf().body.usage.can_key_agree);
  // Signing key in the certificate matches the private key.
  const auto sig = crypto::ed25519_sign(m.signing, core::from_string("test"));
  EXPECT_TRUE(crypto::ed25519_verify(m.leaf().body.signing_key,
                                     core::from_string("test"), sig));
  // Agreement key matches.
  EXPECT_EQ(core::to_hex(m.leaf().body.agreement_key), core::to_hex(m.agreement_public));
}

}  // namespace
}  // namespace agrarsec::pki
