// SoS composition checks and emergent-behaviour monitors.
#include <gtest/gtest.h>

#include "sos/emergent.h"
#include "sos/system.h"

namespace agrarsec::sos {
namespace {

TEST(Sos, ForestrySosComposable) {
  const SosComposition sos = build_forestry_sos();
  EXPECT_EQ(sos.systems().size(), 3u);
  EXPECT_GE(sos.contracts().size(), 8u);
  const auto issues = sos.check();
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues[0].detail);
}

TEST(Sos, CapabilityMismatchDetected) {
  SosComposition sos;
  ConstituentSystem a;
  a.name = "a";
  a.organization = "org";
  a.produces = {net::MessageType::kTelemetry};
  const SystemId a_id = sos.add_system(std::move(a));
  ConstituentSystem b;
  b.name = "b";
  b.organization = "org";
  b.consumes = {net::MessageType::kTelemetry};
  const SystemId b_id = sos.add_system(std::move(b));

  InterfaceContract c;
  c.name = "wrong-type";
  c.producer = a_id;
  c.consumer = b_id;
  c.message = net::MessageType::kEstopCommand;  // neither supports it
  sos.add_contract(c);

  const auto issues = sos.check_capabilities();
  EXPECT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].category, "capability");
}

TEST(Sos, UnknownSystemInContractDetected) {
  SosComposition sos;
  InterfaceContract c;
  c.name = "dangling";
  c.producer = SystemId{99};
  c.consumer = SystemId{98};
  sos.add_contract(c);
  const auto issues = sos.check_capabilities();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].detail.find("unknown system"), std::string::npos);
}

TEST(Sos, OperationalPolicyConflictDetected) {
  SosComposition sos = build_forestry_sos();
  InterfaceContract plain;
  plain.name = "legacy-plaintext";
  plain.producer = sos.systems()[0].id;
  plain.consumer = sos.systems()[2].id;
  plain.message = net::MessageType::kTelemetry;
  plain.encrypted = false;
  plain.mutually_authenticated = false;
  sos.add_contract(plain);

  const auto issues = sos.check_operational_independence();
  EXPECT_GE(issues.size(), 2u);  // both ends demand encryption + auth
  for (const auto& i : issues) EXPECT_EQ(i.category, "operational");
}

TEST(Sos, CrossOrgWithoutAuthDetected) {
  SosComposition sos;
  ConstituentSystem a;
  a.name = "machine";
  a.organization = "oem";
  a.policy.requires_encryption = false;
  a.policy.requires_mutual_auth = false;
  a.produces = {net::MessageType::kTelemetry};
  const SystemId a_id = sos.add_system(std::move(a));
  ConstituentSystem b;
  b.name = "portal";
  b.organization = "contractor";
  b.policy.requires_encryption = false;
  b.policy.requires_mutual_auth = false;
  b.consumes = {net::MessageType::kTelemetry};
  const SystemId b_id = sos.add_system(std::move(b));

  InterfaceContract c;
  c.name = "cross-org";
  c.producer = a_id;
  c.consumer = b_id;
  c.message = net::MessageType::kTelemetry;
  c.mutually_authenticated = false;
  sos.add_contract(c);

  const auto issues = sos.check_management_independence();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].category, "management");
}

TEST(Sos, VersionSkewDetected) {
  SosComposition sos = build_forestry_sos();
  // Drone vendor ships interface v2; contracts still at v1.
  SosComposition skewed;
  for (ConstituentSystem s : sos.systems()) {
    if (s.name == "observation-drone") s.interface_version = 2;
    // Re-adding reassigns ids in order, so contracts keep matching.
    skewed.add_system(std::move(s));
  }
  for (const InterfaceContract& c : sos.contracts()) skewed.add_contract(c);

  const auto issues = skewed.check_evolution();
  EXPECT_GE(issues.size(), 1u);
  EXPECT_EQ(issues[0].category, "evolution");
}

TEST(Sos, GeographicExportViolationDetected) {
  SosComposition sos;
  ConstituentSystem a;
  a.name = "harvest-db";
  a.organization = "company";
  a.jurisdiction = "SE";
  a.policy.allows_data_export = false;
  a.produces = {net::MessageType::kTelemetry};
  const SystemId a_id = sos.add_system(std::move(a));
  ConstituentSystem b;
  b.name = "cloud-analytics";
  b.organization = "company";
  b.jurisdiction = "US";
  b.consumes = {net::MessageType::kTelemetry};
  const SystemId b_id = sos.add_system(std::move(b));

  InterfaceContract c;
  c.name = "export";
  c.producer = a_id;
  c.consumer = b_id;
  c.message = net::MessageType::kTelemetry;
  c.carries_personal_data = true;
  sos.add_contract(c);

  const auto issues = sos.check_geographic();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].category, "geographic");

  // Same jurisdictions: fine.
  SosComposition same;
  ConstituentSystem a2;
  a2.name = "db";
  a2.organization = "c";
  a2.jurisdiction = "SE";
  a2.policy.allows_data_export = false;
  a2.produces = {net::MessageType::kTelemetry};
  const SystemId a2_id = same.add_system(std::move(a2));
  ConstituentSystem b2;
  b2.name = "analytics";
  b2.organization = "c";
  b2.jurisdiction = "SE";
  b2.consumes = {net::MessageType::kTelemetry};
  const SystemId b2_id = same.add_system(std::move(b2));
  InterfaceContract c2 = c;
  c2.producer = a2_id;
  c2.consumer = b2_id;
  same.add_contract(c2);
  EXPECT_TRUE(same.check_geographic().empty());
}

TEST(Emergent, OscillationDetected) {
  core::EventBus bus;
  EmergentBehaviorMonitor monitor;
  monitor.attach(bus);
  // 4 e-stops within 60 s.
  for (int i = 0; i < 4; ++i) {
    bus.publish({"safety/estop", "reason=x", 1, i * 10 * core::kSecond});
  }
  EXPECT_EQ(monitor.count("stop-start-oscillation"), 1u);
}

TEST(Emergent, SlowStopsNoOscillation) {
  core::EventBus bus;
  EmergentBehaviorMonitor monitor;
  monitor.attach(bus);
  for (int i = 0; i < 6; ++i) {
    bus.publish({"safety/estop", "reason=x", 1, i * 120 * core::kSecond});
  }
  EXPECT_EQ(monitor.count("stop-start-oscillation"), 0u);
}

TEST(Emergent, CascadeAcrossDistinctSystems) {
  core::EventBus bus;
  EmergentBehaviorMonitor monitor;
  monitor.attach(bus);
  bus.publish({"machine/degraded", "", 1, 1000});
  bus.publish({"machine/degraded", "", 2, 2000});
  bus.publish({"machine/degraded", "", 3, 3000});
  EXPECT_EQ(monitor.count("cascade-degradation"), 1u);
}

TEST(Emergent, SameOriginNotACascade) {
  core::EventBus bus;
  EmergentBehaviorMonitor monitor;
  monitor.attach(bus);
  for (int i = 0; i < 10; ++i) {
    bus.publish({"machine/degraded", "", 1, static_cast<core::SimTime>(i * 1000)});
  }
  EXPECT_EQ(monitor.count("cascade-degradation"), 0u);
}

TEST(Emergent, MonitorRearmsAfterFinding) {
  core::EventBus bus;
  EmergentBehaviorMonitor monitor;
  monitor.attach(bus);
  for (int i = 0; i < 8; ++i) {
    bus.publish({"safety/estop", "", 1, i * 5 * core::kSecond});
  }
  EXPECT_EQ(monitor.count("stop-start-oscillation"), 2u);
}

TEST(Sos, RoleNames) {
  EXPECT_EQ(system_role_name(SystemRole::kDrone), "drone");
  EXPECT_EQ(system_role_name(SystemRole::kOperatorStation), "operator-station");
}

}  // namespace
}  // namespace agrarsec::sos
