// FleetService contract (DESIGN.md §12): sessions are self-contained, so
// a given (config, seed) yields a bit-identical trajectory and telemetry
// export no matter how many other sessions run, how batches interleave,
// or the service thread count. The FleetServiceParallel suite is also the
// TSan target for concurrent session stepping (scripts/check.sh).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "service/fleet_service.h"

namespace agrarsec::service {
namespace {

/// Small-but-real session: full stack (radio, PKI, IDS, safety) over a
/// thinner stand so a test steps in milliseconds, with workers near the
/// forwarder lanes so separation/perception paths actually run.
integration::SecuredWorksiteConfig session_config(std::uint64_t seed) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.forest.boulders_per_hectare = 20;
  config.worksite.harvester_output_m3_per_min = 20.0;
  config.worksite.load_time = 10 * core::kSecond;
  return config;
}

void add_workers(integration::SecuredWorksite& site) {
  for (int i = 0; i < 2; ++i) {
    site.worksite().add_worker("worker-" + std::to_string(i),
                               {75.0 + 10.0 * i, 60}, {80, 80});
  }
}

constexpr std::uint64_t kFleetSeed = 99;
constexpr int kSteps = 40;

struct SessionExport {
  std::string deterministic_json;
  std::string flight_jsonl;
};

/// Runs `session_count` keyed sessions for kSteps on `threads` shards and
/// returns each session's deterministic export + raw flight JSONL by key.
std::map<std::uint64_t, SessionExport> run_fleet(std::size_t threads,
                                                 std::size_t session_count) {
  FleetServiceConfig config;
  config.threads = threads;
  config.fleet_seed = kFleetSeed;
  FleetService fleet{config};

  std::map<std::uint64_t, SessionId> ids;
  for (std::uint64_t key = 0; key < session_count; ++key) {
    const std::uint64_t seed = FleetService::derive_session_seed(kFleetSeed, key);
    ids[key] = fleet.create_session_keyed(session_config(seed), key);
    add_workers(*fleet.session(ids[key]));
  }
  fleet.step_all(kSteps);

  std::map<std::uint64_t, SessionExport> exports;
  for (const auto& [key, id] : ids) {
    exports[key] = {fleet.session_deterministic_json(id),
                    fleet.session(id)->telemetry().recorder().to_jsonl()};
  }
  return exports;
}

// The headline guarantee, gated in CI: per-session exports are
// byte-identical across sessions ∈ {1, 8} × threads ∈ {1, 2, 8}. The
// 8-session × multi-thread runs double as the TSan workload.
TEST(FleetServiceParallel, PerSessionDeterminismAcrossFleetSizeAndThreads) {
  // Reference: each key alone in a single-threaded service.
  std::map<std::uint64_t, SessionExport> reference;
  for (std::uint64_t key = 0; key < 8; ++key) {
    FleetServiceConfig config;
    config.fleet_seed = kFleetSeed;
    FleetService solo{config};
    const SessionId id =
        solo.create_session_keyed(session_config(0), key);  // seed derived
    add_workers(*solo.session(id));
    solo.step_all(kSteps);
    reference[key] = {solo.session_deterministic_json(id),
                      solo.session(id)->telemetry().recorder().to_jsonl()};
    ASSERT_FALSE(reference[key].deterministic_json.empty());
  }
  // Distinct keys must be genuinely distinct sessions.
  EXPECT_NE(reference[0].deterministic_json, reference[1].deterministic_json);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto fleet = run_fleet(threads, 8);
    ASSERT_EQ(fleet.size(), 8u);
    for (const auto& [key, exp] : fleet) {
      SCOPED_TRACE("session key=" + std::to_string(key));
      EXPECT_EQ(exp.deterministic_json, reference[key].deterministic_json);
      EXPECT_EQ(exp.flight_jsonl, reference[key].flight_jsonl);
    }
  }
}

// Batch interleaving (several step_all calls of varying length) must land
// on the same per-session bytes as one long batch.
TEST(FleetServiceParallel, BatchInterleavingIsUnobservable) {
  const auto one_batch = run_fleet(2, 4);

  FleetServiceConfig config;
  config.threads = 8;
  config.fleet_seed = kFleetSeed;
  FleetService fleet{config};
  std::map<std::uint64_t, SessionId> ids;
  for (std::uint64_t key = 0; key < 4; ++key) {
    const std::uint64_t seed = FleetService::derive_session_seed(kFleetSeed, key);
    ids[key] = fleet.create_session_keyed(session_config(seed), key);
    add_workers(*fleet.session(ids[key]));
  }
  fleet.step_all(1);
  fleet.step_all(25);
  fleet.step_all(kSteps - 26);
  for (const auto& [key, id] : ids) {
    SCOPED_TRACE("session key=" + std::to_string(key));
    EXPECT_EQ(fleet.session_deterministic_json(id),
              one_batch.at(key).deterministic_json);
  }
}

TEST(FleetService, LifecycleCountsAndQueries) {
  FleetService fleet{{}};
  EXPECT_EQ(fleet.session_count(), 0u);
  EXPECT_EQ(fleet.session(7), nullptr);
  EXPECT_FALSE(fleet.destroy_session(7));
  fleet.step_all(5);  // no sessions: a no-op, not a crash

  const SessionId a = fleet.create_session(session_config(1));
  const SessionId b = fleet.create_session(session_config(2));
  EXPECT_NE(a, b);
  EXPECT_EQ(fleet.session_count(), 2u);
  EXPECT_EQ(fleet.session_ids(), (std::vector<SessionId>{a, b}));

  fleet.step_all(3);
  EXPECT_TRUE(fleet.step_session(a, 2));
  EXPECT_EQ(fleet.session_steps(a), 5u);
  EXPECT_EQ(fleet.session_steps(b), 3u);
  EXPECT_EQ(fleet.total_session_steps(), 8u);

  // Destroyed sessions keep counting toward the lifetime total; their id
  // is never reused.
  EXPECT_TRUE(fleet.destroy_session(a));
  EXPECT_EQ(fleet.session(a), nullptr);
  EXPECT_EQ(fleet.session_count(), 1u);
  EXPECT_EQ(fleet.total_session_steps(), 8u);
  const SessionId c = fleet.create_session(session_config(3));
  EXPECT_NE(c, a);

  const obs::Registry& reg = fleet.telemetry().registry();
  EXPECT_EQ(reg.find_counter("fleet.sessions_created")->value(), 3u);
  EXPECT_EQ(reg.find_counter("fleet.sessions_destroyed")->value(), 1u);
  EXPECT_EQ(reg.find_counter("fleet.session_steps")->value(), 8u);
}

TEST(FleetService, DerivedSeedsAreStableAndDistinct) {
  const std::uint64_t s0 = FleetService::derive_session_seed(kFleetSeed, 0);
  EXPECT_EQ(s0, FleetService::derive_session_seed(kFleetSeed, 0));  // pure
  EXPECT_NE(s0, FleetService::derive_session_seed(kFleetSeed, 1));
  EXPECT_NE(s0, FleetService::derive_session_seed(kFleetSeed + 1, 0));
}

// A keyed session's stream is a function of (fleet_seed, key) alone —
// never of creation order or fleet population.
TEST(FleetService, KeyedSessionIndependentOfCreationOrder) {
  FleetServiceConfig config;
  config.fleet_seed = kFleetSeed;

  FleetService first{config};
  const SessionId lone = first.create_session_keyed(session_config(0), 5);
  first.step_all(20);

  FleetService second{config};
  second.create_session_keyed(session_config(0), 1);
  second.create_session_keyed(session_config(0), 2);
  const SessionId crowded = second.create_session_keyed(session_config(0), 5);
  second.step_all(20);

  EXPECT_EQ(first.session_deterministic_json(lone),
            second.session_deterministic_json(crowded));
}

TEST(FleetService, AggregateSecurityMetricsSumSessions) {
  FleetService fleet{{}};
  const SessionId a = fleet.create_session(session_config(11));
  const SessionId b = fleet.create_session(session_config(12));
  add_workers(*fleet.session(a));
  add_workers(*fleet.session(b));
  fleet.step_all(200);  // 20 sim-seconds: detection reports flow

  const integration::SecurityMetrics total = fleet.aggregate_security_metrics();
  const integration::SecurityMetrics ma = fleet.session(a)->security_metrics();
  const integration::SecurityMetrics mb = fleet.session(b)->security_metrics();
  EXPECT_EQ(total.detection_reports_sent,
            ma.detection_reports_sent + mb.detection_reports_sent);
  EXPECT_EQ(total.detection_reports_accepted,
            ma.detection_reports_accepted + mb.detection_reports_accepted);
  EXPECT_GT(total.detection_reports_sent, 0u);
}

// Satellite regression: the per-session TelemetryConfig reaches the
// session's flight recorder through the service path too.
TEST(FleetService, SessionFlightCapacityIsConfigurable) {
  FleetService fleet{{}};
  integration::SecuredWorksiteConfig config = session_config(4);
  config.telemetry.flight_capacity = 2;
  const SessionId id = fleet.create_session(config);
  EXPECT_EQ(fleet.session(id)->telemetry().recorder().capacity(), 2u);
}

}  // namespace
}  // namespace agrarsec::service
