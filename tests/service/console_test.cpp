// Operations console: read-only HTTP plane, authenticated control plane,
// and the contract that an attached console never perturbs per-session
// determinism. The ConsoleParallel suite doubles as the TSan workload for
// the console server threads against concurrent step_all batches
// (scripts/check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/bytes.h"
#include "core/rng.h"
#include "crypto/random.h"
#include "net/stream.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/session.h"
#include "service/console.h"
#include "service/fleet_service.h"

namespace agrarsec::service {
namespace {

/// Same thin-but-full-stack session as the fleet determinism suite.
integration::SecuredWorksiteConfig session_config(std::uint64_t seed) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.forest.boulders_per_hectare = 20;
  config.worksite.harvester_output_m3_per_min = 20.0;
  config.worksite.load_time = 10 * core::kSecond;
  return config;
}

struct ConsoleFixture {
  crypto::Drbg drbg{11, "console-test"};
  pki::CertificateAuthority root = pki::CertificateAuthority::create_root(
      "ops-root", make_seed(), 0, 1000 * core::kHour);
  pki::TrustStore trust;
  pki::Identity console_id = make_identity("console-01");
  pki::Identity operator_id = make_identity("operator-01");

  std::array<std::uint8_t, 32> make_seed() { return drbg.generate32(); }

  pki::Identity make_identity(const std::string& name) {
    auto id = pki::enroll(root, drbg, name, pki::CertRole::kOperatorStation, 0,
                          1000 * core::kHour);
    EXPECT_TRUE(id.ok());
    return std::move(id).take();
  }

  ConsoleFixture() { EXPECT_TRUE(trust.add_root(root.certificate()).ok()); }

  /// Fleet with two keyed sessions, stepped a little so flight recorders
  /// and metrics have content.
  static FleetService make_fleet(std::size_t threads = 1) {
    FleetServiceConfig config;
    config.threads = threads;
    config.fleet_seed = 404;
    return FleetService{config};
  }
};

SessionId add_session(FleetService& fleet, std::uint64_t key) {
  const std::uint64_t seed = FleetService::derive_session_seed(404, key);
  return fleet.create_session_keyed(session_config(seed), key);
}

TEST(ConsoleHttp, LiveEndpointsServeFleetSnapshots) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  const SessionId a = add_session(fleet, 0);
  add_session(fleet, 1);
  fleet.step_all(5);

  ConsoleService console{fleet, f.console_id, f.trust, 21};
  ASSERT_TRUE(console.start().ok());
  ASSERT_NE(console.http_port(), 0);

  auto metrics = http_get_local(console.http_port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.error().to_string();
  EXPECT_NE(metrics.value().find("fleet.sessions_created"), std::string::npos);
  EXPECT_NE(metrics.value().find("wall."), std::string::npos);

  auto sessions = http_get_local(console.http_port(), "/sessions");
  ASSERT_TRUE(sessions.ok());
  EXPECT_NE(sessions.value().find("\"session_count\":2"), std::string::npos);
  EXPECT_NE(sessions.value().find("\"steps\":5"), std::string::npos);

  auto utilization = http_get_local(console.http_port(), "/utilization");
  ASSERT_TRUE(utilization.ok());
  EXPECT_NE(utilization.value().find("\"shards\":["), std::string::npos);

  auto flight = http_get_local(console.http_port(),
                               "/flight/" + std::to_string(a) + "?n=4");
  ASSERT_TRUE(flight.ok());
  EXPECT_NE(flight.value().find("\"session\":" + std::to_string(a)),
            std::string::npos);
  EXPECT_NE(flight.value().find("\"events\":["), std::string::npos);

  // Unknown session / unknown route are 404s, surfaced as "status" errors.
  EXPECT_EQ(http_get_local(console.http_port(), "/flight/999").error().code,
            "status");
  EXPECT_EQ(http_get_local(console.http_port(), "/nope").error().code, "status");
  console.stop();
  EXPECT_FALSE(console.running());
}

TEST(ConsoleHttp, MutatingVerbsUnreachableOverHttp) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  add_session(fleet, 0);
  ConsoleService console{fleet, f.console_id, f.trust, 22};
  ASSERT_TRUE(console.start().ok());

  net::TcpStream conn = net::TcpStream::connect_local(console.http_port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.write_all(std::string_view{
      "POST /pause HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"}, 2000));
  std::string got;
  std::uint8_t chunk[1024];
  for (;;) {
    const long n = conn.read_some(chunk, sizeof(chunk), 2000);
    if (n <= 0) break;
    got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  EXPECT_NE(got.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_FALSE(fleet.paused());
}

TEST(ConsoleControl, AuthenticatedPauseStepResumeRoundTrip) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  const SessionId id = add_session(fleet, 0);
  ConsoleService console{fleet, f.console_id, f.trust, 23};
  ASSERT_TRUE(console.start().ok());

  crypto::Drbg client_drbg{31, "operator"};
  auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                       f.trust, client_drbg, "console-01");
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  EXPECT_EQ(client.value().peer_subject(), "console-01");

  auto paused = client.value().call("pause");
  ASSERT_TRUE(paused.ok()) << paused.error().to_string();
  EXPECT_NE(paused.value().find("\"paused\":true"), std::string::npos);
  EXPECT_TRUE(fleet.paused());

  // step_all is a no-op while paused; the operator single-step is not.
  fleet.step_all(10);
  EXPECT_EQ(fleet.session_steps(id), 0u);
  auto stepped = client.value().call("step", "{\"steps\":3}");
  ASSERT_TRUE(stepped.ok());
  EXPECT_NE(stepped.value().find("\"sessions_stepped\":1"), std::string::npos);
  EXPECT_EQ(fleet.session_steps(id), 3u);

  auto resumed = client.value().call("resume");
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(fleet.paused());
  fleet.step_all(2);
  EXPECT_EQ(fleet.session_steps(id), 5u);
  EXPECT_EQ(console.control_sessions_established(), 1u);
  EXPECT_GE(console.commands_dispatched(), 3u);
}

TEST(ConsoleControl, InjectAttackAndExport) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  const SessionId id = add_session(fleet, 0);
  fleet.step_all(3);
  ConsoleService console{fleet, f.console_id, f.trust, 24};
  ASSERT_TRUE(console.start().ok());

  crypto::Drbg client_drbg{32, "operator"};
  auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                       f.trust, client_drbg);
  ASSERT_TRUE(client.ok());

  auto injected = client.value().call(
      "inject-attack",
      "{\"session\":" + std::to_string(id) + ",\"x\":50,\"y\":50,\"level\":2}");
  ASSERT_TRUE(injected.ok());
  EXPECT_NE(injected.value().find("\"injected\":true"), std::string::npos);

  auto exported =
      client.value().call("export", "{\"session\":" + std::to_string(id) + "}");
  ASSERT_TRUE(exported.ok());
  const std::string expected = fleet.export_session_json(id);
  const std::string prefix = "{\"id\":2,\"result\":";
  ASSERT_EQ(exported.value().substr(0, prefix.size()), prefix);
  EXPECT_EQ(exported.value().substr(prefix.size(),
                                    exported.value().size() - prefix.size() - 1),
            expected);

  auto unknown = client.value().call("export", "{\"session\":999}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_NE(unknown.value().find("unknown_session"), std::string::npos);
}

TEST(ConsoleControl, MalformedRecordTortureNeverCrashesOrMutates) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  const SessionId id = add_session(fleet, 0);
  fleet.step_all(4);
  ConsoleService console{fleet, f.console_id, f.trust, 25};
  ASSERT_TRUE(console.start().ok());

  crypto::Drbg client_drbg{33, "operator"};
  auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                       f.trust, client_drbg);
  ASSERT_TRUE(client.ok());

  const std::string before_sessions = fleet.sessions_json();
  const std::string before_export = fleet.export_session_json(id);
  const bool before_paused = fleet.paused();

  // Torture loop: garbage frames, truncated records, and well-formed
  // records with forged ciphertext (a plausible sealed "pause" that fails
  // authentication). None may crash the server, mutate fleet state, or
  // desynchronize the session for the genuine command that follows.
  crypto::Drbg fuzz{34, "fuzz"};
  for (int i = 0; i < 64; ++i) {
    core::Bytes frame;
    switch (i % 4) {
      case 0:  // raw garbage, not even record-shaped
        frame = fuzz.generate(1 + (i * 7) % 96);
        break;
      case 1: {  // record-shaped, forged ciphertext under a fresh sequence
        secure::Record forged;
        forged.sequence = 1000 + static_cast<std::uint64_t>(i);
        forged.ciphertext = fuzz.generate(48);
        frame = forged.encode();
        break;
      }
      case 2: {  // record-shaped, duplicate sequence 0, forged payload
        secure::Record forged;
        forged.sequence = 0;
        forged.ciphertext = fuzz.generate(40);
        frame = forged.encode();
        break;
      }
      default:  // empty frame
        break;
    }
    ASSERT_TRUE(client.value().send_raw_frame(frame));
  }

  // The authenticated channel still works after the storm...
  auto pong = client.value().call("ping");
  ASSERT_TRUE(pong.ok()) << pong.error().to_string();
  EXPECT_NE(pong.value().find("\"pong\":true"), std::string::npos);
  EXPECT_GE(console.records_rejected(), 64u);

  // ...and nothing about the fleet changed.
  EXPECT_EQ(fleet.sessions_json(), before_sessions);
  EXPECT_EQ(fleet.export_session_json(id), before_export);
  EXPECT_EQ(fleet.paused(), before_paused);
  EXPECT_EQ(console.commands_dispatched(), 1u);  // only the ping
}

TEST(ConsoleControl, UnauthorizedSubjectDropped) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  add_session(fleet, 0);
  ConsoleConfig config;
  config.allowed_subjects = {"operator-99"};  // not our operator
  config.io_timeout_ms = 500;                 // keep the failing call quick
  ConsoleService console{fleet, f.console_id, f.trust, 26, config};
  ASSERT_TRUE(console.start().ok());

  crypto::Drbg client_drbg{35, "operator"};
  auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                       f.trust, client_drbg);
  // The handshake itself succeeds (the cert is trusted), but the console
  // closes before serving: the first call gets no response.
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client.value().call("pause").ok());
  EXPECT_FALSE(fleet.paused());
  EXPECT_EQ(console.control_sessions_established(), 0u);
}

TEST(ConsoleControl, ClientRejectsWrongConsoleSubject) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  ConsoleService console{fleet, f.console_id, f.trust, 27};
  ASSERT_TRUE(console.start().ok());

  crypto::Drbg client_drbg{36, "operator"};
  auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                       f.trust, client_drbg, "console-impostor");
  EXPECT_FALSE(client.ok());
}

// --- streaming plane --------------------------------------------------------

/// Extracts "next_cursor":N from a console flight JSON body.
std::uint64_t parse_next_cursor(const std::string& json) {
  const std::size_t at = json.find("\"next_cursor\":");
  EXPECT_NE(at, std::string::npos) << json;
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + 14, nullptr, 10);
}

TEST(ConsoleHttp, FlightCursorPollsDoNotOverlap) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  const SessionId a = add_session(fleet, 0);
  fleet.step_all(5);

  ConsoleService console{fleet, f.console_id, f.trust, 41};
  ASSERT_TRUE(console.start().ok());
  const std::string base = "/flight/" + std::to_string(a);

  // First sequenced poll drains everything recorded so far.
  auto first = http_get_local(console.http_port(), base + "?cursor=0&n=100000");
  ASSERT_TRUE(first.ok());
  const std::uint64_t cursor = parse_next_cursor(first.value());
  const std::uint64_t total =
      fleet.session(a)->telemetry().recorder().total_recorded();
  EXPECT_EQ(cursor, total);

  // Caught up: the same cursor back and an empty event list — a repeated
  // poll never re-serves the tail it already delivered.
  auto empty = http_get_local(console.http_port(),
                              base + "?cursor=" + std::to_string(cursor));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(parse_next_cursor(empty.value()), cursor);
  EXPECT_NE(empty.value().find("\"events\":[]"), std::string::npos);

  // New events, resumed poll: only fresh ones, starting exactly at the
  // cursor — no overlap with the previous chunk. (Recorded directly: step
  // count and flight-event count are deliberately not 1:1.)
  fleet.session(a)->telemetry().recorder().record(9000, "test", "cursor-probe");
  fleet.session(a)->telemetry().recorder().record(9001, "test", "cursor-probe");
  auto next = http_get_local(console.http_port(),
                             base + "?cursor=" + std::to_string(cursor) + "&n=100000");
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next.value().find("\"seq\":" + std::to_string(cursor) + ","),
            std::string::npos);
  EXPECT_EQ(next.value().find("\"seq\":" + std::to_string(cursor - 1) + ","),
            std::string::npos);
  EXPECT_EQ(parse_next_cursor(next.value()),
            fleet.session(a)->telemetry().recorder().total_recorded());

  // Cursorless polls keep the legacy tail semantics (overlap allowed) and
  // now carry the resume cursor too.
  auto tail = http_get_local(console.http_port(), base + "?n=4");
  ASSERT_TRUE(tail.ok());
  EXPECT_NE(tail.value().find("\"next_cursor\":"), std::string::npos);
  console.stop();
}

/// Reads the raw SSE byte stream until `want_payload_bytes` of flight
/// data lines have been reassembled; returns the reassembled JSONL.
/// Fails the test on stall, stream error, or any "dropped" frame.
std::string collect_sse_flight(net::TcpStream& conn, std::size_t want_payload_bytes) {
  std::string raw;
  std::string payload;
  std::size_t scanned = 0;  // frames before this offset are consumed
  bool headers_done = false;
  std::uint8_t chunk[4096];
  while (payload.size() < want_payload_bytes) {
    const long n = conn.read_some(chunk, sizeof(chunk), 5000);
    EXPECT_GT(n, 0) << "SSE stream stalled at " << payload.size() << "/"
                    << want_payload_bytes << " bytes";
    if (n <= 0) break;
    raw.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
    if (!headers_done) {
      const std::size_t end = raw.find("\r\n\r\n");
      if (end == std::string::npos) continue;
      EXPECT_NE(raw.find("Content-Type: text/event-stream"), std::string::npos);
      scanned = end + 4;
      headers_done = true;
    }
    for (;;) {  // consume complete frames (blank-line terminated)
      const std::size_t frame_end = raw.find("\n\n", scanned);
      if (frame_end == std::string::npos) break;
      const std::string_view frame =
          std::string_view{raw}.substr(scanned, frame_end - scanned);
      scanned = frame_end + 2;
      EXPECT_EQ(frame.find("event: dropped"), std::string_view::npos)
          << "subscriber lagged past the ring";
      const std::size_t data_at = frame.find("data: ");
      if (data_at == std::string_view::npos) continue;
      payload.append(frame.substr(data_at + 6));
      payload.push_back('\n');
    }
  }
  return payload;
}

/// The acceptance gate of the streaming plane: under a stepping fleet at
/// `threads` shards with concurrent console traffic on both planes, the
/// SSE-streamed flight events reassemble to the exact bytes of the polled
/// JSONL export.
void expect_sse_matches_polled_export(std::size_t threads,
                                      const ConsoleFixture& f,
                                      std::uint64_t drbg_seed) {
  FleetServiceConfig config;
  config.threads = threads;
  config.fleet_seed = 404;
  FleetService fleet{config};
  const SessionId a = add_session(fleet, 0);
  add_session(fleet, 1);

  ConsoleService console{fleet, f.console_id, f.trust, drbg_seed};
  ASSERT_TRUE(console.start().ok());

  // Subscribe before any stepping so cursor 0 sees every event live.
  net::TcpStream sub = net::TcpStream::connect_local(console.http_port());
  ASSERT_TRUE(sub.valid());
  ASSERT_TRUE(sub.write_all(std::string_view{
      "GET /stream/flight/" + std::to_string(a) +
      "?cursor=0 HTTP/1.1\r\nHost: x\r\n\r\n"}, 2000));

  // Concurrent console traffic on both planes while the fleet steps.
  std::atomic<bool> done{false};
  std::thread poller{[&] {
    crypto::Drbg client_drbg{drbg_seed + 1, "poller"};
    auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                         f.trust, client_drbg);
    EXPECT_TRUE(client.ok());
    while (!done.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(http_get_local(console.http_port(), "/sessions").ok());
      EXPECT_TRUE(http_get_local(console.http_port(), "/ids").ok());
      if (client.ok()) EXPECT_TRUE(client.value().call("ping").ok());
    }
  }};
  for (int step = 0; step < 30; ++step) fleet.step_all(1);
  done.store(true, std::memory_order_relaxed);
  poller.join();

  const std::string expected =
      fleet.session(a)->telemetry().recorder().to_jsonl();
  ASSERT_FALSE(expected.empty());
  const std::string streamed = collect_sse_flight(sub, expected.size());
  EXPECT_EQ(streamed, expected)
      << "streamed flight payload diverged from the polled export at threads="
      << threads;
  console.stop();
}

TEST(ConsoleStream, SseFlightPayloadMatchesPolledExportAcrossThreadCounts) {
  ConsoleFixture f;
  std::uint64_t drbg_seed = 200;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    expect_sse_matches_polled_export(threads, f, drbg_seed);
    drbg_seed += 10;
  }
}

TEST(ConsoleStream, MetricsStreamPushesSessionsAndIdsFrames) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  add_session(fleet, 0);
  fleet.step_all(2);
  ConsoleService console{fleet, f.console_id, f.trust, 42};
  ASSERT_TRUE(console.start().ok());

  net::TcpStream sub = net::TcpStream::connect_local(console.http_port());
  ASSERT_TRUE(sub.valid());
  ASSERT_TRUE(sub.write_all(std::string_view{
      "GET /stream/metrics HTTP/1.1\r\nHost: x\r\n\r\n"}, 2000));
  std::string got;
  std::uint8_t chunk[4096];
  while (got.find("event: sessions") == std::string::npos ||
         got.find("event: ids") == std::string::npos) {
    const long n = sub.read_some(chunk, sizeof(chunk), 2000);
    ASSERT_GT(n, 0) << "metrics stream stalled";
    got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  EXPECT_NE(got.find("\"session_count\":1"), std::string::npos);
  EXPECT_NE(got.find("\"sensor\":{\"alerts_total\":"), std::string::npos);
  console.stop();
}

// --- control-session rotation ----------------------------------------------

TEST(ConsoleControl, RotationForcesRehandshakeAfterNCommands) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  add_session(fleet, 0);
  ConsoleConfig config;
  config.rotate_after_commands = 3;
  config.io_timeout_ms = 500;  // keep the post-rotation failing call quick
  ConsoleService console{fleet, f.console_id, f.trust, 43, config};
  ASSERT_TRUE(console.start().ok());

  crypto::Drbg client_drbg{51, "operator"};
  auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                       f.trust, client_drbg);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    auto pong = client.value().call("ping");
    ASSERT_TRUE(pong.ok()) << "command " << i << ": " << pong.error().to_string();
  }
  // The 3rd response was the last on this session: the console rotated.
  EXPECT_FALSE(client.value().call("ping").ok());
  EXPECT_EQ(console.control_rotations(), 1u);

  // A re-handshake gets a fresh session and works immediately.
  auto again = ConsoleClient::connect(console.control_port(), f.operator_id,
                                      f.trust, client_drbg);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().call("ping").ok());
  EXPECT_EQ(console.control_sessions_established(), 2u);
}

// --- control plane as IDS sensor -------------------------------------------

TEST(ConsoleSensor, ScriptedControlPlaneAttackRaisesAlerts) {
  ConsoleFixture f;
  FleetService fleet = ConsoleFixture::make_fleet();
  add_session(fleet, 0);
  ConsoleConfig config;
  config.io_timeout_ms = 500;
  config.sensor.control_bruteforce_threshold = 3;
  config.sensor.control_replay_threshold = 4;
  config.sensor.control_flood_threshold = 5;
  ConsoleService console{fleet, f.console_id, f.trust, 44, config};
  ASSERT_TRUE(console.start().ok());

  // Phase 1 — handshake bruteforce: garbage first flights, each one a
  // failed handshake. The close (EOF on our side) sequences us with the
  // server's sensor update.
  for (int i = 0; i < 3; ++i) {
    net::TcpStream probe = net::TcpStream::connect_local(console.control_port());
    ASSERT_TRUE(probe.valid());
    const core::Bytes garbage = core::from_string("not a handshake");
    ASSERT_TRUE(net::write_frame(probe, garbage, 500));
    std::uint8_t sink[64];
    while (probe.read_some(sink, sizeof(sink), 500) > 0) {
    }
  }
  EXPECT_EQ(console.sensor_alert_count("control-bruteforce"), 1u);

  // Phase 2 — replay burst: an authenticated session spraying rejects.
  crypto::Drbg client_drbg{52, "operator"};
  auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                       f.trust, client_drbg);
  ASSERT_TRUE(client.ok());
  crypto::Drbg fuzz{53, "fuzz"};
  for (int i = 0; i < 4; ++i) {
    secure::Record forged;
    forged.sequence = 2000 + static_cast<std::uint64_t>(i);
    forged.ciphertext = fuzz.generate(48);
    ASSERT_TRUE(client.value().send_raw_frame(forged.encode()));
  }
  // A genuine ping syncs with the server loop (all rejects processed).
  ASSERT_TRUE(client.value().call("ping").ok());
  EXPECT_EQ(console.sensor_alert_count("control-replay-burst"), 1u);

  // Phase 3 — command flood: hammer dispatches past the rate threshold.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.value().call("ping").ok());
  }
  EXPECT_GE(console.sensor_alert_count("control-flood"), 1u);
  EXPECT_GE(console.sensor_total_alerts(), 3u);

  // The /ids endpoint serves the same picture to observers.
  auto ids = http_get_local(console.http_port(), "/ids");
  ASSERT_TRUE(ids.ok());
  EXPECT_NE(ids.value().find("\"control-bruteforce\":1"), std::string::npos);
  EXPECT_NE(ids.value().find("\"control-replay-burst\":1"), std::string::npos);
  EXPECT_NE(ids.value().find("\"rotations\":0"), std::string::npos);
}

// --- determinism + TSan workload -------------------------------------------

std::map<std::uint64_t, std::string> run_with_console(std::size_t threads,
                                                      const ConsoleFixture& f,
                                                      std::uint64_t drbg_seed) {
  FleetServiceConfig config;
  config.threads = threads;
  config.fleet_seed = 404;
  FleetService fleet{config};
  std::map<std::uint64_t, SessionId> ids;
  for (std::uint64_t key = 0; key < 4; ++key) ids[key] = add_session(fleet, key);

  ConsoleService console{fleet, f.console_id, f.trust, drbg_seed};
  EXPECT_TRUE(console.start().ok());

  // Console clients hammer both planes while the driver steps: HTTP
  // snapshots and authenticated pings race against step_all batches, and
  // TSan checks the interleavings. Nothing here mutates sim input, so the
  // exports must stay bit-identical to a console-less serial run.
  std::atomic<bool> done{false};
  std::thread poller{[&] {
    crypto::Drbg client_drbg{drbg_seed + 1, "poller"};
    auto client = ConsoleClient::connect(console.control_port(), f.operator_id,
                                         f.trust, client_drbg);
    EXPECT_TRUE(client.ok());
    while (!done.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(http_get_local(console.http_port(), "/metrics").ok());
      EXPECT_TRUE(http_get_local(console.http_port(), "/sessions").ok());
      if (client.ok()) EXPECT_TRUE(client.value().call("ping").ok());
    }
  }};
  for (int step = 0; step < 30; ++step) fleet.step_all(1);
  done.store(true, std::memory_order_relaxed);
  poller.join();
  console.stop();

  std::map<std::uint64_t, std::string> exports;
  for (const auto& [key, id] : ids) exports[key] = fleet.export_session_json(id);
  return exports;
}

TEST(ConsoleParallel, ExportsBitIdenticalWithConsoleAttached) {
  ConsoleFixture f;

  // Reference: no console, serial service.
  std::map<std::uint64_t, std::string> reference;
  {
    FleetServiceConfig config;
    config.fleet_seed = 404;
    FleetService fleet{config};
    std::map<std::uint64_t, SessionId> ids;
    for (std::uint64_t key = 0; key < 4; ++key) ids[key] = add_session(fleet, key);
    fleet.step_all(30);
    for (const auto& [key, id] : ids) {
      reference[key] = fleet.export_session_json(id);
    }
  }
  ASSERT_EQ(reference.size(), 4u);

  std::uint64_t drbg_seed = 100;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto exports = run_with_console(threads, f, drbg_seed);
    drbg_seed += 10;
    ASSERT_EQ(exports.size(), reference.size());
    for (const auto& [key, json] : exports) {
      EXPECT_EQ(json, reference.at(key))
          << "session key " << key << " diverged at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace agrarsec::service
