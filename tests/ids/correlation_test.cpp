#include <gtest/gtest.h>

#include "ids/correlation.h"

namespace agrarsec::ids {
namespace {

Alert alert(core::SimTime time, const std::string& rule, std::uint64_t subject,
            AlertSeverity severity = AlertSeverity::kWarning) {
  Alert a;
  a.id = AlertId{static_cast<std::uint64_t>(time)};
  a.time = time;
  a.rule = rule;
  a.subject = subject;
  a.severity = severity;
  return a;
}

TEST(Correlator, SingleAlertOneIncident) {
  AlertCorrelator c;
  c.ingest(alert(100, "replay", 7));
  ASSERT_EQ(c.incidents().size(), 1u);
  EXPECT_EQ(c.incidents()[0].alert_count, 1u);
  EXPECT_TRUE(c.incidents()[0].rules.contains("replay"));
  EXPECT_TRUE(c.incidents()[0].subjects.contains(7u));
}

TEST(Correlator, BurstGroupsByRule) {
  AlertCorrelator c;
  for (int i = 0; i < 500; ++i) {
    c.ingest(alert(i * 10, "malformed", 0));
  }
  EXPECT_EQ(c.incidents().size(), 1u);
  EXPECT_EQ(c.incidents()[0].alert_count, 500u);
}

TEST(Correlator, SameSubjectDifferentRulesGroup) {
  AlertCorrelator c;
  c.ingest(alert(0, "replay", 7));
  c.ingest(alert(1000, "spoofed-position", 7));
  c.ingest(alert(2000, "unauthorized-estop", 7, AlertSeverity::kCritical));
  ASSERT_EQ(c.incidents().size(), 1u);
  EXPECT_EQ(c.incidents()[0].rules.size(), 3u);
  EXPECT_EQ(c.incidents()[0].max_severity, AlertSeverity::kCritical);
}

TEST(Correlator, UnrelatedAlertsSeparateIncidents) {
  AlertCorrelator c;
  c.ingest(alert(0, "replay", 7));
  c.ingest(alert(1000, "flood", 9));  // different rule AND subject
  EXPECT_EQ(c.incidents().size(), 2u);
}

TEST(Correlator, GapTimeoutSplitsIncidents) {
  CorrelatorConfig config;
  config.gap_timeout = 10 * core::kSecond;
  AlertCorrelator c{config};
  c.ingest(alert(0, "replay", 7));
  c.ingest(alert(60 * core::kSecond, "replay", 7));  // beyond the gap
  EXPECT_EQ(c.incidents().size(), 2u);
}

TEST(Correlator, TickClosesQuietIncidents) {
  CorrelatorConfig config;
  config.gap_timeout = 10 * core::kSecond;
  AlertCorrelator c{config};
  c.ingest(alert(0, "replay", 7));
  EXPECT_EQ(c.open_count(), 1u);
  c.tick(5 * core::kSecond);
  EXPECT_EQ(c.open_count(), 1u);
  c.tick(20 * core::kSecond);
  EXPECT_EQ(c.open_count(), 0u);
  EXPECT_EQ(c.closed_count(), 1u);
}

TEST(Correlator, ClosedIncidentNotReused) {
  CorrelatorConfig config;
  config.gap_timeout = 10 * core::kSecond;
  AlertCorrelator c{config};
  c.ingest(alert(0, "replay", 7));
  c.tick(20 * core::kSecond);
  c.ingest(alert(21 * core::kSecond, "replay", 7));
  EXPECT_EQ(c.incidents().size(), 2u);
}

TEST(Correlator, SubjectZeroDoesNotLinkIncidents) {
  // Aggregate (subject-less) alerts only link by rule.
  AlertCorrelator c;
  c.ingest(alert(0, "rate-anomaly", 0));
  c.ingest(alert(1000, "rate-shift", 0));
  EXPECT_EQ(c.incidents().size(), 2u);
}

TEST(Correlator, DurationSpansAlerts) {
  AlertCorrelator c;
  c.ingest(alert(1000, "flood", 9));
  c.ingest(alert(9000, "flood", 9));
  ASSERT_EQ(c.incidents().size(), 1u);
  EXPECT_EQ(c.incidents()[0].duration(), 8000);
}

TEST(Correlator, SummaryContainsEssentials) {
  AlertCorrelator c;
  c.ingest(alert(0, "replay", 7, AlertSeverity::kCritical));
  c.ingest(alert(1000, "replay", 7));
  const std::string s = AlertCorrelator::summarize(c.incidents()[0]);
  EXPECT_NE(s.find("x2"), std::string::npos);
  EXPECT_NE(s.find("replay"), std::string::npos);
  EXPECT_NE(s.find("critical"), std::string::npos);
}

}  // namespace
}  // namespace agrarsec::ids
