// IDS rule engine and anomaly detectors.
#include <gtest/gtest.h>

#include "ids/anomaly.h"
#include "ids/ids.h"

namespace agrarsec::ids {
namespace {

net::Frame frame_with(net::Message message) {
  net::Frame f;
  f.src = NodeId{message.sender};
  f.payload = message.encode();
  return f;
}

net::Message telemetry(std::uint64_t sender, std::uint64_t seq, core::SimTime ts,
                       double x, double y) {
  net::Message m;
  m.type = net::MessageType::kTelemetry;
  m.sender = sender;
  m.sequence = seq;
  m.timestamp = ts;
  m.body = net::TelemetryBody{x, y, 0, 2.0}.encode();
  return m;
}

TEST(Ids, UnknownSenderFlagged) {
  IntrusionDetectionSystem ids;
  ids.observe(frame_with(telemetry(99, 1, 0, 0, 0)), 0);
  EXPECT_EQ(ids.alert_count("unknown-sender"), 1u);
}

TEST(Ids, RegisteredSenderClean) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  ids.observe(frame_with(telemetry(7, 1, 0, 0, 0)), 0);
  EXPECT_EQ(ids.alert_count("unknown-sender"), 0u);
}

TEST(Ids, ReplayDetectedOnSequenceRegression) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  ids.observe(frame_with(telemetry(7, 5, 0, 0, 0)), 0);
  ids.observe(frame_with(telemetry(7, 6, 100, 0.2, 0)), 100);
  ids.observe(frame_with(telemetry(7, 5, 200, 0.2, 0)), 200);  // replayed
  EXPECT_EQ(ids.alert_count("replay"), 1u);
}

TEST(Ids, IncreasingSequencesClean) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  for (std::uint64_t s = 1; s <= 20; ++s) {
    ids.observe(frame_with(telemetry(7, s, s * 100, 0.01 * s, 0)),
                static_cast<core::SimTime>(s * 100));
  }
  EXPECT_EQ(ids.alert_count("replay"), 0u);
}

// --- control-plane sensor family (observe_control) -------------------------

TEST(IdsControlPlane, BruteforceStreakRaisesOnceAtThreshold) {
  IdsConfig config;
  config.control_bruteforce_threshold = 3;
  IntrusionDetectionSystem ids{config};
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 0, 42);
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 10, 42);
  EXPECT_EQ(ids.alert_count("control-bruteforce"), 0u);
  ids.observe_control(ControlPlaneEvent::kAuthzDenied, 20, 42);  // denials count too
  EXPECT_EQ(ids.alert_count("control-bruteforce"), 1u);
  // The streak resets after raising: two more failures stay quiet.
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 30, 42);
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 40, 42);
  EXPECT_EQ(ids.alert_count("control-bruteforce"), 1u);
}

TEST(IdsControlPlane, GenuineHandshakeResetsBruteforceStreak) {
  IdsConfig config;
  config.control_bruteforce_threshold = 3;
  IntrusionDetectionSystem ids{config};
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 0);
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 10);
  ids.observe_control(ControlPlaneEvent::kHandshakeOk, 20);  // operator got in
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 30);
  ids.observe_control(ControlPlaneEvent::kHandshakeFailed, 40);
  EXPECT_EQ(ids.alert_count("control-bruteforce"), 0u);
}

TEST(IdsControlPlane, ReplayBurstCountsRejectsBetweenGenuineRecords) {
  IdsConfig config;
  config.control_replay_threshold = 4;
  IntrusionDetectionSystem ids{config};
  for (int i = 0; i < 3; ++i) {
    ids.observe_control(ControlPlaneEvent::kRecordRejected, i * 10);
  }
  ids.observe_control(ControlPlaneEvent::kRecordAccepted, 30);  // streak broken
  for (int i = 0; i < 3; ++i) {
    ids.observe_control(ControlPlaneEvent::kRecordRejected, 40 + i * 10);
  }
  EXPECT_EQ(ids.alert_count("control-replay-burst"), 0u);
  ids.observe_control(ControlPlaneEvent::kRecordRejected, 70);  // 4th in a row
  EXPECT_EQ(ids.alert_count("control-replay-burst"), 1u);
}

TEST(IdsControlPlane, CommandFloodUsesRateWindow) {
  IdsConfig config;
  config.control_flood_threshold = 5;
  config.control_flood_window = 1000;
  IntrusionDetectionSystem ids{config};
  // 5 commands inside one window: at the threshold, not above — quiet.
  for (core::SimTime t = 0; t < 500; t += 100) {
    ids.observe_control(ControlPlaneEvent::kCommandDispatched, t);
  }
  EXPECT_EQ(ids.alert_count("control-flood"), 0u);
  ids.observe_control(ControlPlaneEvent::kCommandDispatched, 500);
  EXPECT_EQ(ids.alert_count("control-flood"), 1u);
  // The same pacing a full window later is fine again once the burst ages out.
  for (core::SimTime t = 5000; t < 5500; t += 100) {
    ids.observe_control(ControlPlaneEvent::kCommandDispatched, t);
  }
  EXPECT_EQ(ids.alert_count("control-flood"), 1u);
}

TEST(Ids, StaleTimestampFlagged) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  ids.observe(frame_with(telemetry(7, 1, 0, 0, 0)), 60 * core::kSecond);
  EXPECT_EQ(ids.alert_count("stale-timestamp"), 1u);
}

TEST(Ids, TeleportingTelemetryFlagged) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  ids.observe(frame_with(telemetry(7, 1, 0, 0, 0)), 0);
  // 500 m in 1 s >> plausible machine speed.
  ids.observe(frame_with(telemetry(7, 2, core::kSecond, 500, 0)), core::kSecond);
  EXPECT_EQ(ids.alert_count("spoofed-position"), 1u);
}

TEST(Ids, PlausibleMotionClean) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  for (int i = 0; i < 20; ++i) {
    // 2 m/s — a forwarder's crawl.
    ids.observe(frame_with(telemetry(7, static_cast<std::uint64_t>(i + 1),
                                     i * core::kSecond, 2.0 * i, 0)),
                i * core::kSecond);
  }
  EXPECT_EQ(ids.alert_count("spoofed-position"), 0u);
}

TEST(Ids, MalformedPayloadFlagged) {
  IntrusionDetectionSystem ids;
  net::Frame f;
  f.src = NodeId{7};
  f.payload = core::from_string("not a message");
  ids.observe(f, 0);
  EXPECT_EQ(ids.alert_count("malformed"), 1u);
}

TEST(Ids, MalformedTelemetryBodyFlagged) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  net::Message m;
  m.type = net::MessageType::kTelemetry;
  m.sender = 7;
  m.sequence = 1;
  m.body = core::from_string("bad");
  ids.observe(frame_with(m), 0);
  EXPECT_EQ(ids.alert_count("malformed"), 1u);
}

TEST(Ids, UnauthorizedEstopFlagged) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, /*may_estop=*/false);
  ids.register_node(8, /*may_estop=*/true);
  net::Message m;
  m.type = net::MessageType::kEstopCommand;
  m.sender = 7;
  m.sequence = 1;
  m.body = net::EstopBody{1, 0}.encode();
  ids.observe(frame_with(m), 0);
  EXPECT_EQ(ids.alert_count("unauthorized-estop"), 1u);

  m.sender = 8;
  ids.observe(frame_with(m), 10);
  EXPECT_EQ(ids.alert_count("unauthorized-estop"), 1u);  // authorized: no new alert
}

TEST(Ids, FloodDetected) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  for (int i = 0; i < 100; ++i) {
    ids.observe(frame_with(telemetry(7, static_cast<std::uint64_t>(i + 1), i * 5,
                                     0.001 * i, 0)),
                i * 5);
  }
  EXPECT_GT(ids.alert_count("flood"), 0u);
}

TEST(Ids, NormalRateNoFlood) {
  IntrusionDetectionSystem ids;
  ids.register_node(7, false);
  for (int i = 0; i < 100; ++i) {  // 10 Hz — normal telemetry
    ids.observe(frame_with(telemetry(7, static_cast<std::uint64_t>(i + 1), i * 100,
                                     0.01 * i, 0)),
                i * 100);
  }
  EXPECT_EQ(ids.alert_count("flood"), 0u);
}

TEST(Ids, AlertHandlerInvoked) {
  IntrusionDetectionSystem ids;
  int calls = 0;
  ids.set_alert_handler([&](const Alert& a) {
    ++calls;
    EXPECT_FALSE(a.rule.empty());
  });
  ids.observe(frame_with(telemetry(99, 1, 0, 0, 0)), 0);
  EXPECT_EQ(calls, 1);
}

TEST(Ids, SignaturesCanBeDisabled) {
  IdsConfig config;
  config.enable_signatures = false;
  IntrusionDetectionSystem ids{config};
  ids.observe(frame_with(telemetry(99, 1, 0, 0, 0)), 0);
  EXPECT_EQ(ids.total_alerts(), 0u);
}

TEST(Ids, RateAnomalyOnTrafficBurst) {
  IdsConfig config;
  config.enable_signatures = false;
  config.ewma_alpha = 0.2;
  config.ewma_k = 4.0;
  IntrusionDetectionSystem ids{config};
  ids.register_node(7, false);

  core::SimTime now = 0;
  // Baseline: 2 frames per tick for 100 ticks.
  for (int t = 0; t < 100; ++t) {
    for (int i = 0; i < 2; ++i) {
      ids.observe(frame_with(telemetry(7, static_cast<std::uint64_t>(t * 2 + i + 1),
                                       now, 0, 0)),
                  now);
    }
    ids.tick(now);
    now += 100;
  }
  EXPECT_EQ(ids.alert_count("rate-anomaly"), 0u);

  // Burst: 80 frames in one tick.
  for (int i = 0; i < 80; ++i) {
    ids.observe(frame_with(telemetry(7, 1000 + static_cast<std::uint64_t>(i), now, 0, 0)),
                now);
  }
  ids.tick(now);
  EXPECT_GE(ids.alert_count("rate-anomaly"), 1u);
}

TEST(Ewma, FlagsOutlierAfterWarmup) {
  EwmaDetector d{0.1, 4.0, 8};
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(d.update(10.0 + (i % 2)));
  EXPECT_TRUE(d.update(100.0));
}

TEST(Ewma, NoAlertsDuringWarmup) {
  EwmaDetector d{0.1, 4.0, 50};
  for (int i = 0; i < 49; ++i) {
    EXPECT_FALSE(d.update(i % 7 == 0 ? 100.0 : 1.0));
  }
}

TEST(Ewma, TracksShiftingBaseline) {
  EwmaDetector d{0.2, 6.0, 8};
  // Noisy baseline so the deviation band stays realistic.
  for (int i = 0; i < 50; ++i) (void)d.update(i % 2 == 0 ? 9.5 : 10.5);
  // Gradual ramp well inside the band: EWMA follows, no alert.
  bool alerted = false;
  for (double x = 10.0; x <= 20.0; x += 0.2) alerted |= d.update(x);
  EXPECT_FALSE(alerted);
  EXPECT_NEAR(d.mean(), 20.0, 2.0);
}

TEST(Ewma, RejectsBadParameters) {
  EXPECT_THROW(EwmaDetector(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(EwmaDetector(1.5, 1.0), std::invalid_argument);
  EXPECT_THROW(EwmaDetector(0.5, 0.0), std::invalid_argument);
}

TEST(Cusum, DetectsSustainedShift) {
  CusumDetector d{10.0, 1.0, 20.0};
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(d.update(10.0));
  // Shift of +3 over slack 1 accumulates 2/sample: alert within ~10.
  bool fired = false;
  for (int i = 0; i < 15 && !fired; ++i) fired = d.update(13.0);
  EXPECT_TRUE(fired);
}

TEST(Cusum, IgnoresShortSpike) {
  CusumDetector d{10.0, 1.0, 50.0};
  EXPECT_FALSE(d.update(30.0));  // single spike: 19 < 50
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(d.update(10.0));
  EXPECT_NEAR(d.statistic(), 0.0, 1e-9);
}

TEST(Cusum, ResetsAfterFiring) {
  CusumDetector d{0.0, 0.0, 10.0};
  EXPECT_TRUE(d.update(10.0));
  EXPECT_DOUBLE_EQ(d.statistic(), 0.0);
}

TEST(Cusum, RejectsBadThreshold) {
  EXPECT_THROW(CusumDetector(0, 0, 0), std::invalid_argument);
}

TEST(RateWindow, CountsWithinWindow) {
  RateWindow w{100, 10};  // 1-second window
  w.add(0);
  w.add(50);
  w.add(500);
  EXPECT_EQ(w.count(500), 3u);
}

TEST(RateWindow, ExpiresOldBuckets) {
  RateWindow w{100, 10};
  w.add(0);
  w.add(50);
  w.add(2000);
  EXPECT_EQ(w.count(2000), 1u);
}

TEST(RateWindow, EmptyWindowZero) {
  RateWindow w{100, 10};
  EXPECT_EQ(w.count(0), 0u);
  EXPECT_EQ(w.count(100000), 0u);
}

TEST(RateWindow, RejectsBadParameters) {
  EXPECT_THROW(RateWindow(0, 10), std::invalid_argument);
  EXPECT_THROW(RateWindow(100, 0), std::invalid_argument);
}

TEST(RateWindow, HandlesBurstThenSilence) {
  RateWindow w{100, 10};
  for (int i = 0; i < 50; ++i) w.add(i * 10);  // 50 events in 0.5 s
  EXPECT_EQ(w.count(500), 50u);
  EXPECT_EQ(w.count(5000), 0u);  // long silence: all expired
}

}  // namespace
}  // namespace agrarsec::ids
