// Embedded HTTP server: strict parser limits, pipelining, and the
// transport loop the operations console rides on. The parser tests are
// pure (no sockets); the server tests run a real loopback listener on an
// ephemeral port.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "net/http.h"
#include "net/stream.h"

namespace agrarsec::net {
namespace {

using Status = HttpRequestParser::Status;

HttpRequest parse_one(HttpRequestParser& parser, std::string_view bytes) {
  parser.append(bytes);
  HttpRequest request;
  EXPECT_EQ(parser.poll(request), Status::kComplete);
  return request;
}

TEST(HttpParser, ParsesSimpleGet) {
  HttpRequestParser parser;
  const HttpRequest r = parse_one(
      parser,
      "GET /flight/3?n=16&fmt=json HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Accept: application/json\r\n\r\n");
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/flight/3?n=16&fmt=json");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.path(), "/flight/3");
  EXPECT_EQ(r.query_param("n"), "16");
  EXPECT_EQ(r.query_param("fmt"), "json");
  EXPECT_EQ(r.query_param("absent"), "");
  EXPECT_EQ(r.header("host"), "127.0.0.1");  // case-insensitive
  EXPECT_EQ(r.header("ACCEPT"), "application/json");
  EXPECT_TRUE(r.body.empty());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpParser, TruncatedRequestLineNeedsMoreThenCompletes) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("GET /met");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);
  parser.append("rics HTTP/1.1\r\nHo");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);
  parser.append("st: x\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.target, "/metrics");
}

TEST(HttpParser, OversizedRequestLineRejectedEvenWithoutTerminator) {
  HttpRequestParser parser;
  HttpRequest request;
  // No CRLF yet, but the line already exceeds the limit: a peer cannot
  // force unbounded buffering by never terminating the request line.
  parser.append("GET /" + std::string(HttpLimits{}.max_request_line, 'a'));
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(HttpParser, TooManyHeadersRejected) {
  HttpLimits limits;
  limits.max_header_count = 4;
  HttpRequestParser parser{limits};
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) {
    raw += "X-H" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  parser.append(raw);
  HttpRequest request;
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OversizedHeaderBlockRejectedBeforeTerminator) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpRequestParser parser{limits};
  HttpRequest request;
  parser.append("GET / HTTP/1.1\r\nX-Pad: " + std::string(128, 'p'));
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, UnknownMethodRejectedWith405) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("DELETE /sessions HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 405);
}

TEST(HttpParser, NonTokenMethodRejectedWith400) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("G@T / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, BadVersionAndAbsoluteFormRejected) {
  {
    HttpRequestParser parser;
    HttpRequest request;
    parser.append("GET / HTTP/2.0\r\n\r\n");
    EXPECT_EQ(parser.poll(request), Status::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
  {
    HttpRequestParser parser;
    HttpRequest request;
    parser.append("GET http://evil/ HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.poll(request), Status::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
}

TEST(HttpParser, TransferEncodingRejectedWith501) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParser, BodyViaContentLength) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);  // body incomplete
  parser.append("lo");
  EXPECT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.body, "hello");
}

TEST(HttpParser, OversizedBodyRejectedWith413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser{limits};
  HttpRequest request;
  parser.append("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, PipelinedRequestsConsumedOneAtATime) {
  HttpRequestParser parser;
  parser.append(
      "GET /first HTTP/1.1\r\n\r\n"
      "GET /second HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.target, "/first");
  EXPECT_GT(parser.buffered(), 0u);  // second request still queued
  ASSERT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.target, "/second");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);
}

TEST(HttpResponseTest, SerializeCarriesLengthAndConnection) {
  HttpResponse ok = HttpResponse::json("{\"a\":1}");
  const std::string wire = ok.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive"), std::string::npos);

  const HttpResponse err = HttpResponse::error(404, "not_found", "nope");
  EXPECT_TRUE(err.close_connection);
  EXPECT_NE(err.serialize().find("Connection: close"), std::string::npos);
}

// --- server over a real loopback socket ------------------------------------

/// Reads until the peer closes or `timeout_ms` passes; returns all bytes.
std::string drain(TcpStream& stream, int timeout_ms = 2000) {
  std::string out;
  std::uint8_t chunk[1024];
  for (;;) {
    const long n = stream.read_some(chunk, sizeof(chunk), timeout_ms);
    if (n <= 0) break;
    out.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  return out;
}

TEST(HttpServerTest, ServesPipelinedKeepAliveRequests) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest& request) {
    return HttpResponse::json("{\"path\":\"" + std::string(request.path()) + "\"}");
  }).ok());
  ASSERT_NE(server.port(), 0);

  TcpStream conn = TcpStream::connect_local(server.port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.write_all(std::string_view{
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"}, 2000));
  // The second response closes the connection (HTTP/1.1 keep-alive by
  // default; the server loop exits when a handler response says close) —
  // except our handler never sets close, so rely on drain timeout being
  // bounded by reading both bodies explicitly.
  std::string got;
  std::uint8_t chunk[1024];
  while (got.find("{\"path\":\"/b\"}") == std::string::npos) {
    const long n = conn.read_some(chunk, sizeof(chunk), 2000);
    ASSERT_GT(n, 0) << "server stalled before both responses arrived";
    got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  EXPECT_NE(got.find("{\"path\":\"/a\"}"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, AnswersMalformedRequestWithErrorAndCloses) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest&) {
    return HttpResponse::json("{}");
  }).ok());

  TcpStream conn = TcpStream::connect_local(server.port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.write_all(std::string_view{"PATCH / HTTP/1.1\r\n\r\n"}, 2000));
  const std::string got = drain(conn);
  EXPECT_NE(got.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_EQ(server.protocol_errors(), 1u);
  server.stop();
}

TEST(HttpServerTest, HeadStripsBodyButKeepsLength) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest&) {
    return HttpResponse::json("{\"k\":123}");
  }).ok());

  TcpStream conn = TcpStream::connect_local(server.port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.write_all(
      std::string_view{"HEAD /metrics HTTP/1.0\r\n\r\n"}, 2000));
  const std::string got = drain(conn);  // HTTP/1.0 forces close -> EOF
  EXPECT_NE(got.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_EQ(got.find("{\"k\":123}"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace agrarsec::net
