// Embedded HTTP server: strict parser limits, pipelining, and the
// transport loop the operations console rides on. The parser tests are
// pure (no sockets); the server tests run a real loopback listener on an
// ephemeral port.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/http.h"
#include "net/stream.h"

namespace agrarsec::net {
namespace {

using Status = HttpRequestParser::Status;

HttpRequest parse_one(HttpRequestParser& parser, std::string_view bytes) {
  parser.append(bytes);
  HttpRequest request;
  EXPECT_EQ(parser.poll(request), Status::kComplete);
  return request;
}

TEST(HttpParser, ParsesSimpleGet) {
  HttpRequestParser parser;
  const HttpRequest r = parse_one(
      parser,
      "GET /flight/3?n=16&fmt=json HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Accept: application/json\r\n\r\n");
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/flight/3?n=16&fmt=json");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.path(), "/flight/3");
  EXPECT_EQ(r.query_param("n"), "16");
  EXPECT_EQ(r.query_param("fmt"), "json");
  EXPECT_EQ(r.query_param("absent"), "");
  EXPECT_EQ(r.header("host"), "127.0.0.1");  // case-insensitive
  EXPECT_EQ(r.header("ACCEPT"), "application/json");
  EXPECT_TRUE(r.body.empty());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpParser, TruncatedRequestLineNeedsMoreThenCompletes) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("GET /met");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);
  parser.append("rics HTTP/1.1\r\nHo");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);
  parser.append("st: x\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.target, "/metrics");
}

TEST(HttpParser, OversizedRequestLineRejectedEvenWithoutTerminator) {
  HttpRequestParser parser;
  HttpRequest request;
  // No CRLF yet, but the line already exceeds the limit: a peer cannot
  // force unbounded buffering by never terminating the request line.
  parser.append("GET /" + std::string(HttpLimits{}.max_request_line, 'a'));
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 414);
}

TEST(HttpParser, TooManyHeadersRejected) {
  HttpLimits limits;
  limits.max_header_count = 4;
  HttpRequestParser parser{limits};
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 5; ++i) {
    raw += "X-H" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  parser.append(raw);
  HttpRequest request;
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OversizedHeaderBlockRejectedBeforeTerminator) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpRequestParser parser{limits};
  HttpRequest request;
  parser.append("GET / HTTP/1.1\r\nX-Pad: " + std::string(128, 'p'));
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, UnknownMethodRejectedWith405) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("DELETE /sessions HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 405);
}

TEST(HttpParser, NonTokenMethodRejectedWith400) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("G@T / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, BadVersionAndAbsoluteFormRejected) {
  {
    HttpRequestParser parser;
    HttpRequest request;
    parser.append("GET / HTTP/2.0\r\n\r\n");
    EXPECT_EQ(parser.poll(request), Status::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
  {
    HttpRequestParser parser;
    HttpRequest request;
    parser.append("GET http://evil/ HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.poll(request), Status::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
}

TEST(HttpParser, TransferEncodingRejectedWith501) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParser, BodyViaContentLength) {
  HttpRequestParser parser;
  HttpRequest request;
  parser.append("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);  // body incomplete
  parser.append("lo");
  EXPECT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.body, "hello");
}

TEST(HttpParser, OversizedBodyRejectedWith413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser{limits};
  HttpRequest request;
  parser.append("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_EQ(parser.poll(request), Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, PipelinedRequestsConsumedOneAtATime) {
  HttpRequestParser parser;
  parser.append(
      "GET /first HTTP/1.1\r\n\r\n"
      "GET /second HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.target, "/first");
  EXPECT_GT(parser.buffered(), 0u);  // second request still queued
  ASSERT_EQ(parser.poll(request), Status::kComplete);
  EXPECT_EQ(request.target, "/second");
  EXPECT_EQ(parser.poll(request), Status::kNeedMore);
}

TEST(HttpResponseTest, SerializeCarriesLengthAndConnection) {
  HttpResponse ok = HttpResponse::json("{\"a\":1}");
  const std::string wire = ok.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive"), std::string::npos);

  const HttpResponse err = HttpResponse::error(404, "not_found", "nope");
  EXPECT_TRUE(err.close_connection);
  EXPECT_NE(err.serialize().find("Connection: close"), std::string::npos);
}

// --- server over a real loopback socket ------------------------------------

/// Reads until the peer closes or `timeout_ms` passes; returns all bytes.
std::string drain(TcpStream& stream, int timeout_ms = 2000) {
  std::string out;
  std::uint8_t chunk[1024];
  for (;;) {
    const long n = stream.read_some(chunk, sizeof(chunk), timeout_ms);
    if (n <= 0) break;
    out.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  return out;
}

TEST(HttpServerTest, ServesPipelinedKeepAliveRequests) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest& request) {
    return HttpResponse::json("{\"path\":\"" + std::string(request.path()) + "\"}");
  }).ok());
  ASSERT_NE(server.port(), 0);

  TcpStream conn = TcpStream::connect_local(server.port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.write_all(std::string_view{
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"}, 2000));
  // The second response closes the connection (HTTP/1.1 keep-alive by
  // default; the server loop exits when a handler response says close) —
  // except our handler never sets close, so rely on drain timeout being
  // bounded by reading both bodies explicitly.
  std::string got;
  std::uint8_t chunk[1024];
  while (got.find("{\"path\":\"/b\"}") == std::string::npos) {
    const long n = conn.read_some(chunk, sizeof(chunk), 2000);
    ASSERT_GT(n, 0) << "server stalled before both responses arrived";
    got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  EXPECT_NE(got.find("{\"path\":\"/a\"}"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, AnswersMalformedRequestWithErrorAndCloses) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest&) {
    return HttpResponse::json("{}");
  }).ok());

  TcpStream conn = TcpStream::connect_local(server.port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.write_all(std::string_view{"PATCH / HTTP/1.1\r\n\r\n"}, 2000));
  const std::string got = drain(conn);
  EXPECT_NE(got.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_EQ(server.protocol_errors(), 1u);
  server.stop();
}

// --- connection-torture suite: the concurrent poll loop under abuse --------

TEST(HttpServerTorture, ManyKeepAliveClientsServedConcurrently) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest& request) {
    return HttpResponse::json("{\"path\":\"" + std::string(request.path()) + "\"}");
  }).ok());

  constexpr int kClients = 8;
  std::vector<TcpStream> conns;
  conns.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    conns.push_back(TcpStream::connect_local(server.port()));
    ASSERT_TRUE(conns.back().valid());
  }
  // Two keep-alive rounds: every client writes before anyone reads, so a
  // serial-accept server would wedge here. Responses must arrive on all
  // connections without any of them closing.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kClients; ++i) {
      const std::string target = "/c" + std::to_string(i) + "r" + std::to_string(round);
      ASSERT_TRUE(conns[static_cast<std::size_t>(i)].write_all(
          std::string_view{"GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n"}, 2000));
    }
    for (int i = 0; i < kClients; ++i) {
      const std::string want =
          "{\"path\":\"/c" + std::to_string(i) + "r" + std::to_string(round) + "\"}";
      std::string got;
      std::uint8_t chunk[1024];
      while (got.find(want) == std::string::npos) {
        const long n = conns[static_cast<std::size_t>(i)].read_some(chunk, sizeof(chunk), 2000);
        ASSERT_GT(n, 0) << "client " << i << " round " << round << " stalled";
        got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
      }
    }
  }
  EXPECT_EQ(server.connections_accepted(), static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kClients * 2));
  server.stop();
}

TEST(HttpServerTorture, SlowLorisDoesNotBlockOthersAndGets408) {
  HttpServerConfig config;
  config.io_timeout_ms = 300;
  HttpServer server{config};
  ASSERT_TRUE(server.start([](const HttpRequest&) {
    return HttpResponse::json("{\"ok\":true}");
  }).ok());

  // The loris trickles a request that never completes...
  TcpStream loris = TcpStream::connect_local(server.port());
  ASSERT_TRUE(loris.valid());
  ASSERT_TRUE(loris.write_all(std::string_view{"GET /metr"}, 2000));

  // ...while a well-behaved client on another connection is served at
  // once — the partial request holds only its own connection hostage.
  TcpStream good = TcpStream::connect_local(server.port());
  ASSERT_TRUE(good.valid());
  ASSERT_TRUE(good.write_all(std::string_view{
      "GET /sessions HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"}, 2000));
  EXPECT_NE(drain(good).find("{\"ok\":true}"), std::string::npos);

  // Past the idle deadline the loris is answered 408 and cut.
  const std::string verdict = drain(loris, 3000);
  EXPECT_NE(verdict.find("HTTP/1.1 408"), std::string::npos);
  server.stop();
}

TEST(HttpServerTorture, OverLimitConnectionRejectedWithDeterministic503) {
  HttpServerConfig config;
  config.max_connections = 2;
  HttpServer server{config};
  ASSERT_TRUE(server.start([](const HttpRequest&) {
    return HttpResponse::json("{}");
  }).ok());

  TcpStream first = TcpStream::connect_local(server.port());
  TcpStream second = TcpStream::connect_local(server.port());
  ASSERT_TRUE(first.valid());
  ASSERT_TRUE(second.valid());
  // Round-trip a request on both so they are registered in the poll set
  // before the over-limit connection arrives.
  for (TcpStream* conn : {&first, &second}) {
    ASSERT_TRUE(conn->write_all(std::string_view{"GET / HTTP/1.1\r\nHost: x\r\n\r\n"}, 2000));
    std::string got;
    std::uint8_t chunk[256];
    while (got.find("{}") == std::string::npos) {
      const long n = conn->read_some(chunk, sizeof(chunk), 2000);
      ASSERT_GT(n, 0);
      got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
    }
  }

  TcpStream third = TcpStream::connect_local(server.port());
  ASSERT_TRUE(third.valid());
  const std::string got = drain(third);
  EXPECT_NE(got.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(got.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server.connections_rejected(), 1u);

  // The two in-limit connections are still live keep-alive connections.
  ASSERT_TRUE(first.write_all(std::string_view{"GET /again HTTP/1.1\r\nHost: x\r\n\r\n"}, 2000));
  std::string again;
  std::uint8_t chunk[256];
  while (again.find("{}") == std::string::npos) {
    const long n = first.read_some(chunk, sizeof(chunk), 2000);
    ASSERT_GT(n, 0);
    again.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  server.stop();
}

TEST(HttpServerTorture, SseStreamSurvivesMidStreamClientDisconnect) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest& request) {
    if (request.path() == "/stream") {
      auto counter = std::make_shared<int>(0);
      return HttpResponse::event_stream([counter](std::string& out) {
        out += "data: tick " + std::to_string((*counter)++) + "\n\n";
        return true;  // stream forever; only the client ends it
      });
    }
    return HttpResponse::json("{\"plain\":true}");
  }).ok());

  TcpStream sub = TcpStream::connect_local(server.port());
  ASSERT_TRUE(sub.valid());
  ASSERT_TRUE(sub.write_all(std::string_view{"GET /stream HTTP/1.1\r\nHost: x\r\n\r\n"}, 2000));
  std::string got;
  std::uint8_t chunk[1024];
  while (got.find("data: tick 2") == std::string::npos) {
    const long n = sub.read_some(chunk, sizeof(chunk), 2000);
    ASSERT_GT(n, 0) << "stream stalled before three events";
    got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  EXPECT_NE(got.find("Content-Type: text/event-stream"), std::string::npos);
  EXPECT_EQ(server.streams_opened(), 1u);

  // Abrupt disconnect mid-stream: the server must shed the connection and
  // keep serving. A fresh plain request proves neither crash nor wedge.
  sub = TcpStream{};  // close
  TcpStream probe = TcpStream::connect_local(server.port());
  ASSERT_TRUE(probe.valid());
  ASSERT_TRUE(probe.write_all(std::string_view{
      "GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"}, 2000));
  EXPECT_NE(drain(probe).find("{\"plain\":true}"), std::string::npos);
  server.stop();
}

TEST(HttpServerTorture, StalledSubscriberCutAtOutputCap) {
  HttpServerConfig config;
  config.max_outbuf_bytes = 4096;
  HttpServer server{config};
  ASSERT_TRUE(server.start([](const HttpRequest&) {
    return HttpResponse::event_stream([](std::string& out) {
      out.append(65536, 'x');  // far beyond the cap every tick
      return true;
    });
  }).ok());

  TcpStream sub = TcpStream::connect_local(server.port());
  ASSERT_TRUE(sub.valid());
  ASSERT_TRUE(sub.write_all(std::string_view{"GET /stream HTTP/1.1\r\nHost: x\r\n\r\n"}, 2000));
  // Never read: the socket buffer fills, the server-side outbuf hits the
  // cap, and the subscriber is cut instead of buffered without bound.
  std::string got;
  std::uint8_t chunk[4096];
  for (;;) {
    const long n = sub.read_some(chunk, sizeof(chunk), 5000);
    if (n <= 0) break;  // EOF: the server dropped us
    got.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
  EXPECT_EQ(server.streams_overrun(), 1u);
  server.stop();
}

TEST(HttpServerTest, HeadStripsBodyButKeepsLength) {
  HttpServer server;
  ASSERT_TRUE(server.start([](const HttpRequest&) {
    return HttpResponse::json("{\"k\":123}");
  }).ok());

  TcpStream conn = TcpStream::connect_local(server.port());
  ASSERT_TRUE(conn.valid());
  ASSERT_TRUE(conn.write_all(
      std::string_view{"HEAD /metrics HTTP/1.0\r\n\r\n"}, 2000));
  const std::string got = drain(conn);  // HTTP/1.0 forces close -> EOF
  EXPECT_NE(got.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_EQ(got.find("{\"k\":123}"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace agrarsec::net
