// Radio medium, message codecs and attacker primitives.
#include <gtest/gtest.h>

#include "net/attacker.h"
#include "net/message.h"
#include "net/radio.h"

namespace agrarsec::net {
namespace {

struct TwoNodes {
  core::Rng rng{123};
  RadioMedium medium{core::Rng{123}, perfect_config()};
  std::vector<Frame> received_a;
  std::vector<Frame> received_b;
  NodeId a{1};
  NodeId b{2};
  core::Vec2 pos_a{0, 0};
  core::Vec2 pos_b{100, 0};

  static RadioConfig perfect_config() {
    RadioConfig c;
    c.base_loss = 0.0;
    c.latency_jitter = 0;
    c.collision_probability = 1.0;  // deterministic collisions for tests
    return c;
  }

  TwoNodes() {
    medium.attach(a, [this] { return pos_a; },
                  [this](const Frame& f, core::SimTime) { received_a.push_back(f); });
    medium.attach(b, [this] { return pos_b; },
                  [this](const Frame& f, core::SimTime) { received_b.push_back(f); });
  }

  void pump(core::SimTime until) {
    for (core::SimTime t = 0; t <= until; t += 10) medium.step(t);
  }
};

TEST(Radio, DeliversUnicast) {
  TwoNodes net;
  Frame f;
  f.src = net.a;
  f.dst = net.b;
  f.payload = core::from_string("hello");
  net.medium.send(f, 0);
  net.pump(100);
  ASSERT_EQ(net.received_b.size(), 1u);
  EXPECT_EQ(net.received_b[0].payload, core::from_string("hello"));
  EXPECT_TRUE(net.received_a.empty());
}

TEST(Radio, BroadcastReachesAllOthers) {
  TwoNodes net;
  Frame f;
  f.src = net.a;
  f.dst = NodeId::invalid();
  net.medium.send(f, 0);
  net.pump(100);
  EXPECT_EQ(net.received_b.size(), 1u);
  EXPECT_TRUE(net.received_a.empty());  // no self-delivery
}

TEST(Radio, BroadcastCountsPrunedNodesAsOutOfRange) {
  // The grid-pruned broadcast fan-out must keep outcome accounting exact:
  // nodes skipped because they cannot be in range are still counted as
  // kOutOfRange, identically to judging each one.
  RadioMedium medium{core::Rng{5}, TwoNodes::perfect_config()};
  std::size_t delivered_cb = 0;
  const auto attach_at = [&](std::uint64_t id, core::Vec2 pos) {
    medium.attach(NodeId{id}, [pos] { return pos; },
                  [&](const Frame&, core::SimTime) { ++delivered_cb; });
  };
  attach_at(1, {0, 0});  // sender
  attach_at(2, {100, 0});          // in range
  attach_at(3, {400, 0});          // in range (max_range_m = 600)
  attach_at(4, {5000, 0});         // far: pruned by the grid
  attach_at(5, {0, 9000});         // far: pruned by the grid
  attach_at(6, {700, 0});          // neighbouring cell but beyond range

  Frame f;
  f.src = NodeId{1};
  f.dst = NodeId::invalid();
  medium.send(f, 0);
  for (core::SimTime t = 0; t <= 100; t += 10) medium.step(t);

  EXPECT_EQ(delivered_cb, 2u);
  EXPECT_EQ(medium.count(DeliveryOutcome::kDelivered), 2u);
  // All three unreachable nodes counted, whether individually judged
  // (node 6, in the 3x3 neighbourhood) or pruned in bulk (nodes 4, 5).
  EXPECT_EQ(medium.count(DeliveryOutcome::kOutOfRange), 3u);
}

TEST(Radio, BroadcastAfterDetachSkipsNode) {
  TwoNodes net;
  net.medium.detach(net.b);
  Frame f;
  f.src = net.a;
  f.dst = NodeId::invalid();
  net.medium.send(f, 0);
  net.pump(100);
  EXPECT_TRUE(net.received_b.empty());
  EXPECT_EQ(net.medium.count(DeliveryOutcome::kOutOfRange), 0u);
  EXPECT_EQ(net.medium.count(DeliveryOutcome::kDelivered), 0u);
}

TEST(Radio, DetachDuringBroadcastDeliverySkipsDetachedNode) {
  // Regression: the broadcast snapshot stored raw Endpoint pointers; a
  // receive callback detaching another node mid-fan-out left later
  // deliveries dereferencing a freed Endpoint (use-after-free under ASan).
  // The snapshot now carries ids and re-finds the endpoint at delivery.
  RadioMedium medium{core::Rng{9}, TwoNodes::perfect_config()};
  int received_b = 0;
  int received_c = 0;
  medium.attach(NodeId{1}, [] { return core::Vec2{0, 0}; },
                [](const Frame&, core::SimTime) {});
  // Node 2's handler rips node 3 out of the medium; the fan-out visits
  // ascending ids, so node 3's delivery happens after the detach.
  medium.attach(NodeId{2}, [] { return core::Vec2{50, 0}; },
                [&](const Frame&, core::SimTime) {
                  ++received_b;
                  medium.detach(NodeId{3});
                });
  medium.attach(NodeId{3}, [] { return core::Vec2{100, 0}; },
                [&](const Frame&, core::SimTime) { ++received_c; });

  Frame f;
  f.src = NodeId{1};
  f.dst = NodeId::invalid();
  medium.send(f, 0);
  for (core::SimTime t = 0; t <= 100; t += 10) medium.step(t);

  EXPECT_EQ(received_b, 1);
  EXPECT_EQ(received_c, 0);  // vanished mid-step: skipped, not delivered
  EXPECT_EQ(medium.count(DeliveryOutcome::kDelivered), 1u);
}

TEST(Radio, SelfDetachDuringReceiveIsSafe) {
  // A node may react to a frame by leaving the network (e.g. a de-auth
  // response); destroying its Endpoint must not free the std::function
  // currently executing.
  RadioMedium medium{core::Rng{9}, TwoNodes::perfect_config()};
  int received = 0;
  medium.attach(NodeId{1}, [] { return core::Vec2{0, 0}; },
                [](const Frame&, core::SimTime) {});
  medium.attach(NodeId{2}, [] { return core::Vec2{50, 0}; },
                [&](const Frame&, core::SimTime) {
                  ++received;
                  medium.detach(NodeId{2});
                });
  Frame f;
  f.src = NodeId{1};
  f.dst = NodeId{2};
  medium.send(f, 0);
  for (core::SimTime t = 0; t <= 100; t += 10) medium.step(t);
  EXPECT_EQ(received, 1);
}

TEST(Radio, OutOfRangeDropped) {
  TwoNodes net;
  net.pos_b = {10000, 0};
  Frame f;
  f.src = net.a;
  f.dst = net.b;
  net.medium.send(f, 0);
  net.pump(100);
  EXPECT_TRUE(net.received_b.empty());
  EXPECT_EQ(net.medium.count(DeliveryOutcome::kOutOfRange), 1u);
}

TEST(Radio, PathLossGrowsWithDistance) {
  RadioConfig config;
  config.base_loss = 0.05;
  config.latency_jitter = 0;

  auto loss_rate = [&](double distance) {
    RadioMedium medium{core::Rng{7}, config};
    core::Vec2 pa{0, 0}, pb{distance, 0};
    int received = 0;
    medium.attach(NodeId{1}, [&] { return pa; }, [](const Frame&, core::SimTime) {});
    medium.attach(NodeId{2}, [&] { return pb; },
                  [&](const Frame&, core::SimTime) { ++received; });
    constexpr int kFrames = 2000;
    for (int i = 0; i < kFrames; ++i) {
      Frame f;
      f.src = NodeId{1};
      f.dst = NodeId{2};
      medium.send(f, i * 10);
      medium.step(i * 10 + 9);
    }
    return 1.0 - static_cast<double>(received) / kFrames;
  };

  const double near = loss_rate(50);
  const double mid = loss_rate(300);
  const double far = loss_rate(550);
  EXPECT_LT(near, 0.10);
  EXPECT_GT(mid, near);
  EXPECT_GT(far, mid);
}

TEST(Radio, JammerKillsFramesInRadius) {
  TwoNodes net;
  Jammer j;
  j.position = {100, 0};  // on top of node b
  j.radius_m = 50;
  j.effectiveness = 1.0;
  j.active = true;
  net.medium.add_jammer(j);

  for (int i = 0; i < 20; ++i) {
    Frame f;
    f.src = net.a;
    f.dst = net.b;
    net.medium.send(f, i * 10);
  }
  net.pump(300);
  EXPECT_TRUE(net.received_b.empty());
  EXPECT_EQ(net.medium.count(DeliveryOutcome::kJammed), 20u);
}

TEST(Radio, JammerChannelSelectivity) {
  TwoNodes net;
  Jammer j;
  j.position = {100, 0};
  j.radius_m = 50;
  j.effectiveness = 1.0;
  j.channel = 5;
  j.active = true;
  net.medium.add_jammer(j);

  Frame on_5;
  on_5.src = net.a;
  on_5.dst = net.b;
  on_5.channel = 5;
  net.medium.send(on_5, 0);
  Frame on_3 = on_5;
  on_3.channel = 3;
  net.medium.send(on_3, 50);
  net.pump(200);
  ASSERT_EQ(net.received_b.size(), 1u);
  EXPECT_EQ(net.received_b[0].channel, 3u);
}

TEST(Radio, JammerCanBeDeactivated) {
  TwoNodes net;
  Jammer j;
  j.position = {100, 0};
  j.radius_m = 50;
  j.effectiveness = 1.0;
  j.active = true;
  const std::size_t idx = net.medium.add_jammer(j);

  Frame f;
  f.src = net.a;
  f.dst = net.b;
  net.medium.send(f, 0);
  net.pump(50);
  EXPECT_TRUE(net.received_b.empty());

  net.medium.set_jammer_active(idx, false);
  net.medium.send(f, 100);
  net.pump(200);
  EXPECT_EQ(net.received_b.size(), 1u);
}

TEST(Radio, DropRuleTargetsVictim) {
  TwoNodes net;
  net.medium.add_drop_rule(DropRule{net.b, 1.0, true});
  Frame f;
  f.src = net.a;
  f.dst = net.b;
  net.medium.send(f, 0);
  net.pump(100);
  EXPECT_TRUE(net.received_b.empty());
  EXPECT_EQ(net.medium.count(DeliveryOutcome::kDropped), 1u);
}

TEST(Radio, CollisionOnSameChannelCloseInTime) {
  TwoNodes net;
  // Third node transmitting simultaneously on the same channel.
  core::Vec2 pos_c{50, 50};
  net.medium.attach(NodeId{3}, [&] { return pos_c; },
                    [](const Frame&, core::SimTime) {});
  Frame f1;
  f1.src = net.a;
  f1.dst = net.b;
  Frame f2;
  f2.src = NodeId{3};
  f2.dst = net.b;
  net.medium.send(f1, 0);
  net.medium.send(f2, 1);  // within collision window
  net.pump(100);
  EXPECT_TRUE(net.received_b.empty());
  EXPECT_GE(net.medium.count(DeliveryOutcome::kCollision), 1u);
}

TEST(Radio, DueFrameNotBlockedByEarlierSendWithLaterDeadline) {
  // Regression: the queue was a FIFO deque popped only while the *front*
  // was due. A frame whose deliver_at lay in the future (here: sent with a
  // larger `now`) blocked every already-due frame queued behind it.
  TwoNodes net;
  Frame late;
  late.src = net.a;
  late.dst = net.b;
  late.payload = core::from_string("late");
  net.medium.send(late, 100);  // due at 102

  Frame early;
  early.src = net.a;
  early.dst = net.b;
  early.payload = core::from_string("early");
  net.medium.send(early, 0);  // due at 2, but queued *behind* `late`

  net.medium.step(5);
  ASSERT_EQ(net.received_b.size(), 1u);
  EXPECT_EQ(net.received_b[0].payload, core::from_string("early"));

  net.medium.step(200);
  ASSERT_EQ(net.received_b.size(), 2u);
  EXPECT_EQ(net.received_b[1].payload, core::from_string("late"));
}

TEST(Radio, JitteredFramesDeliverInDeliverAtOrder) {
  // Regression: with latency jitter, deliver_at is non-monotone in send
  // order. The FIFO queue nevertheless released frames strictly in send
  // order, so a high-jitter frame both delayed its successors and erased
  // the reordering the jitter models. The heap delivers by deliver_at.
  RadioConfig config;
  config.base_loss = 0.0;
  config.collision_probability = 0.0;
  config.base_latency = 2;
  config.latency_jitter = 30;
  RadioMedium medium{core::Rng{42}, config};

  const NodeId src{1};
  const NodeId dst{2};
  std::vector<std::pair<std::uint32_t, core::SimTime>> arrivals;  // (send idx, time)
  medium.attach(src, [] { return core::Vec2{0, 0}; },
                [](const Frame&, core::SimTime) {});
  medium.attach(dst, [] { return core::Vec2{50, 0}; },
                [&](const Frame& f, core::SimTime now) {
                  arrivals.emplace_back(f.channel, now);
                });

  constexpr std::uint32_t kFrames = 40;
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    Frame f;
    f.src = src;
    f.dst = dst;
    f.channel = i;  // tag each frame with its send index
    medium.send(f, 0);
  }
  for (core::SimTime t = 0; t <= 64; ++t) medium.step(t);

  ASSERT_EQ(arrivals.size(), kFrames);
  bool reordered = false;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    // Every frame arrives within its own jittered latency window; none is
    // held hostage behind a slower head frame.
    EXPECT_GE(arrivals[i].second, 2);
    EXPECT_LE(arrivals[i].second, 32);
    if (i > 0) {
      // Time must advance monotonically even though send order does not.
      EXPECT_GE(arrivals[i].second, arrivals[i - 1].second);
      if (arrivals[i].first < arrivals[i - 1].first) reordered = true;
    }
  }
  // Jitter must be able to reorder frames (impossible with the FIFO).
  EXPECT_TRUE(reordered);
}

TEST(Radio, SnifferSeesAllFrames) {
  TwoNodes net;
  int sniffed = 0;
  net.medium.add_sniffer([&](const Frame&) { ++sniffed; });
  Frame f;
  f.src = net.a;
  f.dst = net.b;
  net.medium.send(f, 0);
  net.medium.send(f, 10);
  EXPECT_EQ(sniffed, 2);
}

TEST(Message, EncodeDecodeRoundTrip) {
  Message m;
  m.type = MessageType::kDetectionReport;
  m.sender = 42;
  m.sequence = 7;
  m.timestamp = 123456;
  m.body = DetectionBody{10.5, -3.25, 0.93, 4}.encode();

  const auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MessageType::kDetectionReport);
  EXPECT_EQ(decoded->sender, 42u);
  EXPECT_EQ(decoded->sequence, 7u);
  EXPECT_EQ(decoded->timestamp, 123456);

  const auto body = DetectionBody::decode(decoded->body);
  ASSERT_TRUE(body.has_value());
  EXPECT_DOUBLE_EQ(body->x, 10.5);
  EXPECT_DOUBLE_EQ(body->y, -3.25);
  EXPECT_DOUBLE_EQ(body->confidence, 0.93);
  EXPECT_EQ(body->track_id, 4u);
}

TEST(Message, DecodeRejectsGarbage) {
  EXPECT_FALSE(Message::decode(core::from_string("x")).has_value());
  core::Bytes junk(64, 0xFF);
  EXPECT_FALSE(Message::decode(junk).has_value());
}

TEST(Message, DecodeRejectsLengthMismatch) {
  Message m;
  m.body = core::from_string("abc");
  auto bytes = m.encode();
  bytes.push_back(0);  // trailing garbage
  EXPECT_FALSE(Message::decode(bytes).has_value());
}

TEST(Message, TelemetryBodyRoundTrip) {
  const TelemetryBody body{1.0, 2.0, 0.5, 3.5};
  const auto decoded = TelemetryBody::decode(body.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->heading, 0.5);
  EXPECT_DOUBLE_EQ(decoded->speed, 3.5);
}

TEST(Message, EstopBodyRoundTrip) {
  const EstopBody body{3, 17};
  const auto decoded = EstopBody::decode(body.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reason, 3u);
  EXPECT_EQ(decoded->target, 17u);
}

TEST(Message, BodyDecodersRejectWrongSizes) {
  core::Bytes junk(5, 0);
  EXPECT_FALSE(DetectionBody::decode(junk).has_value());
  EXPECT_FALSE(TelemetryBody::decode(junk).has_value());
  EXPECT_FALSE(EstopBody::decode(junk).has_value());
}

TEST(Attacker, ProfileLevels) {
  const auto l1 = attacker_profile_for_level(1);
  EXPECT_TRUE(l1.can_sniff);
  EXPECT_FALSE(l1.can_spoof);
  const auto l2 = attacker_profile_for_level(2);
  EXPECT_TRUE(l2.can_spoof);
  EXPECT_TRUE(l2.can_replay);
  EXPECT_FALSE(l2.can_jam);
  const auto l3 = attacker_profile_for_level(3);
  EXPECT_TRUE(l3.can_jam);
  EXPECT_TRUE(l3.can_drop);
  EXPECT_FALSE(l3.can_forge_crypto);
  const auto l4 = attacker_profile_for_level(4);
  EXPECT_FALSE(l4.can_forge_crypto);  // ceiling: crypto holds at all levels
}

TEST(Attacker, CapturesTraffic) {
  TwoNodes net;
  AttackerNode attacker{NodeId{66}, {50, 10}, core::Rng{5},
                        attacker_profile_for_level(2)};
  attacker.attach(net.medium);

  Frame f;
  f.src = net.a;
  f.dst = net.b;
  f.payload = core::from_string("secret telemetry");
  net.medium.send(f, 0);
  EXPECT_EQ(attacker.captured_count(), 1u);
}

TEST(Attacker, SpoofInjectsClaimedSender) {
  TwoNodes net;
  AttackerNode attacker{NodeId{66}, {50, 10}, core::Rng{5},
                        attacker_profile_for_level(2)};
  attacker.attach(net.medium);

  ASSERT_TRUE(attacker.spoof(net.medium, 0, /*spoofed_sender=*/1,
                             MessageType::kEstopCommand, EstopBody{1, 2}.encode(),
                             net.b));
  net.pump(100);
  ASSERT_EQ(net.received_b.size(), 1u);
  const auto m = Message::decode(net.received_b[0].payload);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->sender, 1u);  // claims to be node a
  EXPECT_EQ(m->type, MessageType::kEstopCommand);
}

TEST(Attacker, SpoofDeniedWithoutCapability) {
  TwoNodes net;
  AttackerNode attacker{NodeId{66}, {50, 10}, core::Rng{5},
                        attacker_profile_for_level(1)};
  attacker.attach(net.medium);
  EXPECT_FALSE(attacker.spoof(net.medium, 0, 1, MessageType::kEstopCommand, {}, net.b));
}

TEST(Attacker, ReplayRetransmitsCapturedFrame) {
  TwoNodes net;
  AttackerNode attacker{NodeId{66}, {50, 10}, core::Rng{5},
                        attacker_profile_for_level(2)};
  attacker.attach(net.medium);

  Frame f;
  f.src = net.a;
  f.dst = net.b;
  f.payload = core::from_string("original");
  net.medium.send(f, 0);
  net.pump(50);
  ASSERT_EQ(net.received_b.size(), 1u);

  ASSERT_TRUE(attacker.replay_latest(net.medium, 100));
  net.pump(200);
  ASSERT_EQ(net.received_b.size(), 2u);
  EXPECT_EQ(net.received_b[1].payload, core::from_string("original"));
}

TEST(Attacker, ReplayFilterSelectsFrames) {
  TwoNodes net;
  AttackerNode attacker{NodeId{66}, {50, 10}, core::Rng{5},
                        attacker_profile_for_level(2)};
  attacker.attach(net.medium);

  Frame f1;
  f1.src = net.a;
  f1.dst = net.b;
  f1.channel = 1;
  net.medium.send(f1, 0);
  Frame f2 = f1;
  f2.channel = 2;
  net.medium.send(f2, 10);

  ASSERT_TRUE(attacker.replay_latest(net.medium, 100, [](const Frame& fr) {
    return fr.channel == 1;
  }));
  net.pump(200);
  // Find the replayed frame (channel 1 arrives twice).
  int channel1 = 0;
  for (const auto& fr : net.received_b) {
    if (fr.channel == 1) ++channel1;
  }
  EXPECT_EQ(channel1, 2);
}

TEST(Attacker, ReplayWithNoMatchFails) {
  TwoNodes net;
  AttackerNode attacker{NodeId{66}, {50, 10}, core::Rng{5},
                        attacker_profile_for_level(2)};
  attacker.attach(net.medium);
  EXPECT_FALSE(attacker.replay_latest(net.medium, 0));
}

TEST(Attacker, FloodInjectsManyFrames) {
  TwoNodes net;
  AttackerNode attacker{NodeId{66}, {50, 10}, core::Rng{5},
                        attacker_profile_for_level(2)};
  attacker.attach(net.medium);
  ASSERT_TRUE(attacker.flood(net.medium, 0, 0, 50));
  EXPECT_EQ(attacker.injected_count(), 50u);
  EXPECT_GE(net.medium.total_sent(), 50u);
}

}  // namespace
}  // namespace agrarsec::net
