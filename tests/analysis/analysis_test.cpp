// Rule-pack tests: for every rule, a seeded-defect model that triggers
// exactly that rule id, and a repaired variant that lints clean. Plus the
// determinism and rendering contracts the CI gate rests on.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/baseline.h"
#include "assurance/compliance.h"
#include "assurance/evidence.h"
#include "assurance/gsn.h"
#include "crypto/random.h"
#include "pki/authority.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "risk/iec62443.h"
#include "risk/tara.h"

namespace agrarsec::analysis {
namespace {

std::vector<Diagnostic> of_rule(const std::vector<Diagnostic>& diagnostics,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  std::copy_if(diagnostics.begin(), diagnostics.end(), std::back_inserter(out),
               [&](const Diagnostic& d) { return d.rule == rule; });
  return out;
}

std::vector<Diagnostic> analyze(const Model& model) {
  return Analyzer{}.analyze(model);
}

// --- zone/conduit fixtures ------------------------------------------------

/// A countermeasure providing level `level` in every FR.
risk::Countermeasure blanket_countermeasure(int level) {
  risk::Countermeasure cm;
  cm.id = "cm-blanket";
  cm.description = "test countermeasure covering all FRs";
  cm.provides.fill(level);
  return cm;
}

struct ZoneFixture {
  risk::ZoneModel zones;
  std::vector<risk::Countermeasure> catalogue{blanket_countermeasure(3)};

  [[nodiscard]] Model model() const {
    Model m;
    m.zones = &zones;
    m.countermeasures = &catalogue;
    return m;
  }
};

TEST(ZoneRules, ZC001_ConduitIntoUndeclaredZone) {
  ZoneFixture broken;
  risk::Zone zone;
  zone.name = "only";
  const ZoneId declared = broken.zones.add_zone(std::move(zone));
  risk::Conduit conduit;
  conduit.name = "dangling";
  conduit.from = declared;
  conduit.to = ZoneId{99};
  broken.zones.add_conduit(std::move(conduit));

  const auto findings = of_rule(analyze(broken.model()), "ZC001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"conduit:dangling", "zone-id:99"}));

  ZoneFixture repaired;
  risk::Zone a;
  a.name = "a";
  risk::Zone b;
  b.name = "b";
  const ZoneId from = repaired.zones.add_zone(std::move(a));
  const ZoneId to = repaired.zones.add_zone(std::move(b));
  risk::Conduit ok;
  ok.name = "ok";
  ok.from = from;
  ok.to = to;
  repaired.zones.add_conduit(std::move(ok));
  EXPECT_TRUE(analyze(repaired.model()).empty());
}

TEST(ZoneRules, ZC002_AchievedBelowTarget) {
  ZoneFixture broken;
  risk::Zone zone;
  zone.name = "safety";
  zone.target = {2, 0, 0, 0, 0, 0, 0};  // IAC target 2, nothing installed
  broken.zones.add_zone(std::move(zone));

  const auto findings = of_rule(analyze(broken.model()), "ZC002");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"zone:safety", "fr:IAC"}));

  ZoneFixture repaired;
  risk::Zone fixed;
  fixed.name = "safety";
  fixed.target = {2, 0, 0, 0, 0, 0, 0};
  fixed.countermeasures = {"cm-blanket"};  // provides 3 everywhere
  repaired.zones.add_zone(std::move(fixed));
  EXPECT_TRUE(analyze(repaired.model()).empty());
}

ZoneFixture bridged_zones(bool with_conduit_countermeasure) {
  ZoneFixture f;
  risk::Zone high;
  high.name = "high";
  high.target = {3, 0, 0, 0, 0, 0, 0};
  high.countermeasures = {"cm-blanket"};
  risk::Zone low;
  low.name = "low";  // SL-T gap 3 in IAC against 'high'
  const ZoneId from = f.zones.add_zone(std::move(high));
  const ZoneId to = f.zones.add_zone(std::move(low));
  risk::Conduit bridge;
  bridge.name = "bridge";
  bridge.from = from;
  bridge.to = to;
  if (with_conduit_countermeasure) bridge.countermeasures = {"cm-blanket"};
  f.zones.add_conduit(std::move(bridge));
  return f;
}

TEST(ZoneRules, ZC003_TrustGradientWithoutCompensation) {
  const ZoneFixture broken = bridged_zones(false);
  const auto findings = of_rule(analyze(broken.model()), "ZC003");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"conduit:bridge", "fr:IAC"}));

  // The compensating countermeasure clears ZC003 (it also over-provisions
  // the conduit against the zero-target FRs, which SA004 notes — that is
  // the semantic pass doing its job, not a ZC003 regression).
  const ZoneFixture repaired = bridged_zones(true);
  EXPECT_TRUE(of_rule(analyze(repaired.model()), "ZC003").empty());
}

TEST(ZoneRules, ZC004_UnzonedAsset) {
  risk::ItemDefinition item;
  item.name = "test-item";
  risk::Asset asset;
  asset.id = AssetId{1};
  asset.name = "estop";
  item.assets.push_back(asset);

  ZoneFixture fixture;
  risk::Zone zone;
  zone.name = "safety";
  fixture.zones.add_zone(std::move(zone));
  Model broken = fixture.model();
  broken.item = &item;

  const auto findings = of_rule(analyze(broken), "ZC004");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"asset:estop"}));

  ZoneFixture fixture2;
  risk::Zone zoned;
  zoned.name = "safety";
  zoned.assets = {AssetId{1}};
  fixture2.zones.add_zone(std::move(zoned));
  Model repaired = fixture2.model();
  repaired.item = &item;
  EXPECT_TRUE(analyze(repaired).empty());
}

// --- TARA fixtures --------------------------------------------------------

risk::ItemDefinition one_asset_item() {
  risk::ItemDefinition item;
  item.name = "test-item";
  risk::Asset asset;
  asset.id = AssetId{1};
  asset.name = "radio-link";
  asset.category = risk::AssetCategory::kCommunication;
  item.assets.push_back(asset);
  return item;
}

risk::ThreatScenario severe_threat(AssetId asset) {
  risk::ThreatScenario threat;
  threat.id = ThreatId{1};
  threat.asset = asset;
  threat.name = "link-spoof";
  threat.stride = risk::Stride::kSpoofing;
  threat.damage.safety = risk::ImpactLevel::kSevere;  // + zero potential => risk 5
  threat.characteristic = "mixed-fleet";
  return threat;
}

TEST(TaraRules, TA001_HighRiskLeftUntreated) {
  // reduce_threshold 6 is unreachable: every risk stays kRetain.
  risk::Tara broken{one_asset_item(), {.reduce_threshold = 6, .avoid_threshold = 6}};
  broken.add_threat(severe_threat(AssetId{1}));
  broken.assess({});
  Model model;
  model.tara = &broken;

  const auto findings = of_rule(analyze(model), "TA001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"threat:link-spoof"}));

  // Default thresholds treat the risk; TA001 clears. (With no effective
  // controls the residual stays high, which CM004 now reports — scoped
  // out here, covered by semantic_test.cpp.)
  risk::Tara repaired{one_asset_item()};
  repaired.add_threat(severe_threat(AssetId{1}));
  repaired.assess({});
  Model fixed;
  fixed.tara = &repaired;
  EXPECT_TRUE(of_rule(analyze(fixed), "TA001").empty());
}

TEST(TaraRules, TA002_UnknownAsset) {
  risk::Tara broken{one_asset_item()};
  broken.add_threat(severe_threat(AssetId{77}));  // never declared
  broken.assess({});
  Model model;
  model.tara = &broken;

  const auto findings = of_rule(analyze(model), "TA002");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"threat:link-spoof", "asset-id:77"}));

  risk::Tara repaired{one_asset_item()};
  repaired.add_threat(severe_threat(AssetId{1}));
  repaired.assess({});
  Model fixed;
  fixed.tara = &repaired;
  EXPECT_TRUE(of_rule(analyze(fixed), "TA002").empty());
}

TEST(TaraRules, TA002_UncataloguedControl) {
  // Assessed against a catalogue containing 'secure-channel', but linted
  // against a model catalogue that lost it — the stale-catalogue drift.
  risk::Control control;
  control.id = "secure-channel";
  control.mitigates = {risk::Stride::kSpoofing};
  risk::Tara tara{one_asset_item()};
  tara.add_threat(severe_threat(AssetId{1}));
  tara.assess({control});

  const std::vector<risk::Control> empty_catalogue;
  Model broken;
  broken.tara = &tara;
  broken.controls = &empty_catalogue;
  const auto findings = of_rule(analyze(broken), "TA002");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"threat:link-spoof", "control:secure-channel"}));

  const std::vector<risk::Control> full_catalogue{control};
  Model repaired;
  repaired.tara = &tara;
  repaired.controls = &full_catalogue;
  EXPECT_TRUE(of_rule(analyze(repaired), "TA002").empty());
}

TEST(TaraRules, TA003_CharacteristicNeverInstantiated) {
  risk::Tara tara{one_asset_item()};
  tara.add_threat(severe_threat(AssetId{1}));  // characteristic "mixed-fleet"
  tara.assess({});
  const std::vector<risk::ForestryCharacteristic> characteristics{
      {"mixed-fleet", "covered"}, {"long-lifecycle", "nothing instantiates this"}};

  Model model;
  model.tara = &tara;
  model.characteristics = &characteristics;
  const auto findings = of_rule(analyze(model), "TA003");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"characteristic:long-lifecycle"}));

  const std::vector<risk::ForestryCharacteristic> covered{{"mixed-fleet", "covered"}};
  Model repaired;
  repaired.tara = &tara;
  repaired.characteristics = &covered;
  EXPECT_TRUE(of_rule(analyze(repaired), "TA003").empty());
}

// --- GSN fixtures ---------------------------------------------------------

TEST(GsnRules, GS001_SupportCycle) {
  assurance::ArgumentModel broken;
  const GsnId top = broken.add(assurance::GsnType::kGoal, "G-top", "top");
  const GsnId mid = broken.add(assurance::GsnType::kStrategy, "S-mid", "mid");
  broken.support(top, mid);
  broken.support(mid, top);  // back edge
  Model model;
  model.argument = &broken;

  const auto findings = of_rule(analyze(model), "GS001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"node:S-mid", "node:G-top"}));

  assurance::ArgumentModel repaired;
  assurance::EvidenceRegistry registry;
  const EvidenceId evidence =
      registry.add(assurance::EvidenceKind::kTestResult, "tests", "", 1.0);
  const GsnId goal = repaired.add(assurance::GsnType::kGoal, "G-top", "top");
  const GsnId solution = repaired.add(assurance::GsnType::kSolution, "Sn", "tests");
  repaired.support(goal, solution);
  repaired.bind_evidence(solution, evidence);
  Model fixed;
  fixed.argument = &repaired;
  fixed.evidence = &registry;
  EXPECT_TRUE(analyze(fixed).empty());
}

TEST(GsnRules, GS001_InContextCycle) {
  // A loop closed through an in_context_of edge — invisible to a checker
  // that only walks the support tree.
  assurance::ArgumentModel broken;
  const GsnId goal = broken.add(assurance::GsnType::kGoal, "G", "goal");
  const GsnId ctx = broken.add(assurance::GsnType::kContext, "C", "context");
  broken.mark_undeveloped(goal);
  broken.in_context(goal, ctx);
  broken.in_context(ctx, ctx);  // self-reference
  Model model;
  model.argument = &broken;

  const auto findings = of_rule(analyze(model), "GS001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"node:C", "node:C"}));
}

TEST(GsnRules, GS002_UnboundAndDanglingEvidence) {
  assurance::ArgumentModel broken;
  assurance::EvidenceRegistry registry;
  const GsnId goal = broken.add(assurance::GsnType::kGoal, "G", "goal");
  const GsnId unbound = broken.add(assurance::GsnType::kSolution, "Sn-unbound", "");
  const GsnId dangling = broken.add(assurance::GsnType::kSolution, "Sn-dangling", "");
  broken.support(goal, unbound);
  broken.support(goal, dangling);
  broken.bind_evidence(dangling, EvidenceId{4242});  // not in the registry
  Model model;
  model.argument = &broken;
  model.evidence = &registry;

  const auto findings = of_rule(analyze(model), "GS002");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"node:Sn-dangling", "evidence-id:4242"}));
  EXPECT_EQ(findings[1].entities, (std::vector<std::string>{"node:Sn-unbound"}));

  assurance::ArgumentModel repaired;
  const EvidenceId real =
      registry.add(assurance::EvidenceKind::kAnalysis, "analysis", "", 0.9);
  const GsnId g = repaired.add(assurance::GsnType::kGoal, "G", "goal");
  const GsnId s = repaired.add(assurance::GsnType::kSolution, "Sn", "");
  repaired.support(g, s);
  repaired.bind_evidence(s, real);
  Model fixed;
  fixed.argument = &repaired;
  fixed.evidence = &registry;
  EXPECT_TRUE(analyze(fixed).empty());
}

TEST(GsnRules, GS003_GoalNeitherDevelopedNorMarked) {
  assurance::ArgumentModel broken;
  broken.add(assurance::GsnType::kGoal, "G-open", "nobody developed this");
  Model model;
  model.argument = &broken;

  const auto findings = of_rule(analyze(model), "GS003");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"node:G-open"}));

  assurance::ArgumentModel repaired;
  const GsnId goal = repaired.add(assurance::GsnType::kGoal, "G-open", "flagged");
  repaired.mark_undeveloped(goal);
  Model fixed;
  fixed.argument = &repaired;
  EXPECT_TRUE(analyze(fixed).empty());
}

TEST(GsnRules, GS004_ComplianceMappingIntoTheVoid) {
  assurance::ArgumentModel argument;
  const GsnId goal = argument.add(assurance::GsnType::kGoal, "G-real", "exists");
  argument.mark_undeveloped(goal);

  assurance::ComplianceMap broken{{{"MR-1", {}, "req", "text"}}};
  broken.map("MR-1", "G-missing");
  Model model;
  model.argument = &argument;
  model.compliance = &broken;

  const auto findings = of_rule(analyze(model), "GS004");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"requirement:MR-1", "goal:G-missing"}));

  assurance::ComplianceMap repaired{{{"MR-1", {}, "req", "text"}}};
  repaired.map("MR-1", "G-real");
  Model fixed;
  fixed.argument = &argument;
  fixed.compliance = &repaired;
  // The undeveloped goal is deliberate (marked): only GS004 must clear.
  EXPECT_TRUE(analyze(fixed).empty());
}

// --- PKI fixtures ---------------------------------------------------------

TEST(PkiRules, PK001_ChainOutsideTheTrustStore) {
  crypto::Drbg drbg(3, "analysis-test");
  auto trusted_ca =
      pki::CertificateAuthority::create_root("site-ca", drbg.generate32(), 0, 1000);
  auto rogue_ca =
      pki::CertificateAuthority::create_root("rogue-ca", drbg.generate32(), 0, 1000);
  pki::TrustStore trust;
  ASSERT_TRUE(trust.add_root(trusted_ca.certificate()).ok());

  auto impostor =
      pki::enroll(rogue_ca, drbg, "impostor", pki::CertRole::kMachine, 0, 1000);
  ASSERT_TRUE(impostor.ok());
  const std::vector<PkiEndpoint> broken_endpoints{
      {"impostor", impostor.value().chain}};
  Model broken;
  broken.trust = &trust;
  broken.endpoints = &broken_endpoints;
  broken.now = 10;

  const auto findings = of_rule(analyze(broken), "PK001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"endpoint:impostor"}));

  auto legit =
      pki::enroll(trusted_ca, drbg, "legit", pki::CertRole::kMachine, 0, 1000);
  ASSERT_TRUE(legit.ok());
  const std::vector<PkiEndpoint> repaired_endpoints{{"legit", legit.value().chain}};
  Model repaired;
  repaired.trust = &trust;
  repaired.endpoints = &repaired_endpoints;
  repaired.now = 10;
  EXPECT_TRUE(analyze(repaired).empty());
}

TEST(PkiRules, PK001_ExpiredChain) {
  crypto::Drbg drbg(4, "analysis-test");
  auto ca =
      pki::CertificateAuthority::create_root("site-ca", drbg.generate32(), 0, 1000);
  pki::TrustStore trust;
  ASSERT_TRUE(trust.add_root(ca.certificate()).ok());
  auto identity = pki::enroll(ca, drbg, "node", pki::CertRole::kMachine, 0, 100);
  ASSERT_TRUE(identity.ok());
  const std::vector<PkiEndpoint> endpoints{{"node", identity.value().chain}};

  Model model;
  model.trust = &trust;
  model.endpoints = &endpoints;
  model.now = 500;  // past the leaf's not_after
  EXPECT_EQ(of_rule(analyze(model), "PK001").size(), 1u);
  model.now = 50;  // inside the validity window
  EXPECT_TRUE(analyze(model).empty());
}

// --- analyzer contracts ---------------------------------------------------

TEST(Analyzer, RuleCatalogueMatchesEmittedIds) {
  const auto catalogue = rule_catalogue();
  ASSERT_EQ(catalogue.size(), 24u);
  EXPECT_TRUE(std::is_sorted(
      catalogue.begin(), catalogue.end(),
      [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; }));
  for (const RuleInfo& rule : catalogue) {
    EXPECT_TRUE(rule.pass == "structural" || rule.pass == "semantic" ||
                rule.pass == "coverage")
        << rule.id;
  }
}

TEST(Analyzer, PassStatsCoverEveryPass) {
  std::vector<PassStats> stats;
  (void)Analyzer{}.analyze(Model{}, &stats);
  ASSERT_EQ(stats.size(), 6u);
  EXPECT_EQ(stats[0].pass, "zone-conduit");
  EXPECT_EQ(stats[4].pass, "semantic");
  EXPECT_EQ(stats[5].pass, "coverage");
  for (const PassStats& pass : stats) EXPECT_EQ(pass.findings, 0u);
}

TEST(Analyzer, FindingsAreSortedAndDeduplicated) {
  ZoneFixture fixture;
  risk::Zone zone;
  zone.name = "z";
  zone.target = {1, 1, 0, 0, 0, 0, 0};
  fixture.zones.add_zone(std::move(zone));
  const auto findings = analyze(fixture.model());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(diagnostic_less(findings[0], findings[1]));
}

TEST(Analyzer, JsonRenderingIsByteIdenticalAcrossRuns) {
  auto build_and_render = [] {
    ZoneFixture fixture;
    risk::Zone zone;
    zone.name = "safety";
    zone.target = {2, 0, 0, 1, 0, 0, 1};
    fixture.zones.add_zone(std::move(zone));
    risk::Conduit conduit;
    conduit.name = "dangling";
    conduit.from = ZoneId{55};
    conduit.to = ZoneId{56};
    fixture.zones.add_conduit(std::move(conduit));
    return render_json(analyze(fixture.model()));
  };
  const std::string first = build_and_render();
  const std::string second = build_and_render();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(first.find("\"summary\""), std::string::npos);
}

TEST(Analyzer, TextReportCarriesRuleSeverityAndHint) {
  ZoneFixture fixture;
  risk::Conduit conduit;
  conduit.name = "dangling";
  conduit.from = ZoneId{1};
  conduit.to = ZoneId{2};
  fixture.zones.add_conduit(std::move(conduit));
  const std::string text = render_text(analyze(fixture.model()));
  EXPECT_NE(text.find("error[ZC001]:"), std::string::npos);
  EXPECT_NE(text.find("hint:"), std::string::npos);
  EXPECT_NE(text.find("2 error"), std::string::npos);
}

TEST(Analyzer, EmptyModelLintsClean) {
  EXPECT_TRUE(analyze(Model{}).empty());
}

// --- baseline -------------------------------------------------------------

TEST(BaselineTest, FilterRemovesExactlyTheCoveredFindings) {
  Diagnostic known;
  known.rule = "ZC002";
  known.entities = {"zone:safety", "fr:RA"};
  known.message = "old wording";
  Diagnostic fresh;
  fresh.rule = "ZC002";
  fresh.entities = {"zone:data", "fr:RA"};

  const Baseline baseline = Baseline::from({known});
  EXPECT_TRUE(baseline.covers(known));
  EXPECT_FALSE(baseline.covers(fresh));

  // Rewording a baselined finding must not un-baseline it (keys exclude
  // the message on purpose).
  Diagnostic reworded = known;
  reworded.message = "new wording";
  const auto remaining = baseline.filter({reworded, fresh});
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].entities[0], "zone:data");
}

TEST(BaselineTest, JsonRoundTrip) {
  Diagnostic a;
  a.rule = "TA001";
  a.entities = {"threat:estop-replay"};
  Diagnostic b;
  b.rule = "GS002";
  b.entities = {"node:Sn", "evidence-id:7"};
  const Baseline original = Baseline::from({a, b});

  std::string error;
  const auto parsed = Baseline::parse(original.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(parsed->covers(a));
  EXPECT_TRUE(parsed->covers(b));
  EXPECT_EQ(parsed->to_json(), original.to_json());
}

TEST(BaselineTest, StaleKeysReportSuppressionsThatOutlivedTheirFinding) {
  Diagnostic fixed_finding;
  fixed_finding.rule = "SA001";
  fixed_finding.entities = {"zone:safety", "fr:RA"};
  Diagnostic live_finding;
  live_finding.rule = "CV001";
  live_finding.entities = {"threat:gnss-jamming"};
  const Baseline baseline = Baseline::from({fixed_finding, live_finding});

  // Both live: nothing stale.
  EXPECT_TRUE(baseline.stale_keys({fixed_finding, live_finding}).empty());

  // The SA001 finding got fixed: its suppression is now stale.
  const auto stale = baseline.stale_keys({live_finding});
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "SA001 zone:safety, fr:RA");
}

TEST(BaselineTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Baseline::parse("not json", &error).has_value());
  EXPECT_FALSE(Baseline::parse("{\"version\": 2, \"findings\": []}", &error)
                   .has_value());
  EXPECT_FALSE(Baseline::parse("{\"version\": 1}", &error).has_value());
  EXPECT_TRUE(
      Baseline::parse("{\"version\": 1, \"findings\": []}", &error).has_value());
}

}  // namespace
}  // namespace agrarsec::analysis
