// Semantic-pass tests (SA + CM families): reachability dataflow
// semantics, per-rule broken/repaired fixtures, determinism of the
// rendered report, and the baseline round-trip over the new families.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/baseline.h"
#include "analysis/reachability.h"
#include "assurance/gsn.h"
#include "risk/iec62443.h"
#include "risk/tara.h"

namespace agrarsec::analysis {
namespace {

std::vector<Diagnostic> of_rule(const std::vector<Diagnostic>& diagnostics,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  std::copy_if(diagnostics.begin(), diagnostics.end(), std::back_inserter(out),
               [&](const Diagnostic& d) { return d.rule == rule; });
  return out;
}

std::vector<Diagnostic> analyze(const Model& model) {
  return Analyzer{}.analyze(model);
}

/// A countermeasure providing `level` in every FR.
risk::Countermeasure blanket(const std::string& id, int level) {
  risk::Countermeasure cm;
  cm.id = id;
  cm.description = "test countermeasure";
  cm.provides.fill(level);
  return cm;
}

/// A countermeasure providing `level` in SI only.
risk::Countermeasure si_only(const std::string& id, int level) {
  risk::Countermeasure cm;
  cm.id = id;
  cm.description = "test countermeasure";
  cm.provides[static_cast<std::size_t>(risk::Fr::kSi)] = level;
  return cm;
}

// --- reachability dataflow ------------------------------------------------

struct ReachFixture {
  risk::ZoneModel zones;
  std::vector<risk::Countermeasure> catalogue{blanket("cm3", 3), blanket("cm1", 1)};
};

TEST(Reachability, EffectiveEqualsLocalWithoutConduits) {
  ReachFixture f;
  risk::Zone zone;
  zone.name = "lonely";
  zone.countermeasures = {"cm3"};
  f.zones.add_zone(std::move(zone));

  const auto reach = compute_reachability(f.zones, f.catalogue);
  ASSERT_EQ(reach.size(), 1u);
  for (std::size_t fr = 0; fr < risk::kFrCount; ++fr) {
    EXPECT_EQ(reach[0].local[fr], 3);
    EXPECT_EQ(reach[0].effective[fr], 3);
    EXPECT_TRUE(reach[0].witness[fr].empty());
  }
}

TEST(Reachability, TrustedConduitPivotUndercutsLocalDefences) {
  // soft (local 0) --bare conduit--> hard (local 3): the attacker enters
  // soft directly and pivots over the conduit, which the hard zone
  // trusts; effective(hard) collapses to 0.
  ReachFixture f;
  risk::Zone soft;
  soft.name = "soft";
  risk::Zone hard;
  hard.name = "hard";
  hard.countermeasures = {"cm3"};
  const ZoneId soft_id = f.zones.add_zone(std::move(soft));
  const ZoneId hard_id = f.zones.add_zone(std::move(hard));
  risk::Conduit bare;
  bare.name = "bare";
  bare.from = soft_id;
  bare.to = hard_id;
  f.zones.add_conduit(std::move(bare));

  const auto reach = compute_reachability(f.zones, f.catalogue);
  ASSERT_EQ(reach.size(), 2u);
  EXPECT_EQ(reach[1].local[0], 3);
  EXPECT_EQ(reach[1].effective[0], 0);
  EXPECT_EQ(witness_to_string(reach[1].witness[0]), "soft -> bare");
}

TEST(Reachability, ConduitBarrierGatesThePivot) {
  // Same topology but the conduit itself is hardened to 1: the path
  // resistance is max(entry 0, conduit 1) = 1.
  ReachFixture f;
  risk::Zone soft;
  soft.name = "soft";
  risk::Zone hard;
  hard.name = "hard";
  hard.countermeasures = {"cm3"};
  const ZoneId soft_id = f.zones.add_zone(std::move(soft));
  const ZoneId hard_id = f.zones.add_zone(std::move(hard));
  risk::Conduit guarded;
  guarded.name = "guarded";
  guarded.from = soft_id;
  guarded.to = hard_id;
  guarded.countermeasures = {"cm1"};
  f.zones.add_conduit(std::move(guarded));

  const auto reach = compute_reachability(f.zones, f.catalogue);
  EXPECT_EQ(reach[1].effective[0], 1);
}

TEST(Reachability, MultiHopPathAndBidirectionalTraversal) {
  // a (0) -> b (3) -> c (3), conduits bare. The attack on c pivots twice;
  // the conduit into b is declared b->a, proving direction is ignored.
  ReachFixture f;
  risk::Zone a;
  a.name = "a";
  risk::Zone b;
  b.name = "b";
  b.countermeasures = {"cm3"};
  risk::Zone c;
  c.name = "c";
  c.countermeasures = {"cm3"};
  const ZoneId a_id = f.zones.add_zone(std::move(a));
  const ZoneId b_id = f.zones.add_zone(std::move(b));
  const ZoneId c_id = f.zones.add_zone(std::move(c));
  risk::Conduit ab;
  ab.name = "ab";
  ab.from = b_id;  // declared against attacker movement
  ab.to = a_id;
  f.zones.add_conduit(std::move(ab));
  risk::Conduit bc;
  bc.name = "bc";
  bc.from = b_id;
  bc.to = c_id;
  f.zones.add_conduit(std::move(bc));

  const auto reach = compute_reachability(f.zones, f.catalogue);
  EXPECT_EQ(reach[2].effective[0], 0);
  EXPECT_EQ(witness_to_string(reach[2].witness[0]), "a -> ab -> b -> bc");
}

// --- SA fixtures ----------------------------------------------------------

/// One asset, one severe threat => CAL4 under the adjacent vector; the
/// zone holding it has SL-T `target_iac` on IAC and a soft neighbour.
struct SaFixture {
  risk::ItemDefinition item;
  std::optional<risk::Tara> tara;
  risk::ZoneModel zones;
  std::vector<risk::Countermeasure> catalogue{blanket("cm3", 3), si_only("si3", 3)};

  explicit SaFixture(bool harden_conduit) {
    item.name = "test-item";
    risk::Asset asset;
    asset.id = AssetId{1};
    asset.name = "estop";
    asset.category = risk::AssetCategory::kControl;
    asset.properties = {risk::SecurityProperty::kIntegrity};
    item.assets.push_back(asset);

    tara.emplace(item);
    risk::ThreatScenario threat;
    threat.id = ThreatId{1};
    threat.asset = AssetId{1};
    threat.name = "estop-spoof";
    threat.damage.safety = risk::ImpactLevel::kSevere;
    tara->add_threat(std::move(threat));
    tara->assess({});

    risk::Zone safety;
    safety.name = "safety";
    safety.assets = {AssetId{1}};
    safety.target = {0, 0, 4, 0, 0, 0, 0};  // SI target 4
    safety.countermeasures = {"si3"};       // local SI 3, nothing else
    risk::Zone yard;
    yard.name = "yard";  // no countermeasures: direct entry at 0
    const ZoneId safety_id = zones.add_zone(std::move(safety));
    const ZoneId yard_id = zones.add_zone(std::move(yard));
    risk::Conduit link;
    link.name = "link";
    link.from = yard_id;
    link.to = safety_id;
    if (harden_conduit) link.countermeasures = {"cm3"};
    zones.add_conduit(std::move(link));
  }

  [[nodiscard]] Model model() const {
    Model m;
    m.tara = &*tara;
    m.zones = &zones;
    m.countermeasures = &catalogue;
    return m;
  }
};

TEST(SemanticRules, SA001_HighCalAssetBelowTargetOnWeakestPath) {
  const SaFixture broken(false);
  const auto findings = of_rule(analyze(broken.model()), "SA001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"zone:safety", "fr:SI"}));
  EXPECT_NE(findings[0].message.find("estop"), std::string::npos);
  // The witness path names the pivot.
  EXPECT_NE(findings[0].hint.find("yard -> link"), std::string::npos);
}

TEST(SemanticRules, SA002_PivotPathUndercutsLocalDefences) {
  const SaFixture broken(false);
  const auto findings = of_rule(analyze(broken.model()), "SA002");
  ASSERT_EQ(findings.size(), 1u);  // only SI has local > 0
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"zone:safety", "fr:SI"}));

  // Hardening the conduit to the local level removes the undercut (the
  // SL-T 4 gap itself remains SA001's business).
  const SaFixture repaired(true);
  EXPECT_TRUE(of_rule(analyze(repaired.model()), "SA002").empty());
}

TEST(SemanticRules, SA003_ZoneTargetBelowCalFloor) {
  // CAL4 demands SL-T 4 on the FR guarding the asset's property.
  SaFixture fixture(true);
  const auto findings = of_rule(analyze(fixture.model()), "SA003");
  EXPECT_TRUE(findings.empty());  // SI target 4 == floor

  SaFixture broken(true);
  broken.zones = {};
  risk::Zone soft_target;
  soft_target.name = "safety";
  soft_target.assets = {AssetId{1}};
  soft_target.target = {0, 0, 3, 0, 0, 0, 0};  // SI target 3 < floor 4
  soft_target.countermeasures = {"cm3"};
  broken.zones.add_zone(std::move(soft_target));
  const auto broken_findings = of_rule(analyze(broken.model()), "SA003");
  ASSERT_EQ(broken_findings.size(), 1u);
  EXPECT_EQ(broken_findings[0].entities,
            (std::vector<std::string>{"zone:safety", "asset:estop", "fr:SI"}));
}

TEST(SemanticRules, SA004_OverProvisionedConduit) {
  const SaFixture fixture(true);  // conduit cm3 vs targets 4 (safety) / 0 (yard)
  // SI: conduit 3 <= safety target 4 => no finding on SI; but every other
  // FR has conduit 3 > 0 targets on both ends.
  const auto findings = of_rule(analyze(fixture.model()), "SA004");
  ASSERT_FALSE(findings.empty());
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.severity, Severity::kInfo);
    EXPECT_EQ(d.entities[0], "conduit:link");
    EXPECT_NE(d.entities[1], "fr:SI");
  }
}

// --- CM fixtures ----------------------------------------------------------

/// A treated threat plus a GSN argument that optionally claims it.
struct CmFixture {
  risk::ItemDefinition item;
  std::optional<risk::Tara> tara;
  assurance::ArgumentModel argument;

  enum class Claim { kNone, kUnanchored, kAnchored };

  explicit CmFixture(Claim claim) {
    item.name = "test-item";
    risk::Asset asset;
    asset.id = AssetId{1};
    asset.name = "radio-link";
    asset.category = risk::AssetCategory::kCommunication;
    item.assets.push_back(asset);

    tara.emplace(item);
    risk::ThreatScenario threat;
    threat.id = ThreatId{1};
    threat.asset = AssetId{1};
    threat.name = "link-spoof";
    threat.damage.safety = risk::ImpactLevel::kSevere;
    tara->add_threat(std::move(threat));
    tara->assess({});  // risk 5 + severe safety => kAvoid

    const GsnId top =
        argument.add(assurance::GsnType::kGoal, "G-top", "site secure");
    if (claim == Claim::kNone) {
      argument.mark_undeveloped(top);
      return;
    }
    const GsnId goal = argument.add(assurance::GsnType::kGoal,
                                    "G-threat-link-spoof", "spoofing mitigated");
    argument.support(top, goal);
    argument.mark_undeveloped(goal);
    if (claim == Claim::kAnchored) {
      const GsnId ctx = argument.add(assurance::GsnType::kContext,
                                     "C-asset", "asset radio-link in scope");
      argument.in_context(goal, ctx);
    }
  }

  [[nodiscard]] Model model() const {
    Model m;
    m.tara = &*tara;
    m.argument = &argument;
    return m;
  }
};

TEST(SemanticRules, CM001_TreatedThreatWithoutClaimingGoal) {
  const CmFixture broken(CmFixture::Claim::kNone);
  const auto findings = of_rule(analyze(broken.model()), "CM001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"threat:link-spoof",
                                      "goal:G-threat-link-spoof"}));

  const CmFixture repaired(CmFixture::Claim::kAnchored);
  EXPECT_TRUE(of_rule(analyze(repaired.model()), "CM001").empty());
}

TEST(SemanticRules, CM002_ClaimingGoalNeverNamesTheAsset) {
  const CmFixture broken(CmFixture::Claim::kUnanchored);
  const auto findings = of_rule(analyze(broken.model()), "CM002");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities,
            (std::vector<std::string>{"threat:link-spoof",
                                      "goal:G-threat-link-spoof",
                                      "asset:radio-link"}));

  // Anchoring via an attached context clears it...
  const CmFixture direct(CmFixture::Claim::kAnchored);
  EXPECT_TRUE(of_rule(analyze(direct.model()), "CM002").empty());

  // ...and so does an ancestor goal naming the asset (the cascade shape:
  // G-threat-* nested under G-asset-*).
  CmFixture ancestor(CmFixture::Claim::kNone);
  assurance::ArgumentModel nested;
  const GsnId top = nested.add(assurance::GsnType::kGoal, "G-top", "secure");
  const GsnId asset_goal = nested.add(assurance::GsnType::kGoal,
                                      "G-asset-radio-link", "asset defended");
  const GsnId threat_goal = nested.add(assurance::GsnType::kGoal,
                                       "G-threat-link-spoof", "mitigated");
  nested.support(top, asset_goal);
  nested.support(asset_goal, threat_goal);
  nested.mark_undeveloped(threat_goal);
  ancestor.argument = std::move(nested);
  EXPECT_TRUE(of_rule(analyze(ancestor.model()), "CM002").empty());
}

TEST(SemanticRules, CM003_RetainedResidualRiskOverZoneBudget) {
  // Three retained medium risks against one zone: sum 9 > budget 6.
  risk::ItemDefinition item;
  item.name = "test-item";
  risk::Asset asset;
  asset.id = AssetId{1};
  asset.name = "telemetry";
  asset.category = risk::AssetCategory::kCommunication;
  item.assets.push_back(asset);

  // Major impact at high feasibility is risk 4; threshold 5 leaves all
  // three retained, so the zone accumulates residual 12 > budget 6.
  risk::Tara tara{item, {.reduce_threshold = 5, .avoid_threshold = 6}};
  for (int i = 0; i < 3; ++i) {
    risk::ThreatScenario threat;
    threat.id = ThreatId{static_cast<std::uint64_t>(i + 1)};
    threat.asset = AssetId{1};
    threat.name = "leak-" + std::to_string(i);
    threat.damage.operational = risk::ImpactLevel::kMajor;
    tara.add_threat(std::move(threat));
  }
  tara.assess({});

  risk::ZoneModel zones;
  risk::Zone zone;
  zone.name = "data";
  zone.assets = {AssetId{1}};
  zones.add_zone(std::move(zone));
  const std::vector<risk::Countermeasure> catalogue;

  Model model;
  model.tara = &tara;
  model.zones = &zones;
  model.countermeasures = &catalogue;
  const auto findings = of_rule(analyze(model), "CM003");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"zone:data"}));
  EXPECT_NE(findings[0].message.find("residual risk 12"), std::string::npos);

  // A raised documented budget accepts the accumulation.
  const auto relaxed =
      Analyzer{AnalyzerConfig{.zone_residual_budget = 12}}.analyze(model);
  EXPECT_TRUE(of_rule(relaxed, "CM003").empty());
}

TEST(SemanticRules, CM004_TreatmentThatDidNotMoveTheNeedle) {
  const CmFixture fixture(CmFixture::Claim::kAnchored);  // no controls: residual 5
  const auto findings = of_rule(analyze(fixture.model()), "CM004");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"threat:link-spoof"}));
}

// --- determinism + baseline over the new families -------------------------

TEST(SemanticRules, ReportIsByteIdenticalAcrossRuns) {
  auto render = [] {
    const SaFixture fixture(false);
    return render_json(analyze(fixture.model()));
  };
  EXPECT_EQ(render(), render());
}

TEST(SemanticRules, BaselineRoundTripSuppressesAndDetectsStale) {
  const SaFixture fixture(false);
  const auto findings = analyze(fixture.model());
  ASSERT_FALSE(findings.empty());

  // Suppress everything -> re-run -> clean, and the JSON survives a
  // round-trip byte-identically.
  const Baseline baseline = Baseline::from(findings);
  std::string error;
  const auto reparsed = Baseline::parse(baseline.to_json(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->to_json(), baseline.to_json());
  EXPECT_TRUE(reparsed->filter(findings).empty());
  EXPECT_TRUE(reparsed->stale_keys(findings).empty());

  // Repairing the model leaves the suppressions stale, and stale keys
  // name the rule first.
  const SaFixture repaired(true);
  const auto remaining = analyze(repaired.model());
  const auto stale = reparsed->stale_keys(remaining);
  ASSERT_FALSE(stale.empty());
  EXPECT_EQ(stale[0].rfind("SA00", 0), 0u) << stale[0];
}

}  // namespace
}  // namespace agrarsec::analysis
