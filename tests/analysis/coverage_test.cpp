// Coverage-pass tests (CV family): matrix join semantics, per-rule
// broken/repaired fixtures, the JSON report shape, and the drift guards
// keeping the IDS rule table and scenario registry in sync with the TARA
// threat catalogue.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/coverage.h"
#include "analysis/json.h"
#include "ids/rule_table.h"
#include "risk/catalog.h"

namespace agrarsec::analysis {
namespace {

std::vector<Diagnostic> of_rule(const std::vector<Diagnostic>& diagnostics,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  std::copy_if(diagnostics.begin(), diagnostics.end(), std::back_inserter(out),
               [&](const Diagnostic& d) { return d.rule == rule; });
  return out;
}

/// One treated threat ("link-spoof") with configurable detection/scenario
/// mappings.
struct CvFixture {
  risk::ItemDefinition item;
  std::optional<risk::Tara> tara;
  std::vector<ids::DetectionRuleInfo> rules;
  std::vector<ExecutableScenario> scenarios;

  CvFixture(bool detected, bool exercised) {
    item.name = "test-item";
    risk::Asset asset;
    asset.id = AssetId{1};
    asset.name = "radio-link";
    asset.category = risk::AssetCategory::kCommunication;
    item.assets.push_back(asset);
    tara.emplace(item);
    risk::ThreatScenario threat;
    threat.id = ThreatId{1};
    threat.asset = AssetId{1};
    threat.name = "link-spoof";
    threat.damage.safety = risk::ImpactLevel::kSevere;
    tara->add_threat(std::move(threat));
    tara->assess({});  // risk 5: treated (avoid)

    rules.push_back({"spoof-detector", "signature", "detects spoofing",
                     detected ? std::vector<std::string>{"link-spoof"}
                              : std::vector<std::string>{}});
    scenarios.push_back({"spoof-demo", "examples/demo.cpp",
                         exercised ? std::vector<std::string>{"link-spoof"}
                                   : std::vector<std::string>{}});
  }

  [[nodiscard]] Model model() const {
    Model m;
    m.tara = &*tara;
    m.ids_rules = &rules;
    m.scenarios = &scenarios;
    return m;
  }
};

TEST(CoverageRules, CV001_TreatedThreatWithoutDetection) {
  const CvFixture broken(false, true);
  const auto findings = of_rule(Analyzer{}.analyze(broken.model()), "CV001");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"threat:link-spoof"}));

  const CvFixture repaired(true, true);
  EXPECT_TRUE(of_rule(Analyzer{}.analyze(repaired.model()), "CV001").empty());
}

TEST(CoverageRules, CV002_TreatedThreatWithoutScenario) {
  const CvFixture broken(true, false);
  const auto findings = of_rule(Analyzer{}.analyze(broken.model()), "CV002");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"threat:link-spoof"}));

  const CvFixture repaired(true, true);
  EXPECT_TRUE(of_rule(Analyzer{}.analyze(repaired.model()), "CV002").empty());
}

TEST(CoverageRules, CV003_DeadDetectionRule) {
  CvFixture fixture(true, true);
  fixture.rules.push_back(
      {"dead", "anomaly", "watches nothing real", {"no-such-threat"}});
  const auto findings = of_rule(Analyzer{}.analyze(fixture.model()), "CV003");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"ids-rule:dead"}));
}

TEST(CoverageRules, CV004_OrphanScenario) {
  CvFixture fixture(true, true);
  fixture.scenarios.push_back(
      {"orphan", "examples/old.cpp", {"retired-threat"}});
  const auto findings = of_rule(Analyzer{}.analyze(fixture.model()), "CV004");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].entities, (std::vector<std::string>{"scenario:orphan"}));
}

TEST(CoverageMatrixTest, JoinsAllThreeDirections) {
  const CvFixture fixture(true, true);
  const CoverageMatrix matrix = build_coverage(fixture.model());
  ASSERT_EQ(matrix.threats.size(), 1u);
  EXPECT_EQ(matrix.threats[0].threat, "link-spoof");
  EXPECT_EQ(matrix.threats[0].treatment, "avoid");
  EXPECT_EQ(matrix.threats[0].detections,
            (std::vector<std::string>{"spoof-detector"}));
  EXPECT_EQ(matrix.threats[0].scenarios, (std::vector<std::string>{"spoof-demo"}));
  EXPECT_TRUE(matrix.dead_rules.empty());
  EXPECT_TRUE(matrix.orphan_scenarios.empty());
}

TEST(CoverageMatrixTest, JsonReportShapeAndDeterminism) {
  const CvFixture fixture(true, false);
  const auto render = [&] {
    return render_coverage_json(build_coverage(fixture.model()), fixture.model());
  };
  const std::string report = render();
  EXPECT_EQ(report, render());  // byte-identical across runs

  const auto parsed = Json::parse(report);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->find("threats"), nullptr);
  ASSERT_NE(parsed->find("rules"), nullptr);
  ASSERT_NE(parsed->find("scenarios"), nullptr);
  const Json* summary = parsed->find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("threats")->as_number(), 1.0);
  EXPECT_EQ(summary->find("detected")->as_number(), 1.0);
  EXPECT_EQ(summary->find("exercised")->as_number(), 0.0);
}

// --- drift guards over the shipped tables ---------------------------------

TEST(RuleTableSync, DetectionRuleTableMapsOnlyCataloguedThreats) {
  const auto tara = risk::build_forestry_tara();
  std::set<std::string> catalogued;
  for (const auto& result : tara.results()) catalogued.insert(result.scenario.name);

  std::set<std::string> seen_ids;
  for (const ids::DetectionRuleInfo& rule : ids::detection_rule_table()) {
    EXPECT_TRUE(seen_ids.insert(rule.id).second) << "duplicate rule " << rule.id;
    EXPECT_FALSE(rule.threats.empty()) << rule.id << " maps no threat";
    for (const std::string& threat : rule.threats) {
      EXPECT_TRUE(catalogued.contains(threat))
          << "rule " << rule.id << " maps unknown threat '" << threat << "'";
    }
  }
  // Ordered by id so the table (and every report built from it) is
  // deterministic by construction.
  EXPECT_TRUE(std::is_sorted(seen_ids.begin(), seen_ids.end()));
}

TEST(RuleTableSync, ScenarioRegistryMapsOnlyCataloguedThreats) {
  const auto tara = risk::build_forestry_tara();
  std::set<std::string> catalogued;
  for (const auto& result : tara.results()) catalogued.insert(result.scenario.name);

  std::set<std::string> seen_names;
  for (const ExecutableScenario& scenario : scenario_registry()) {
    EXPECT_TRUE(seen_names.insert(scenario.name).second)
        << "duplicate scenario " << scenario.name;
    EXPECT_FALSE(scenario.location.empty());
    EXPECT_FALSE(scenario.threats.empty()) << scenario.name << " maps no threat";
    for (const std::string& threat : scenario.threats) {
      EXPECT_TRUE(catalogued.contains(threat))
          << "scenario " << scenario.name << " exercises unknown threat '"
          << threat << "'";
    }
  }
}

TEST(RuleTableSync, ShippedTablesProduceNoDeadOrOrphanFindings) {
  // The committed rule table and scenario registry must stay live against
  // the committed threat catalogue — CV003/CV004 on the real model means
  // someone edited one side without the other.
  const auto tara = risk::build_forestry_tara();
  const auto& rules = ids::detection_rule_table();
  const auto& scenarios = scenario_registry();
  Model model;
  model.tara = &tara;
  model.ids_rules = &rules;
  model.scenarios = &scenarios;
  const auto findings = Analyzer{}.analyze(model);
  EXPECT_TRUE(of_rule(findings, "CV003").empty());
  EXPECT_TRUE(of_rule(findings, "CV004").empty());
}

}  // namespace
}  // namespace agrarsec::analysis
