// The minimal deterministic JSON used by the analyzer reports and the
// baseline file: insertion-ordered objects, stable serialization, strict
// parsing.
#include <gtest/gtest.h>

#include "analysis/json.h"

namespace agrarsec::analysis {
namespace {

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json object = Json::object();
  object.set("zulu", Json::number(1));
  object.set("alpha", Json::number(2));
  EXPECT_EQ(object.serialize(0), "{\"zulu\":1,\"alpha\":2}");
  object.set("zulu", Json::number(3));  // replace in place, keep position
  EXPECT_EQ(object.serialize(0), "{\"zulu\":3,\"alpha\":2}");
}

TEST(Json, IntegralNumbersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Json::number(42).serialize(0), "42");
  EXPECT_EQ(Json::number(-1).serialize(0), "-1");
  EXPECT_EQ(Json::number(1.5).serialize(0), "1.5");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").serialize(0), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"version": 1, "items": ["a", "b"], "flag": true, "none": null})";
  std::string error;
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->is(Json::Kind::kObject));
  ASSERT_NE(parsed->find("version"), nullptr);
  EXPECT_EQ(parsed->find("version")->as_number(), 1.0);
  ASSERT_NE(parsed->find("items"), nullptr);
  ASSERT_TRUE(parsed->find("items")->is(Json::Kind::kArray));
  ASSERT_EQ(parsed->find("items")->items().size(), 2u);
  EXPECT_EQ(parsed->find("items")->items()[0].as_string(), "a");
  EXPECT_TRUE(parsed->find("flag")->as_bool());
  EXPECT_TRUE(parsed->find("none")->is(Json::Kind::kNull));
}

TEST(Json, ParseUnicodeEscapes) {
  std::string error;
  const auto parsed = Json::parse("\"\\u00e4A\"", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->as_string(),
            "\xc3\xa4"
            "A");  // UTF-8 for U+00E4
}

TEST(Json, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(Json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(Json::parse("1 trailing", &error).has_value());
  EXPECT_FALSE(Json::parse("'single'", &error).has_value());
}

TEST(Json, SerializeParseSerializeIsStable) {
  Json inner = Json::array();
  inner.push(Json::string("x"));
  inner.push(Json::number(2));
  Json object = Json::object();
  object.set("findings", std::move(inner));
  object.set("nested", Json::object());
  const std::string once = object.serialize(2);
  std::string error;
  const auto reparsed = Json::parse(once, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->serialize(2), once);
}

}  // namespace
}  // namespace agrarsec::analysis
