// Regression tests for the per-sensor RNG streams: every perception
// sensor draws from its own fork_stream keyed by sender id, so growing
// the fleet never perturbs another unit's noise draws, and the stepping
// loop leaves the shared worksite stream untouched.
#include <gtest/gtest.h>

#include "integration/secured_worksite.h"

namespace agrarsec {
namespace {

integration::SecuredWorksiteConfig small_site(std::size_t forwarders) {
  integration::SecuredWorksiteConfig config;
  config.seed = 7;
  config.forwarder_count = forwarders;
  return config;
}

void add_workers(integration::SecuredWorksite& site, int count) {
  for (int i = 0; i < count; ++i) {
    const double offset = 15.0 + 10.0 * i;
    site.worksite().add_worker("worker-" + std::to_string(i), {60 + offset, 60},
                               {80, 80});
  }
}

TEST(SenseRngTest, UnitStreamsUnaffectedByFleetSize) {
  // The primary's sense stream is a pure function of (seed, sender id):
  // the same site seed must hand it identical draws whether the fleet has
  // one member or three.
  integration::SecuredWorksite solo(small_site(1));
  integration::SecuredWorksite fleet(small_site(3));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(solo.unit_sense_rng(0).next_u64(), fleet.unit_sense_rng(0).next_u64())
        << "draw " << i;
  }
}

TEST(SenseRngTest, UnitStreamsAreMutuallyIndependent) {
  integration::SecuredWorksite site(small_site(3));
  // Distinct keys must give distinct streams (first draws differing is a
  // necessary sanity signal, not a correlation proof).
  const std::uint64_t a = site.unit_sense_rng(0).next_u64();
  const std::uint64_t b = site.unit_sense_rng(1).next_u64();
  const std::uint64_t c = site.unit_sense_rng(2).next_u64();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(SenseRngTest, SteppingConsumesNoSharedWorksiteRandomness) {
  // Two identical sites; only one is stepped. The shared worksite stream
  // must come out in the same state either way — sensing runs entirely on
  // the per-unit streams now (the old behaviour drew drone + N forwarder
  // sense calls from it every step, coupling all units' randomness).
  integration::SecuredWorksite stepped(small_site(2));
  integration::SecuredWorksite idle(small_site(2));
  add_workers(stepped, 2);
  stepped.run_for(2 * core::kSecond);
  EXPECT_EQ(stepped.worksite().rng().next_u64(), idle.worksite().rng().next_u64());
}

TEST(SenseRngTest, RunIsReproducibleFromSeed) {
  integration::SecuredWorksite a(small_site(2));
  integration::SecuredWorksite b(small_site(2));
  add_workers(a, 2);
  add_workers(b, 2);
  a.run_for(2 * core::kSecond);
  b.run_for(2 * core::kSecond);
  EXPECT_EQ(a.security_metrics().detection_reports_sent,
            b.security_metrics().detection_reports_sent);
  EXPECT_EQ(a.security_metrics().detection_reports_accepted,
            b.security_metrics().detection_reports_accepted);
  EXPECT_EQ(a.safety_outcome().person_covered_steps,
            b.safety_outcome().person_covered_steps);
}

}  // namespace
}  // namespace agrarsec
