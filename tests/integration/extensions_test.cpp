// Integration coverage for the platform extensions: audit trail,
// emergent-behaviour monitoring, SOTIF evidence collection and channel
// agility.
#include <gtest/gtest.h>

#include "integration/secured_worksite.h"

namespace agrarsec::integration {
namespace {

SecuredWorksiteConfig occluded_config(std::uint64_t seed) {
  SecuredWorksiteConfig config;
  config.seed = seed;
  config.worksite.forest.boulders_per_hectare = 64;
  config.worksite.forest.brush_per_hectare = 96;
  config.worksite.forest.boulder_height_mean = 2.2;
  config.worksite.forest.brush_height_mean = 1.8;
  return config;
}

TEST(Extensions, AuditLogRecordsEstops) {
  SecuredWorksite site{occluded_config(31)};
  for (int i = 0; i < 3; ++i) {
    site.worksite().add_worker("w" + std::to_string(i), {70.0 + 10 * i, 60},
                               {85, 85});
  }
  site.run_for(10 * core::kMinute);
  ASSERT_GT(site.monitor().stats().estops, 0u);
  EXPECT_GE(site.audit().by_category("estop").size(),
            site.monitor().stats().estops);
  // The chain verifies against the signed checkpoint with the machine's
  // public key only.
  const auto broken = secure::AuditLog::verify(
      site.audit().entries(), site.audit().checkpoint(), site.audit().public_key());
  EXPECT_FALSE(broken.has_value());
  EXPECT_GT(site.audit().size(), 0u);
}

TEST(Extensions, AuditLogRecordsDegrades) {
  SecuredWorksiteConfig config = occluded_config(32);
  config.monitor.cover_timeout = 2 * core::kSecond;
  SecuredWorksite site{config};
  site.run_for(core::kMinute);

  net::Jammer jammer;
  jammer.position = {150, 150};
  jammer.radius_m = 1000.0;
  jammer.effectiveness = 1.0;
  jammer.active = true;
  site.radio().add_jammer(jammer);
  site.run_for(10 * core::kSecond);
  EXPECT_FALSE(site.audit().by_category("degraded").empty());
}

TEST(Extensions, EmergentOscillationUnderGhostAttack) {
  // Ghost injection causes repeated stop/restart cycles — an emergent
  // stop-start oscillation no single constituent intends.
  SecuredWorksiteConfig config = occluded_config(33);
  config.monitor.restart_delay = 2 * core::kSecond;
  config.fusion.freshness_window = 500;  // tracks die quickly once clear
  SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  // Intermittent ghost injection (relay attacker pulsing the emitter):
  // each pulse stops the machine, each gap lets it restart.
  sensors::SensorAttack on;
  on.ghosts = 2;
  on.ghost_radius_m = 9.0;
  const sensors::SensorAttack off{};
  for (int cycle = 0; cycle < 8; ++cycle) {
    site.attack_forwarder_sensor(on);
    site.run_for(3 * core::kSecond);
    site.attack_forwarder_sensor(off);
    site.run_for(5 * core::kSecond);
  }

  EXPECT_GE(site.monitor().stats().estops, 4u);
  EXPECT_GE(site.emergent().count("stop-start-oscillation"), 1u);
}

TEST(Extensions, NoEmergentFindingsInCleanRun) {
  SecuredWorksite site{occluded_config(34)};
  site.run_for(5 * core::kMinute);
  EXPECT_EQ(site.emergent().count("stop-start-oscillation"), 0u);
  EXPECT_EQ(site.emergent().count("cascade-degradation"), 0u);
}

TEST(Extensions, SotifAttributesBlindSteps) {
  SecuredWorksiteConfig config = occluded_config(35);
  config.drone_enabled = false;  // force ground-level blind spots
  SecuredWorksite site{config};
  for (int i = 0; i < 4; ++i) {
    site.worksite().add_worker("w" + std::to_string(i), {70.0 + 10 * i, 60},
                               {85, 85});
  }
  site.run_for(10 * core::kMinute);

  const auto& sotif = site.sotif();
  // Blind steps occurred and were attributed to concrete conditions.
  std::uint64_t attributed = 0;
  for (const auto& condition : sotif.conditions()) {
    attributed += sotif.evidence(condition.id).encounters;
  }
  const auto blind = site.safety_outcome().person_zone_steps -
                     site.safety_outcome().person_covered_steps;
  EXPECT_EQ(attributed, blind);
  // Occlusion conditions (not just random dropouts) are present.
  const auto occluded = sotif.evidence("occlusion-boulder").encounters +
                        sotif.evidence("occlusion-brush").encounters +
                        sotif.evidence("occlusion-stems").encounters +
                        sotif.evidence("occlusion-terrain").encounters;
  EXPECT_GT(occluded, 0u);
  // All conditions seen were known at design time (no area-3 surprises in
  // this catalogue-complete setup).
  const auto census = sotif.census();
  EXPECT_EQ(census.unknown_safe + census.unknown_hazardous, 0u);
}

TEST(Extensions, SotifWeatherAttribution) {
  SecuredWorksiteConfig config = occluded_config(36);
  config.drone_enabled = false;
  config.worksite.weather = sim::Weather::kFog;
  SecuredWorksite site{config};
  for (int i = 0; i < 3; ++i) {
    site.worksite().add_worker("w" + std::to_string(i), {70.0 + 10 * i, 60},
                               {85, 85});
  }
  site.run_for(5 * core::kMinute);
  const auto blind = site.safety_outcome().person_zone_steps -
                     site.safety_outcome().person_covered_steps;
  if (blind > 0) {
    EXPECT_EQ(site.sotif().evidence("weather-fog").encounters, blind);
  }
}

TEST(Extensions, FrequencyHoppingChannelsVary) {
  SecuredWorksiteConfig config;
  config.frequency_hopping = true;
  config.hop_channels = 8;
  SecuredWorksite site{config};
  std::set<std::uint32_t> seen;
  for (core::SimTime t = 0; t < 10 * core::kSecond; t += 200) {
    seen.insert(site.channel_at(t));
  }
  EXPECT_GE(seen.size(), 4u);
  for (std::uint32_t ch : seen) {
    EXPECT_GE(ch, config.radio_channel);
    EXPECT_LT(ch, config.radio_channel + config.hop_channels);
  }
  // Constant channel without hopping.
  SecuredWorksiteConfig fixed;
  SecuredWorksite site2{fixed};
  EXPECT_EQ(site2.channel_at(0), site2.channel_at(12345));
}

TEST(Extensions, HoppingDefeatsNarrowbandJammer) {
  auto run = [](bool hopping) {
    SecuredWorksiteConfig config;
    config.seed = 37;
    config.frequency_hopping = hopping;
    config.monitor.cover_timeout = 2 * core::kSecond;
    SecuredWorksite site{config};
    site.run_for(30 * core::kSecond);

    net::Jammer jammer;  // narrowband: only the base channel
    jammer.position = {150, 150};
    jammer.radius_m = 1000.0;
    jammer.effectiveness = 1.0;
    jammer.channel = config.radio_channel;
    jammer.active = true;
    site.radio().add_jammer(jammer);
    site.run_for(core::kMinute);
    return site.monitor().cover_fresh(site.worksite().clock().now());
  };
  EXPECT_FALSE(run(false));  // fixed channel: cover killed
  EXPECT_TRUE(run(true));    // hopping: most slots get through
}

TEST(Extensions, GhostStopsAppearInAuditTrail) {
  SecuredWorksiteConfig config = occluded_config(38);
  SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);
  sensors::SensorAttack attack;
  attack.ghosts = 4;
  attack.ghost_radius_m = 9.0;
  site.attack_forwarder_sensor(attack);
  site.run_for(20 * core::kSecond);
  EXPECT_FALSE(site.audit().by_category("estop").empty());
}


TEST(Extensions, FloodCollapsesIntoFewIncidents) {
  SecuredWorksiteConfig config;
  config.seed = 39;
  SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  auto& attacker = site.add_attacker({150, 150}, 2);
  attacker.flood(site.radio(), site.worksite().clock().now(), 3, 400);
  site.run_for(10 * core::kSecond);

  // Hundreds of alerts, but only a handful of operator-facing incidents.
  EXPECT_GT(site.ids().total_alerts(), 100u);
  EXPECT_LE(site.incidents().incidents().size(), 5u);
  EXPECT_GE(site.incidents().incidents().size(), 1u);

  // A quiet stretch closes them.
  site.run_for(core::kMinute);
  EXPECT_EQ(site.incidents().open_count(), 0u);
}


TEST(Extensions, FleetOfForwardersOperates) {
  SecuredWorksiteConfig config;
  config.seed = 40;
  config.forwarder_count = 3;
  SecuredWorksite site{config};
  site.worksite().add_worker("w0", {80, 60}, {90, 90});
  site.worksite().add_worker("w1", {95, 70}, {90, 90});
  ASSERT_EQ(site.forwarder_count(), 3u);
  // Distinct machines and nodes.
  EXPECT_NE(site.forwarder_id(0), site.forwarder_id(1));
  EXPECT_NE(site.forwarder_id(1), site.forwarder_id(2));

  site.run_for(10 * core::kMinute);
  // The fleet moves more volume than a single machine on the same site.
  SecuredWorksiteConfig solo = config;
  solo.forwarder_count = 1;
  SecuredWorksite single{solo};
  single.worksite().add_worker("w0", {80, 60}, {90, 90});
  single.worksite().add_worker("w1", {95, 70}, {90, 90});
  single.run_for(10 * core::kMinute);
  EXPECT_GE(site.worksite().delivered_m3(), single.worksite().delivered_m3());
  // All fleet members received authenticated drone cover.
  EXPECT_GT(site.security_metrics().detection_reports_sent, 0u);
  EXPECT_EQ(site.security_metrics().spoofed_messages_accepted, 0u);
}

TEST(Extensions, FleetMonitorsIndependent) {
  SecuredWorksiteConfig config;
  config.seed = 41;
  config.forwarder_count = 2;
  SecuredWorksite site{config};
  site.run_for(10 * core::kSecond);

  // Ghost-attack only the second machine's sensor: it stops, the primary
  // keeps operating.
  sensors::SensorAttack attack;
  attack.ghosts = 4;
  attack.ghost_radius_m = 9.0;
  site.attack_forwarder_sensor(attack, 1);
  site.run_for(10 * core::kSecond);

  EXPECT_GT(site.monitor(1).stats().estops, 0u);
  EXPECT_EQ(site.monitor(0).stats().estops, 0u);
  EXPECT_TRUE(site.worksite().machine(site.forwarder_id(1))->stopped());
  EXPECT_FALSE(site.worksite().machine(site.forwarder_id(0))->stopped());
}

}  // namespace
}  // namespace agrarsec::integration
