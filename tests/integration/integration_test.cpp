// End-to-end behaviour of the secured worksite — including the paper's
// headline claims: the drone viewpoint reduces occlusion misses (Fig. 2),
// attacks on plaintext comms cause unsafe behaviour (§III-B), and the
// security controls restore safety.
#include <gtest/gtest.h>

#include "integration/secured_worksite.h"

namespace agrarsec::integration {
namespace {

SecuredWorksiteConfig base_config(std::uint64_t seed) {
  SecuredWorksiteConfig config;
  config.seed = seed;
  config.worksite.forest.trees_per_hectare = 250;
  config.worksite.forest.boulders_per_hectare = 30;  // occlusion-rich stand
  config.worksite.forest.brush_per_hectare = 80;
  return config;
}

void add_workers(SecuredWorksite& site, int count) {
  // Anchor workers where the forwarder operates so encounters happen.
  for (int i = 0; i < count; ++i) {
    const double offset = 15.0 + 10.0 * i;
    site.worksite().add_worker("worker-" + std::to_string(i),
                               {60 + offset, 60}, {80, 80});
  }
}

// Regression: the flight-recorder ring used to be a hard-coded 4096
// default with no way through SecuredWorksiteConfig — long campaigns
// silently dropped early events at a size nobody chose. The configured
// capacity must reach the ring and govern wraparound.
TEST(SecuredWorksite, FlightRecorderCapacityIsConfigurable) {
  SecuredWorksiteConfig config = base_config(7);
  config.telemetry.flight_capacity = 2;
  SecuredWorksite site{config};
  obs::FlightRecorder& rec = site.telemetry().recorder();
  ASSERT_EQ(rec.capacity(), 2u);

  const std::uint64_t base_total = rec.total_recorded();
  rec.record(1, "test", "a");
  rec.record(2, "test", "b");
  rec.record(3, "test", "c");
  EXPECT_EQ(rec.size(), 2u);  // capacity-2 ring wrapped as configured
  EXPECT_EQ(rec.total_recorded(), base_total + 3);
  EXPECT_GE(rec.dropped(), 1u);

  // Default stays 4096.
  SecuredWorksite default_site{base_config(7)};
  EXPECT_EQ(default_site.telemetry().recorder().capacity(), 4096u);
}

// The production site must feed the obs histograms: separation distances
// into the deterministic export, step wall time into the full artifact
// (and ONLY the full artifact — "wall." instruments are timing-dependent).
TEST(SecuredWorksite, TelemetryExportCarriesHistograms) {
  SecuredWorksiteConfig config = base_config(8);
  // Fast production so the forwarder starts moving (and passing the
  // workers) well inside the short run.
  config.worksite.harvester_output_m3_per_min = 30.0;
  SecuredWorksite site{config};
  add_workers(site, 3);
  site.run_for(5 * core::kMinute);

  const std::string det = site.telemetry().deterministic_json();
  EXPECT_NE(det.find("\"worksite.separation_m\""), std::string::npos);
  EXPECT_EQ(det.find("wall."), std::string::npos);

  const std::string full = site.telemetry().to_json();
  EXPECT_NE(full.find("\"worksite.separation_m\""), std::string::npos);
  EXPECT_NE(full.find("\"wall.worksite_step_us\""), std::string::npos);
  EXPECT_NE(full.find("\"wall.secured_step_us\""), std::string::npos);

  // Both histograms actually received samples; the separation histogram
  // saw exactly the samples the streaming stats did.
  obs::Registry& reg = site.telemetry().registry();
  EXPECT_EQ(reg.histogram("worksite.separation_m", 0, 1, 1).count(),
            site.worksite().separation_stats().count());
  EXPECT_GT(site.worksite().separation_stats().count(), 0u);
  EXPECT_GT(reg.histogram("wall.secured_step_us", 0, 1, 1).count(), 0u);
}

TEST(SecuredWorksite, RunsAndMovesLogs) {
  SecuredWorksite site{base_config(1)};
  site.run_for(20 * core::kMinute);
  EXPECT_GT(site.worksite().delivered_m3(), 0.0);
}

TEST(SecuredWorksite, DroneReportsFlowOverSecureChannel) {
  SecuredWorksite site{base_config(2)};
  add_workers(site, 3);
  site.run_for(5 * core::kMinute);
  EXPECT_GT(site.security_metrics().detection_reports_sent, 0u);
  EXPECT_GT(site.security_metrics().detection_reports_accepted, 0u);
  EXPECT_EQ(site.security_metrics().spoofed_messages_accepted, 0u);
}

TEST(SecuredWorksite, EncountersProduceDetections) {
  SecuredWorksite site{base_config(3)};
  add_workers(site, 4);
  site.run_for(15 * core::kMinute);
  const SafetyOutcome& outcome = site.safety_outcome();
  EXPECT_GT(outcome.encounters, 0u);
  EXPECT_GT(outcome.time_to_detect_ms.size(), 0u);
}

TEST(SecuredWorksite, DroneImprovesZoneCoverage) {
  // The Fig. 2 claim, as a testable property over matched seeds: per-step
  // coverage of people inside the warning zone is higher with the drone.
  std::uint64_t zone_with = 0, covered_with = 0, zone_without = 0,
                covered_without = 0;
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    SecuredWorksiteConfig with_drone = base_config(seed);
    with_drone.worksite.forest.boulders_per_hectare = 60;
    SecuredWorksiteConfig no_drone = with_drone;
    no_drone.drone_enabled = false;

    SecuredWorksite a{with_drone};
    add_workers(a, 4);
    a.run_for(10 * core::kMinute);
    zone_with += a.safety_outcome().person_zone_steps;
    covered_with += a.safety_outcome().person_covered_steps;

    SecuredWorksite b{no_drone};
    add_workers(b, 4);
    b.run_for(10 * core::kMinute);
    zone_without += b.safety_outcome().person_zone_steps;
    covered_without += b.safety_outcome().person_covered_steps;
  }
  ASSERT_GT(zone_with, 0u);
  ASSERT_GT(zone_without, 0u);
  const double cov_with = static_cast<double>(covered_with) / zone_with;
  const double cov_without = static_cast<double>(covered_without) / zone_without;
  EXPECT_GE(cov_with, cov_without);
}

TEST(SecuredWorksite, PlaintextSpoofedEstopAccepted) {
  SecuredWorksiteConfig config = base_config(5);
  config.secure_links = false;
  config.ids_enabled = false;
  SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  auto& attacker = site.add_attacker({100, 100}, 2);
  attacker.spoof(site.radio(), site.worksite().clock().now(), 3 /*operator*/,
                 net::MessageType::kEstopCommand, net::EstopBody{1, 0}.encode(),
                 site.forwarder_node());
  site.run_for(5 * core::kSecond);

  EXPECT_GT(site.security_metrics().spoofed_messages_accepted, 0u);
  EXPECT_TRUE(site.worksite().machine(site.forwarder_id())->stopped());
}

TEST(SecuredWorksite, SecureLinksRejectSpoofedEstop) {
  SecuredWorksiteConfig config = base_config(6);
  config.secure_links = true;
  config.ids_enabled = false;  // isolate the crypto defence
  SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  auto& attacker = site.add_attacker({100, 100}, 2);
  attacker.spoof(site.radio(), site.worksite().clock().now(), 3,
                 net::MessageType::kEstopCommand, net::EstopBody{1, 0}.encode(),
                 site.forwarder_node());
  site.run_for(5 * core::kSecond);

  EXPECT_EQ(site.security_metrics().spoofed_messages_accepted, 0u);
  EXPECT_FALSE(site.worksite().machine(site.forwarder_id())->stopped());
}

TEST(SecuredWorksite, ReplayedDetectionReportRejectedBySession) {
  SecuredWorksiteConfig config = base_config(7);
  config.secure_links = true;
  config.ids_enabled = false;
  SecuredWorksite site{config};
  add_workers(site, 3);
  site.run_for(2 * core::kMinute);
  const auto rejected_before = site.security_metrics().detection_reports_rejected;

  auto& attacker = site.add_attacker({100, 100}, 2);
  // Replay any captured drone frame: the record layer must refuse it.
  int replays = 0;
  const NodeId forwarder = site.forwarder_node();
  auto is_drone_record = [forwarder](const net::Frame& f) {
    return f.dst == forwarder;  // drone -> forwarder records
  };
  for (int i = 0; i < 10; ++i) {
    if (attacker.replay_latest(site.radio(), site.worksite().clock().now(),
                               is_drone_record)) {
      ++replays;
    }
    site.run_for(core::kSecond);
  }
  ASSERT_GT(replays, 0);
  EXPECT_GT(site.security_metrics().detection_reports_rejected, rejected_before);
}

TEST(SecuredWorksite, JammingDegradesForwarderViaCoverLoss) {
  SecuredWorksiteConfig config = base_config(8);
  config.monitor.cover_timeout = 2 * core::kSecond;
  SecuredWorksite site{config};
  site.run_for(1 * core::kMinute);  // cover established

  net::Jammer jammer;
  jammer.position = site.worksite().machine(site.forwarder_id())->position();
  jammer.radius_m = 1000.0;  // blanket the site
  jammer.effectiveness = 1.0;
  jammer.active = true;
  site.radio().add_jammer(jammer);
  site.run_for(10 * core::kSecond);

  EXPECT_GE(site.monitor().stats().cover_losses, 1u);
  const auto mode = site.worksite().machine(site.forwarder_id())->mode();
  EXPECT_TRUE(mode == sim::DriveMode::kDegraded || mode == sim::DriveMode::kStopped);
}

TEST(SecuredWorksite, IdsFlagsFloodAttack) {
  SecuredWorksiteConfig config = base_config(9);
  SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  auto& attacker = site.add_attacker({100, 100}, 2);
  for (int burst = 0; burst < 10; ++burst) {
    attacker.spoof(site.radio(), site.worksite().clock().now(), 2,
                   net::MessageType::kHeartbeat, {}, NodeId::invalid());
  }
  attacker.flood(site.radio(), site.worksite().clock().now(), config.radio_channel,
                 300);
  site.run_for(5 * core::kSecond);
  EXPECT_GT(site.ids().total_alerts(), 0u);
}

TEST(SecuredWorksite, GhostDetectionsCauseSpuriousStops) {
  SecuredWorksiteConfig config = base_config(10);
  SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);
  const auto stops_before = site.monitor().stats().estops;

  sensors::SensorAttack attack;
  attack.ghosts = 4;
  attack.ghost_radius_m = 9.0;  // inside the critical zone
  site.attack_forwarder_sensor(attack);
  site.run_for(10 * core::kSecond);
  EXPECT_GT(site.monitor().stats().estops, stops_before);
}

TEST(SecuredWorksite, DeterministicAcrossRuns) {
  auto run = [] {
    SecuredWorksite site{base_config(11)};
    site.worksite().add_worker("w", {80, 60}, {80, 80});
    site.run_for(3 * core::kMinute);
    return std::make_tuple(site.worksite().delivered_m3(),
                           site.security_metrics().detection_reports_sent,
                           site.safety_outcome().encounters);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace agrarsec::integration
