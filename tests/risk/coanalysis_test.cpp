// Safety–security co-analysis: the interplay verdicts.
#include <gtest/gtest.h>

#include "risk/catalog.h"
#include "risk/coanalysis.h"

namespace agrarsec::risk {
namespace {

TEST(CoAnalysis, ForestryModelBuilds) {
  const Tara tara = build_forestry_tara();
  const ForestryCoAnalysis fca = build_forestry_coanalysis(tara);
  EXPECT_EQ(fca.analysis.hazards().size(), 3u);
  EXPECT_GE(fca.analysis.links().size(), 8u);
  EXPECT_GE(fca.bound_threats.size(), 8u);
}

TEST(CoAnalysis, VerdictPerHazard) {
  const Tara tara = build_forestry_tara();
  const ForestryCoAnalysis fca = build_forestry_coanalysis(tara);
  const auto verdicts = fca.analysis.analyze(tara);
  ASSERT_EQ(verdicts.size(), 3u);
  for (const auto& v : verdicts) {
    ASSERT_TRUE(v.achieved.has_value()) << v.hazard.name;
    EXPECT_TRUE(v.safety_ok) << v.hazard.name;  // fault-only view passes
  }
}

TEST(CoAnalysis, AttackDegradesPlBelowRequirement) {
  const Tara tara = build_forestry_tara();
  const ForestryCoAnalysis fca = build_forestry_coanalysis(tara);
  const auto verdicts = fca.analysis.analyze(tara);

  const auto crush = std::find_if(verdicts.begin(), verdicts.end(),
                                  [](const HazardVerdict& v) {
                                    return v.hazard.name == "person-struck-by-forwarder";
                                  });
  ASSERT_NE(crush, verdicts.end());
  ASSERT_TRUE(crush->under_attack.has_value());
  // Channel-disabling attacks collapse Cat 3 -> PL b < required PL d.
  EXPECT_FALSE(safety::satisfies(*crush->under_attack, crush->required));
}

TEST(CoAnalysis, CombinedVerdictRequiresSecurityWhenPlCollapses) {
  const Tara tara = build_forestry_tara();
  const ForestryCoAnalysis fca = build_forestry_coanalysis(tara);
  const auto verdicts = fca.analysis.analyze(tara);
  for (const auto& v : verdicts) {
    if (v.under_attack && !safety::satisfies(*v.under_attack, v.required)) {
      // The combined verdict can only pass through the security leg.
      EXPECT_EQ(v.combined_ok, v.safety_ok && v.security_ok) << v.hazard.name;
    }
  }
}

TEST(CoAnalysis, CriticalThreatsListedWhenCeilingBreached) {
  // Build a tiny co-analysis with a deliberately unmitigated threat.
  ItemDefinition item;
  Asset asset;
  asset.id = AssetId{1};
  asset.name = "link";
  asset.category = AssetCategory::kCommunication;
  item.assets.push_back(asset);

  ThreatScenario t;
  t.id = ThreatId{1};
  t.asset = AssetId{1};
  t.name = "wide-open";
  t.stride = Stride::kSpoofing;
  t.damage.safety = ImpactLevel::kSevere;
  t.potential = AttackPotential{0, 0, 0, 0, 0};

  Tara tara{item, TaraConfig{.reduce_threshold = 99, .avoid_threshold = 99}};
  tara.add_threat(t);
  tara.assess({});  // no controls at all

  CoAnalysis co;
  Hazard h;
  h.name = "h";
  h.severity = safety::Severity::kS2;
  const HazardId hid = co.add_hazard(h);
  ThreatHazardLink link;
  link.threat = ThreatId{1};
  link.hazard = hid;
  co.link(link);

  const auto verdicts = co.analyze(tara);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].security_ok);
  ASSERT_EQ(verdicts[0].critical_threats.size(), 1u);
  EXPECT_EQ(verdicts[0].critical_threats[0], ThreatId{1});
  EXPECT_FALSE(verdicts[0].combined_ok);
}

TEST(CoAnalysis, HazardWithoutLinksPassesOnSafetyAlone) {
  const Tara tara = build_forestry_tara();
  CoAnalysis co;
  Hazard h;
  h.name = "non-cyber-hazard";
  h.severity = safety::Severity::kS1;
  h.frequency = safety::Frequency::kF1;
  h.avoidance = safety::Avoidance::kP1;   // requires PL a
  h.category = safety::Category::kB;
  h.mttfd = safety::MttfdBand::kLow;
  h.dc = safety::DcBand::kNone;
  co.add_hazard(h);
  const auto verdicts = co.analyze(tara);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].safety_ok);
  EXPECT_TRUE(verdicts[0].security_ok);
  EXPECT_TRUE(verdicts[0].combined_ok);
}

TEST(CoAnalysis, S1HazardTolerantCeiling) {
  // Same threat residual risk, S1 hazard passes where S2 fails.
  ItemDefinition item;
  Asset asset;
  asset.id = AssetId{1};
  asset.name = "x";
  item.assets.push_back(asset);

  ThreatScenario t;
  t.id = ThreatId{1};
  t.asset = AssetId{1};
  t.name = "medium-threat";
  t.damage.operational = ImpactLevel::kMajor;
  t.potential = AttackPotential{4, 3, 3, 1, 0};  // 11 -> high feasibility, risk 4

  Tara tara{item, TaraConfig{.reduce_threshold = 99, .avoid_threshold = 99}};
  tara.add_threat(t);
  tara.assess({});

  CoAnalysisConfig config;
  config.ceiling_s1 = 4;
  config.ceiling_s2 = 2;
  CoAnalysis co{config};

  Hazard s1;
  s1.name = "s1";
  s1.severity = safety::Severity::kS1;
  s1.category = safety::Category::k3;
  s1.mttfd = safety::MttfdBand::kHigh;
  s1.dc = safety::DcBand::kMedium;
  const auto s1_id = co.add_hazard(s1);
  Hazard s2 = s1;
  s2.name = "s2";
  s2.severity = safety::Severity::kS2;
  const auto s2_id = co.add_hazard(s2);

  ThreatHazardLink l1{ThreatId{1}, s1_id, LinkKind::kTriggers, {}};
  ThreatHazardLink l2{ThreatId{1}, s2_id, LinkKind::kTriggers, {}};
  co.link(l1);
  co.link(l2);

  const auto verdicts = co.analyze(tara);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].security_ok);   // S1 ceiling 4 >= risk 4
  EXPECT_FALSE(verdicts[1].security_ok);  // S2 ceiling 2 < risk 4
}

}  // namespace
}  // namespace agrarsec::risk
