// Attack-path analysis (ISO 21434 clause 15.7).
#include <gtest/gtest.h>

#include "risk/attack_path.h"

namespace agrarsec::risk {
namespace {

AttackStep cheap(const char* id) { return {id, "", AttackPotential{0, 0, 0, 0, 0}}; }
AttackStep costly(const char* id) { return {id, "", AttackPotential{10, 6, 7, 4, 4}}; }

TEST(AttackPath, CombineSequentialSemantics) {
  const AttackPotential a{4, 3, 0, 1, 4};
  const AttackPotential b{1, 6, 3, 4, 0};
  const AttackPotential c = combine_sequential(a, b);
  EXPECT_EQ(c.elapsed_time, 5);            // additive
  EXPECT_EQ(c.window_of_opportunity, 5);   // additive
  EXPECT_EQ(c.expertise, 6);               // max
  EXPECT_EQ(c.knowledge, 3);               // max
  EXPECT_EQ(c.equipment, 4);               // max
}

TEST(AttackPath, LeafPathIsItself) {
  const auto tree = AttackNode::leaf(costly("x"));
  const auto path = tree->cheapest_path();
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->steps.size(), 1u);
  EXPECT_EQ(path->steps[0].id, "x");
  EXPECT_EQ(path->potential.total(), 31);
}

TEST(AttackPath, OrPicksCheapest) {
  const auto tree = AttackNode::any_of(
      "or", {AttackNode::leaf(costly("expensive")), AttackNode::leaf(cheap("easy"))});
  const auto path = tree->cheapest_path();
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->steps.size(), 1u);
  EXPECT_EQ(path->steps[0].id, "easy");
}

TEST(AttackPath, AndCombinesAllChildren) {
  const auto tree = AttackNode::all_of(
      "and", {AttackNode::leaf({"a", "", {4, 3, 0, 0, 0}}),
              AttackNode::leaf({"b", "", {4, 0, 3, 0, 4}})});
  const auto path = tree->cheapest_path();
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->steps.size(), 2u);
  EXPECT_EQ(path->potential.elapsed_time, 8);
  EXPECT_EQ(path->potential.expertise, 3);
  EXPECT_EQ(path->potential.equipment, 4);
}

TEST(AttackPath, BlockedStepPrunesOrBranch) {
  const auto tree = AttackNode::any_of(
      "or", {AttackNode::leaf(cheap("easy")), AttackNode::leaf(costly("hard"))});
  const auto path = tree->cheapest_path({"easy"});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->steps[0].id, "hard");  // forced onto the expensive branch
}

TEST(AttackPath, BlockedConjunctKillsAndPath) {
  const auto tree = AttackNode::all_of(
      "and", {AttackNode::leaf(cheap("a")), AttackNode::leaf(cheap("b"))});
  EXPECT_FALSE(tree->cheapest_path({"b"}).has_value());
  EXPECT_FALSE(tree->feasibility({"b"}).has_value());
}

TEST(AttackPath, EmptyOrInfeasible) {
  const auto tree = AttackNode::any_of("or", {});
  EXPECT_FALSE(tree->cheapest_path().has_value());
}

TEST(AttackPath, FeasibilityFollowsCheapestPath) {
  const auto tree = AttackNode::any_of(
      "or", {AttackNode::leaf(cheap("easy")), AttackNode::leaf(costly("hard"))});
  EXPECT_EQ(tree->feasibility(), Feasibility::kHigh);
  EXPECT_EQ(tree->feasibility({"easy"}), Feasibility::kVeryLow);
}

TEST(AttackPath, EstopReplayHardensWithCrypto) {
  const auto tree = estop_replay_tree();
  // Without controls: the plaintext replay branch keeps it trivially easy.
  ASSERT_TRUE(tree->feasibility().has_value());
  EXPECT_EQ(*tree->feasibility(), Feasibility::kHigh);
  // Secure channel blocks the plaintext branch: the only path left goes
  // through breaking the session crypto.
  const auto hardened = tree->feasibility({"replay-plaintext"});
  ASSERT_TRUE(hardened.has_value());
  EXPECT_EQ(*hardened, Feasibility::kVeryLow);
}

TEST(AttackPath, MaliciousUpdateNeedsBothFootholdAndInstall) {
  const auto tree = malicious_update_tree();
  const auto base = tree->cheapest_path();
  ASSERT_TRUE(base.has_value());
  // Cheapest path: phish + push-unsigned.
  ASSERT_EQ(base->steps.size(), 2u);
  EXPECT_EQ(base->steps[0].id, "phish-operator");
  EXPECT_EQ(base->steps[1].id, "push-unsigned");

  // Signed firmware blocks push-unsigned; attacker must forge signatures.
  const auto signed_fw = tree->cheapest_path({"push-unsigned"});
  ASSERT_TRUE(signed_fw.has_value());
  EXPECT_EQ(signed_fw->steps[1].id, "forge-signature");
  EXPECT_EQ(feasibility_from_potential(signed_fw->potential),
            Feasibility::kVeryLow);

  // Blocking both install branches makes the scenario infeasible.
  EXPECT_FALSE(
      tree->cheapest_path({"push-unsigned", "forge-signature"}).has_value());
}

TEST(AttackPath, GnssTreePrefersJumpUntilGateExists) {
  const auto tree = gnss_walkoff_tree();
  const auto base = tree->cheapest_path();
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(base->steps.back().id, "fast-jump");
  // The plausibility gate catches jumps: attacker must creep.
  const auto gated = tree->cheapest_path({"fast-jump"});
  ASSERT_TRUE(gated.has_value());
  EXPECT_EQ(gated->steps.back().id, "slow-creep");
  EXPECT_GT(gated->potential.total(), base->potential.total());
}

TEST(AttackPath, FeasibilityNeverImprovesWhenBlockingSteps) {
  // Property: adding blocked steps can only keep or worsen feasibility.
  const AttackNode::Ptr trees[] = {estop_replay_tree(), malicious_update_tree(),
                                   gnss_walkoff_tree()};
  const std::vector<std::string> all_blocks = {
      "replay-plaintext", "push-unsigned", "fast-jump", "phish-operator"};
  for (const auto& tree : trees) {
    const auto before = tree->feasibility();
    const auto after = tree->feasibility(all_blocks);
    if (before && after) {
      EXPECT_LE(static_cast<int>(*after), static_cast<int>(*before));
    }
  }
}

}  // namespace
}  // namespace agrarsec::risk
