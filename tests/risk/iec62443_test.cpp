#include <gtest/gtest.h>

#include "risk/catalog.h"
#include "risk/iec62443.h"

namespace agrarsec::risk {
namespace {

TEST(SlVector, MeetsComponentwise) {
  const SlVector target{2, 2, 2, 2, 2, 2, 2};
  EXPECT_TRUE(sl_meets({3, 2, 2, 2, 2, 2, 2}, target));
  EXPECT_TRUE(sl_meets(target, target));
  EXPECT_FALSE(sl_meets({2, 2, 2, 2, 2, 2, 1}, target));
}

TEST(SlVector, MaxComponentwise) {
  const SlVector a{1, 0, 3, 0, 0, 2, 0};
  const SlVector b{0, 2, 1, 0, 0, 3, 1};
  const SlVector m = sl_max(a, b);
  EXPECT_EQ(m, (SlVector{1, 2, 3, 0, 0, 3, 1}));
}

TEST(SlVector, ToStringReadable) {
  const std::string s = sl_vector_to_string({1, 2, 3, 4, 0, 1, 2});
  EXPECT_NE(s.find("IAC=1"), std::string::npos);
  EXPECT_NE(s.find("RA=2"), std::string::npos);
}

TEST(Countermeasures, CatalogueCoversAllFrs) {
  const auto catalogue = countermeasure_catalogue();
  for (std::size_t fr = 0; fr < kFrCount; ++fr) {
    const bool covered =
        std::any_of(catalogue.begin(), catalogue.end(),
                    [&](const Countermeasure& c) { return c.provides[fr] > 0; });
    EXPECT_TRUE(covered) << "no countermeasure provides "
                         << fr_name(static_cast<Fr>(fr));
  }
}

TEST(ZoneModel, AchievedIsMaxOverInstalled) {
  ZoneModel model;
  Zone z;
  z.name = "test";
  z.countermeasures = {"secure-channel", "ids"};
  model.add_zone(z);
  const auto achieved = model.achieved(model.zones()[0], countermeasure_catalogue());
  EXPECT_EQ(achieved[static_cast<int>(Fr::kIac)], 3);  // from secure-channel
  EXPECT_EQ(achieved[static_cast<int>(Fr::kTre)], 3);  // from ids
  EXPECT_EQ(achieved[static_cast<int>(Fr::kUc)], 0);   // nobody provides
}

TEST(ZoneModel, UnknownCountermeasureThrows) {
  ZoneModel model;
  Zone z;
  z.name = "test";
  z.countermeasures = {"magic-dust"};
  model.add_zone(z);
  EXPECT_THROW((void)model.achieved(model.zones()[0], countermeasure_catalogue()),
               std::invalid_argument);
}

TEST(ZoneModel, GapAnalysisFindsShortfall) {
  ZoneModel model;
  Zone z;
  z.name = "undersecured";
  z.target = SlVector{3, 3, 3, 3, 3, 3, 3};
  z.countermeasures = {"audit-log"};  // provides little
  model.add_zone(z);
  const auto gaps = model.gaps(countermeasure_catalogue());
  EXPECT_GE(gaps.size(), 5u);
  for (const auto& gap : gaps) {
    EXPECT_LT(gap.achieved, gap.target);
    EXPECT_EQ(gap.subject, "zone:undersecured");
  }
  EXPECT_FALSE(model.compliant(countermeasure_catalogue()));
}

TEST(ZoneModel, ForestryModelShape) {
  const ZoneModel model = forestry_zone_model(forestry_item());
  EXPECT_EQ(model.zones().size(), 4u);
  EXPECT_EQ(model.conduits().size(), 3u);
  // Every asset referenced by a zone exists exactly once across zones.
  std::size_t assigned = 0;
  for (const Zone& z : model.zones()) assigned += z.assets.size();
  EXPECT_EQ(assigned, forestry_item().assets.size());
}

TEST(ZoneModel, SafetyZoneHasHighestAvailabilityTarget) {
  const ZoneModel model = forestry_zone_model(forestry_item());
  int safety_ra = -1, data_ra = -1;
  for (const Zone& z : model.zones()) {
    if (z.name == "safety") safety_ra = z.target[static_cast<int>(Fr::kRa)];
    if (z.name == "data") data_ra = z.target[static_cast<int>(Fr::kRa)];
  }
  EXPECT_GT(safety_ra, data_ra);
}

TEST(ZoneModel, ForestryGapsOnlyWhereExpected) {
  // The installed stack should close most targets; report what's open so
  // the hardening backlog stays visible.
  const ZoneModel model = forestry_zone_model(forestry_item());
  const auto gaps = model.gaps(countermeasure_catalogue());
  for (const auto& gap : gaps) {
    // No gap may exceed one level — the design keeps SL-A within 1 of SL-T.
    EXPECT_LE(gap.target - gap.achieved, 1)
        << gap.subject << " " << fr_name(gap.fr) << " target=" << gap.target
        << " achieved=" << gap.achieved;
  }
}

TEST(ZoneModel, ConduitAchievedComputed) {
  const ZoneModel model = forestry_zone_model(forestry_item());
  const auto achieved =
      model.achieved(model.conduits()[0], countermeasure_catalogue());
  EXPECT_GT(achieved[static_cast<int>(Fr::kIac)], 0);
}

}  // namespace
}  // namespace agrarsec::risk
