// ISO 21434 TARA mechanics: feasibility, risk matrix, CAL, treatment.
#include <gtest/gtest.h>

#include "risk/catalog.h"
#include "risk/tara.h"

namespace agrarsec::risk {
namespace {

TEST(Feasibility, PotentialBandsMatchAnnex) {
  EXPECT_EQ(feasibility_from_potential({0, 0, 0, 0, 0}), Feasibility::kHigh);
  EXPECT_EQ(feasibility_from_potential({4, 3, 3, 1, 0}), Feasibility::kHigh);   // 11
  EXPECT_EQ(feasibility_from_potential({4, 6, 3, 1, 0}), Feasibility::kMedium); // 14
  EXPECT_EQ(feasibility_from_potential({10, 6, 3, 1, 0}), Feasibility::kLow);   // 20
  EXPECT_EQ(feasibility_from_potential({19, 8, 3, 1, 0}), Feasibility::kVeryLow);
}

TEST(RiskMatrix, CornersAndMonotonicity) {
  EXPECT_EQ(risk_value(ImpactLevel::kNegligible, Feasibility::kVeryLow), 1);
  EXPECT_EQ(risk_value(ImpactLevel::kSevere, Feasibility::kHigh), 5);
  // Monotone in both dimensions.
  for (int i = 0; i < 4; ++i) {
    for (int f = 0; f + 1 < 4; ++f) {
      EXPECT_LE(risk_value(static_cast<ImpactLevel>(i), static_cast<Feasibility>(f)),
                risk_value(static_cast<ImpactLevel>(i), static_cast<Feasibility>(f + 1)));
    }
  }
  for (int f = 0; f < 4; ++f) {
    for (int i = 0; i + 1 < 4; ++i) {
      EXPECT_LE(risk_value(static_cast<ImpactLevel>(i), static_cast<Feasibility>(f)),
                risk_value(static_cast<ImpactLevel>(i + 1), static_cast<Feasibility>(f)));
    }
  }
}

TEST(Cal, RemoteSevereIsCal4) {
  EXPECT_EQ(determine_cal(ImpactLevel::kSevere, AttackVector::kAdjacent), Cal::kCal4);
  EXPECT_EQ(determine_cal(ImpactLevel::kSevere, AttackVector::kNetwork), Cal::kCal4);
}

TEST(Cal, PhysicalAccessLowersLevel) {
  EXPECT_EQ(determine_cal(ImpactLevel::kSevere, AttackVector::kPhysical), Cal::kCal3);
  EXPECT_EQ(determine_cal(ImpactLevel::kModerate, AttackVector::kLocal), Cal::kCal1);
  EXPECT_EQ(determine_cal(ImpactLevel::kNegligible, AttackVector::kPhysical), Cal::kCal1);
}

TEST(DamageScenario, MaxLevel) {
  DamageScenario d;
  d.safety = ImpactLevel::kModerate;
  d.privacy = ImpactLevel::kSevere;
  EXPECT_EQ(d.max_level(), ImpactLevel::kSevere);
}

TEST(ControlCatalogue, CoversAllStrideClasses) {
  const auto controls = control_catalogue();
  EXPECT_GE(controls.size(), 6u);
  for (int s = 0; s < 6; ++s) {
    const auto stride = static_cast<Stride>(s);
    const bool covered = std::any_of(
        controls.begin(), controls.end(), [&](const Control& c) {
          return std::find(c.mitigates.begin(), c.mitigates.end(), stride) !=
                 c.mitigates.end();
        });
    EXPECT_TRUE(covered) << "no control mitigates " << stride_name(stride);
  }
}

TEST(Item, ForestryItemWellFormed) {
  const ItemDefinition item = forestry_item();
  EXPECT_GE(item.assets.size(), 10u);
  EXPECT_NE(item.find("estop-function"), nullptr);
  EXPECT_NE(item.find("gnss-navigation"), nullptr);
  EXPECT_EQ(item.find("no-such-asset"), nullptr);
  // Ids resolvable both ways.
  for (const Asset& a : item.assets) {
    EXPECT_EQ(item.find(a.id), item.find(a.name));
  }
}

TEST(Catalog, ThreatsCoverAllEightCharacteristics) {
  const ItemDefinition item = forestry_item();
  const auto threats = forestry_threats(item);
  EXPECT_GE(threats.size(), 20u);

  const auto characteristics = table1_characteristics();
  ASSERT_EQ(characteristics.size(), 8u);
  for (const auto& c : characteristics) {
    const bool covered =
        std::any_of(threats.begin(), threats.end(), [&](const ThreatScenario& t) {
          return t.characteristic == c.name;
        });
    EXPECT_TRUE(covered) << "no threat tagged '" << c.name << "'";
  }
}

TEST(Catalog, ThreatsReferenceValidAssets) {
  const ItemDefinition item = forestry_item();
  for (const auto& t : forestry_threats(item)) {
    EXPECT_NE(item.find(t.asset), nullptr) << t.name;
  }
}

TEST(Tara, AssessProducesResultForEveryThreat) {
  const Tara tara = build_forestry_tara();
  EXPECT_EQ(tara.results().size(), forestry_threats(forestry_item()).size());
}

TEST(Tara, ControlsReduceRiskForTreatedThreats) {
  const Tara tara = build_forestry_tara();
  bool any_reduced = false;
  for (const auto& r : tara.results()) {
    EXPECT_LE(r.residual_risk, r.initial_risk) << r.scenario.name;
    if (r.treatment == Treatment::kReduce || r.treatment == Treatment::kAvoid) {
      EXPECT_FALSE(r.applied_controls.empty()) << r.scenario.name;
    }
    if (r.residual_risk < r.initial_risk) any_reduced = true;
  }
  EXPECT_TRUE(any_reduced);
}

TEST(Tara, ResidualFeasibilityNeverHigher) {
  const Tara tara = build_forestry_tara();
  for (const auto& r : tara.results()) {
    EXPECT_LE(static_cast<int>(r.residual_feasibility),
              static_cast<int>(r.initial_feasibility))
        << r.scenario.name;
  }
}

TEST(Tara, SafetyCriticalThreatsGetHighCal) {
  const Tara tara = build_forestry_tara();
  for (const auto& r : tara.results()) {
    if (r.scenario.damage.safety == ImpactLevel::kSevere &&
        r.vector != AttackVector::kPhysical && r.vector != AttackVector::kLocal) {
      EXPECT_EQ(r.cal, Cal::kCal4) << r.scenario.name;
    }
  }
  EXPECT_EQ(tara.max_cal(), Cal::kCal4);
}

TEST(Tara, PlaintextEavesdroppingIsHighFeasibility) {
  const Tara tara = build_forestry_tara();
  const auto it = std::find_if(
      tara.results().begin(), tara.results().end(),
      [](const AssessedThreat& t) { return t.scenario.name == "link-eavesdropping"; });
  ASSERT_NE(it, tara.results().end());
  EXPECT_EQ(it->initial_feasibility, Feasibility::kHigh);
  // Secure channel pushes it down.
  EXPECT_LT(static_cast<int>(it->residual_feasibility),
            static_cast<int>(Feasibility::kHigh));
}

TEST(Tara, CountAtOrAbove) {
  const Tara tara = build_forestry_tara();
  EXPECT_GE(tara.count_at_or_above(1, false), tara.count_at_or_above(3, false));
  EXPECT_GE(tara.count_at_or_above(3, false), tara.count_at_or_above(5, false));
  // Treatment reduced at least the top band.
  EXPECT_LT(tara.count_at_or_above(4, true), tara.count_at_or_above(4, false));
}

TEST(Tara, ByCharacteristicRollupComplete) {
  const Tara tara = build_forestry_tara();
  const auto rollup = tara.by_characteristic();
  EXPECT_EQ(rollup.size(), 8u);  // all Table I rows, no generic bucket
  std::size_t total = 0;
  for (const auto& row : rollup) {
    EXPECT_GT(row.threats, 0u);
    EXPECT_GE(row.max_initial_risk, row.max_residual_risk);
    total += row.threats;
  }
  EXPECT_EQ(total, tara.results().size());
}

TEST(Tara, HeavyMachineryIsHighestRiskCharacteristic) {
  // Table I's own emphasis: heavy machinery threats compromise safety.
  const Tara tara = build_forestry_tara();
  RiskValue heavy = 0;
  for (const auto& row : tara.by_characteristic()) {
    if (row.characteristic == "Heavy Machinery") heavy = row.max_initial_risk;
  }
  EXPECT_EQ(heavy, 5);
}

TEST(Tara, Names) {
  EXPECT_EQ(cal_name(Cal::kCal4), "CAL4");
  EXPECT_EQ(feasibility_name(Feasibility::kVeryLow), "very-low");
  EXPECT_EQ(treatment_name(Treatment::kReduce), "reduce");
  EXPECT_EQ(impact_level_name(ImpactLevel::kSevere), "severe");
  EXPECT_EQ(stride_name(Stride::kDenialOfService), "denial-of-service");
  EXPECT_EQ(attack_vector_name(AttackVector::kAdjacent), "adjacent");
  EXPECT_EQ(asset_category_name(AssetCategory::kSensing), "sensing");
  EXPECT_EQ(security_property_name(SecurityProperty::kAuthenticity), "authenticity");
}

}  // namespace
}  // namespace agrarsec::risk
