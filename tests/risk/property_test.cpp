// Property sweeps over the risk machinery: the standard-derived mappings
// must be total, monotone and stable over their whole domains.
#include <gtest/gtest.h>

#include "risk/catalog.h"
#include "risk/coanalysis.h"
#include "risk/iec62443.h"

namespace agrarsec::risk {
namespace {

class FeasibilitySweep : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilitySweep, MonotoneInEveryPotentialFactor) {
  // Increasing any single attack-potential factor can only keep or lower
  // feasibility (never make the attack *easier*).
  const int base = GetParam();
  AttackPotential p;
  p.elapsed_time = base % 5;
  p.expertise = (base / 5) % 4;
  p.knowledge = (base / 20) % 4;
  p.window_of_opportunity = (base / 80) % 3;
  p.equipment = (base / 240) % 3;

  const auto before = feasibility_from_potential(p);
  for (int factor = 0; factor < 5; ++factor) {
    AttackPotential bumped = p;
    switch (factor) {
      case 0: bumped.elapsed_time += 4; break;
      case 1: bumped.expertise += 3; break;
      case 2: bumped.knowledge += 4; break;
      case 3: bumped.window_of_opportunity += 4; break;
      case 4: bumped.equipment += 4; break;
    }
    EXPECT_LE(static_cast<int>(feasibility_from_potential(bumped)),
              static_cast<int>(before));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FeasibilitySweep, ::testing::Range(0, 720, 37));

TEST(RiskProperties, RiskMatrixTotal) {
  for (int i = 0; i < 4; ++i) {
    for (int f = 0; f < 4; ++f) {
      const RiskValue v =
          risk_value(static_cast<ImpactLevel>(i), static_cast<Feasibility>(f));
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 5);
    }
  }
}

TEST(RiskProperties, CalTotalAndMonotoneInImpact) {
  for (int vec = 0; vec < 4; ++vec) {
    Cal prev = Cal::kCal1;
    for (int impact = 0; impact < 4; ++impact) {
      const Cal c = determine_cal(static_cast<ImpactLevel>(impact),
                                  static_cast<AttackVector>(vec));
      EXPECT_GE(static_cast<int>(c), static_cast<int>(prev));
      prev = c;
    }
  }
}

TEST(RiskProperties, MoreControlsNeverRaiseResidualRisk) {
  // Assessing with a larger control set dominates assessing with a subset.
  ItemDefinition item = forestry_item();
  auto threats = forestry_threats(item);
  const auto all_controls = control_catalogue();
  std::vector<Control> half(all_controls.begin(),
                            all_controls.begin() + all_controls.size() / 2);

  Tara full{forestry_item()};
  Tara partial{forestry_item()};
  for (const auto& t : threats) {
    full.add_threat(t);
    partial.add_threat(t);
  }
  full.assess(all_controls);
  partial.assess(half);

  ASSERT_EQ(full.results().size(), partial.results().size());
  for (std::size_t i = 0; i < full.results().size(); ++i) {
    EXPECT_LE(full.results()[i].residual_risk, partial.results()[i].residual_risk)
        << full.results()[i].scenario.name;
  }
}

TEST(RiskProperties, AssessIsIdempotent) {
  Tara tara = build_forestry_tara();
  const auto first = tara.results();
  tara.assess(control_catalogue());
  const auto second = tara.results();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].residual_risk, second[i].residual_risk);
    EXPECT_EQ(first[i].applied_controls, second[i].applied_controls);
  }
}

TEST(RiskProperties, SlMeetsIsPartialOrder) {
  const auto catalogue = countermeasure_catalogue();
  // Reflexive; achieved of superset >= achieved of subset per FR.
  for (const auto& c : catalogue) {
    EXPECT_TRUE(sl_meets(c.provides, c.provides));
  }
  const SlVector a = sl_max(catalogue[0].provides, catalogue[1].provides);
  EXPECT_TRUE(sl_meets(a, catalogue[0].provides));
  EXPECT_TRUE(sl_meets(a, catalogue[1].provides));
}

TEST(RiskProperties, ZoneGapsShrinkWithMoreCountermeasures) {
  ZoneModel before;
  Zone z;
  z.name = "z";
  z.target = SlVector{3, 3, 3, 3, 3, 3, 3};
  z.countermeasures = {"ids"};
  before.add_zone(z);

  ZoneModel after;
  z.countermeasures = {"ids", "secure-channel", "access-control", "secure-boot",
                       "network-segmentation", "backup-recovery"};
  after.add_zone(z);

  const auto catalogue = countermeasure_catalogue();
  EXPECT_LT(after.gaps(catalogue).size(), before.gaps(catalogue).size());
}

class CoAnalysisCeilingSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoAnalysisCeilingSweep, LowerCeilingNeverPassesMoreHazards) {
  const Tara tara = build_forestry_tara();
  CoAnalysisConfig strict;
  strict.ceiling_s2 = GetParam();
  strict.ceiling_s1 = GetParam() + 1;
  CoAnalysisConfig lax;
  lax.ceiling_s2 = GetParam() + 1;
  lax.ceiling_s1 = GetParam() + 2;

  auto count_ok = [&](const CoAnalysisConfig& cfg) {
    ForestryCoAnalysis fca = build_forestry_coanalysis(tara);
    // Rebuild with the custom config: reuse hazards/links via fresh object.
    CoAnalysis co{cfg};
    for (const auto& h : fca.analysis.hazards()) {
      Hazard copy = h;
      co.add_hazard(copy);
    }
    // Re-link with remapped hazard ids (same insertion order => ids align).
    for (const auto& l : fca.analysis.links()) co.link(l);
    std::size_t ok = 0;
    for (const auto& v : co.analyze(tara)) ok += v.security_ok ? 1 : 0;
    return ok;
  };
  EXPECT_LE(count_ok(strict), count_ok(lax));
}

INSTANTIATE_TEST_SUITE_P(Ceilings, CoAnalysisCeilingSweep, ::testing::Range(1, 5));

}  // namespace
}  // namespace agrarsec::risk
