// Tests for the telemetry subsystem: registry merge determinism across
// thread counts, histogram edge bins, flight-recorder wraparound, and
// golden JSON/JSONL output stability (the deterministic export is a
// parity artifact — its exact bytes are part of the contract).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>

#include "core/event_bus.h"
#include "core/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace agrarsec::obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Registry reg;
  Counter& c = reg.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, GetOrCreateReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("same");
  a.add(7);
  EXPECT_EQ(&reg.counter("same"), &a);
  EXPECT_EQ(reg.counter("same").value(), 7u);
  EXPECT_EQ(reg.find_counter("same"), &a);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(CounterTest, EnsureLanesPreservesCountsAndSumsAcrossLanes) {
  Registry reg;
  Counter& c = reg.counter("c");
  c.add(10);
  reg.ensure_lanes(4);
  c.add(5, 3);
  c.add(1, 1);
  EXPECT_EQ(c.value(), 16u);
  // Shrinking is a no-op.
  reg.ensure_lanes(2);
  EXPECT_EQ(reg.lanes(), 4u);
  EXPECT_EQ(c.value(), 16u);
}

TEST(GaugeTest, SetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("g");
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(HistogramTest, EdgeBins) {
  Registry reg;
  Histogram& h = reg.histogram("h", 0.0, 10.0, 5);

  h.add(-0.001);  // below lo: underflow
  h.add(0.0);     // exactly lo: first bin
  h.add(1.999);   // just inside bin 0 (bin width 2)
  h.add(2.0);     // exact interior boundary: opens bin 1
  h.add(9.999);   // last bin
  h.add(10.0);    // exactly hi: overflow, not the last bin
  h.add(11.0);    // above hi: overflow

  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 0u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.count(), 7u);  // under/overflow still count toward count/sum
  EXPECT_DOUBLE_EQ(h.min(), -0.001);
  EXPECT_DOUBLE_EQ(h.max(), 11.0);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
}

TEST(HistogramTest, EmptyHistogramHasInfiniteMinMax) {
  Registry reg;
  Histogram& h = reg.histogram("h", 0.0, 1.0, 2);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isinf(h.min()));
  EXPECT_TRUE(std::isinf(h.max()));
  // The export omits sum/min/max for empty histograms so the JSON stays
  // parseable (no bare "inf" tokens).
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":{\"lo\":0,"
            "\"hi\":1,\"bins\":[0,0],\"underflow\":0,\"overflow\":0,"
            "\"count\":0}}}");
}

TEST(RegistryTest, ToJsonGolden) {
  Registry reg;
  reg.counter("a").add(2);
  reg.gauge("g").set(1.5);
  Histogram& h = reg.histogram("h", 0.0, 8.0, 2);
  h.add(1.0);
  h.add(5.0);
  h.add(12.0);
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"a\":2},\"gauges\":{\"g\":1.5},\"histograms\":{"
            "\"h\":{\"lo\":0,\"hi\":8,\"bins\":[1,1],\"underflow\":0,"
            "\"overflow\":1,\"count\":3,\"sum\":18,\"min\":1,\"max\":12}}}");
}

TEST(RegistryTest, JsonKeysAreNameSorted) {
  Registry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  const std::string json = reg.to_json();
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
}

/// Runs the same sharded workload at a given thread count and returns the
/// deterministic export. Counters and histogram bins are uint64 lane sums
/// and the histogram feeds on integer-valued samples, so the export must
/// be byte-identical for any thread count.
std::string run_sharded_workload(std::size_t threads) {
  Telemetry telemetry;
  core::ThreadPool pool{threads};
  telemetry.ensure_shards(pool.shard_count());
  Counter& items = telemetry.registry().counter("work.items");
  Histogram& values = telemetry.registry().histogram("work.values", 0.0, 64.0, 8);
  for (int step = 0; step < 20; ++step) {
    pool.parallel_for(997, [&](std::size_t begin, std::size_t end, std::size_t shard) {
      for (std::size_t i = begin; i < end; ++i) {
        items.add(1, shard);
        values.add(static_cast<double>((i * 37) % 80), shard);
      }
    });
  }
  telemetry.recorder().record(1, "test", "workload-done");
  return telemetry.deterministic_json();
}

TEST(RegistryTest, MergeIsDeterministicAcrossThreadCounts) {
  const std::string serial = run_sharded_workload(1);
  EXPECT_EQ(run_sharded_workload(2), serial);
  EXPECT_EQ(run_sharded_workload(8), serial);
}

TEST(FlightRecorderTest, RingWraparound) {
  FlightRecorder rec{4};
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(static_cast<core::SimTime>(i), "c", "e", i);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);

  std::uint64_t expected_seq = 6;  // oldest survivor after wraparound
  rec.for_each([&expected_seq](const FlightEvent& e) {
    EXPECT_EQ(e.seq, expected_seq);
    EXPECT_EQ(e.subject, expected_seq);
    ++expected_seq;
  });
  EXPECT_EQ(expected_seq, 10u);
}

TEST(FlightRecorderTest, JsonlGolden) {
  FlightRecorder rec{8};
  rec.record(1500, "planner", "cache-miss", 7, 42);
  rec.record(2000, "radio", "collision", 3, 0, 5, "ch \"a\"\n");
  EXPECT_EQ(rec.to_jsonl(),
            "{\"seq\":0,\"t\":1500,\"cat\":\"planner\",\"code\":\"cache-miss\","
            "\"subject\":7,\"a\":42}\n"
            "{\"seq\":1,\"t\":2000,\"cat\":\"radio\",\"code\":\"collision\","
            "\"subject\":3,\"b\":5,\"detail\":\"ch \\\"a\\\"\\n\"}\n");
}

TEST(FlightRecorderTest, ReadSinceResumesWithoutOverlapOrGap) {
  FlightRecorder rec{16};
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.record(static_cast<core::SimTime>(i * 100), "c", "e", i);
  }
  std::string first;
  const auto r1 = rec.read_since(0, 4, first);
  EXPECT_EQ(r1.events, 4u);
  EXPECT_EQ(r1.dropped, 0u);
  EXPECT_EQ(r1.next_cursor, 4u);

  std::string second;
  const auto r2 = rec.read_since(r1.next_cursor, 4, second);
  EXPECT_EQ(r2.events, 2u);
  EXPECT_EQ(r2.next_cursor, 6u);
  // Chunked reads reassemble the polled export byte-for-byte: the
  // subscription plane and the JSONL export share one serializer.
  EXPECT_EQ(first + second, rec.to_jsonl());

  // Caught up: an empty read, same cursor back.
  std::string third;
  const auto r3 = rec.read_since(r2.next_cursor, 4, third);
  EXPECT_EQ(r3.events, 0u);
  EXPECT_EQ(r3.next_cursor, 6u);
  EXPECT_TRUE(third.empty());
}

TEST(FlightRecorderTest, ReadSinceAccountsForWraparoundLag) {
  FlightRecorder rec{4};
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(static_cast<core::SimTime>(i), "c", "e", i);
  }
  // A subscriber parked at cursor 2 lost seqs 2..5 to the ring; the read
  // says so explicitly and resumes at the oldest survivor.
  std::string out;
  const auto r = rec.read_since(2, 16, out);
  EXPECT_EQ(r.dropped, 4u);
  EXPECT_EQ(r.events, 4u);
  EXPECT_EQ(r.next_cursor, 10u);
  EXPECT_EQ(out, rec.to_jsonl());
  EXPECT_NE(out.find("\"seq\":6"), std::string::npos);
  EXPECT_EQ(out.find("\"seq\":5"), std::string::npos);
}

TEST(FlightRecorderTest, WallAnnexCoversHeldEventsOnly) {
  FlightRecorder rec{2};
  rec.record(1, "c", "x");
  rec.record(2, "c", "y");
  rec.record(3, "c", "z");
  const std::string annex = rec.wall_annex_jsonl();
  EXPECT_EQ(annex.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(annex.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(annex.find("\"seq\":2"), std::string::npos);
  // The deterministic dump never carries wall clock.
  EXPECT_EQ(rec.to_jsonl().find("wall"), std::string::npos);
}

TEST(TelemetryTest, DeterministicJsonGolden) {
  Telemetry telemetry;
  telemetry.registry().counter("x").add(1);
  telemetry.recorder().record(10, "cat", "code");
  EXPECT_EQ(telemetry.deterministic_json(),
            "{\"metrics\":{\"counters\":{\"x\":1},\"gauges\":{},"
            "\"histograms\":{}},\"flight\":[{\"seq\":0,\"t\":10,"
            "\"cat\":\"cat\",\"code\":\"code\",\"subject\":0}],"
            "\"flight_total\":1,\"flight_dropped\":0}");
}

TEST(TelemetryTest, WallPrefixedInstrumentsExcludedFromDeterministicView) {
  Telemetry telemetry;
  telemetry.registry().counter("steps").add(3);
  telemetry.registry().histogram("wall.step_duration_us", 0.0, 1000.0, 4).add(17.5);
  telemetry.registry().gauge("wall.last_step_us").set(17.5);
  const std::string det = telemetry.deterministic_json();
  EXPECT_EQ(det.find("wall."), std::string::npos);
  EXPECT_NE(det.find("\"steps\":3"), std::string::npos);
  // The full artifact keeps the wall-clock instruments.
  const std::string full = telemetry.to_json();
  EXPECT_NE(full.find("\"wall.step_duration_us\""), std::string::npos);
  EXPECT_NE(full.find("\"wall.last_step_us\""), std::string::npos);
}

TEST(TelemetryTest, FullJsonCarriesPhasesAndWallAnnex) {
  Telemetry telemetry;
  const PhaseId phase = telemetry.tracer().phase("test.phase");
  { Tracer::Span span{telemetry.tracer(), phase}; }
  telemetry.recorder().record(5, "c", "e");
  const std::string full = telemetry.to_json();
  EXPECT_NE(full.find("\"phases\":{\"test.phase\":{\"calls\":1"), std::string::npos);
  EXPECT_NE(full.find("\"shard_busy_ns\":["), std::string::npos);
  EXPECT_NE(full.find("\"wall_annex\":[{\"seq\":0,\"wall_ns\":"), std::string::npos);
  // The deterministic view excludes all of those.
  const std::string det = telemetry.deterministic_json();
  EXPECT_EQ(det.find("phases"), std::string::npos);
  EXPECT_EQ(det.find("wall"), std::string::npos);
}

TEST(TelemetryTest, WireEventBusCountsPerTopic) {
  Telemetry telemetry;
  core::EventBus bus;
  const auto subscription = wire_event_bus(bus, telemetry);
  bus.publish({.topic = "a", .payload = "", .origin = 1, .time = 0});
  bus.publish({.topic = "b", .payload = "", .origin = 2, .time = 1});
  bus.publish({.topic = "a", .payload = "", .origin = 3, .time = 2});
  EXPECT_EQ(telemetry.registry().counter("bus.events").value(), 3u);
  EXPECT_EQ(telemetry.registry().counter("bus.topic.a").value(), 2u);
  EXPECT_EQ(telemetry.registry().counter("bus.topic.b").value(), 1u);
}

TEST(TracerTest, PhasesAndSpans) {
  Tracer tracer{2};
  const PhaseId p = tracer.phase("phase.a");
  EXPECT_EQ(tracer.phase("phase.a"), p);  // get-or-create, stable id
  const PhaseId q = tracer.phase("phase.b");
  EXPECT_NE(p, q);
  { Tracer::Span span{tracer, p}; }
  { Tracer::Span span{tracer, p}; }
  EXPECT_EQ(tracer.stats(p).calls, 2u);
  EXPECT_EQ(tracer.stats(q).calls, 0u);
  EXPECT_GE(tracer.stats(p).total_ns, tracer.stats(p).max_ns);

  tracer.add_shard_busy(1, 123);
  tracer.add_shard_busy(1, 7);
  EXPECT_EQ(tracer.shard_busy_ns(0), 0u);
  EXPECT_EQ(tracer.shard_busy_ns(1), 130u);
  tracer.ensure_shards(4);
  EXPECT_EQ(tracer.shard_count(), 4u);
  EXPECT_EQ(tracer.shard_busy_ns(1), 130u);  // growth preserves lanes
}

}  // namespace
}  // namespace agrarsec::obs
