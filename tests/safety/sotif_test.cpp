#include <gtest/gtest.h>

#include "safety/sotif.h"

namespace agrarsec::safety {
namespace {

TEST(Sotif, CatalogueNonEmptyAndKnown) {
  const auto conditions = forestry_triggering_conditions();
  EXPECT_GE(conditions.size(), 8u);
  for (const auto& c : conditions) {
    EXPECT_FALSE(c.id.empty());
    EXPECT_TRUE(c.known);
    EXPECT_GT(c.exposure_rate, 0.0);
  }
}

TEST(Sotif, RecordAccumulatesEvidence) {
  SotifAnalysis analysis;
  for (auto& c : forestry_triggering_conditions()) analysis.add_condition(c);
  analysis.record("occlusion-boulder", ScenarioOutcome::kSafe);
  analysis.record("occlusion-boulder", ScenarioOutcome::kSafe);
  analysis.record("occlusion-boulder", ScenarioOutcome::kHazardous);
  const auto ev = analysis.evidence("occlusion-boulder");
  EXPECT_EQ(ev.encounters, 3u);
  EXPECT_EQ(ev.hazardous, 1u);
  EXPECT_NEAR(ev.hazard_rate(), 1.0 / 3.0, 1e-9);
}

TEST(Sotif, UnknownConditionAutoRegisteredAsArea3) {
  SotifAnalysis analysis;
  analysis.record("moose-encounter", ScenarioOutcome::kHazardous);
  ASSERT_EQ(analysis.conditions().size(), 1u);
  EXPECT_FALSE(analysis.conditions()[0].known);
  const auto census = analysis.census();
  EXPECT_EQ(census.unknown_hazardous, 1u);
  EXPECT_EQ(census.known_hazardous, 0u);
}

TEST(Sotif, DuplicateConditionIgnored) {
  SotifAnalysis analysis;
  TriggeringCondition c{"x", "first", true, 1.0};
  analysis.add_condition(c);
  c.description = "second";
  analysis.add_condition(c);
  ASSERT_EQ(analysis.conditions().size(), 1u);
  EXPECT_EQ(analysis.conditions()[0].description, "first");
}

TEST(Sotif, ResidualRiskAggregates) {
  SotifAnalysis analysis;
  analysis.record("a", ScenarioOutcome::kSafe);
  analysis.record("a", ScenarioOutcome::kSafe);
  analysis.record("b", ScenarioOutcome::kHazardous);
  analysis.record("b", ScenarioOutcome::kSafe);
  EXPECT_NEAR(analysis.residual_risk(), 0.25, 1e-9);
}

TEST(Sotif, ResidualRiskEmptyIsZero) {
  const SotifAnalysis analysis;
  EXPECT_DOUBLE_EQ(analysis.residual_risk(), 0.0);
}

TEST(Sotif, UnacceptableConditionsFiltered) {
  SotifAnalysis analysis;
  for (int i = 0; i < 9; ++i) analysis.record("benign", ScenarioOutcome::kSafe);
  analysis.record("benign", ScenarioOutcome::kHazardous);   // 10%
  for (int i = 0; i < 2; ++i) analysis.record("nasty", ScenarioOutcome::kHazardous);
  analysis.record("nasty", ScenarioOutcome::kSafe);          // 67%

  const auto bad = analysis.unacceptable_conditions(0.2);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "nasty");
  EXPECT_TRUE(analysis.unacceptable_conditions(0.9).empty());
}

TEST(Sotif, CensusSplitsByKnowledgeAndOutcome) {
  SotifAnalysis analysis;
  analysis.add_condition({"known-cond", "", true, 1.0});
  analysis.record("known-cond", ScenarioOutcome::kSafe);
  analysis.record("known-cond", ScenarioOutcome::kHazardous);
  analysis.record("surprise", ScenarioOutcome::kSafe);
  const auto census = analysis.census();
  EXPECT_EQ(census.known_safe, 1u);
  EXPECT_EQ(census.known_hazardous, 1u);
  EXPECT_EQ(census.unknown_safe, 1u);
  EXPECT_EQ(census.unknown_hazardous, 0u);
}

TEST(Sotif, EvidenceForUnseenConditionEmpty) {
  SotifAnalysis analysis;
  analysis.add_condition({"registered-but-unseen", "", true, 1.0});
  const auto ev = analysis.evidence("registered-but-unseen");
  EXPECT_EQ(ev.encounters, 0u);
  EXPECT_DOUBLE_EQ(ev.hazard_rate(), 0.0);
}

}  // namespace
}  // namespace agrarsec::safety
