#include <gtest/gtest.h>

#include "safety/fusion.h"

namespace agrarsec::safety {
namespace {

sensors::Detection det(core::Vec2 pos, double conf, core::SimTime time) {
  sensors::Detection d;
  d.target = HumanId{1};
  d.position = pos;
  d.confidence = conf;
  d.source = SensorId{1};
  d.time = time;
  return d;
}

TEST(Fusion, LocalDetectionBecomesTrack) {
  DetectionFusion fusion;
  fusion.add_local({det({10, 10}, 0.9, 100)});
  const auto tracks = fusion.fuse(200);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_TRUE(tracks[0].local_contribution);
  EXPECT_FALSE(tracks[0].remote_contribution);
  EXPECT_NEAR(tracks[0].confidence, 0.9, 1e-9);
}

TEST(Fusion, RemoteDetectionWeighted) {
  FusionConfig config;
  config.remote_weight = 0.5;
  DetectionFusion fusion{config};
  fusion.add_remote(det({10, 10}, 0.8, 100));
  const auto tracks = fusion.fuse(200);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_TRUE(tracks[0].remote_contribution);
  EXPECT_NEAR(tracks[0].confidence, 0.4, 1e-9);
}

TEST(Fusion, NearbyDetectionsMerge) {
  DetectionFusion fusion;
  fusion.add_local({det({10, 10}, 0.6, 100)});
  fusion.add_remote(det({11, 10.5}, 0.6, 110));
  const auto tracks = fusion.fuse(200);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_TRUE(tracks[0].local_contribution);
  EXPECT_TRUE(tracks[0].remote_contribution);
  // Noisy-OR: 1 - 0.4*(1-0.48) > 0.6
  EXPECT_GT(tracks[0].confidence, 0.6);
}

TEST(Fusion, DistantDetectionsStaySeparate) {
  DetectionFusion fusion;
  fusion.add_local({det({10, 10}, 0.6, 100), det({50, 50}, 0.7, 100)});
  EXPECT_EQ(fusion.fuse(200).size(), 2u);
}

TEST(Fusion, StaleDetectionsDropped) {
  FusionConfig config;
  config.freshness_window = 1000;
  DetectionFusion fusion{config};
  fusion.add_local({det({10, 10}, 0.9, 100)});
  EXPECT_EQ(fusion.fuse(500).size(), 1u);
  EXPECT_TRUE(fusion.fuse(2000).empty());
}

TEST(Fusion, ConfidenceGatePrunesWeakTracks) {
  FusionConfig config;
  config.policy = FusionPolicy::kConfidenceWeighted;
  config.confidence_gate = 0.5;
  config.remote_weight = 0.5;
  DetectionFusion fusion{config};
  fusion.add_remote(det({10, 10}, 0.6, 100));  // weighted 0.3 < gate
  EXPECT_TRUE(fusion.fuse(200).empty());

  fusion.add_remote(det({10, 10}, 0.9, 150));  // 0.45; noisy-OR with 0.3 = 0.615
  EXPECT_EQ(fusion.fuse(200).size(), 1u);
}

TEST(Fusion, UnionPolicyKeepsWeakTracks) {
  FusionConfig config;
  config.policy = FusionPolicy::kUnion;
  config.remote_weight = 0.5;
  DetectionFusion fusion{config};
  fusion.add_remote(det({10, 10}, 0.2, 100));
  EXPECT_EQ(fusion.fuse(200).size(), 1u);
}

TEST(Fusion, RemoteReportCountTracks) {
  DetectionFusion fusion;
  fusion.add_remote(det({1, 1}, 0.5, 0));
  fusion.add_remote(det({2, 2}, 0.5, 0));
  EXPECT_EQ(fusion.remote_reports(), 2u);
}

TEST(Fusion, BestPositionWins) {
  DetectionFusion fusion;
  fusion.add_local({det({10, 10}, 0.5, 100)});
  fusion.add_local({det({10.5, 10}, 0.95, 110)});
  const auto tracks = fusion.fuse(200);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_DOUBLE_EQ(tracks[0].position.x, 10.5);  // higher-confidence position
  EXPECT_EQ(tracks[0].last_update, 110);
}

}  // namespace
}  // namespace agrarsec::safety
