// ISO 13849 risk graph and performance-level table, including the
// security-degradation extension. Uses TEST_P sweeps over the matrix.
#include <gtest/gtest.h>

#include "safety/iso13849.h"

namespace agrarsec::safety {
namespace {

TEST(RiskGraph, FullMatrix) {
  using PL = PerformanceLevel;
  EXPECT_EQ(required_pl(Severity::kS1, Frequency::kF1, Avoidance::kP1), PL::kA);
  EXPECT_EQ(required_pl(Severity::kS1, Frequency::kF1, Avoidance::kP2), PL::kB);
  EXPECT_EQ(required_pl(Severity::kS1, Frequency::kF2, Avoidance::kP1), PL::kB);
  EXPECT_EQ(required_pl(Severity::kS1, Frequency::kF2, Avoidance::kP2), PL::kC);
  EXPECT_EQ(required_pl(Severity::kS2, Frequency::kF1, Avoidance::kP1), PL::kC);
  EXPECT_EQ(required_pl(Severity::kS2, Frequency::kF1, Avoidance::kP2), PL::kD);
  EXPECT_EQ(required_pl(Severity::kS2, Frequency::kF2, Avoidance::kP1), PL::kD);
  EXPECT_EQ(required_pl(Severity::kS2, Frequency::kF2, Avoidance::kP2), PL::kE);
}

TEST(Mttfd, Classification) {
  EXPECT_FALSE(classify_mttfd(2.9).has_value());
  EXPECT_EQ(classify_mttfd(3.0), MttfdBand::kLow);
  EXPECT_EQ(classify_mttfd(9.9), MttfdBand::kLow);
  EXPECT_EQ(classify_mttfd(10.0), MttfdBand::kMedium);
  EXPECT_EQ(classify_mttfd(29.9), MttfdBand::kMedium);
  EXPECT_EQ(classify_mttfd(30.0), MttfdBand::kHigh);
  EXPECT_EQ(classify_mttfd(100.0), MttfdBand::kHigh);
}

TEST(Dc, Classification) {
  EXPECT_EQ(classify_dc(0.0), DcBand::kNone);
  EXPECT_EQ(classify_dc(0.59), DcBand::kNone);
  EXPECT_EQ(classify_dc(0.60), DcBand::kLow);
  EXPECT_EQ(classify_dc(0.89), DcBand::kLow);
  EXPECT_EQ(classify_dc(0.90), DcBand::kMedium);
  EXPECT_EQ(classify_dc(0.98), DcBand::kMedium);
  EXPECT_EQ(classify_dc(0.99), DcBand::kHigh);
}

TEST(AchievedPl, CategoryBCapsAtPlB) {
  EXPECT_EQ(achieved_pl(Category::kB, MttfdBand::kLow, DcBand::kNone),
            PerformanceLevel::kA);
  EXPECT_EQ(achieved_pl(Category::kB, MttfdBand::kHigh, DcBand::kNone),
            PerformanceLevel::kB);
  // Category B with diagnostics is not a defined column.
  EXPECT_FALSE(achieved_pl(Category::kB, MttfdBand::kHigh, DcBand::kMedium).has_value());
}

TEST(AchievedPl, Category1RequiresWellTried) {
  EXPECT_EQ(achieved_pl(Category::k1, MttfdBand::kHigh, DcBand::kNone),
            PerformanceLevel::kC);
  EXPECT_FALSE(achieved_pl(Category::k1, MttfdBand::kLow, DcBand::kNone).has_value());
}

TEST(AchievedPl, Category2NeedsDiagnostics) {
  EXPECT_FALSE(achieved_pl(Category::k2, MttfdBand::kHigh, DcBand::kNone).has_value());
  EXPECT_EQ(achieved_pl(Category::k2, MttfdBand::kHigh, DcBand::kLow),
            PerformanceLevel::kC);
  EXPECT_EQ(achieved_pl(Category::k2, MttfdBand::kMedium, DcBand::kMedium),
            PerformanceLevel::kC);
}

TEST(AchievedPl, Category3ReachesPlD) {
  EXPECT_EQ(achieved_pl(Category::k3, MttfdBand::kHigh, DcBand::kLow),
            PerformanceLevel::kD);
  EXPECT_EQ(achieved_pl(Category::k3, MttfdBand::kHigh, DcBand::kMedium),
            PerformanceLevel::kD);
  EXPECT_EQ(achieved_pl(Category::k3, MttfdBand::kLow, DcBand::kLow),
            PerformanceLevel::kB);
}

TEST(AchievedPl, Category4OnlyTopCorner) {
  EXPECT_EQ(achieved_pl(Category::k4, MttfdBand::kHigh, DcBand::kHigh),
            PerformanceLevel::kE);
  EXPECT_FALSE(achieved_pl(Category::k4, MttfdBand::kHigh, DcBand::kMedium).has_value());
  EXPECT_FALSE(achieved_pl(Category::k4, MttfdBand::kMedium, DcBand::kHigh).has_value());
}

TEST(Satisfies, Ordering) {
  EXPECT_TRUE(satisfies(PerformanceLevel::kE, PerformanceLevel::kD));
  EXPECT_TRUE(satisfies(PerformanceLevel::kD, PerformanceLevel::kD));
  EXPECT_FALSE(satisfies(PerformanceLevel::kC, PerformanceLevel::kD));
}

TEST(Degraded, NoCompromiseNoChange) {
  const SecurityCompromise none{};
  EXPECT_EQ(degraded_pl(Category::k3, MttfdBand::kHigh, DcBand::kMedium, none),
            achieved_pl(Category::k3, MttfdBand::kHigh, DcBand::kMedium));
}

TEST(Degraded, DiagnosticsDefeatDropsCategory2) {
  SecurityCompromise c;
  c.diagnostics_defeated = true;
  // Cat 2 (PL c at high MTTFd) collapses to Cat B (PL b).
  EXPECT_EQ(degraded_pl(Category::k2, MttfdBand::kHigh, DcBand::kMedium, c),
            PerformanceLevel::kB);
}

TEST(Degraded, ChannelLossCollapsesRedundancy) {
  SecurityCompromise c;
  c.channel_disabled = true;
  // Cat 3 PL d falls to Cat B PL b.
  EXPECT_EQ(degraded_pl(Category::k3, MttfdBand::kHigh, DcBand::kMedium, c),
            PerformanceLevel::kB);
}

TEST(Degraded, CombinedCompromiseWorstCase) {
  SecurityCompromise c;
  c.diagnostics_defeated = true;
  c.channel_disabled = true;
  const auto pl = degraded_pl(Category::k4, MttfdBand::kHigh, DcBand::kHigh, c);
  ASSERT_TRUE(pl.has_value());
  EXPECT_EQ(*pl, PerformanceLevel::kB);  // full redundancy + diagnostics lost
}

TEST(Degraded, AttackCanInvalidateRequiredPl) {
  // The paper's core point: a function that satisfies PL d under the
  // fault model does NOT satisfy it while a channel-disabling attack runs.
  const auto nominal = achieved_pl(Category::k3, MttfdBand::kHigh, DcBand::kMedium);
  ASSERT_TRUE(nominal.has_value());
  const auto required = required_pl(Severity::kS2, Frequency::kF1, Avoidance::kP2);
  EXPECT_TRUE(satisfies(*nominal, required));

  SecurityCompromise c;
  c.channel_disabled = true;
  const auto attacked = degraded_pl(Category::k3, MttfdBand::kHigh, DcBand::kMedium, c);
  ASSERT_TRUE(attacked.has_value());
  EXPECT_FALSE(satisfies(*attacked, required));
}

// Parameterized sweep: every defined achieved-PL cell satisfies the
// monotonicity property — more MTTFd never lowers the PL.
struct PlCell {
  Category category;
  DcBand dc;
};

class PlMonotonicity : public ::testing::TestWithParam<PlCell> {};

TEST_P(PlMonotonicity, MttfdMonotone) {
  const auto [category, dc] = GetParam();
  std::optional<PerformanceLevel> prev;
  for (const MttfdBand mttfd :
       {MttfdBand::kLow, MttfdBand::kMedium, MttfdBand::kHigh}) {
    const auto pl = achieved_pl(category, mttfd, dc);
    if (pl && prev) {
      EXPECT_GE(static_cast<int>(*pl), static_cast<int>(*prev));
    }
    if (pl) prev = pl;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDefinedColumns, PlMonotonicity,
    ::testing::Values(PlCell{Category::kB, DcBand::kNone},
                      PlCell{Category::k2, DcBand::kLow},
                      PlCell{Category::k2, DcBand::kMedium},
                      PlCell{Category::k3, DcBand::kLow},
                      PlCell{Category::k3, DcBand::kMedium}));

// Degradation never *improves* the PL.
class DegradationNeverImproves
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DegradationNeverImproves, Check) {
  const auto [cat_i, mttfd_i, dc_i] = GetParam();
  const auto category = static_cast<Category>(cat_i);
  const auto mttfd = static_cast<MttfdBand>(mttfd_i);
  const auto dc = static_cast<DcBand>(dc_i);
  const auto nominal = achieved_pl(category, mttfd, dc);
  if (!nominal) return;  // undefined cell

  for (const bool diag : {false, true}) {
    for (const bool channel : {false, true}) {
      const auto degraded =
          degraded_pl(category, mttfd, dc, SecurityCompromise{diag, channel});
      if (degraded) {
        EXPECT_LE(static_cast<int>(*degraded), static_cast<int>(*nominal))
            << "cat=" << cat_i << " mttfd=" << mttfd_i << " dc=" << dc_i
            << " diag=" << diag << " chan=" << channel;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, DegradationNeverImproves,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 3),
                       ::testing::Range(0, 4)));

TEST(Names, PerformanceLevelNames) {
  EXPECT_EQ(performance_level_name(PerformanceLevel::kA), "PL a");
  EXPECT_EQ(performance_level_name(PerformanceLevel::kE), "PL e");
}

}  // namespace
}  // namespace agrarsec::safety
