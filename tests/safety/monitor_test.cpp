#include <gtest/gtest.h>

#include "safety/monitor.h"

namespace agrarsec::safety {
namespace {

struct Fixture {
  sim::Machine forwarder{MachineId{1}, sim::MachineKind::kForwarder, "f1",
                         {0, 0}, sim::MachineConfig{}};
  core::EventBus bus;
  MonitorConfig config;
  Fixture() {
    config.critical_zone_m = 10.0;
    config.warning_zone_m = 20.0;
    config.cover_timeout = 2 * core::kSecond;
    config.restart_delay = 1 * core::kSecond;
  }

  FusedTrack track_at(double distance) {
    FusedTrack t;
    t.position = {distance, 0};
    t.confidence = 0.9;
    t.last_update = 0;
    return t;
  }
};

TEST(Monitor, StopsOnCriticalZone) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  f.forwarder.set_route({{100, 0}});
  monitor.update({f.track_at(5.0)}, 0);
  EXPECT_TRUE(f.forwarder.stopped());
  EXPECT_EQ(monitor.last_reason(), EstopReason::kPersonInCriticalZone);
  EXPECT_EQ(monitor.stats().estops, 1u);
  EXPECT_EQ(monitor.stats().zone_violations, 1u);
}

TEST(Monitor, DegradesOnWarningZone) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  f.forwarder.set_route({{100, 0}});
  monitor.update({f.track_at(15.0)}, 0);
  EXPECT_FALSE(f.forwarder.stopped());
  EXPECT_EQ(f.forwarder.mode(), sim::DriveMode::kDegraded);
}

TEST(Monitor, ClearTracksNormalMode) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.update({f.track_at(50.0)}, 0);
  EXPECT_EQ(f.forwarder.mode(), sim::DriveMode::kNormal);
}

TEST(Monitor, AutoRestartAfterClearDelay) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.update({f.track_at(5.0)}, 0);
  ASSERT_TRUE(f.forwarder.stopped());
  // Zone clears; before restart_delay the machine stays stopped.
  monitor.update({}, 500);
  EXPECT_TRUE(f.forwarder.stopped());
  monitor.update({}, 1600);
  EXPECT_FALSE(f.forwarder.stopped());
  EXPECT_EQ(monitor.last_reason(), EstopReason::kNone);
}

TEST(Monitor, RestartTimerResetsOnReappearance) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.update({f.track_at(5.0)}, 0);
  monitor.update({}, 500);
  monitor.update({f.track_at(5.0)}, 900);  // person back: stop latched again
  monitor.update({}, 1200);
  EXPECT_TRUE(f.forwarder.stopped());  // clear only since 1200
  monitor.update({}, 2300);
  EXPECT_FALSE(f.forwarder.stopped());
}

TEST(Monitor, CoverLossDegrades) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.note_cover(0);
  EXPECT_TRUE(monitor.cover_fresh(1000));
  monitor.update({}, 1000);
  EXPECT_EQ(f.forwarder.mode(), sim::DriveMode::kNormal);
  // 3 s later the cover is stale -> degraded.
  monitor.update({}, 3000);
  EXPECT_FALSE(monitor.cover_fresh(3000));
  EXPECT_EQ(f.forwarder.mode(), sim::DriveMode::kDegraded);
  EXPECT_GE(monitor.stats().cover_losses, 1u);
}

TEST(Monitor, CoverLossCanStopWhenConfigured) {
  Fixture f;
  f.config.stop_on_cover_loss = true;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.note_cover(0);
  monitor.update({}, 5000);
  EXPECT_TRUE(f.forwarder.stopped());
  EXPECT_EQ(monitor.last_reason(), EstopReason::kCommsLost);
}

TEST(Monitor, NoCoverSignalNoFallback) {
  // A site without a drone never degrades for cover: the fallback logic
  // only arms once collaborative cover has been seen.
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.update({}, 10000);
  EXPECT_EQ(f.forwarder.mode(), sim::DriveMode::kNormal);
}

TEST(Monitor, FreshCoverRestoresNormalSpeed) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.note_cover(0);
  monitor.update({}, 5000);
  ASSERT_EQ(f.forwarder.mode(), sim::DriveMode::kDegraded);
  monitor.note_cover(5100);
  monitor.update({}, 5200);
  EXPECT_EQ(f.forwarder.mode(), sim::DriveMode::kNormal);
}

TEST(Monitor, IdsCriticalStops) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.ids_critical(100);
  EXPECT_TRUE(f.forwarder.stopped());
  EXPECT_EQ(monitor.last_reason(), EstopReason::kIdsCritical);
}

TEST(Monitor, IdsCriticalRespectsConfig) {
  Fixture f;
  f.config.stop_on_ids_critical = false;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.ids_critical(100);
  EXPECT_FALSE(f.forwarder.stopped());
}

TEST(Monitor, RemoteCommandStops) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.command_stop(EstopReason::kRemoteCommand, 50);
  EXPECT_TRUE(f.forwarder.stopped());
  EXPECT_EQ(monitor.last_reason(), EstopReason::kRemoteCommand);
}

TEST(Monitor, EstopEventPublished) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  std::string payload;
  f.bus.subscribe("safety/estop", [&](const core::Event& e) { payload = e.payload; });
  monitor.update({f.track_at(3.0)}, 42);
  EXPECT_EQ(payload, "reason=person-in-critical-zone");
}

TEST(Monitor, RepeatedCriticalTracksSingleEstop) {
  Fixture f;
  SafetyMonitor monitor{f.forwarder, f.config, &f.bus};
  monitor.update({f.track_at(5.0)}, 0);
  monitor.update({f.track_at(5.0)}, 100);
  monitor.update({f.track_at(5.0)}, 200);
  EXPECT_EQ(monitor.stats().estops, 1u);       // latched, not re-triggered
  EXPECT_EQ(monitor.stats().zone_violations, 3u);
}

TEST(Monitor, ReasonNamesStable) {
  EXPECT_EQ(estop_reason_name(EstopReason::kPersonInCriticalZone),
            "person-in-critical-zone");
  EXPECT_EQ(estop_reason_name(EstopReason::kCommsLost), "comms-lost");
}

}  // namespace
}  // namespace agrarsec::safety
