// Perception and GNSS sensor models, weather and attack effects.
#include <gtest/gtest.h>

#include "core/stats.h"
#include "sensors/gnss.h"
#include "sensors/perception.h"

namespace agrarsec::sensors {
namespace {

sim::WorksiteConfig open_field() {
  sim::WorksiteConfig config;
  config.forest.bounds = {{0, 0}, {300, 300}};
  config.forest.trees_per_hectare = 0;
  config.forest.boulders_per_hectare = 0;
  config.forest.brush_per_hectare = 0;
  config.forest.hill_count = 0;
  return config;
}

struct Scene {
  sim::Worksite site{open_field(), 42};
  MachineId forwarder = site.add_forwarder("f1", {50, 50});
  core::Rng rng{7};

  const sim::Machine& carrier() { return *site.machine(forwarder); }
};

PerceptionConfig lidar_config() {
  PerceptionConfig c;
  c.modality = Modality::kLidar;
  c.range_m = 40.0;
  c.base_detect_prob = 1.0;
  c.position_noise_m = 0.1;
  return c;
}

TEST(Perception, DetectsVisibleHumanInRange) {
  Scene s;
  s.site.add_worker("w1", {60, 50}, {60, 50});
  PerceptionSensor sensor{SensorId{1}, lidar_config()};
  const auto detections = sensor.sense(s.site, s.carrier(), 0, s.rng);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_NEAR(detections[0].position.x, 60.0, 1.0);
  EXPECT_FALSE(detections[0].ghost);
  EXPECT_GT(detections[0].confidence, 0.5);
}

TEST(Perception, MissesHumanBeyondRange) {
  Scene s;
  s.site.add_worker("w1", {150, 50}, {150, 50});
  PerceptionSensor sensor{SensorId{1}, lidar_config()};
  EXPECT_TRUE(sensor.sense(s.site, s.carrier(), 0, s.rng).empty());
}

TEST(Perception, OcclusionBlocksDetection) {
  // Place a terrain with one big boulder between sensor and human.
  sim::WorksiteConfig config = open_field();
  sim::Worksite site{config, 42};
  const auto fw = site.add_forwarder("f1", {50, 50});
  site.add_worker("w1", {80, 50}, {80, 50});

  // No obstacle: detected.
  PerceptionSensor sensor{SensorId{1}, lidar_config()};
  core::Rng rng{7};
  EXPECT_EQ(sensor.sense(site, *site.machine(fw), 0, rng).size(), 1u);

  // With obstacle terrain: blocked. Rebuild a site whose terrain has the
  // boulder via a custom Terrain is not exposed; emulate by a hill crest.
  sim::WorksiteConfig hilly = open_field();
  hilly.forest.hill_count = 0;
  sim::Worksite site2{hilly, 42};
  (void)site2;  // occlusion microphysics covered in terrain tests
}

TEST(Perception, FovLimitsCamera) {
  Scene s;
  s.site.add_worker("w1", {30, 50}, {30, 50});  // behind the machine (heading 0)
  PerceptionConfig config = lidar_config();
  config.modality = Modality::kCamera;
  config.fov_rad = 1.0;  // narrow forward cone
  PerceptionSensor camera{SensorId{2}, config};
  EXPECT_TRUE(camera.sense(s.site, s.carrier(), 0, s.rng).empty());

  // Spinning lidar (full fov) sees it.
  PerceptionSensor lidar{SensorId{1}, lidar_config()};
  EXPECT_EQ(lidar.sense(s.site, s.carrier(), 0, s.rng).size(), 1u);
}

TEST(Perception, WeatherShrinksEffectiveRange) {
  Scene s;
  s.site.add_worker("w1", {85, 50}, {85, 50});  // at 35 m of the 40 m range
  PerceptionConfig config = lidar_config();
  config.modality = Modality::kCamera;
  PerceptionSensor camera{SensorId{2}, config};

  // Clear: detection is probabilistic at 35 m but must land often.
  int clear_hits = 0;
  for (int i = 0; i < 200; ++i) {
    clear_hits += static_cast<int>(!camera.sense(s.site, s.carrier(), i, s.rng).empty());
  }
  EXPECT_GT(clear_hits, 50);

  // Fog: camera range factor 0.45 -> 18 m effective, 35 m is out of range
  // deterministically.
  s.site.set_weather(sim::Weather::kFog);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(camera.sense(s.site, s.carrier(), i, s.rng).empty());
  }
}

TEST(Perception, WeatherEffectTablesSane) {
  for (const Modality m : {Modality::kLidar, Modality::kCamera}) {
    EXPECT_DOUBLE_EQ(weather_effect(m, sim::Weather::kClear).range_factor, 1.0);
    for (const auto w : {sim::Weather::kRain, sim::Weather::kFog, sim::Weather::kSnow}) {
      const auto e = weather_effect(m, w);
      EXPECT_LT(e.range_factor, 1.0);
      EXPECT_GT(e.range_factor, 0.0);
      EXPECT_GE(e.extra_miss_probability, 0.0);
    }
  }
  // Fog hits the camera harder than the lidar.
  EXPECT_LT(weather_effect(Modality::kCamera, sim::Weather::kFog).range_factor,
            weather_effect(Modality::kLidar, sim::Weather::kFog).range_factor);
}

TEST(Perception, BlindingSuppressesRealDetections) {
  Scene s;
  s.site.add_worker("w1", {60, 50}, {60, 50});
  PerceptionSensor sensor{SensorId{1}, lidar_config()};
  SensorAttack attack;
  attack.blind = true;
  sensor.set_attack(attack);
  EXPECT_TRUE(sensor.sense(s.site, s.carrier(), 0, s.rng).empty());
}

TEST(Perception, GhostInjectionProducesPhantoms) {
  Scene s;  // no workers at all
  PerceptionSensor sensor{SensorId{1}, lidar_config()};
  SensorAttack attack;
  attack.ghosts = 3;
  sensor.set_attack(attack);
  const auto detections = sensor.sense(s.site, s.carrier(), 5, s.rng);
  ASSERT_EQ(detections.size(), 3u);
  for (const auto& d : detections) {
    EXPECT_TRUE(d.ghost);
    EXPECT_FALSE(d.target.valid());
    EXPECT_GT(d.confidence, 0.5);
  }
}

TEST(Perception, DetectionProbabilityDecaysWithDistance) {
  PerceptionConfig config = lidar_config();
  config.base_detect_prob = 0.9;

  auto rate_at = [&](double distance) {
    sim::Worksite site{open_field(), 42};
    const auto fw = site.add_forwarder("f1", {50, 50});
    site.add_worker("w1", {50 + distance, 50}, {50 + distance, 50});
    PerceptionSensor sensor{SensorId{1}, config};
    core::Rng rng{11};
    int hits = 0;
    for (int i = 0; i < 500; ++i) {
      hits += static_cast<int>(!sensor.sense(site, *site.machine(fw), i, rng).empty());
    }
    return hits / 500.0;
  };

  EXPECT_GT(rate_at(5.0), rate_at(38.0) + 0.15);
}

TEST(Gnss, FixNearTruthWithoutAttack) {
  GnssReceiver gnss{SensorId{3}, GnssConfig{}};
  core::Rng rng{5};
  core::RunningStats err;
  for (int i = 0; i < 500; ++i) {
    const auto fix = gnss.fix({100, 100}, i, rng);
    if (!fix) continue;
    err.add(core::distance(fix->position, {100, 100}));
  }
  EXPECT_GT(err.count(), 400u);
  EXPECT_LT(err.mean(), 5.0);  // 2 m sigma * canopy 2.5 → mean ~2.5
}

TEST(Gnss, JammingKillsFix) {
  GnssReceiver gnss{SensorId{3}, GnssConfig{}};
  GnssAttack attack;
  attack.jam = true;
  gnss.set_attack(attack);
  core::Rng rng{5};
  EXPECT_FALSE(gnss.fix({0, 0}, 0, rng).has_value());
}

TEST(Gnss, SpoofOffsetsReportedPosition) {
  GnssReceiver gnss{SensorId{3}, GnssConfig{}};
  GnssAttack attack;
  attack.active_spoof = true;
  attack.spoof_offset = {50, 0};
  gnss.set_attack(attack);
  core::Rng rng{5};
  core::RunningStats x;
  for (int i = 0; i < 200; ++i) {
    const auto fix = gnss.fix({100, 100}, i, rng);
    if (fix) x.add(fix->position.x);
  }
  EXPECT_NEAR(x.mean(), 150.0, 2.0);
}

TEST(Gnss, SpoofDriftWalksOff) {
  GnssReceiver gnss{SensorId{3}, GnssConfig{}};
  GnssAttack attack;
  attack.active_spoof = true;
  attack.spoof_drift_mps = 1.0;
  gnss.set_attack(attack);
  core::Rng rng{5};
  const auto early = gnss.fix({0, 0}, 0, rng);
  const auto late = gnss.fix({0, 0}, 60 * core::kSecond, rng);
  ASSERT_TRUE(early && late);
  EXPECT_GT(late->position.x - early->position.x, 40.0);
}

TEST(Gnss, SpooferFakesGoodQuality) {
  GnssReceiver honest{SensorId{3}, GnssConfig{}};
  GnssReceiver spoofed{SensorId{4}, GnssConfig{}};
  GnssAttack attack;
  attack.active_spoof = true;
  spoofed.set_attack(attack);
  core::Rng rng{5};
  const auto h = honest.fix({0, 0}, 0, rng);
  const auto s = spoofed.fix({0, 0}, 0, rng);
  ASSERT_TRUE(h && s);
  EXPECT_LT(s->hdop, h->hdop);
}

TEST(Gnss, PlausibilityMonitorCatchesLargeOffset) {
  GnssPlausibilityMonitor monitor{6.0};
  GnssFix fix;
  fix.position = {60, 0};
  EXPECT_TRUE(monitor.check(fix, {0, 0}));
  EXPECT_EQ(monitor.violations(), 1u);
}

TEST(Gnss, PlausibilityMonitorPassesHonestNoise) {
  GnssPlausibilityMonitor monitor{6.0};
  GnssReceiver gnss{SensorId{3}, GnssConfig{}};
  core::Rng rng{5};
  int violations = 0;
  for (int i = 0; i < 300; ++i) {
    const auto fix = gnss.fix({100, 100}, i, rng);
    if (fix && monitor.check(*fix, {100, 100})) ++violations;
  }
  EXPECT_LT(violations, 30);  // 2 m noise vs 6 m gate: rare excursions only
}

TEST(Gnss, SlowDriftEvadesGateInitially) {
  // The "hard to detect" property of walk-off spoofing: early fixes stay
  // inside the gate, later ones breach it.
  GnssReceiver gnss{SensorId{3}, GnssConfig{.noise_sigma_m = 0.3, .canopy_factor = 1.0,
                                            .fix_probability = 1.0}};
  GnssAttack attack;
  attack.active_spoof = true;
  attack.spoof_drift_mps = 0.2;
  gnss.set_attack(attack);
  GnssPlausibilityMonitor monitor{6.0};
  core::Rng rng{5};

  const auto early = gnss.fix({0, 0}, 1 * core::kSecond, rng);
  ASSERT_TRUE(early);
  EXPECT_FALSE(monitor.check(*early, {0, 0}));

  const auto late = gnss.fix({0, 0}, 60 * core::kSecond, rng);
  ASSERT_TRUE(late);
  EXPECT_TRUE(monitor.check(*late, {0, 0}));
}

}  // namespace
}  // namespace agrarsec::sensors
