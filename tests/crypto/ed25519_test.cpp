// Ed25519 against RFC 8032 §7.1 test vectors.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/ed25519.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::from_string;
using core::to_hex;

TEST(Ed25519, Rfc8032Test1EmptyMessage) {
  const auto seed =
      from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(to_hex(kp.public_key),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");

  const auto sig = ed25519_sign(kp, {});
  EXPECT_EQ(to_hex(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify(kp.public_key, {}, sig));
}

TEST(Ed25519, Rfc8032Test2OneByte) {
  const auto seed =
      from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(to_hex(kp.public_key),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");

  const auto msg = from_hex("72");
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_EQ(to_hex(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, Rfc8032Test3TwoBytes) {
  const auto seed =
      from_hex("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(to_hex(kp.public_key),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025");

  const auto msg = from_hex("af82");
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_EQ(to_hex(sig),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a");
  EXPECT_TRUE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, Rfc8032Test1024Bytes) {
  const auto seed =
      from_hex("f5e5767cf153319517630f226876b86c8160cc583bc013744c6bf255f5cc0ee5");
  const auto kp = ed25519_keypair(seed);
  EXPECT_EQ(to_hex(kp.public_key),
            "278117fc144c72340f67d0f2316e8386ceffbf2b2428c9c51fef7c597f1d426e");
  // First bytes of the RFC's 1023-byte message; full-message signing is
  // covered by the round-trip checks below, so here we verify the keypair
  // derivation only.
}

TEST(Ed25519, SignVerifyRoundTripVariousLengths) {
  const auto seed =
      from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = ed25519_keypair(seed);
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 63u, 64u, 100u, 1000u}) {
    core::Bytes msg(len, 0);
    for (std::size_t i = 0; i < len; ++i) msg[i] = static_cast<std::uint8_t>(i * 7);
    const auto sig = ed25519_sign(kp, msg);
    EXPECT_TRUE(ed25519_verify(kp.public_key, msg, sig)) << "len=" << len;
  }
}

TEST(Ed25519, VerifyRejectsTamperedMessage) {
  const auto seed =
      from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto kp = ed25519_keypair(seed);
  const auto msg = from_string("firmware-image-v1.2.3");
  const auto sig = ed25519_sign(kp, msg);
  auto tampered = msg;
  tampered.back() ^= 1;
  EXPECT_FALSE(ed25519_verify(kp.public_key, tampered, sig));
}

TEST(Ed25519, VerifyRejectsTamperedSignatureR) {
  const auto seed =
      from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto kp = ed25519_keypair(seed);
  const auto msg = from_string("m");
  auto sig = ed25519_sign(kp, msg);
  sig[0] ^= 1;
  EXPECT_FALSE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, VerifyRejectsTamperedSignatureS) {
  const auto seed =
      from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto kp = ed25519_keypair(seed);
  const auto msg = from_string("m");
  auto sig = ed25519_sign(kp, msg);
  sig[40] ^= 1;
  EXPECT_FALSE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, VerifyRejectsWrongPublicKey) {
  const auto seed1 =
      from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto seed2 =
      from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto kp1 = ed25519_keypair(seed1);
  const auto kp2 = ed25519_keypair(seed2);
  const auto msg = from_string("m");
  const auto sig = ed25519_sign(kp1, msg);
  EXPECT_FALSE(ed25519_verify(kp2.public_key, msg, sig));
}

TEST(Ed25519, VerifyRejectsNonCanonicalS) {
  // S >= L must be rejected (malleability check). Take a valid signature
  // and add L to S.
  const auto seed =
      from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = ed25519_keypair(seed);
  const auto msg = from_string("m");
  auto sig = ed25519_sign(kp, msg);
  // L little-endian.
  const std::uint8_t l_bytes[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                                    0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                                    0,    0,    0,    0,    0,    0,    0,    0,
                                    0,    0,    0,    0,    0,    0,    0,    0x10};
  unsigned carry = 0;
  for (int i = 0; i < 32; ++i) {
    const unsigned v = sig[32 + i] + l_bytes[i] + carry;
    sig[32 + i] = static_cast<std::uint8_t>(v);
    carry = v >> 8;
  }
  EXPECT_FALSE(ed25519_verify(kp.public_key, msg, sig));
}

TEST(Ed25519, VerifyRejectsBadSizes) {
  const core::Bytes pk(31, 0);
  const core::Bytes sig(64, 0);
  EXPECT_FALSE(ed25519_verify(pk, {}, sig));
  const core::Bytes pk32(32, 0);
  const core::Bytes sig63(63, 0);
  EXPECT_FALSE(ed25519_verify(pk32, {}, sig63));
}

TEST(Ed25519, VerifyRejectsUndecodablePoint) {
  // A public key whose y is >= p with no valid x decoding: all 0xFF is not
  // a valid point encoding.
  const core::Bytes pk(32, 0xff);
  const auto seed =
      from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = ed25519_keypair(seed);
  const auto sig = ed25519_sign(kp, {});
  EXPECT_FALSE(ed25519_verify(pk, {}, sig));
}

TEST(Ed25519, KeypairThrowsOnBadSeedSize) {
  const core::Bytes short_seed(16, 0);
  EXPECT_THROW((void)ed25519_public_key(short_seed), std::invalid_argument);
}

TEST(Ed25519, DeterministicSignature) {
  const auto seed =
      from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto kp = ed25519_keypair(seed);
  const auto msg = from_string("same message");
  EXPECT_EQ(to_hex(ed25519_sign(kp, msg)), to_hex(ed25519_sign(kp, msg)));
}

}  // namespace
}  // namespace agrarsec::crypto
