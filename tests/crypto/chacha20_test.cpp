// ChaCha20 against RFC 8439 test vectors.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/chacha20.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::from_string;
using core::to_hex;

TEST(ChaCha20, Rfc8439Section231BlockFunction) {
  const auto key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = from_hex("000000090000004a00000000");
  const auto block = ChaCha20::block(key, nonce, 1);
  EXPECT_EQ(to_hex(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Section234Encryption) {
  const auto key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = from_hex("000000000000004a00000000");
  const auto plaintext = from_string(
      "Ladies and Gentlemen of the class of '99: If I could offer you only one "
      "tip for the future, sunscreen would be it.");
  const auto ciphertext = ChaCha20::crypt(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const auto key = from_hex(
      "1111111111111111111111111111111111111111111111111111111111111111");
  const auto nonce = from_hex("000000000000000000000001");
  const auto plaintext = from_string("round trip payload with some length to it");
  const auto ct = ChaCha20::crypt(key, nonce, 7, plaintext);
  EXPECT_NE(to_hex(ct), to_hex(plaintext));
  const auto pt = ChaCha20::crypt(key, nonce, 7, ct);
  EXPECT_EQ(pt, plaintext);
}

TEST(ChaCha20, StreamingMatchesOneShotAcrossBlockBoundaries) {
  const auto key = from_hex(
      "2222222222222222222222222222222222222222222222222222222222222222");
  const auto nonce = from_hex("000000000000000000000002");
  const core::Bytes plaintext(200, 0x5a);

  const auto expected = ChaCha20::crypt(key, nonce, 0, plaintext);

  core::Bytes streaming = plaintext;
  ChaCha20 c{key, nonce, 0};
  // Apply in uneven chunks: 1, 63, 64, 65, 7 bytes.
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 7u}) {
    c.apply(std::span(streaming.data() + off, chunk));
    off += chunk;
  }
  ASSERT_EQ(off, plaintext.size());
  EXPECT_EQ(streaming, expected);
}

TEST(ChaCha20, CounterOffsetsDisjointKeystream) {
  const auto key = from_hex(
      "3333333333333333333333333333333333333333333333333333333333333333");
  const auto nonce = from_hex("000000000000000000000003");
  const core::Bytes zeros(64, 0);
  const auto block0 = ChaCha20::crypt(key, nonce, 0, zeros);
  const auto block1 = ChaCha20::crypt(key, nonce, 1, zeros);
  EXPECT_NE(to_hex(block0), to_hex(block1));
  // Counter 1 keystream equals the second block of a counter-0 stream.
  const core::Bytes zeros2(128, 0);
  const auto both = ChaCha20::crypt(key, nonce, 0, zeros2);
  EXPECT_TRUE(std::equal(block1.begin(), block1.end(), both.begin() + 64));
}

TEST(ChaCha20, RejectsBadKeySize) {
  const core::Bytes key(16, 0);
  const core::Bytes nonce(12, 0);
  EXPECT_THROW(ChaCha20(key, nonce), std::invalid_argument);
}

TEST(ChaCha20, RejectsBadNonceSize) {
  const core::Bytes key(32, 0);
  const core::Bytes nonce(8, 0);
  EXPECT_THROW(ChaCha20(key, nonce), std::invalid_argument);
}

TEST(ChaCha20, EmptyInputIsNoop) {
  const core::Bytes key(32, 1);
  const core::Bytes nonce(12, 2);
  EXPECT_TRUE(ChaCha20::crypt(key, nonce, 0, {}).empty());
}

}  // namespace
}  // namespace agrarsec::crypto
