// HMAC-SHA256 against RFC 4231 test vectors.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/hmac.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::from_string;
using core::to_hex;

TEST(HmacSha256, Rfc4231Case1) {
  const auto key = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto data = from_string("Hi There");
  EXPECT_EQ(to_hex(HmacSha256::mac(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto key = from_string("Jefe");
  const auto data = from_string("what do ya want for nothing?");
  EXPECT_EQ(to_hex(HmacSha256::mac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const auto key = from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  const core::Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(HmacSha256::mac(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4) {
  const auto key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const core::Bytes data(50, 0xcd);
  EXPECT_EQ(to_hex(HmacSha256::mac(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const core::Bytes key(131, 0xaa);
  const auto data = from_string("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(HmacSha256::mac(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Rfc4231Case7LongKeyLongData) {
  const core::Bytes key(131, 0xaa);
  const auto data = from_string(
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.");
  EXPECT_EQ(to_hex(HmacSha256::mac(key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256, IncrementalMatchesOneShot) {
  const auto key = from_string("incremental-key");
  const auto data = from_string("part-one|part-two|part-three");
  HmacSha256 h{key};
  h.update(from_string("part-one|"));
  h.update(from_string("part-two|"));
  h.update(from_string("part-three"));
  EXPECT_EQ(to_hex(h.finish()), to_hex(HmacSha256::mac(key, data)));
}

TEST(HmacSha256, VerifyAcceptsCorrectTag) {
  const auto key = from_string("k");
  const auto data = from_string("d");
  const auto tag = HmacSha256::mac(key, data);
  EXPECT_TRUE(HmacSha256::verify(key, data, tag));
}

TEST(HmacSha256, VerifyRejectsTamperedTag) {
  const auto key = from_string("k");
  const auto data = from_string("d");
  auto tag = HmacSha256::mac(key, data);
  tag[0] ^= 1;
  EXPECT_FALSE(HmacSha256::verify(key, data, tag));
}

TEST(HmacSha256, VerifyRejectsTamperedData) {
  const auto key = from_string("k");
  const auto tag = HmacSha256::mac(key, from_string("d"));
  EXPECT_FALSE(HmacSha256::verify(key, from_string("e"), tag));
}

TEST(HmacSha256, VerifyRejectsWrongKey) {
  const auto data = from_string("d");
  const auto tag = HmacSha256::mac(from_string("k1"), data);
  EXPECT_FALSE(HmacSha256::verify(from_string("k2"), data, tag));
}

TEST(HmacSha256, EmptyKeyAndMessageSupported) {
  const auto tag = HmacSha256::mac({}, {});
  EXPECT_EQ(to_hex(tag),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

}  // namespace
}  // namespace agrarsec::crypto
