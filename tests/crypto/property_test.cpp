// Property-based sweeps over the crypto substrate: randomized round trips,
// cross-primitive agreements and negative properties, parameterized over
// sizes and seeds.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/x25519.h"

namespace agrarsec::crypto {
namespace {

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, AeadRoundTripAllSizes) {
  const std::size_t n = GetParam();
  Drbg drbg{n * 31 + 1, "aead-prop"};
  const auto key = drbg.generate32();
  const auto nonce = drbg.generate(12);
  const auto aad = drbg.generate(n % 48);
  const auto plaintext = drbg.generate(n);

  const auto sealed = aead_seal(key, nonce, aad, plaintext);
  EXPECT_EQ(sealed.size(), n + kAeadTagSize);
  const auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), plaintext);
}

TEST_P(SizeSweep, AeadSingleBitFlipAlwaysDetected) {
  const std::size_t n = GetParam();
  if (n == 0) return;  // bit positions need content
  Drbg drbg{n * 37 + 5, "aead-flip"};
  const auto key = drbg.generate32();
  const auto nonce = drbg.generate(12);
  const auto plaintext = drbg.generate(n);
  const auto sealed = aead_seal(key, nonce, {}, plaintext);

  // Flip one bit in a spread of positions across ciphertext and tag.
  for (std::size_t pos = 0; pos < sealed.size(); pos += std::max<std::size_t>(1, sealed.size() / 16)) {
    auto damaged = sealed;
    damaged[pos] ^= 0x01;
    EXPECT_FALSE(aead_open(key, nonce, {}, damaged).ok()) << "pos=" << pos;
  }
}

TEST_P(SizeSweep, ChaChaIsAnInvolution) {
  const std::size_t n = GetParam();
  Drbg drbg{n * 41 + 7, "chacha-prop"};
  const auto key = drbg.generate32();
  const auto nonce = drbg.generate(12);
  const auto data = drbg.generate(n);
  const auto once = ChaCha20::crypt(key, nonce, 3, data);
  const auto twice = ChaCha20::crypt(key, nonce, 3, once);
  EXPECT_EQ(twice, data);
}

TEST_P(SizeSweep, HashIncrementalEqualsOneShotRandomSplits) {
  const std::size_t n = GetParam();
  Drbg drbg{n * 43 + 9, "hash-prop"};
  const auto data = drbg.generate(n);
  const auto reference = Sha256::hash(data);

  core::Rng rng{n + 1};
  for (int trial = 0; trial < 4; ++trial) {
    Sha256 h;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t chunk =
          1 + rng.next_below(std::max<std::uint64_t>(1, data.size() - pos));
      h.update(std::span(data.data() + pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(core::to_hex(h.finish()), core::to_hex(reference));
  }
}

TEST_P(SizeSweep, HmacKeyAndMessageSeparation) {
  const std::size_t n = GetParam();
  Drbg drbg{n * 47 + 11, "hmac-prop"};
  const auto k1 = drbg.generate(32);
  const auto k2 = drbg.generate(32);
  const auto msg = drbg.generate(n);
  EXPECT_NE(core::to_hex(HmacSha256::mac(k1, msg)),
            core::to_hex(HmacSha256::mac(k2, msg)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 63u, 64u, 65u,
                                           255u, 256u, 1000u, 4096u));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, X25519DhAgreesForRandomKeys) {
  Drbg drbg{GetParam(), "x25519-prop"};
  const auto a = drbg.generate32();
  const auto b = drbg.generate32();
  const auto pub_a = x25519_base(a);
  const auto pub_b = x25519_base(b);
  X25519Key s1{}, s2{};
  ASSERT_TRUE(x25519_shared(a, pub_b, s1));
  ASSERT_TRUE(x25519_shared(b, pub_a, s2));
  EXPECT_EQ(core::to_hex(s1), core::to_hex(s2));
}

TEST_P(SeedSweep, Ed25519SignVerifyRandomKeysAndMessages) {
  Drbg drbg{GetParam(), "ed-prop"};
  const auto kp = ed25519_keypair(drbg.generate32());
  const auto msg = drbg.generate(static_cast<std::size_t>(GetParam() % 300));
  const auto sig = ed25519_sign(kp, msg);
  EXPECT_TRUE(ed25519_verify(kp.public_key, msg, sig));
  // Cross-key rejection.
  const auto other = ed25519_keypair(drbg.generate32());
  EXPECT_FALSE(ed25519_verify(other.public_key, msg, sig));
}

TEST_P(SeedSweep, Ed25519SignatureBitFlipsRejected) {
  Drbg drbg{GetParam() ^ 0xABCD, "ed-flip"};
  const auto kp = ed25519_keypair(drbg.generate32());
  const auto msg = drbg.generate(64);
  const auto sig = ed25519_sign(kp, msg);
  core::Rng rng{GetParam()};
  for (int i = 0; i < 4; ++i) {
    auto damaged = sig;
    const auto byte = rng.next_below(damaged.size());
    damaged[byte] ^= static_cast<std::uint8_t>(1 << rng.next_below(8));
    EXPECT_FALSE(ed25519_verify(kp.public_key, msg, damaged));
  }
}

TEST_P(SeedSweep, HkdfOutputsLookIndependentAcrossInfo) {
  Drbg drbg{GetParam() + 99, "hkdf-prop"};
  const auto ikm = drbg.generate(32);
  const auto prk = hkdf_extract({}, ikm);
  const auto a = hkdf_expand(prk, core::from_string("context-a"), 32);
  const auto b = hkdf_expand(prk, core::from_string("context-b"), 32);
  int equal_bytes = 0;
  for (int i = 0; i < 32; ++i) equal_bytes += (a[i] == b[i]) ? 1 : 0;
  EXPECT_LT(equal_bytes, 8);  // ~1/256 expected collisions per byte
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace agrarsec::crypto
