// ChaCha20-Poly1305 AEAD against the RFC 8439 §2.8.2 test vector.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/aead.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::from_string;
using core::to_hex;

struct Rfc8439Vector {
  core::Bytes key = from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  core::Bytes nonce = from_hex("070000004041424344454647");
  core::Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  core::Bytes plaintext = from_string(
      "Ladies and Gentlemen of the class of '99: If I could offer you only one "
      "tip for the future, sunscreen would be it.");
};

TEST(Aead, Rfc8439SealVector) {
  const Rfc8439Vector v;
  const auto sealed = aead_seal(v.key, v.nonce, v.aad, v.plaintext);
  ASSERT_EQ(sealed.size(), v.plaintext.size() + kAeadTagSize);
  const std::string expected_ct =
      "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
      "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
      "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
      "3ff4def08e4b7a9de576d26586cec64b6116";
  const std::string expected_tag = "1ae10b594f09e26a7e902ecbd0600691";
  EXPECT_EQ(to_hex(std::span(sealed.data(), sealed.size() - 16)), expected_ct);
  EXPECT_EQ(to_hex(std::span(sealed.data() + sealed.size() - 16, 16)), expected_tag);
}

TEST(Aead, OpenRoundTrip) {
  const Rfc8439Vector v;
  const auto sealed = aead_seal(v.key, v.nonce, v.aad, v.plaintext);
  const auto opened = aead_open(v.key, v.nonce, v.aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), v.plaintext);
}

TEST(Aead, OpenRejectsTamperedCiphertext) {
  const Rfc8439Vector v;
  auto sealed = aead_seal(v.key, v.nonce, v.aad, v.plaintext);
  sealed[3] ^= 0x01;
  const auto opened = aead_open(v.key, v.nonce, v.aad, sealed);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, "bad_mac");
}

TEST(Aead, OpenRejectsTamperedTag) {
  const Rfc8439Vector v;
  auto sealed = aead_seal(v.key, v.nonce, v.aad, v.plaintext);
  sealed.back() ^= 0x80;
  EXPECT_FALSE(aead_open(v.key, v.nonce, v.aad, sealed).ok());
}

TEST(Aead, OpenRejectsTamperedAad) {
  const Rfc8439Vector v;
  const auto sealed = aead_seal(v.key, v.nonce, v.aad, v.plaintext);
  auto bad_aad = v.aad;
  bad_aad[0] ^= 0xff;
  EXPECT_FALSE(aead_open(v.key, v.nonce, bad_aad, sealed).ok());
}

TEST(Aead, OpenRejectsWrongNonce) {
  const Rfc8439Vector v;
  const auto sealed = aead_seal(v.key, v.nonce, v.aad, v.plaintext);
  auto wrong = v.nonce;
  wrong[0] ^= 1;
  EXPECT_FALSE(aead_open(v.key, wrong, v.aad, sealed).ok());
}

TEST(Aead, OpenRejectsWrongKey) {
  const Rfc8439Vector v;
  const auto sealed = aead_seal(v.key, v.nonce, v.aad, v.plaintext);
  auto wrong = v.key;
  wrong[31] ^= 1;
  EXPECT_FALSE(aead_open(wrong, v.nonce, v.aad, sealed).ok());
}

TEST(Aead, OpenRejectsTruncatedInput) {
  const Rfc8439Vector v;
  const core::Bytes too_short(8, 0);
  const auto r = aead_open(v.key, v.nonce, v.aad, too_short);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "bad_length");
}

TEST(Aead, EmptyPlaintextAndAad) {
  const Rfc8439Vector v;
  const auto sealed = aead_seal(v.key, v.nonce, {}, {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  const auto opened = aead_open(v.key, v.nonce, {}, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().empty());
}

TEST(Aead, AadAlignedTo16DoesNotPad) {
  // aad length exactly 16: padding branch skipped; round trip must work.
  const Rfc8439Vector v;
  const core::Bytes aad16(16, 0xab);
  const auto sealed = aead_seal(v.key, v.nonce, aad16, v.plaintext);
  EXPECT_TRUE(aead_open(v.key, v.nonce, aad16, sealed).ok());
}

TEST(Aead, SealRejectsBadKeySize) {
  const core::Bytes key(16, 0);
  const core::Bytes nonce(12, 0);
  EXPECT_THROW(aead_seal(key, nonce, {}, {}), std::invalid_argument);
}

TEST(Aead, DistinctNoncesDistinctCiphertexts) {
  const Rfc8439Vector v;
  auto n2 = v.nonce;
  n2[11] ^= 1;
  const auto s1 = aead_seal(v.key, v.nonce, {}, v.plaintext);
  const auto s2 = aead_seal(v.key, n2, {}, v.plaintext);
  EXPECT_NE(to_hex(s1), to_hex(s2));
}

}  // namespace
}  // namespace agrarsec::crypto
