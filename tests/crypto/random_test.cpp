#include "crypto/random.h"

#include <gtest/gtest.h>

#include "core/bytes.h"

namespace agrarsec::crypto {
namespace {

TEST(Drbg, DeterministicForSeedAndLabel) {
  Drbg a{42, "node-1"};
  Drbg b{42, "node-1"};
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(Drbg, DifferentLabelsDiverge) {
  Drbg a{42, "node-1"};
  Drbg b{42, "node-2"};
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, DifferentSeedsDiverge) {
  Drbg a{1, "x"};
  Drbg b{2, "x"};
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, StreamAdvances) {
  Drbg a{7, "x"};
  const auto first = a.generate(32);
  const auto second = a.generate(32);
  EXPECT_NE(first, second);
}

TEST(Drbg, GenerateOddLengths) {
  Drbg a{7, "x"};
  EXPECT_EQ(a.generate(1).size(), 1u);
  EXPECT_EQ(a.generate(33).size(), 33u);
  EXPECT_EQ(a.generate(0).size(), 0u);
}

TEST(Drbg, ChunkedEqualsOneShot) {
  Drbg a{9, "y"}, b{9, "y"};
  auto big = a.generate(96);
  core::Bytes chunked;
  for (int i = 0; i < 3; ++i) {
    const auto part = b.generate(32);
    chunked.insert(chunked.end(), part.begin(), part.end());
  }
  EXPECT_EQ(big, chunked);
}

TEST(Drbg, Generate32Shape) {
  Drbg a{11, "z"};
  const auto k = a.generate32();
  // Not all zero.
  bool nonzero = false;
  for (auto byte : k) nonzero |= (byte != 0);
  EXPECT_TRUE(nonzero);
}

TEST(Drbg, ByteDistributionRoughlyUniform) {
  Drbg a{13, "dist"};
  const auto data = a.generate(65536);
  std::array<int, 256> counts{};
  for (auto b : data) ++counts[b];
  // Each byte value expected 256 times; allow generous bounds.
  for (int c : counts) {
    EXPECT_GT(c, 128);
    EXPECT_LT(c, 512);
  }
}

}  // namespace
}  // namespace agrarsec::crypto
