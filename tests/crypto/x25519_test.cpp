// X25519 against RFC 7748 §5.2 and §6.1 test vectors.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/x25519.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::to_hex;

TEST(X25519, Rfc7748Vector1) {
  const auto scalar =
      from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto u =
      from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  const auto out = x25519(scalar, u);
  EXPECT_EQ(to_hex(out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  const auto scalar =
      from_hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto u =
      from_hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  const auto out = x25519(scalar, u);
  EXPECT_EQ(to_hex(out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748IteratedOnce) {
  // §5.2 iteration vector, 1 iteration.
  auto k = from_hex("0900000000000000000000000000000000000000000000000000000000000000");
  auto u = k;
  const auto result = x25519(k, u);
  EXPECT_EQ(to_hex(result),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
}

TEST(X25519, Rfc7748Iterated1000) {
  auto k = from_hex("0900000000000000000000000000000000000000000000000000000000000000");
  auto u = k;
  for (int i = 0; i < 1000; ++i) {
    const auto r = x25519(k, u);
    u = core::Bytes(k.begin(), k.end());
    k = core::Bytes(r.begin(), r.end());
  }
  EXPECT_EQ(to_hex(k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

TEST(X25519, Rfc7748DiffieHellman) {
  // §6.1: Alice/Bob key agreement.
  const auto alice_priv =
      from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv =
      from_hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_pub = x25519_base(alice_priv);
  EXPECT_EQ(to_hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  const auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(to_hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  X25519Key k1{}, k2{};
  ASSERT_TRUE(x25519_shared(alice_priv, bob_pub, k1));
  ASSERT_TRUE(x25519_shared(bob_priv, alice_pub, k2));
  EXPECT_EQ(to_hex(k1), to_hex(k2));
  EXPECT_EQ(to_hex(k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, SharedRejectsAllZeroOutput) {
  // A low-order point (u = 0) forces the all-zero shared secret.
  const auto priv =
      from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const core::Bytes zero_point(32, 0);
  X25519Key out{};
  EXPECT_FALSE(x25519_shared(priv, zero_point, out));
  for (std::uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(X25519, RejectsBadInputSizes) {
  const core::Bytes short_scalar(16, 0);
  const core::Bytes u(32, 0);
  EXPECT_THROW((void)x25519(short_scalar, u), std::invalid_argument);
  const core::Bytes scalar(32, 0);
  const core::Bytes short_u(31, 0);
  EXPECT_THROW((void)x25519(scalar, short_u), std::invalid_argument);
}

TEST(X25519, ClampingIgnoresForbiddenScalarBits) {
  // Scalars differing only in clamped bits give the same result.
  auto s1 = from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto s2 = s1;
  s2[0] |= 0x07;   // low bits are cleared by clamping
  s2[31] |= 0x80;  // top bit cleared
  const auto u =
      from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(to_hex(x25519(s1, u)), to_hex(x25519(s2, u)));
}

TEST(X25519, PublicKeysDifferForDifferentPrivates) {
  core::Bytes p1(32, 0x11), p2(32, 0x22);
  EXPECT_NE(to_hex(x25519_base(p1)), to_hex(x25519_base(p2)));
}

}  // namespace
}  // namespace agrarsec::crypto
