// Poly1305 against RFC 8439 test vectors.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/poly1305.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::from_string;
using core::to_hex;

TEST(Poly1305, Rfc8439Section253) {
  const auto key =
      from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const auto msg = from_string("Cryptographic Forum Research Group");
  EXPECT_EQ(to_hex(Poly1305::mac(key, msg)), "a8061dc1305136c6c22b8baf0c0127a9");
}

// RFC 8439 Appendix A.3 vectors.
TEST(Poly1305, AppendixA3Vector1ZeroKey) {
  const core::Bytes key(32, 0);
  const core::Bytes msg(64, 0);
  EXPECT_EQ(to_hex(Poly1305::mac(key, msg)), "00000000000000000000000000000000");
}

TEST(Poly1305, AppendixA3Vector2) {
  const auto key =
      from_hex("0000000000000000000000000000000036e5f6b5c5e06070f0efca96227a863e");
  const auto msg = from_string(
      "Any submission to the IETF intended by the Contributor for publication "
      "as all or part of an IETF Internet-Draft or RFC and any statement made "
      "within the context of an IETF activity is considered an \"IETF "
      "Contribution\". Such statements include oral statements in IETF "
      "sessions, as well as written and electronic communications made at any "
      "time or place, which are addressed to");
  EXPECT_EQ(to_hex(Poly1305::mac(key, msg)), "36e5f6b5c5e06070f0efca96227a863e");
}

TEST(Poly1305, AppendixA3Vector3) {
  const auto key =
      from_hex("36e5f6b5c5e06070f0efca96227a863e00000000000000000000000000000000");
  const auto msg = from_string(
      "Any submission to the IETF intended by the Contributor for publication "
      "as all or part of an IETF Internet-Draft or RFC and any statement made "
      "within the context of an IETF activity is considered an \"IETF "
      "Contribution\". Such statements include oral statements in IETF "
      "sessions, as well as written and electronic communications made at any "
      "time or place, which are addressed to");
  EXPECT_EQ(to_hex(Poly1305::mac(key, msg)), "f3477e7cd95417af89a6b8794c310cf0");
}

// Appendix A.3 #11-style edge case exercising the wraparound behaviour.
TEST(Poly1305, AppendixA3Vector4TextOfRfc) {
  const auto key =
      from_hex("1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dca5cbc207075c0");
  const auto msg = from_string(
      "'Twas brillig, and the slithy toves\nDid gyre and gimble in the "
      "wabe:\nAll mimsy were the borogoves,\nAnd the mome raths outgrabe.");
  EXPECT_EQ(to_hex(Poly1305::mac(key, msg)), "4541669a7eaaee61e708dc7cbcc5eb62");
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  const auto key =
      from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const auto msg = from_string("Cryptographic Forum Research Group");
  Poly1305 p{key};
  p.update(from_string("Cryptographic "));
  p.update(from_string("Forum "));
  p.update(from_string("Research Group"));
  EXPECT_EQ(to_hex(p.finish()), to_hex(Poly1305::mac(key, msg)));
}

TEST(Poly1305, PartialFinalBlock) {
  // 17-byte message: one full block plus one 1-byte partial.
  const auto key =
      from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const core::Bytes msg(17, 0x42);
  const auto tag1 = Poly1305::mac(key, msg);
  // Same computed incrementally split inside the partial block.
  Poly1305 p{key};
  p.update(std::span(msg.data(), 16));
  p.update(std::span(msg.data() + 16, 1));
  EXPECT_EQ(to_hex(p.finish()), to_hex(tag1));
}

TEST(Poly1305, EmptyMessage) {
  const auto key =
      from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  // MAC of empty message is just the pad s.
  EXPECT_EQ(to_hex(Poly1305::mac(key, {})), "0103808afb0db2fd4abff6af4149f51b");
}

TEST(Poly1305, RejectsBadKeySize) {
  const core::Bytes key(16, 0);
  EXPECT_THROW(Poly1305{key}, std::invalid_argument);
}

TEST(Poly1305, TagChangesWithMessage) {
  const auto key =
      from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const auto t1 = Poly1305::mac(key, from_string("message-a"));
  const auto t2 = Poly1305::mac(key, from_string("message-b"));
  EXPECT_NE(to_hex(t1), to_hex(t2));
}

}  // namespace
}  // namespace agrarsec::crypto
