// SHA-256 / SHA-512 against FIPS 180-4 / NIST CAVS vectors.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::from_string;
using core::to_hex;

std::string sha256_hex(std::string_view msg) {
  const auto d = Sha256::hash(from_string(msg));
  return to_hex(d);
}

std::string sha512_hex(std::string_view msg) {
  const auto d = Sha512::hash(from_string(msg));
  return to_hex(d);
}

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const core::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  // Split at awkward boundaries relative to the 64-byte block size.
  const std::string msg(200, 'x');
  for (std::size_t split : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 199u}) {
    Sha256 h;
    h.update(from_string(msg.substr(0, split)));
    h.update(from_string(msg.substr(split)));
    EXPECT_EQ(to_hex(h.finish()), sha256_hex(msg)) << "split=" << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(from_string("garbage"));
  (void)h.finish();
  h.reset();
  h.update(from_string("abc"));
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, ExactBlockBoundaryMessage) {
  // 64-byte message exercises the padding-to-new-block path.
  EXPECT_EQ(sha256_hex(std::string(64, 'a')),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha512, EmptyMessage) {
  EXPECT_EQ(sha512_hex(""),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(sha512_hex("abc"),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(sha512_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                       "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionA) {
  Sha512 h;
  const core::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  const std::string msg(400, 'y');
  for (std::size_t split : {1u, 127u, 128u, 129u, 255u, 256u, 257u, 399u}) {
    Sha512 h;
    h.update(from_string(msg.substr(0, split)));
    h.update(from_string(msg.substr(split)));
    EXPECT_EQ(to_hex(h.finish()), sha512_hex(msg)) << "split=" << split;
  }
}

TEST(Sha512, ExactBlockBoundaryMessage) {
  EXPECT_EQ(sha512_hex(std::string(128, 'a')),
            "b73d1929aa615934e61a871596b3f3b33359f42b8175602e89f7e06e5f658a24"
            "3667807ed300314b95cacdd579f3e33abdfbe351909519a846d465c59582f321");
}

// Differential property: distinct short messages must not collide (sanity
// sweep over 1 000 single-byte-different messages).
TEST(Sha256, NoTrivialCollisionsOnByteFlips) {
  core::Bytes base(32, 0);
  const auto ref = Sha256::hash(base);
  for (int i = 0; i < 32; ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      core::Bytes mutated = base;
      mutated[static_cast<std::size_t>(i)] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(to_hex(Sha256::hash(mutated)), to_hex(ref));
    }
  }
}

}  // namespace
}  // namespace agrarsec::crypto
