// HKDF-SHA256 against RFC 5869 Appendix A test vectors.
#include <gtest/gtest.h>

#include "core/bytes.h"
#include "crypto/hkdf.h"

namespace agrarsec::crypto {
namespace {

using core::from_hex;
using core::to_hex;

TEST(Hkdf, Rfc5869Case1) {
  const auto ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto salt = from_hex("000102030405060708090a0b0c");
  const auto info = from_hex("f0f1f2f3f4f5f6f7f8f9");

  const auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(to_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  const auto okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case2LongInputs) {
  core::Bytes ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));

  const auto okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(to_hex(okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const auto ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthExactlyOneHash) {
  const auto prk = hkdf_extract(core::from_string("salt"), core::from_string("ikm"));
  EXPECT_EQ(hkdf_expand(prk, {}, 32).size(), 32u);
}

TEST(Hkdf, ExpandMaximumLength) {
  const auto prk = hkdf_extract(core::from_string("salt"), core::from_string("ikm"));
  EXPECT_EQ(hkdf_expand(prk, {}, 255 * 32).size(), 255u * 32u);
}

TEST(Hkdf, ExpandRejectsOversize) {
  const auto prk = hkdf_extract(core::from_string("salt"), core::from_string("ikm"));
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, DistinctInfoYieldsDistinctKeys) {
  const auto prk = hkdf_extract(core::from_string("salt"), core::from_string("ikm"));
  const auto k1 = hkdf_expand(prk, core::from_string("client"), 32);
  const auto k2 = hkdf_expand(prk, core::from_string("server"), 32);
  EXPECT_NE(to_hex(k1), to_hex(k2));
}

TEST(Hkdf, PrefixConsistency) {
  // The first N bytes of a longer expansion equal the N-byte expansion.
  const auto prk = hkdf_extract(core::from_string("s"), core::from_string("i"));
  const auto short_okm = hkdf_expand(prk, core::from_string("x"), 16);
  const auto long_okm = hkdf_expand(prk, core::from_string("x"), 64);
  EXPECT_TRUE(std::equal(short_okm.begin(), short_okm.end(), long_okm.begin()));
}

}  // namespace
}  // namespace agrarsec::crypto
