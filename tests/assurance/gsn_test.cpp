#include <gtest/gtest.h>

#include "assurance/evidence.h"
#include "assurance/gsn.h"

namespace agrarsec::assurance {
namespace {

struct SimpleCase {
  ArgumentModel arg;
  EvidenceRegistry registry;
  GsnId top, strategy, sub1, sub2, sol1, sol2;
  EvidenceId ev1, ev2;

  SimpleCase() {
    top = arg.add(GsnType::kGoal, "G1", "system is secure");
    strategy = arg.add(GsnType::kStrategy, "S1", "argue over subsystems");
    sub1 = arg.add(GsnType::kGoal, "G2", "comms secure");
    sub2 = arg.add(GsnType::kGoal, "G3", "platform secure");
    sol1 = arg.add(GsnType::kSolution, "Sn1", "comms test report");
    sol2 = arg.add(GsnType::kSolution, "Sn2", "boot test report");
    ev1 = registry.add(EvidenceKind::kTestResult, "comms-tests", "", 0.9);
    ev2 = registry.add(EvidenceKind::kTestResult, "boot-tests", "", 0.8);
    arg.support(top, strategy);
    arg.support(strategy, sub1);
    arg.support(strategy, sub2);
    arg.support(sub1, sol1);
    arg.support(sub2, sol2);
    arg.bind_evidence(sol1, ev1);
    arg.bind_evidence(sol2, ev2);
  }
};

TEST(Gsn, WellFormedCaseValidates) {
  SimpleCase c;
  EXPECT_TRUE(c.arg.validate().empty());
  EXPECT_EQ(c.arg.size(), 6u);
}

TEST(Gsn, RootsDetected) {
  SimpleCase c;
  const auto roots = c.arg.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->label, "G1");
}

TEST(Gsn, DuplicateLabelRejected) {
  ArgumentModel arg;
  arg.add(GsnType::kGoal, "G1", "x");
  EXPECT_THROW(arg.add(GsnType::kGoal, "G1", "y"), std::invalid_argument);
}

TEST(Gsn, EvidenceOnlyBindsToSolutions) {
  ArgumentModel arg;
  const GsnId g = arg.add(GsnType::kGoal, "G1", "x");
  EXPECT_THROW(arg.bind_evidence(g, EvidenceId{1}), std::invalid_argument);
}

TEST(Gsn, FullySupportedEvaluation) {
  SimpleCase c;
  const auto eval = c.arg.evaluate(c.registry);
  EXPECT_EQ(eval.at(c.top.value()).status, SupportStatus::kSupported);
  EXPECT_NEAR(eval.at(c.top.value()).confidence, 0.9 * 0.8, 1e-9);
}

TEST(Gsn, MissingEvidenceBreaksSupport) {
  SimpleCase c;
  EvidenceRegistry empty;
  const auto eval = c.arg.evaluate(empty);
  EXPECT_EQ(eval.at(c.sol1.value()).status, SupportStatus::kUnsupported);
  EXPECT_EQ(eval.at(c.top.value()).status, SupportStatus::kUnsupported);
}

TEST(Gsn, PartialSupportPropagates) {
  SimpleCase c;
  c.registry.update_confidence(c.ev2, 0.0);  // boot tests now failing
  const auto eval = c.arg.evaluate(c.registry);
  EXPECT_EQ(eval.at(c.sub1.value()).status, SupportStatus::kSupported);
  EXPECT_EQ(eval.at(c.sub2.value()).status, SupportStatus::kUnsupported);
  EXPECT_EQ(eval.at(c.strategy.value()).status, SupportStatus::kPartial);
  EXPECT_EQ(eval.at(c.top.value()).status, SupportStatus::kPartial);
  EXPECT_DOUBLE_EQ(eval.at(c.top.value()).confidence, 0.0);
}

TEST(Gsn, UndevelopedGoalFlagged) {
  ArgumentModel arg;
  const GsnId g = arg.add(GsnType::kGoal, "G1", "open point");
  arg.mark_undeveloped(g);
  EXPECT_TRUE(arg.validate().empty());
  EvidenceRegistry registry;
  const auto eval = arg.evaluate(registry);
  EXPECT_EQ(eval.at(g.value()).status, SupportStatus::kUndeveloped);
}

TEST(Gsn, UnsupportedGoalWithoutMarkIsInvalid) {
  ArgumentModel arg;
  arg.add(GsnType::kGoal, "G1", "dangling");
  const auto problems = arg.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no support"), std::string::npos);
}

TEST(Gsn, SolutionWithChildrenInvalid) {
  ArgumentModel arg;
  const GsnId sol = arg.add(GsnType::kSolution, "Sn1", "evidence");
  const GsnId g = arg.add(GsnType::kGoal, "G1", "goal");
  arg.support(sol, g);
  arg.bind_evidence(sol, EvidenceId{1});
  arg.mark_undeveloped(g);
  const auto problems = arg.validate();
  EXPECT_FALSE(problems.empty());
}

TEST(Gsn, ContextEdgesTyped) {
  ArgumentModel arg;
  const GsnId g1 = arg.add(GsnType::kGoal, "G1", "a");
  const GsnId g2 = arg.add(GsnType::kGoal, "G2", "b");
  arg.in_context(g1, g2);  // goal used as context: invalid
  arg.mark_undeveloped(g1);
  arg.mark_undeveloped(g2);
  const auto problems = arg.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("non-context"), std::string::npos);
}

TEST(Gsn, CycleDetected) {
  ArgumentModel arg;
  const GsnId g1 = arg.add(GsnType::kGoal, "G1", "a");
  const GsnId g2 = arg.add(GsnType::kGoal, "G2", "b");
  arg.support(g1, g2);
  arg.support(g2, g1);
  const auto problems = arg.validate();
  EXPECT_TRUE(std::any_of(problems.begin(), problems.end(), [](const std::string& p) {
    return p.find("cycle") != std::string::npos;
  }));
  // Evaluation must not hang or crash on the cycle.
  EvidenceRegistry registry;
  (void)arg.evaluate(registry);
}

TEST(Gsn, SelfReferenceCycleDetected) {
  ArgumentModel arg;
  const GsnId g = arg.add(GsnType::kGoal, "G1", "supports itself");
  arg.support(g, g);
  const auto problems = arg.validate();
  EXPECT_TRUE(std::any_of(problems.begin(), problems.end(), [](const std::string& p) {
    return p.find("cycle") != std::string::npos;
  }));
  EvidenceRegistry registry;
  (void)arg.evaluate(registry);  // must terminate
}

TEST(Gsn, InContextCycleDetected) {
  // A loop closed purely through in_context_of edges — the support tree
  // alone is acyclic, so a support-only walker would miss it.
  ArgumentModel arg;
  const GsnId goal = arg.add(GsnType::kGoal, "G1", "goal");
  arg.mark_undeveloped(goal);
  const GsnId c1 = arg.add(GsnType::kContext, "C1", "operating environment");
  const GsnId c2 = arg.add(GsnType::kContext, "C2", "assumed fleet size");
  arg.in_context(goal, c1);
  arg.in_context(c1, c2);
  arg.in_context(c2, c1);
  const auto problems = arg.validate();
  EXPECT_TRUE(std::any_of(problems.begin(), problems.end(), [](const std::string& p) {
    return p.find("cycle") != std::string::npos;
  }));
}

TEST(Gsn, DanglingEvidenceEvaluatesUnsupported) {
  ArgumentModel arg;
  const GsnId goal = arg.add(GsnType::kGoal, "G1", "claim");
  const GsnId solution = arg.add(GsnType::kSolution, "Sn1", "report");
  arg.support(goal, solution);
  arg.bind_evidence(solution, EvidenceId{999});  // never registered
  EvidenceRegistry registry;
  const auto eval = arg.evaluate(registry);
  EXPECT_EQ(eval.at(goal.value()).status, SupportStatus::kUnsupported);
  EXPECT_EQ(eval.at(goal.value()).confidence, 0.0);
}

TEST(Gsn, NodesAccessorPreservesCreationOrder) {
  SimpleCase c;
  const auto& nodes = c.arg.nodes();
  ASSERT_EQ(nodes.size(), 6u);
  EXPECT_EQ(nodes.front().label, "G1");
  EXPECT_EQ(nodes.back().label, "Sn2");
}

TEST(Gsn, ContextNodesAlwaysSupported) {
  ArgumentModel arg;
  const GsnId g = arg.add(GsnType::kGoal, "G1", "claim");
  const GsnId ctx = arg.add(GsnType::kContext, "C1", "scope");
  const GsnId sol = arg.add(GsnType::kSolution, "Sn1", "evidence");
  arg.in_context(g, ctx);
  arg.support(g, sol);
  EvidenceRegistry registry;
  const EvidenceId ev = registry.add(EvidenceKind::kAnalysis, "a", "", 1.0);
  arg.bind_evidence(sol, ev);
  const auto eval = arg.evaluate(registry);
  EXPECT_EQ(eval.at(ctx.value()).status, SupportStatus::kSupported);
  EXPECT_EQ(eval.at(g.value()).status, SupportStatus::kSupported);
}

TEST(Gsn, DotExportContainsNodesAndEdges) {
  SimpleCase c;
  const std::string dot = c.arg.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("G1"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("parallelogram"), std::string::npos);  // strategy shape
}

TEST(Gsn, ByLabelLookup) {
  SimpleCase c;
  ASSERT_NE(c.arg.by_label("G2"), nullptr);
  EXPECT_EQ(c.arg.by_label("G2")->statement, "comms secure");
  EXPECT_EQ(c.arg.by_label("nope"), nullptr);
}

TEST(Evidence, FreshnessAging) {
  EvidenceRegistry registry;
  const EvidenceId ev = registry.add(EvidenceKind::kFieldData, "ops-log", "", 0.9,
                                     /*produced_at=*/0, /*validity=*/1000);
  registry.set_now(500);
  EXPECT_TRUE(registry.confidence(ev).has_value());
  registry.set_now(1500);
  EXPECT_FALSE(registry.confidence(ev).has_value());
}

TEST(Evidence, RejectsOutOfRangeConfidence) {
  EvidenceRegistry registry;
  EXPECT_THROW(registry.add(EvidenceKind::kTestResult, "x", "", 1.5),
               std::invalid_argument);
  const EvidenceId ev = registry.add(EvidenceKind::kTestResult, "x", "", 0.5);
  EXPECT_THROW(registry.update_confidence(ev, -0.1), std::invalid_argument);
}

TEST(Evidence, UnknownIdReportsMissing) {
  EvidenceRegistry registry;
  EXPECT_FALSE(registry.confidence(EvidenceId{99}).has_value());
  EXPECT_EQ(registry.item(EvidenceId{99}), nullptr);
}

}  // namespace
}  // namespace agrarsec::assurance
