#include <gtest/gtest.h>

#include "assurance/cascade.h"
#include "assurance/modular.h"
#include "risk/catalog.h"

namespace agrarsec::assurance {
namespace {

struct Fixture {
  sos::SosComposition composition = sos::build_forestry_sos();
  EvidenceRegistry registry;

  AssuranceModule module(const std::string& name, const std::string& owner,
                         SupportStatus status, double confidence) {
    AssuranceModule m;
    m.system_name = name;
    m.owner = owner;
    m.top_claim = name + " is acceptably secure";
    m.status = status;
    m.confidence = confidence;
    return m;
  }

  std::vector<AssuranceModule> healthy_modules() {
    return {module("autonomous-forwarder", "forest-machine-oem",
                   SupportStatus::kSupported, 0.9),
            module("observation-drone", "drone-vendor", SupportStatus::kSupported,
                   0.85),
            module("operator-station", "forestry-company",
                   SupportStatus::kSupported, 0.8)};
  }
};

TEST(Modular, HealthySosCaseSupported) {
  Fixture f;
  const SosCaseResult sos = build_sos_case(f.composition, f.healthy_modules(),
                                           f.registry);
  EXPECT_TRUE(sos.argument.validate().empty());
  const auto eval = sos.argument.evaluate(f.registry);
  EXPECT_EQ(eval.at(sos.top_goal.value()).status, SupportStatus::kSupported);
  EXPECT_GT(eval.at(sos.top_goal.value()).confidence, 0.3);
}

TEST(Modular, FailedModuleBreaksSosClaim) {
  Fixture f;
  auto modules = f.healthy_modules();
  modules[1].status = SupportStatus::kPartial;  // drone case has open points
  const SosCaseResult sos = build_sos_case(f.composition, modules, f.registry);
  const auto eval = sos.argument.evaluate(f.registry);
  EXPECT_NE(eval.at(sos.top_goal.value()).status, SupportStatus::kSupported);
  // But the other modules' goals remain supported (modularity).
  const GsnNode* fwd = sos.argument.by_label("G-module-autonomous-forwarder");
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(eval.at(fwd->id.value()).status, SupportStatus::kSupported);
}

TEST(Modular, ModuleReEvaluationFlowsThroughEvidence) {
  Fixture f;
  const SosCaseResult sos = build_sos_case(f.composition, f.healthy_modules(),
                                           f.registry);
  // The drone vendor's case later fails in the field:
  for (const auto& [name, ev] : sos.module_evidence) {
    if (name == "observation-drone") f.registry.update_confidence(ev, 0.0);
  }
  const auto eval = sos.argument.evaluate(f.registry);
  EXPECT_NE(eval.at(sos.top_goal.value()).status, SupportStatus::kSupported);
}

TEST(Modular, CompositionIssuesBecomeOpenGoals) {
  Fixture f;
  // Break the composition: add a cross-org plaintext contract.
  sos::InterfaceContract bad;
  bad.name = "legacy";
  bad.producer = f.composition.systems()[0].id;
  bad.consumer = f.composition.systems()[2].id;
  bad.message = net::MessageType::kTelemetry;
  bad.encrypted = false;
  bad.mutually_authenticated = false;
  f.composition.add_contract(bad);

  const SosCaseResult sos = build_sos_case(f.composition, f.healthy_modules(),
                                           f.registry);
  const GsnNode* op = sos.argument.by_label("G-sos-operational-independence");
  const GsnNode* mgmt = sos.argument.by_label("G-sos-management-independence");
  ASSERT_NE(op, nullptr);
  ASSERT_NE(mgmt, nullptr);
  EXPECT_TRUE(op->undeveloped);
  EXPECT_TRUE(mgmt->undeveloped);

  const auto eval = sos.argument.evaluate(f.registry);
  EXPECT_NE(eval.at(sos.top_goal.value()).status, SupportStatus::kSupported);
}

TEST(Modular, SummarizeModuleFromRealCase) {
  // Build the forwarder's real CASCADE case and import it as a module.
  const risk::Tara tara = risk::build_forestry_tara();
  EvidenceRegistry module_registry;
  const CascadeResult cascade = build_security_case(tara, module_registry);
  const AssuranceModule m =
      summarize_module("autonomous-forwarder", "forest-machine-oem",
                       cascade.argument, cascade.top_goal, module_registry);
  EXPECT_EQ(m.system_name, "autonomous-forwarder");
  EXPECT_FALSE(m.top_claim.empty());
  EXPECT_NE(m.status, SupportStatus::kUndeveloped);
}

TEST(Modular, FiveProblemAreasAllRepresented) {
  Fixture f;
  const SosCaseResult sos = build_sos_case(f.composition, f.healthy_modules(),
                                           f.registry);
  for (const char* label :
       {"G-sos-capabilities", "G-sos-operational-independence",
        "G-sos-management-independence", "G-sos-evolution", "G-sos-geographic"}) {
    EXPECT_NE(sos.argument.by_label(label), nullptr) << label;
  }
}

}  // namespace
}  // namespace agrarsec::assurance
