// CASCADE-style SAC generation and EU 2023/1230 compliance mapping.
#include <gtest/gtest.h>

#include "assurance/cascade.h"
#include "assurance/compliance.h"
#include "risk/catalog.h"

namespace agrarsec::assurance {
namespace {

struct Built {
  risk::Tara tara = risk::build_forestry_tara();
  EvidenceRegistry registry;
  CascadeResult result = build_security_case(tara, registry);
};

TEST(Cascade, GeneratedCaseIsStructurallyValid) {
  Built b;
  const auto problems = b.result.argument.validate();
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
}

TEST(Cascade, EveryThreatHasAGoal) {
  Built b;
  EXPECT_EQ(b.result.threat_goals.size(), b.tara.results().size());
}

TEST(Cascade, ControlsShareEvidenceItems) {
  Built b;
  // secure-channel is applied to many threats but registered once.
  EXPECT_GE(b.result.control_evidence.size(), 4u);
  EXPECT_TRUE(b.result.control_evidence.contains("secure-channel"));
  EXPECT_LT(b.result.control_evidence.size(), 12u);
}

TEST(Cascade, EvaluatesLargelySupported) {
  Built b;
  const auto eval = b.result.argument.evaluate(b.registry);
  const auto& top = eval.at(b.result.top_goal.value());
  // Treated threats are supported; top may be partial if anything is open.
  EXPECT_NE(top.status, SupportStatus::kUnsupported);

  std::size_t supported_goals = 0;
  for (const auto& [threat, goal] : b.result.threat_goals) {
    if (eval.at(goal.value()).status == SupportStatus::kSupported) ++supported_goals;
  }
  EXPECT_GT(supported_goals, b.result.threat_goals.size() / 2);
}

TEST(Cascade, WithdrawnControlEvidenceBreaksGoals) {
  Built b;
  const auto eval_before = b.result.argument.evaluate(b.registry);
  std::size_t supported_before = 0;
  for (const auto& [threat, goal] : b.result.threat_goals) {
    if (eval_before.at(goal.value()).status == SupportStatus::kSupported) {
      ++supported_before;
    }
  }
  // Secure-channel verification now fails (e.g. regression in the field).
  b.registry.update_confidence(b.result.control_evidence.at("secure-channel"), 0.0);
  const auto eval_after = b.result.argument.evaluate(b.registry);
  std::size_t supported_after = 0;
  for (const auto& [threat, goal] : b.result.threat_goals) {
    if (eval_after.at(goal.value()).status == SupportStatus::kSupported) {
      ++supported_after;
    }
  }
  EXPECT_LT(supported_after, supported_before);
}

TEST(Cascade, CoanalysisLegExtends) {
  Built b;
  const auto fca = risk::build_forestry_coanalysis(b.tara);
  const auto verdicts = fca.analysis.analyze(b.tara);
  const std::size_t before = b.result.argument.size();
  extend_with_coanalysis(b.result, verdicts, b.registry);
  EXPECT_GT(b.result.argument.size(), before + verdicts.size());
  EXPECT_NE(b.result.argument.by_label("G-interplay"), nullptr);
  EXPECT_TRUE(b.result.argument.validate().empty());
}

TEST(Cascade, OpenHazardsAppearUndeveloped) {
  Built b;
  // Fabricate a failing verdict.
  risk::HazardVerdict v;
  v.hazard.name = "uncontrolled";
  v.required = safety::PerformanceLevel::kE;
  v.combined_ok = false;
  extend_with_coanalysis(b.result, {v}, b.registry);
  const GsnNode* node = b.result.argument.by_label("G-hazard-uncontrolled");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->undeveloped);
}

TEST(Compliance, RequirementSetNonTrivial) {
  const auto reqs = machinery_requirements();
  EXPECT_GE(reqs.size(), 6u);
  // Both regulations represented.
  EXPECT_TRUE(std::any_of(reqs.begin(), reqs.end(), [](const Requirement& r) {
    return r.source == RegulationSource::kMachineryRegulation;
  }));
  EXPECT_TRUE(std::any_of(reqs.begin(), reqs.end(), [](const Requirement& r) {
    return r.source == RegulationSource::kCyberResilienceAct;
  }));
}

TEST(Compliance, UnmappedRequirementsReported) {
  Built b;
  ComplianceMap map{machinery_requirements()};
  const auto statuses = map.evaluate(b.result.argument, b.registry);
  for (const auto& s : statuses) {
    EXPECT_FALSE(s.mapped);
    EXPECT_FALSE(s.supported);
  }
  EXPECT_DOUBLE_EQ(map.coverage(b.result.argument, b.registry), 0.0);
}

TEST(Compliance, MappingUnknownRequirementThrows) {
  ComplianceMap map{machinery_requirements()};
  EXPECT_THROW(map.map("NOT-A-REQ", "G-top"), std::invalid_argument);
}

TEST(Compliance, MappedAndSupportedCounted) {
  Built b;
  ComplianceMap map{machinery_requirements()};
  map.map("MR-1.1.9", "G-top");
  map.map("MR-1.2.1", "G-asset-estop-function");
  const auto statuses = map.evaluate(b.result.argument, b.registry);

  const auto find = [&](const std::string& id) {
    return *std::find_if(statuses.begin(), statuses.end(),
                         [&](const RequirementStatus& s) {
                           return s.requirement.id == id;
                         });
  };
  EXPECT_TRUE(find("MR-1.1.9").mapped);
  EXPECT_GT(map.coverage(b.result.argument, b.registry), 0.0);
}

TEST(Compliance, MappingToMissingGoalUnsupported) {
  Built b;
  ComplianceMap map{machinery_requirements()};
  map.map("MR-1.1.9", "G-nonexistent");
  const auto statuses = map.evaluate(b.result.argument, b.registry);
  const auto it = std::find_if(statuses.begin(), statuses.end(),
                               [](const RequirementStatus& s) {
                                 return s.requirement.id == "MR-1.1.9";
                               });
  ASSERT_NE(it, statuses.end());
  EXPECT_TRUE(it->mapped);
  EXPECT_FALSE(it->supported);
  EXPECT_DOUBLE_EQ(it->confidence, 0.0);
}

TEST(Compliance, ConfidenceIsMinOverGoals) {
  // Two goals with different confidences: requirement confidence = min.
  ArgumentModel arg;
  EvidenceRegistry registry;
  const GsnId g1 = arg.add(GsnType::kGoal, "GA", "a");
  const GsnId g2 = arg.add(GsnType::kGoal, "GB", "b");
  const GsnId s1 = arg.add(GsnType::kSolution, "Sn1", "");
  const GsnId s2 = arg.add(GsnType::kSolution, "Sn2", "");
  arg.support(g1, s1);
  arg.support(g2, s2);
  arg.bind_evidence(s1, registry.add(EvidenceKind::kTestResult, "e1", "", 0.9));
  arg.bind_evidence(s2, registry.add(EvidenceKind::kTestResult, "e2", "", 0.6));

  ComplianceMap map{machinery_requirements()};
  map.map("MR-1.2.2", "GA");
  map.map("MR-1.2.2", "GB");
  const auto statuses = map.evaluate(arg, registry);
  const auto it = std::find_if(statuses.begin(), statuses.end(),
                               [](const RequirementStatus& s) {
                                 return s.requirement.id == "MR-1.2.2";
                               });
  ASSERT_NE(it, statuses.end());
  EXPECT_TRUE(it->supported);
  EXPECT_NEAR(it->confidence, 0.6, 1e-9);
}

}  // namespace
}  // namespace agrarsec::assurance
