#include "core/bytes.h"

#include <gtest/gtest.h>

namespace agrarsec::core {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, FromString) {
  const Bytes b = from_string("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(Bytes, EndianRoundTrip32) {
  std::uint8_t buf[4];
  store_le32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(load_le32(buf), 0x12345678u);
  store_be32(buf, 0x12345678u);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(load_be32(buf), 0x12345678u);
}

TEST(Bytes, EndianRoundTrip64) {
  std::uint8_t buf[8];
  const std::uint64_t v = 0x0123456789abcdefULL;
  store_le64(buf, v);
  EXPECT_EQ(load_le64(buf), v);
  EXPECT_EQ(buf[0], 0xef);
  store_be64(buf, v);
  EXPECT_EQ(load_be64(buf), v);
  EXPECT_EQ(buf[0], 0x01);
}

TEST(Bytes, AppendFramed) {
  Bytes dst;
  const Bytes field = {0xaa, 0xbb};
  append_framed(dst, field);
  ASSERT_EQ(dst.size(), 6u);
  EXPECT_EQ(load_be32(dst.data()), 2u);
  EXPECT_EQ(dst[4], 0xaa);
  EXPECT_EQ(dst[5], 0xbb);
}

TEST(Bytes, AppendFramedDisambiguates) {
  // ("ab","c") and ("a","bc") must frame differently.
  Bytes x, y;
  append_framed(x, from_string("ab"));
  append_framed(x, from_string("c"));
  append_framed(y, from_string("a"));
  append_framed(y, from_string("bc"));
  EXPECT_NE(x, y);
}

}  // namespace
}  // namespace agrarsec::core
