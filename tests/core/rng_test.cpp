#include "core/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace agrarsec::core {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng{7};
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng{17};
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{19};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{23};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng{29};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng{29};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng{31};
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / kN, 3.0, 0.06);
}

TEST(Rng, PoissonLargeLambdaMean) {
  Rng rng{37};
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / kN, 100.0, 0.5);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng{37};
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a{41}, b{41};
  const auto x = a.bytes(37);
  const auto y = b.bytes(37);
  EXPECT_EQ(x.size(), 37u);
  EXPECT_EQ(x, y);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent{43};
  Rng child = parent.fork(0);
  // Child stream must differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForksWithDistinctLabelsDiffer) {
  Rng p1{47}, p2{47};
  Rng c1 = p1.fork(1);
  Rng c2 = p2.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace agrarsec::core
