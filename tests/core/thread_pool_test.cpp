#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace agrarsec::core {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool{threads};
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&hits](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ShardCountAndSplitAreDeterministic) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.shard_count(), 4u);

  // The [begin, end) split must depend only on (n, shard_count): record it
  // twice and compare.
  auto record = [&pool] {
    std::mutex m;
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> ranges;
    pool.parallel_for(103, [&](std::size_t begin, std::size_t end, std::size_t shard) {
      std::lock_guard<std::mutex> lock(m);
      ranges.emplace_back(shard, begin, end);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  EXPECT_EQ(record(), record());
}

TEST(ThreadPoolTest, ShardIndexIsUniquePerJob) {
  ThreadPool pool{8};
  std::mutex m;
  std::set<std::size_t> shards;
  pool.parallel_for(64, [&](std::size_t, std::size_t, std::size_t shard) {
    std::lock_guard<std::mutex> lock(m);
    shards.insert(shard);
  });
  // Every shard that ran had a distinct index below shard_count().
  for (const std::size_t s : shards) EXPECT_LT(s, pool.shard_count());
}

TEST(ThreadPoolTest, RepeatedJobsReuseWorkers) {
  ThreadPool pool{4};
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(100, [&total](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) total.fetch_add(i);
    });
  }
  EXPECT_EQ(total.load(), 200ull * (99ull * 100ull / 2));
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.shard_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(5, [&](std::size_t, std::size_t, std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, FirstShardErrorIsRethrown) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(100, [](std::size_t begin, std::size_t, std::size_t shard) {
      if (shard >= 1) {
        throw std::runtime_error("shard " + std::to_string(shard) + " begin " +
                                 std::to_string(begin));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Deterministic: always the lowest-numbered failing shard.
    EXPECT_STREQ(e.what(), "shard 1 begin 25");
  }
  // The pool must survive a throwing job and accept the next one.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&count](std::size_t begin, std::size_t end, std::size_t) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.shard_count(), 1u);
}

}  // namespace
}  // namespace agrarsec::core
