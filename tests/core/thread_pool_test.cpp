#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace agrarsec::core {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool{threads};
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&hits](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ShardCountAndSplitAreDeterministic) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.shard_count(), 4u);

  // The [begin, end) split must depend only on (n, shard_count): record it
  // twice and compare.
  auto record = [&pool] {
    std::mutex m;
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> ranges;
    pool.parallel_for(103, [&](std::size_t begin, std::size_t end, std::size_t shard) {
      std::lock_guard<std::mutex> lock(m);
      ranges.emplace_back(shard, begin, end);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  EXPECT_EQ(record(), record());
}

TEST(ThreadPoolTest, ShardIndexIsUniquePerJob) {
  ThreadPool pool{8};
  std::mutex m;
  std::set<std::size_t> shards;
  pool.parallel_for(64, [&](std::size_t, std::size_t, std::size_t shard) {
    std::lock_guard<std::mutex> lock(m);
    shards.insert(shard);
  });
  // Every shard that ran had a distinct index below shard_count().
  for (const std::size_t s : shards) EXPECT_LT(s, pool.shard_count());
}

TEST(ThreadPoolTest, RepeatedJobsReuseWorkers) {
  ThreadPool pool{4};
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_for(100, [&total](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) total.fetch_add(i);
    });
  }
  EXPECT_EQ(total.load(), 200ull * (99ull * 100ull / 2));
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.shard_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(5, [&](std::size_t, std::size_t, std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, FirstShardErrorIsRethrown) {
  ThreadPool pool{4};
  try {
    pool.parallel_for(100, [](std::size_t begin, std::size_t, std::size_t shard) {
      if (shard >= 1) {
        throw std::runtime_error("shard " + std::to_string(shard) + " begin " +
                                 std::to_string(begin));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Deterministic: always the lowest-numbered failing shard.
    EXPECT_STREQ(e.what(), "shard 1 begin 25");
  }
  // The pool must survive a throwing job and accept the next one.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&count](std::size_t begin, std::size_t end, std::size_t) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.shard_count(), 1u);
}

TEST(ThreadPoolTest, WorkStealingCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool{threads};
    pool.set_assignment(ThreadPool::Assignment::kWorkStealing);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      std::atomic<bool> bad_shard{false};
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t shard) {
        if (shard >= pool.shard_count()) bad_shard.store(true);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      EXPECT_FALSE(bad_shard.load());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, WorkStealingMatchesContiguousViaSlotBuffers) {
  // The shard/fork/drain contract: per-index results land in per-index
  // slots, so the drained output is assignment-invariant. Compute a
  // per-index function under both modes and compare slot-for-slot.
  constexpr std::size_t kN = 1537;
  auto run = [](ThreadPool::Assignment assignment) {
    ThreadPool pool{8};
    pool.set_assignment(assignment);
    std::vector<std::uint64_t> slots(kN, 0);
    pool.parallel_for(kN, [&slots](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        slots[i] = i * 2654435761ULL + 17;
      }
    });
    return slots;
  };
  EXPECT_EQ(run(ThreadPool::Assignment::kContiguous),
            run(ThreadPool::Assignment::kWorkStealing));
}

TEST(ThreadPoolTest, WorkStealingRethrowsLowestShardError) {
  ThreadPool pool{4};
  pool.set_assignment(ThreadPool::Assignment::kWorkStealing);
  try {
    pool.parallel_for(100, [](std::size_t, std::size_t, std::size_t shard) {
      throw std::runtime_error("shard " + std::to_string(shard));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Which participants claim chunks is timing-dependent under work
    // stealing, but the rethrow is always the lowest shard that threw.
    const std::string what = e.what();
    ASSERT_EQ(what.rfind("shard ", 0), 0u);
    EXPECT_LT(std::stoul(what.substr(6)), pool.shard_count());
  }
  // The pool must survive a throwing work-stealing job.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&count](std::size_t begin, std::size_t end, std::size_t) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, JobObserverFiresOncePerJobWithNonzeroWall) {
  ThreadPool pool{4};
  std::size_t jobs = 0;
  std::uint64_t total_wall = 0;
  pool.set_job_observer([&](std::uint64_t wall_ns) {
    ++jobs;
    total_wall += wall_ns;
  });
  for (int j = 0; j < 5; ++j) {
    pool.parallel_for(64, [](std::size_t, std::size_t, std::size_t) {});
  }
  EXPECT_EQ(jobs, 5u);
  EXPECT_GT(total_wall, 0u);

  // A one-index job still dispatches (only shard 0 has work) and counts.
  pool.parallel_for(1, [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_EQ(jobs, 6u);

  // Empty jobs dispatch nothing and must not fire the observer.
  pool.parallel_for(0, [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_EQ(jobs, 6u);
}

TEST(ThreadPoolTest, BusyImbalanceSeparatesSkewedFromUniformJobs) {
  // Heavily skewed per-index cost under contiguous assignment: the last
  // shard's range does essentially all the work, so the max/mean busy
  // ratio must converge well above 1. Uniform jobs on an identical pool
  // must score clearly lower. Comparative, because absolute busy times on
  // a noisy container carry scheduling jitter.
  ThreadPool skewed_pool{4};
  EXPECT_EQ(skewed_pool.busy_imbalance(), 0.0);  // no jobs measured yet
  for (int j = 0; j < 20; ++j) {
    skewed_pool.parallel_for(400, [](std::size_t begin, std::size_t end, std::size_t) {
      volatile double sink = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        if (i >= 300) {  // only the last shard's quarter is expensive
          for (int k = 0; k < 60000; ++k) sink += static_cast<double>(k);
        }
      }
    });
  }
  const double skewed = skewed_pool.busy_imbalance();
  EXPECT_GT(skewed, 1.5);

  ThreadPool uniform_pool{4};
  for (int j = 0; j < 20; ++j) {
    uniform_pool.parallel_for(400, [](std::size_t begin, std::size_t end, std::size_t) {
      volatile double sink = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        for (int k = 0; k < 15000; ++k) sink += static_cast<double>(k);
      }
    });
  }
  const double uniform = uniform_pool.busy_imbalance();
  EXPECT_GE(uniform, 1.0);
  EXPECT_LT(uniform, skewed);
}

}  // namespace
}  // namespace agrarsec::core
