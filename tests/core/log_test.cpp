#include "core/log.h"

#include <gtest/gtest.h>

#include <vector>

namespace agrarsec::core {
namespace {

struct Captured {
  LogLevel level;
  std::string component;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_sink([this](LogLevel level, std::string_view component,
                         std::string_view message) {
      captured_.push_back({level, std::string(component), std::string(message)});
    });
    Log::set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Log::set_sink(nullptr);
    Log::set_level(LogLevel::kWarn);
  }
  std::vector<Captured> captured_;
};

TEST_F(LogTest, SinkReceivesMessages) {
  Log::info("radio", "frame sent");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].component, "radio");
  EXPECT_EQ(captured_[0].message, "frame sent");
}

TEST_F(LogTest, LevelFiltering) {
  Log::set_level(LogLevel::kWarn);
  Log::debug("x", "hidden");
  Log::info("x", "hidden");
  Log::warn("x", "shown");
  Log::error("x", "shown");
  EXPECT_EQ(captured_.size(), 2u);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  Log::error("x", "hidden");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace agrarsec::core
