#include "core/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace agrarsec::core {
namespace {

struct Captured {
  LogLevel level;
  std::string component;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_sink([this](LogLevel level, std::string_view component,
                         std::string_view message) {
      captured_.push_back({level, std::string(component), std::string(message)});
    });
    Log::set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Log::set_sink(nullptr);
    Log::set_level(LogLevel::kWarn);
  }
  std::vector<Captured> captured_;
};

TEST_F(LogTest, SinkReceivesMessages) {
  Log::info("radio", "frame sent");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].component, "radio");
  EXPECT_EQ(captured_[0].message, "frame sent");
}

TEST_F(LogTest, LevelFiltering) {
  Log::set_level(LogLevel::kWarn);
  Log::debug("x", "hidden");
  Log::info("x", "hidden");
  Log::warn("x", "shown");
  Log::error("x", "shown");
  EXPECT_EQ(captured_.size(), 2u);
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::kOff);
  Log::error("x", "hidden");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

// Writers on several threads race set_sink() and set_level() swaps (the
// scenario behind the sink mutex: a warn() from a parallel shard while a
// test fixture swaps sinks). Run under TSan via scripts/check.sh; the
// functional assertion is that no message is lost or torn — each sink
// only ever appends to its own capture buffer, so every accepted write
// lands exactly once and intact.
TEST(LogThreadSafetyTest, ConcurrentWritersAndSinkSwaps) {
  constexpr std::size_t kWriters = 4;
  constexpr int kMessagesPerWriter = 500;
  constexpr int kSwaps = 200;

  std::vector<std::vector<std::string>> sink_buffers;
  sink_buffers.reserve(static_cast<std::size_t>(kSwaps) + 1);
  auto make_sink = [&sink_buffers]() {
    std::vector<std::string>* buffer = &sink_buffers.emplace_back();
    return [buffer](LogLevel, std::string_view, std::string_view message) {
      buffer->push_back(std::string(message));
    };
  };

  Log::set_level(LogLevel::kDebug);
  Log::set_sink(make_sink());

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &go] {
      while (!go.load()) {}
      for (int i = 0; i < kMessagesPerWriter; ++i) {
        Log::info("stress", "w" + std::to_string(w) + ":" + std::to_string(i));
      }
    });
  }

  go.store(true);
  for (int s = 0; s < kSwaps; ++s) {
    Log::set_sink(make_sink());
    Log::set_level(s % 2 == 0 ? LogLevel::kDebug : LogLevel::kInfo);
  }
  for (std::thread& t : writers) t.join();
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);

  // Every write that reached a sink arrived exactly once and untorn;
  // the level never dropped below kInfo, so none were filtered either.
  std::size_t total = 0;
  std::vector<std::size_t> seen(kWriters, 0);
  for (const auto& buffer : sink_buffers) {
    for (const std::string& message : buffer) {
      ASSERT_EQ(message[0], 'w');
      const std::size_t colon = message.find(':');
      ASSERT_NE(colon, std::string::npos) << "torn message: " << message;
      const std::size_t writer = std::stoul(message.substr(1, colon - 1));
      const int index = std::stoi(message.substr(colon + 1));
      ASSERT_LT(writer, kWriters);
      EXPECT_EQ(static_cast<std::size_t>(index), seen[writer])
          << "lost or reordered message from writer " << writer;
      ++seen[writer];
      ++total;
    }
  }
  EXPECT_EQ(total, kWriters * static_cast<std::size_t>(kMessagesPerWriter));
}

}  // namespace
}  // namespace agrarsec::core
