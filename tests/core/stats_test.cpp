#include "core/stats.h"

#include <gtest/gtest.h>

namespace agrarsec::core {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValueZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.95), 95.05, 1e-9);
}

TEST(SampleSet, PercentileOnEmptyThrows) {
  const SampleSet s;
  EXPECT_THROW(s.percentile(0.5), std::logic_error);
}

TEST(SampleSet, AddAfterQueryResorts) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h{0.0, 10.0, 10};
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace agrarsec::core
