#include "core/result.h"

#include <gtest/gtest.h>

namespace agrarsec::core {
namespace {

Result<int> half(int x) {
  if (x % 2 != 0) return make_error("odd", "value not divisible by 2");
  return x / 2;
}

TEST(Result, ValuePath) {
  const auto r = half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, ErrorPath) {
  const auto r = half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "odd");
  EXPECT_EQ(r.error().to_string(), "odd: value not divisible by 2");
}

TEST(Result, ValueOnErrorThrows) {
  const auto r = half(3);
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, ErrorOnValueThrows) {
  const auto r = half(4);
  EXPECT_THROW(r.error(), std::logic_error);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r{std::string("payload")};
  const std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW(s.error(), std::logic_error);
}

TEST(Status, ErrorCarriesPayload) {
  const Status s = make_error("denied", "no such session");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, "denied");
}

}  // namespace
}  // namespace agrarsec::core
