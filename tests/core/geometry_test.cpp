#include "core/geometry.h"

#include <gtest/gtest.h>

#include <numbers>
#include <set>

namespace agrarsec::core {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -1};
  EXPECT_EQ((a + b), (Vec2{4, 1}));
  EXPECT_EQ((a - b), (Vec2{-2, 3}));
  EXPECT_EQ((a * 2.0), (Vec2{2, 4}));
}

TEST(Vec2, NormAndDot) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(a.dot({1, 1}), 7.0);
  EXPECT_DOUBLE_EQ(a.cross({1, 0}), -4.0);
}

TEST(Vec2, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{}));
}

TEST(Vec2, Rotated) {
  const Vec2 a{1, 0};
  const Vec2 r = a.rotated(std::numbers::pi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec3, DistanceIncludesHeight) {
  const Vec3 a{0, 0, 0}, b{0, 0, 5};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

TEST(Angles, WrapAngle) {
  EXPECT_NEAR(wrap_angle(3 * std::numbers::pi), std::numbers::pi, 1e-12);
  EXPECT_NEAR(wrap_angle(-3 * std::numbers::pi), std::numbers::pi, 1e-12);
  EXPECT_NEAR(wrap_angle(0.5), 0.5, 1e-12);
}

TEST(Angles, AngularDistanceShortestWay) {
  EXPECT_NEAR(angular_distance(0.1, 2 * std::numbers::pi - 0.1), 0.2, 1e-9);
}

TEST(Aabb, ContainsAndClamp) {
  const Aabb box{{0, 0}, {10, 5}};
  EXPECT_TRUE(box.contains({5, 2}));
  EXPECT_FALSE(box.contains({11, 2}));
  EXPECT_EQ(box.clamp({12, -3}), (Vec2{10, 0}));
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 5.0);
}

TEST(Circle, Contains) {
  const Circle c{{0, 0}, 2.0};
  EXPECT_TRUE(c.contains({1, 1}));
  EXPECT_FALSE(c.contains({2, 2}));
}

TEST(Segment, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  // Beyond the endpoint: distance to endpoint.
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 0}, {-1, 0}, {1, 0}), 2.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(point_segment_distance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(Segment, IntersectsCircle) {
  const Circle c{{0, 0}, 1.0};
  EXPECT_TRUE(segment_intersects_circle({-2, 0}, {2, 0}, c));
  EXPECT_FALSE(segment_intersects_circle({-2, 2}, {2, 2}, c));
  // Tangent (distance == radius) does not count as blocking.
  EXPECT_FALSE(segment_intersects_circle({-2, 1}, {2, 1}, c));
}

TEST(GridTraversal, VisitsStartAndEndCells) {
  std::vector<std::pair<std::int64_t, std::int64_t>> cells;
  traverse_grid({0.5, 0.5}, {3.5, 0.5}, 1.0, [&](std::int64_t x, std::int64_t y) {
    cells.emplace_back(x, y);
    return true;
  });
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells.front(), (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_EQ(cells.back(), (std::pair<std::int64_t, std::int64_t>{3, 0}));
  EXPECT_EQ(cells.size(), 4u);
}

TEST(GridTraversal, DiagonalVisitsContiguousCells) {
  std::vector<std::pair<std::int64_t, std::int64_t>> cells;
  traverse_grid({0.1, 0.1}, {2.9, 2.9}, 1.0, [&](std::int64_t x, std::int64_t y) {
    cells.emplace_back(x, y);
    return true;
  });
  // Each step moves one cell in x or y.
  for (std::size_t i = 1; i < cells.size(); ++i) {
    const auto dx = std::abs(cells[i].first - cells[i - 1].first);
    const auto dy = std::abs(cells[i].second - cells[i - 1].second);
    EXPECT_EQ(dx + dy, 1);
  }
  EXPECT_EQ(cells.front(), (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_EQ(cells.back(), (std::pair<std::int64_t, std::int64_t>{2, 2}));
}

TEST(GridTraversal, EarlyStop) {
  int visited = 0;
  traverse_grid({0.5, 0.5}, {10.5, 0.5}, 1.0, [&](std::int64_t, std::int64_t) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(GridTraversal, SingleCell) {
  int visited = 0;
  traverse_grid({0.2, 0.2}, {0.8, 0.8}, 1.0, [&](std::int64_t x, std::int64_t y) {
    ++visited;
    EXPECT_EQ(x, 0);
    EXPECT_EQ(y, 0);
    return true;
  });
  EXPECT_EQ(visited, 1);
}

TEST(GridTraversal, NegativeCoordinates) {
  std::vector<std::pair<std::int64_t, std::int64_t>> cells;
  traverse_grid({-1.5, -0.5}, {1.5, -0.5}, 1.0, [&](std::int64_t x, std::int64_t y) {
    cells.emplace_back(x, y);
    return true;
  });
  EXPECT_EQ(cells.front(), (std::pair<std::int64_t, std::int64_t>{-2, -1}));
  EXPECT_EQ(cells.back(), (std::pair<std::int64_t, std::int64_t>{1, -1}));
}

}  // namespace
}  // namespace agrarsec::core
