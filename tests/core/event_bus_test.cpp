#include "core/event_bus.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace agrarsec::core {
namespace {

TEST(EventBus, DeliversToTopicSubscriber) {
  EventBus bus;
  int count = 0;
  bus.subscribe("safety/estop", [&](const Event& e) {
    ++count;
    EXPECT_EQ(e.payload, "reason=test");
  });
  bus.publish({"safety/estop", "reason=test", 1, 0});
  EXPECT_EQ(count, 1);
}

TEST(EventBus, DoesNotDeliverToOtherTopics) {
  EventBus bus;
  int count = 0;
  bus.subscribe("a", [&](const Event&) { ++count; });
  bus.publish({"b", "", 0, 0});
  EXPECT_EQ(count, 0);
}

TEST(EventBus, WildcardSeesEverything) {
  EventBus bus;
  int count = 0;
  bus.subscribe_all([&](const Event&) { ++count; });
  bus.publish({"a", "", 0, 0});
  bus.publish({"b", "", 0, 0});
  EXPECT_EQ(count, 2);
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  EventBus bus;
  int count = 0;
  const auto sub = bus.subscribe("t", [&](const Event&) { ++count; });
  bus.publish({"t", "", 0, 0});
  bus.unsubscribe(sub);
  bus.publish({"t", "", 0, 0});
  EXPECT_EQ(count, 1);
}

TEST(EventBus, MultipleSubscribersAllReceive) {
  EventBus bus;
  int a = 0, b = 0;
  bus.subscribe("t", [&](const Event&) { ++a; });
  bus.subscribe("t", [&](const Event&) { ++b; });
  bus.publish({"t", "", 0, 0});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(EventBus, ReentrantPublishIsQueuedNotRecursive) {
  EventBus bus;
  std::vector<std::string> order;
  bus.subscribe("first", [&](const Event&) {
    order.push_back("first");
    bus.publish({"second", "", 0, 0});
    order.push_back("first-done");
  });
  bus.subscribe("second", [&](const Event&) { order.push_back("second"); });
  bus.publish({"first", "", 0, 0});
  ASSERT_EQ(order.size(), 3u);
  // "second" is delivered after the first handler completes.
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "first-done");
  EXPECT_EQ(order[2], "second");
}

TEST(EventBus, ChainedReentrantPublishesTerminate) {
  EventBus bus;
  int depth = 0;
  bus.subscribe("ping", [&](const Event&) {
    if (depth < 10) {
      ++depth;
      bus.publish({"ping", "", 0, 0});
    }
  });
  bus.publish({"ping", "", 0, 0});
  EXPECT_EQ(depth, 10);
}

TEST(EventBus, RecoversAfterThrowingHandler) {
  // Regression: publish() set delivering_ = true and only reset it on the
  // normal path. A throwing handler left the flag stuck, so every later
  // publish was queued as "reentrant" and never delivered — the bus went
  // permanently silent. The exception must propagate, but the bus must
  // keep working afterwards.
  EventBus bus;
  int delivered = 0;
  bus.subscribe("boom", [](const Event&) { throw std::runtime_error("handler"); });
  bus.subscribe("ok", [&](const Event&) { ++delivered; });

  EXPECT_THROW(bus.publish({"boom", "", 0, 0}), std::runtime_error);
  bus.publish({"ok", "", 0, 0});
  EXPECT_EQ(delivered, 1);
}

TEST(EventBus, ThrowingHandlerDiscardsFailedBatchOnly) {
  // Reentrant events queued before the throw belong to the failed publish
  // and are dropped with it; they must not leak into the next publish.
  EventBus bus;
  int second = 0;
  bus.subscribe("first", [&](const Event&) {
    bus.publish({"second", "", 0, 0});
    throw std::runtime_error("after queueing");
  });
  bus.subscribe("second", [&](const Event&) { ++second; });

  EXPECT_THROW(bus.publish({"first", "", 0, 0}), std::runtime_error);
  EXPECT_EQ(second, 0);
  bus.publish({"second", "", 0, 0});
  EXPECT_EQ(second, 1);
}

TEST(EventBus, SubscriberCountAndPublishedCount) {
  EventBus bus;
  EXPECT_EQ(bus.subscriber_count(), 0u);
  bus.subscribe("a", [](const Event&) {});
  bus.subscribe_all([](const Event&) {});
  EXPECT_EQ(bus.subscriber_count(), 2u);
  bus.publish({"a", "", 0, 0});
  bus.publish({"b", "", 0, 0});
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(EventBus, HandlerMaySubscribeDuringDelivery) {
  EventBus bus;
  int late = 0;
  bus.subscribe("t", [&](const Event&) {
    bus.subscribe("t", [&](const Event&) { ++late; });
  });
  bus.publish({"t", "", 0, 0});  // must not crash / not deliver to the new sub
  bus.publish({"t", "", 0, 0});
  EXPECT_EQ(late, 1);
}

TEST(EventBus, HandlerMayUnsubscribeItselfDuringDelivery) {
  // Self-removal mid-delivery is the hard case for copy-free dispatch:
  // the entry the executing handler lives in must not be destroyed out
  // from under it. It is tombstoned and reclaimed after the batch.
  EventBus bus;
  int calls = 0;
  EventBus::Subscription self = 0;
  self = bus.subscribe("t", [&](const Event&) {
    ++calls;
    bus.unsubscribe(self);
  });
  bus.publish({"t", "", 0, 0});
  bus.publish({"t", "", 0, 0});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(EventBus, HandlerMayUnsubscribeLaterEntryDuringDelivery) {
  // An earlier handler removing a later one in the same topic list: the
  // later handler must be skipped for the in-flight event, not just for
  // future publishes.
  EventBus bus;
  int second = 0;
  EventBus::Subscription second_sub = 0;
  bus.subscribe("t", [&](const Event&) { bus.unsubscribe(second_sub); });
  second_sub = bus.subscribe("t", [&](const Event&) { ++second; });
  bus.publish({"t", "", 0, 0});
  EXPECT_EQ(second, 0);
  EXPECT_EQ(bus.subscriber_count(), 1u);
}

TEST(EventBus, SubscribeDuringDeliveryThenUnsubscribeOutside) {
  // Regression pairing for the deferred-compaction path: entries added
  // past the dispatch bound survive compaction, and a normal (outside
  // delivery) unsubscribe erases immediately.
  EventBus bus;
  int late = 0;
  EventBus::Subscription late_sub = 0;
  bus.subscribe("t", [&](const Event&) {
    if (late_sub == 0) {
      late_sub = bus.subscribe("t", [&](const Event&) { ++late; });
    }
  });
  bus.publish({"t", "", 0, 0});
  bus.publish({"t", "", 0, 0});
  EXPECT_EQ(late, 1);
  bus.unsubscribe(late_sub);
  bus.publish({"t", "", 0, 0});
  EXPECT_EQ(late, 1);
}

TEST(EventBus, SubscribeAcceptsStringViewWithoutCopy) {
  // Topic lookup is heterogeneous: subscribing via a string_view into a
  // larger buffer must match publishes of the same topic text.
  EventBus bus;
  const std::string buffer = "safety/estop:rest-of-line";
  const std::string_view topic = std::string_view{buffer}.substr(0, 12);
  int count = 0;
  bus.subscribe(topic, [&](const Event&) { ++count; });
  bus.publish({"safety/estop", "", 0, 0});
  EXPECT_EQ(count, 1);
}

TEST(EventBus, UnsubscribeUnknownHandleIsIgnored) {
  EventBus bus;
  bus.subscribe("t", [](const Event&) {});
  bus.unsubscribe(12345);  // never issued
  EXPECT_EQ(bus.subscriber_count(), 1u);
}

TEST(EventBus, WildcardSelfUnsubscribeDuringDelivery) {
  EventBus bus;
  int calls = 0;
  EventBus::Subscription tap = 0;
  tap = bus.subscribe_all([&](const Event&) {
    ++calls;
    bus.unsubscribe(tap);
  });
  bus.publish({"a", "", 0, 0});
  bus.publish({"b", "", 0, 0});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

}  // namespace
}  // namespace agrarsec::core
