#include "core/types.h"

#include "core/time.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace agrarsec {
namespace {

TEST(Id, DefaultIsInvalid) {
  const MachineId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, MachineId::invalid());
}

TEST(Id, ExplicitValueIsValid) {
  const MachineId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Id, Comparisons) {
  EXPECT_EQ(MachineId{3}, MachineId{3});
  EXPECT_NE(MachineId{3}, MachineId{4});
  EXPECT_LT(MachineId{3}, MachineId{4});
}

TEST(Id, DistinctTagsAreDistinctTypes) {
  // Compile-time property: a NodeId is not a MachineId. We can only
  // demonstrate it indirectly — both wrap the same value but are separate
  // types with separate hashes/sets.
  static_assert(!std::is_same_v<NodeId, MachineId>);
  static_assert(!std::is_same_v<AssetId, ThreatId>);
}

TEST(Id, HashableInUnorderedContainers) {
  std::unordered_set<SensorId> set;
  set.insert(SensorId{1});
  set.insert(SensorId{2});
  set.insert(SensorId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(SensorId{2}));
}

TEST(IdAllocator, MonotonicFromOne) {
  IdAllocator<HazardId> alloc;
  EXPECT_EQ(alloc.next().value(), 1u);
  EXPECT_EQ(alloc.next().value(), 2u);
  EXPECT_EQ(alloc.allocated(), 3u);
}

TEST(SimClock, TickAdvancesByStep) {
  core::SimClock clock{50};
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.tick(), 50);
  EXPECT_EQ(clock.tick(), 100);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 0.1);
}

TEST(SimClock, AdvanceToIsMonotonic) {
  core::SimClock clock;
  clock.advance_to(1000);
  EXPECT_EQ(clock.now(), 1000);
  clock.advance_to(500);  // ignored: time never goes backwards
  EXPECT_EQ(clock.now(), 1000);
}

}  // namespace
}  // namespace agrarsec
