// Secure channel: handshake, record layer, replay protection.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "crypto/random.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/handshake.h"

namespace agrarsec::secure {
namespace {

struct Fixture {
  crypto::Drbg drbg{7, "secure-test"};
  pki::CertificateAuthority root = pki::CertificateAuthority::create_root(
      "root-ca", make_seed(), 0, 1000 * core::kHour);
  pki::TrustStore trust;
  pki::Identity forwarder = make_identity("forwarder-01");
  pki::Identity drone = make_identity("drone-01");

  std::array<std::uint8_t, 32> make_seed() { return drbg.generate32(); }

  pki::Identity make_identity(const std::string& name) {
    auto id = pki::enroll(root, drbg, name, pki::CertRole::kMachine, 0,
                          1000 * core::kHour);
    EXPECT_TRUE(id.ok());
    return std::move(id).take();
  }

  Fixture() { EXPECT_TRUE(trust.add_root(root.certificate()).ok()); }
};

TEST(Handshake, EstablishesMatchingSessions) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok()) << pair.error().to_string();
  EXPECT_EQ(pair.value().initiator.peer_subject(), "drone-01");
  EXPECT_EQ(pair.value().responder.peer_subject(), "forwarder-01");
}

TEST(Handshake, SessionCarriesData) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const auto payload = core::from_string("person at (31.5, 44.2) conf 0.93");
  const Record r = a.seal(payload);
  const auto opened = b.open(r);
  ASSERT_TRUE(opened.ok()) << opened.error().to_string();
  EXPECT_EQ(opened.value(), payload);
}

TEST(Handshake, BothDirectionsIndependent) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const Record r1 = a.seal(core::from_string("i2r"));
  const Record r2 = b.seal(core::from_string("r2i"));
  EXPECT_TRUE(b.open(r1).ok());
  EXPECT_TRUE(a.open(r2).ok());
}

TEST(Handshake, RejectsUntrustedPeer) {
  Fixture f;
  crypto::Drbg rogue_drbg{666, "rogue"};
  auto rogue_root = pki::CertificateAuthority::create_root(
      "rogue-ca", rogue_drbg.generate32(), 0, 1000 * core::kHour);
  auto rogue = pki::enroll(rogue_root, rogue_drbg, "rogue-drone",
                           pki::CertRole::kDrone, 0, 1000 * core::kHour);
  ASSERT_TRUE(rogue.ok());

  auto pair = establish(f.forwarder, rogue.value(), f.trust, 10, f.drbg);
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.error().code, "untrusted_root");
}

TEST(Handshake, RejectsWrongExpectedPeer) {
  Fixture f;
  // Initiator expects "drone-02" but talks to drone-01.
  Handshake init{f.forwarder, f.trust, 10, "drone-02"};
  Handshake resp{f.drone, f.trust, 10, ""};
  const auto m1 = init.start(f.drbg);
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_TRUE(m2.ok());
  auto m3 = init.consume_msg2(m2.value());
  ASSERT_FALSE(m3.ok());
  EXPECT_EQ(m3.error().code, "peer_mismatch");
}

TEST(Handshake, RejectsRevokedPeer) {
  Fixture f;
  f.root.revoke(f.drone.leaf().body.serial);
  ASSERT_TRUE(f.trust.add_crl(f.root.current_crl(5), f.root.certificate()).ok());
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.error().code, "revoked");
}

TEST(Handshake, RejectsExpiredCertificates) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 2000 * core::kHour, f.drbg);
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.error().code, "expired");
}

TEST(Handshake, RejectsTamperedResponderSignature) {
  Fixture f;
  Handshake init{f.forwarder, f.trust, 10, ""};
  Handshake resp{f.drone, f.trust, 10, ""};
  const auto m1 = init.start(f.drbg);
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_TRUE(m2.ok());
  m2.value().signature[10] ^= 1;
  auto m3 = init.consume_msg2(m2.value());
  ASSERT_FALSE(m3.ok());
  EXPECT_EQ(m3.error().code, "bad_signature");
}

TEST(Handshake, RejectsSubstitutedEphemeral) {
  // A MITM replacing the responder ephemeral invalidates the signature
  // (it covers the transcript).
  Fixture f;
  Handshake init{f.forwarder, f.trust, 10, ""};
  Handshake resp{f.drone, f.trust, 10, ""};
  const auto m1 = init.start(f.drbg);
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_TRUE(m2.ok());
  m2.value().ephemeral[0] ^= 1;
  auto m3 = init.consume_msg2(m2.value());
  ASSERT_FALSE(m3.ok());
  EXPECT_EQ(m3.error().code, "bad_signature");
}

TEST(Handshake, RejectsLowOrderEphemeral) {
  Fixture f;
  Handshake resp{f.drone, f.trust, 10, ""};
  HandshakeMsg1 m1;
  m1.ephemeral.fill(0);  // low-order point -> all-zero shared secret
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_FALSE(m2.ok());
  EXPECT_EQ(m2.error().code, "bad_ephemeral");
}

TEST(Handshake, TakeSessionBeforeCompletionThrows) {
  Fixture f;
  Handshake init{f.forwarder, f.trust, 10, ""};
  (void)init.start(f.drbg);
  EXPECT_THROW((void)init.take_session(), std::logic_error);
}

TEST(Handshake, DistinctRunsYieldDistinctKeys) {
  Fixture f;
  auto p1 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  auto p2 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  // Same plaintext sealed in both sessions yields different ciphertexts.
  const auto payload = core::from_string("same payload");
  const Record r1 = p1.value().initiator.seal(payload);
  const Record r2 = p2.value().initiator.seal(payload);
  EXPECT_NE(core::to_hex(r1.ciphertext), core::to_hex(r2.ciphertext));
}

TEST(Session, ReplayIsRejected) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const Record r = a.seal(core::from_string("stop"));
  ASSERT_TRUE(b.open(r).ok());
  const auto replayed = b.open(r);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.error().code, "replay");
  EXPECT_EQ(b.replay_rejections(), 1u);
}

TEST(Session, ReorderedRecordsAccepted) {
  // The radio medium's min-heap delivery legitimately swaps records whose
  // propagation jitter differs; unseen in-window sequences must open.
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const Record r1 = a.seal(core::from_string("one"));
  const Record r2 = a.seal(core::from_string("two"));
  const Record r3 = a.seal(core::from_string("three"));
  ASSERT_TRUE(b.open(r3).ok());
  EXPECT_TRUE(b.open(r1).ok());
  EXPECT_TRUE(b.open(r2).ok());
  EXPECT_EQ(b.out_of_order_accepted(), 2u);
  EXPECT_EQ(b.replay_rejections(), 0u);
  // ...but each of them exactly once: the late arrivals are now marked in
  // the window bitmap and replaying them is refused.
  EXPECT_FALSE(b.open(r1).ok());
  EXPECT_FALSE(b.open(r2).ok());
  EXPECT_EQ(b.replay_rejections(), 2u);
}

TEST(Session, ShuffledDeliveryOrderRegression) {
  // Regression for the strict high-water-mark check: seal a burst, deliver
  // it in the jittered order a min-heap radio queue produces, and require
  // every genuine record to open. The old `sequence <= highest_received_`
  // rule provably drops records in this order (asserted below by
  // simulating it), which is exactly the bug this pin protects against.
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  constexpr std::size_t kRecords = 32;
  std::vector<Record> records;
  for (std::size_t i = 0; i < kRecords; ++i) {
    records.push_back(a.seal(core::from_string("burst-" + std::to_string(i))));
  }
  // Deterministic per-record jitter, then stable sort by delivery time —
  // the same (deliver_at, seq) ordering the radio heap pops in.
  core::Rng jitter{2024};
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  for (std::size_t i = 0; i < kRecords; ++i) {
    order.emplace_back(i + jitter.next_below(6), i);
  }
  std::stable_sort(order.begin(), order.end());

  std::uint64_t old_rule_high_water = 0;
  std::uint64_t old_rule_drops = 0;
  std::size_t swaps = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Record& r = records[order[i].second];
    if (i > 0 && r.sequence < records[order[i - 1].second].sequence) ++swaps;
    // What the pre-fix check would have done with this genuine record:
    if (r.sequence <= old_rule_high_water) {
      ++old_rule_drops;
    } else {
      old_rule_high_water = r.sequence;
    }
    const auto opened = b.open(r);
    EXPECT_TRUE(opened.ok()) << "record seq " << r.sequence << " dropped: "
                             << opened.error().to_string();
  }
  ASSERT_GT(swaps, 0u) << "jitter produced no reordering; regression vacuous";
  EXPECT_GT(old_rule_drops, 0u)
      << "the old high-water-mark rule would not have dropped anything here";
  EXPECT_EQ(b.out_of_order_accepted(), old_rule_drops);
  EXPECT_EQ(b.replay_rejections(), 0u);
  EXPECT_EQ(b.too_old_rejections(), 0u);
}

TEST(Session, SequenceBehindWindowRejected) {
  // Records that fall behind the sliding window are refused even when
  // unseen: an attacker holding a record back past the window gains
  // nothing (application freshness covers longer hold-backs).
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  std::vector<Record> records;
  const std::size_t total = Session::kReplayWindow + 8;
  for (std::size_t i = 0; i < total; ++i) {
    records.push_back(a.seal(core::from_string("r")));
  }
  // Deliver the newest first: sequence `total` becomes the high-water mark.
  ASSERT_TRUE(b.open(records.back()).ok());
  // Sequence 1 is `total - 1` behind — outside the 64-entry window.
  const auto too_old = b.open(records.front());
  ASSERT_FALSE(too_old.ok());
  EXPECT_EQ(too_old.error().code, "too_old");
  EXPECT_EQ(b.too_old_rejections(), 1u);
  EXPECT_EQ(b.replay_rejections(), 0u);
  // The oldest still-in-window sequence (total - kReplayWindow + 1, at
  // index total - kReplayWindow) is accepted.
  EXPECT_TRUE(b.open(records[total - Session::kReplayWindow]).ok());
  // One below it is not.
  const auto behind = b.open(records[total - Session::kReplayWindow - 1]);
  ASSERT_FALSE(behind.ok());
  EXPECT_EQ(behind.error().code, "too_old");
}

TEST(Session, ForgedRecordCannotPoisonWindow) {
  // The window must advance only after AEAD authentication succeeds. A
  // forged record carrying a far-future sequence, interleaved between two
  // reordered good ones, must neither advance the high-water mark (which
  // would age genuine in-flight records out of the window) nor mark its
  // slot as seen (which would make the real record a "replay").
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const Record r1 = a.seal(core::from_string("one"));
  const Record r2 = a.seal(core::from_string("two"));
  const Record r3 = a.seal(core::from_string("three"));
  ASSERT_TRUE(b.open(r1).ok());

  // Forgery 1: far-future sequence, garbage ciphertext. If this advanced
  // the window, r2/r3 would age out as "too_old".
  Record forged_future = r3;
  forged_future.sequence = r3.sequence + 500;
  forged_future.ciphertext[0] ^= 1;
  const auto f1 = b.open(forged_future);
  ASSERT_FALSE(f1.ok());
  EXPECT_EQ(f1.error().code, "bad_record");

  // Forgery 2: the exact sequence of the still-in-flight r2. If this
  // marked the slot seen, the genuine r2 would be rejected as a replay.
  Record forged_dup = r1;
  forged_dup.sequence = r2.sequence;
  const auto f2 = b.open(forged_dup);
  ASSERT_FALSE(f2.ok());
  EXPECT_EQ(f2.error().code, "bad_record");
  EXPECT_EQ(b.auth_failures(), 2u);

  // Both reordered good records still open.
  EXPECT_TRUE(b.open(r3).ok());
  EXPECT_TRUE(b.open(r2).ok());
  EXPECT_EQ(b.out_of_order_accepted(), 1u);
  EXPECT_EQ(b.replay_rejections(), 0u);
  EXPECT_EQ(b.too_old_rejections(), 0u);
}

TEST(Session, WindowSlidesAcrossLargeAdvance) {
  // A jump larger than the window clears the bitmap instead of shifting
  // garbage into it; the record at the new high-water mark still opens
  // exactly once.
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  std::vector<Record> records;
  for (std::size_t i = 0; i < 200; ++i) {
    records.push_back(a.seal(core::from_string("x")));
  }
  ASSERT_TRUE(b.open(records[0]).ok());
  ASSERT_TRUE(b.open(records[199]).ok());  // advance of 199 > window
  EXPECT_EQ(b.open(records[199]).error().code, "replay");
  // In-window stragglers behind the new mark still open.
  EXPECT_TRUE(b.open(records[198]).ok());
  EXPECT_EQ(b.open(records[0]).error().code, "too_old");
}

TEST(Session, TamperedRecordRejected) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Record r = pair.value().initiator.seal(core::from_string("payload"));
  r.ciphertext[0] ^= 1;
  const auto opened = pair.value().responder.open(r);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, "bad_record");
  EXPECT_EQ(pair.value().responder.auth_failures(), 1u);
}

TEST(Session, SequenceSubstitutionRejected) {
  // Changing the sequence number breaks the AAD binding.
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Record r = pair.value().initiator.seal(core::from_string("payload"));
  r.sequence += 10;
  EXPECT_FALSE(pair.value().responder.open(r).ok());
}

TEST(Session, AadMismatchRejected) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  const auto aad = core::from_string("estop");
  const Record r = pair.value().initiator.seal(core::from_string("x"), aad);
  EXPECT_FALSE(pair.value().responder.open(r, core::from_string("telemetry")).ok());
  // Correct AAD on a *fresh* record works (the failed attempt did not
  // advance the replay window).
  const Record r2 = pair.value().initiator.seal(core::from_string("x"), aad);
  EXPECT_TRUE(pair.value().responder.open(r2, aad).ok());
}

TEST(Session, CrossSessionRecordRejected) {
  Fixture f;
  auto p1 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  auto p2 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  const Record r = p1.value().initiator.seal(core::from_string("x"));
  EXPECT_FALSE(p2.value().responder.open(r).ok());
}

TEST(Record, EncodeDecodeRoundTrip) {
  Record r;
  r.sequence = 77;
  r.ciphertext = core::from_string("ciphertext-bytes");
  const auto decoded = Record::decode(r.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 77u);
  EXPECT_EQ(decoded->ciphertext, r.ciphertext);
}

TEST(Record, DecodeRejectsTruncation) {
  Record r;
  r.sequence = 1;
  r.ciphertext = core::from_string("abc");
  auto bytes = r.encode();
  bytes.pop_back();
  EXPECT_FALSE(Record::decode(bytes).has_value());
  EXPECT_FALSE(Record::decode(std::span(bytes.data(), 5)).has_value());
}

}  // namespace
}  // namespace agrarsec::secure
