// Secure channel: handshake, record layer, replay protection.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/handshake.h"

namespace agrarsec::secure {
namespace {

struct Fixture {
  crypto::Drbg drbg{7, "secure-test"};
  pki::CertificateAuthority root = pki::CertificateAuthority::create_root(
      "root-ca", make_seed(), 0, 1000 * core::kHour);
  pki::TrustStore trust;
  pki::Identity forwarder = make_identity("forwarder-01");
  pki::Identity drone = make_identity("drone-01");

  std::array<std::uint8_t, 32> make_seed() { return drbg.generate32(); }

  pki::Identity make_identity(const std::string& name) {
    auto id = pki::enroll(root, drbg, name, pki::CertRole::kMachine, 0,
                          1000 * core::kHour);
    EXPECT_TRUE(id.ok());
    return std::move(id).take();
  }

  Fixture() { EXPECT_TRUE(trust.add_root(root.certificate()).ok()); }
};

TEST(Handshake, EstablishesMatchingSessions) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok()) << pair.error().to_string();
  EXPECT_EQ(pair.value().initiator.peer_subject(), "drone-01");
  EXPECT_EQ(pair.value().responder.peer_subject(), "forwarder-01");
}

TEST(Handshake, SessionCarriesData) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const auto payload = core::from_string("person at (31.5, 44.2) conf 0.93");
  const Record r = a.seal(payload);
  const auto opened = b.open(r);
  ASSERT_TRUE(opened.ok()) << opened.error().to_string();
  EXPECT_EQ(opened.value(), payload);
}

TEST(Handshake, BothDirectionsIndependent) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const Record r1 = a.seal(core::from_string("i2r"));
  const Record r2 = b.seal(core::from_string("r2i"));
  EXPECT_TRUE(b.open(r1).ok());
  EXPECT_TRUE(a.open(r2).ok());
}

TEST(Handshake, RejectsUntrustedPeer) {
  Fixture f;
  crypto::Drbg rogue_drbg{666, "rogue"};
  auto rogue_root = pki::CertificateAuthority::create_root(
      "rogue-ca", rogue_drbg.generate32(), 0, 1000 * core::kHour);
  auto rogue = pki::enroll(rogue_root, rogue_drbg, "rogue-drone",
                           pki::CertRole::kDrone, 0, 1000 * core::kHour);
  ASSERT_TRUE(rogue.ok());

  auto pair = establish(f.forwarder, rogue.value(), f.trust, 10, f.drbg);
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.error().code, "untrusted_root");
}

TEST(Handshake, RejectsWrongExpectedPeer) {
  Fixture f;
  // Initiator expects "drone-02" but talks to drone-01.
  Handshake init{f.forwarder, f.trust, 10, "drone-02"};
  Handshake resp{f.drone, f.trust, 10, ""};
  const auto m1 = init.start(f.drbg);
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_TRUE(m2.ok());
  auto m3 = init.consume_msg2(m2.value());
  ASSERT_FALSE(m3.ok());
  EXPECT_EQ(m3.error().code, "peer_mismatch");
}

TEST(Handshake, RejectsRevokedPeer) {
  Fixture f;
  f.root.revoke(f.drone.leaf().body.serial);
  ASSERT_TRUE(f.trust.add_crl(f.root.current_crl(5), f.root.certificate()).ok());
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.error().code, "revoked");
}

TEST(Handshake, RejectsExpiredCertificates) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 2000 * core::kHour, f.drbg);
  ASSERT_FALSE(pair.ok());
  EXPECT_EQ(pair.error().code, "expired");
}

TEST(Handshake, RejectsTamperedResponderSignature) {
  Fixture f;
  Handshake init{f.forwarder, f.trust, 10, ""};
  Handshake resp{f.drone, f.trust, 10, ""};
  const auto m1 = init.start(f.drbg);
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_TRUE(m2.ok());
  m2.value().signature[10] ^= 1;
  auto m3 = init.consume_msg2(m2.value());
  ASSERT_FALSE(m3.ok());
  EXPECT_EQ(m3.error().code, "bad_signature");
}

TEST(Handshake, RejectsSubstitutedEphemeral) {
  // A MITM replacing the responder ephemeral invalidates the signature
  // (it covers the transcript).
  Fixture f;
  Handshake init{f.forwarder, f.trust, 10, ""};
  Handshake resp{f.drone, f.trust, 10, ""};
  const auto m1 = init.start(f.drbg);
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_TRUE(m2.ok());
  m2.value().ephemeral[0] ^= 1;
  auto m3 = init.consume_msg2(m2.value());
  ASSERT_FALSE(m3.ok());
  EXPECT_EQ(m3.error().code, "bad_signature");
}

TEST(Handshake, RejectsLowOrderEphemeral) {
  Fixture f;
  Handshake resp{f.drone, f.trust, 10, ""};
  HandshakeMsg1 m1;
  m1.ephemeral.fill(0);  // low-order point -> all-zero shared secret
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_FALSE(m2.ok());
  EXPECT_EQ(m2.error().code, "bad_ephemeral");
}

TEST(Handshake, TakeSessionBeforeCompletionThrows) {
  Fixture f;
  Handshake init{f.forwarder, f.trust, 10, ""};
  (void)init.start(f.drbg);
  EXPECT_THROW((void)init.take_session(), std::logic_error);
}

TEST(Handshake, DistinctRunsYieldDistinctKeys) {
  Fixture f;
  auto p1 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  auto p2 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  // Same plaintext sealed in both sessions yields different ciphertexts.
  const auto payload = core::from_string("same payload");
  const Record r1 = p1.value().initiator.seal(payload);
  const Record r2 = p2.value().initiator.seal(payload);
  EXPECT_NE(core::to_hex(r1.ciphertext), core::to_hex(r2.ciphertext));
}

TEST(Session, ReplayIsRejected) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const Record r = a.seal(core::from_string("stop"));
  ASSERT_TRUE(b.open(r).ok());
  const auto replayed = b.open(r);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.error().code, "replay");
  EXPECT_EQ(b.replay_rejections(), 1u);
}

TEST(Session, OldSequenceRejectedEvenUnseen) {
  // Strictly monotonic acceptance: after record 3 arrives, records 1-2
  // (e.g. delayed by an attacker for later replay) are refused.
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Session& a = pair.value().initiator;
  Session& b = pair.value().responder;

  const Record r1 = a.seal(core::from_string("one"));
  const Record r2 = a.seal(core::from_string("two"));
  const Record r3 = a.seal(core::from_string("three"));
  ASSERT_TRUE(b.open(r3).ok());
  EXPECT_FALSE(b.open(r1).ok());
  EXPECT_FALSE(b.open(r2).ok());
}

TEST(Session, TamperedRecordRejected) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Record r = pair.value().initiator.seal(core::from_string("payload"));
  r.ciphertext[0] ^= 1;
  const auto opened = pair.value().responder.open(r);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.error().code, "bad_record");
  EXPECT_EQ(pair.value().responder.auth_failures(), 1u);
}

TEST(Session, SequenceSubstitutionRejected) {
  // Changing the sequence number breaks the AAD binding.
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  Record r = pair.value().initiator.seal(core::from_string("payload"));
  r.sequence += 10;
  EXPECT_FALSE(pair.value().responder.open(r).ok());
}

TEST(Session, AadMismatchRejected) {
  Fixture f;
  auto pair = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(pair.ok());
  const auto aad = core::from_string("estop");
  const Record r = pair.value().initiator.seal(core::from_string("x"), aad);
  EXPECT_FALSE(pair.value().responder.open(r, core::from_string("telemetry")).ok());
  // Correct AAD on a *fresh* record works (the failed attempt did not
  // advance the replay window).
  const Record r2 = pair.value().initiator.seal(core::from_string("x"), aad);
  EXPECT_TRUE(pair.value().responder.open(r2, aad).ok());
}

TEST(Session, CrossSessionRecordRejected) {
  Fixture f;
  auto p1 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  auto p2 = establish(f.forwarder, f.drone, f.trust, 10, f.drbg);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  const Record r = p1.value().initiator.seal(core::from_string("x"));
  EXPECT_FALSE(p2.value().responder.open(r).ok());
}

TEST(Record, EncodeDecodeRoundTrip) {
  Record r;
  r.sequence = 77;
  r.ciphertext = core::from_string("ciphertext-bytes");
  const auto decoded = Record::decode(r.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 77u);
  EXPECT_EQ(decoded->ciphertext, r.ciphertext);
}

TEST(Record, DecodeRejectsTruncation) {
  Record r;
  r.sequence = 1;
  r.ciphertext = core::from_string("abc");
  auto bytes = r.encode();
  bytes.pop_back();
  EXPECT_FALSE(Record::decode(bytes).has_value());
  EXPECT_FALSE(Record::decode(std::span(bytes.data(), 5)).has_value());
}

}  // namespace
}  // namespace agrarsec::secure
