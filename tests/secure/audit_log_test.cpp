#include <gtest/gtest.h>

#include "crypto/random.h"
#include "secure/audit_log.h"

namespace agrarsec::secure {
namespace {

struct Fixture {
  crypto::Drbg drbg{21, "audit-test"};
  crypto::Ed25519KeyPair signer = crypto::ed25519_keypair(drbg.generate32());
  AuditLog log{signer};
};

TEST(AuditLog, AppendsWithIncreasingIndices) {
  Fixture f;
  EXPECT_EQ(f.log.append(100, "boot", "chain verified"), 0u);
  EXPECT_EQ(f.log.append(200, "estop", "person-in-critical-zone"), 1u);
  EXPECT_EQ(f.log.size(), 2u);
  EXPECT_EQ(f.log.entries()[1].previous, f.log.entries()[0].digest);
}

TEST(AuditLog, EmptyChainVerifies) {
  Fixture f;
  EXPECT_FALSE(AuditLog::verify({}, f.log.checkpoint(), f.signer.public_key)
                   .has_value());
}

TEST(AuditLog, IntactChainVerifies) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    f.log.append(i * 100, "ids-alert", "rule=replay #" + std::to_string(i));
  }
  const auto broken =
      AuditLog::verify(f.log.entries(), f.log.checkpoint(), f.signer.public_key);
  EXPECT_FALSE(broken.has_value());
}

TEST(AuditLog, TamperedDetailDetected) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.log.append(i, "estop", "reason " + std::to_string(i));
  auto entries = f.log.entries();
  entries[4].detail = "reason erased";  // incident cover-up
  const auto broken =
      AuditLog::verify(entries, f.log.checkpoint(), f.signer.public_key);
  ASSERT_TRUE(broken.has_value());
  EXPECT_EQ(*broken, 4u);
}

TEST(AuditLog, DeletedEntryDetected) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.log.append(i, "estop", std::to_string(i));
  auto entries = f.log.entries();
  entries.erase(entries.begin() + 4);
  const auto broken =
      AuditLog::verify(entries, f.log.checkpoint(), f.signer.public_key);
  EXPECT_TRUE(broken.has_value());
}

TEST(AuditLog, TruncationDetected) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.log.append(i, "estop", std::to_string(i));
  const auto cp = f.log.checkpoint();
  auto entries = f.log.entries();
  entries.resize(5);  // drop the most recent incriminating events
  EXPECT_TRUE(AuditLog::verify(entries, cp, f.signer.public_key).has_value());
}

TEST(AuditLog, ReorderingDetected) {
  Fixture f;
  for (int i = 0; i < 6; ++i) f.log.append(i, "c", std::to_string(i));
  auto entries = f.log.entries();
  std::swap(entries[2], entries[3]);
  EXPECT_TRUE(AuditLog::verify(entries, f.log.checkpoint(), f.signer.public_key)
                  .has_value());
}

TEST(AuditLog, RecomputedForgeryFailsSignature) {
  // An attacker who rebuilds the whole chain consistently still cannot
  // sign the new head.
  Fixture f;
  for (int i = 0; i < 5; ++i) f.log.append(i, "estop", std::to_string(i));
  const auto cp = f.log.checkpoint();

  crypto::Drbg other{22, "attacker"};
  const auto attacker = crypto::ed25519_keypair(other.generate32());
  AuditLog forged{attacker};
  for (int i = 0; i < 5; ++i) forged.append(i, "estop", "benign-looking");
  // Present forged entries against the honest checkpoint...
  EXPECT_TRUE(AuditLog::verify(forged.entries(), cp, f.signer.public_key).has_value());
  // ...and a forged checkpoint against the honest key.
  EXPECT_TRUE(AuditLog::verify(forged.entries(), forged.checkpoint(),
                               f.signer.public_key)
                  .has_value());
}

TEST(AuditLog, CheckpointAfterMoreAppendsDiffers) {
  Fixture f;
  f.log.append(1, "c", "x");
  const auto cp1 = f.log.checkpoint();
  f.log.append(2, "c", "y");
  const auto cp2 = f.log.checkpoint();
  EXPECT_NE(core::to_hex(cp1.head), core::to_hex(cp2.head));
  EXPECT_EQ(cp2.entry_count, 2u);
}

TEST(AuditLog, ByCategoryFilters) {
  Fixture f;
  f.log.append(1, "estop", "a");
  f.log.append(2, "ids-alert", "b");
  f.log.append(3, "estop", "c");
  const auto stops = f.log.by_category("estop");
  ASSERT_EQ(stops.size(), 2u);
  EXPECT_EQ(stops[1]->detail, "c");
  EXPECT_TRUE(f.log.by_category("none").empty());
}

TEST(AuditLog, IdenticalPayloadsYieldDistinctDigests) {
  // Same category/detail at different positions must chain differently.
  Fixture f;
  f.log.append(1, "c", "same");
  f.log.append(1, "c", "same");
  EXPECT_NE(core::to_hex(f.log.entries()[0].digest),
            core::to_hex(f.log.entries()[1].digest));
}

}  // namespace
}  // namespace agrarsec::secure
