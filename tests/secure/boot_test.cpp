// Secure boot and firmware update.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "crypto/sha256.h"
#include "secure/boot.h"
#include "secure/update.h"

namespace agrarsec::secure {
namespace {

struct Fixture {
  crypto::Drbg drbg{11, "boot-test"};
  crypto::Ed25519KeyPair signer = crypto::ed25519_keypair(drbg.generate32());
  SecureBootRom rom{signer.public_key};

  BootImage make_image(const std::string& name, std::uint32_t version,
                       const std::string& payload) {
    BootImage image;
    image.name = name;
    image.version = version;
    image.payload = core::from_string(payload);
    sign_image(image, signer);
    return image;
  }

  std::vector<BootImage> standard_chain() {
    return {make_image("bootloader", 1, "bl-code"),
            make_image("rtos", 3, "rtos-code"),
            make_image("application", 7, "app-code")};
  }
};

TEST(SecureBoot, BootsValidChain) {
  Fixture f;
  const BootReport report = f.rom.boot(f.standard_chain());
  EXPECT_TRUE(report.booted);
  EXPECT_EQ(report.booted_stages.size(), 3u);
  EXPECT_TRUE(report.failed_stage.empty());
}

TEST(SecureBoot, RejectsEmptyChain) {
  Fixture f;
  const BootReport report = f.rom.boot({});
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.failure_code, "empty_chain");
}

TEST(SecureBoot, RejectsTamperedPayload) {
  Fixture f;
  auto chain = f.standard_chain();
  chain[1].payload.push_back(0xFF);  // implant
  const BootReport report = f.rom.boot(chain);
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.failed_stage, "rtos");
  EXPECT_EQ(report.failure_code, "bad_signature");
  // Earlier stage booted; later never reached.
  EXPECT_EQ(report.booted_stages.size(), 1u);
}

TEST(SecureBoot, RejectsWrongSigner) {
  Fixture f;
  crypto::Drbg other{12, "other"};
  const auto rogue = crypto::ed25519_keypair(other.generate32());
  auto chain = f.standard_chain();
  sign_image(chain[0], rogue);
  const BootReport report = f.rom.boot(chain);
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.failure_code, "bad_signature");
}

TEST(SecureBoot, AntiRollback) {
  Fixture f;
  ASSERT_TRUE(f.rom.boot(f.standard_chain()).booted);
  EXPECT_EQ(f.rom.rollback_floor("application"), 7u);

  auto downgraded = f.standard_chain();
  downgraded[2] = f.make_image("application", 6, "old-app-code");
  const BootReport report = f.rom.boot(downgraded);
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.failed_stage, "application");
  EXPECT_EQ(report.failure_code, "rollback");
}

TEST(SecureBoot, RollbackFloorOnlyCommitsOnFullSuccess) {
  Fixture f;
  auto chain = f.standard_chain();
  chain[2].payload.push_back(1);  // last stage invalid
  ASSERT_FALSE(f.rom.boot(chain).booted);
  // The valid first stages must NOT have raised floors.
  EXPECT_EQ(f.rom.rollback_floor("bootloader"), 0u);
}

TEST(SecureBoot, MeasurementDependsOnEveryStage) {
  Fixture f;
  const BootReport r1 = f.rom.boot(f.standard_chain());
  auto chain2 = f.standard_chain();
  chain2[2] = f.make_image("application", 8, "app-code-v8");
  const BootReport r2 = f.rom.boot(chain2);
  ASSERT_TRUE(r1.booted);
  ASSERT_TRUE(r2.booted);
  EXPECT_NE(core::to_hex(r1.platform_measurement), core::to_hex(r2.platform_measurement));
}

TEST(SecureBoot, MeasurementDeterministic) {
  Fixture f1, f2;
  const BootReport r1 = f1.rom.boot(f1.standard_chain());
  const BootReport r2 = f2.rom.boot(f2.standard_chain());
  EXPECT_EQ(core::to_hex(r1.platform_measurement), core::to_hex(r2.platform_measurement));
}

TEST(SecureBoot, CountsAttemptsAndFailures) {
  Fixture f;
  (void)f.rom.boot(f.standard_chain());
  auto bad = f.standard_chain();
  bad[0].payload.push_back(1);
  (void)f.rom.boot(bad);
  EXPECT_EQ(f.rom.boot_attempts(), 2u);
  EXPECT_EQ(f.rom.boot_failures(), 1u);
}

TEST(MeasurementRegister, ExtendIsOrderSensitive) {
  MeasurementRegister a, b;
  const auto m1 = crypto::Sha256::hash(core::from_string("one"));
  const auto m2 = crypto::Sha256::hash(core::from_string("two"));
  a.extend(m1);
  a.extend(m2);
  b.extend(m2);
  b.extend(m1);
  EXPECT_NE(a.hex(), b.hex());
}

TEST(Update, FullTransferInstallsAndBoots) {
  Fixture f;
  const core::Bytes payload = f.drbg.generate(10000);
  const PreparedUpdate update = prepare_update("application", 9, payload, 1024, f.signer);
  EXPECT_EQ(update.chunks.size(), 10u);  // 9*1024 + 784

  UpdateReceiver receiver{f.signer.public_key};
  ASSERT_TRUE(receiver.begin(update.manifest).ok());
  for (const auto& chunk : update.chunks) {
    ASSERT_TRUE(receiver.feed(chunk).ok());
  }
  auto image = receiver.finalize();
  ASSERT_TRUE(image.ok()) << image.error().to_string();
  EXPECT_EQ(image.value().payload, payload);

  // Installed image boots.
  auto chain = f.standard_chain();
  chain[2] = image.value();
  EXPECT_TRUE(f.rom.boot(chain).booted);
}

TEST(Update, RejectsForgedManifest) {
  Fixture f;
  crypto::Drbg other{13, "other"};
  const auto rogue = crypto::ed25519_keypair(other.generate32());
  const PreparedUpdate update =
      prepare_update("application", 9, f.drbg.generate(100), 64, rogue);
  UpdateReceiver receiver{f.signer.public_key};
  const auto status = receiver.begin(update.manifest);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "bad_signature");
}

TEST(Update, RejectsCorruptedChunk) {
  Fixture f;
  const core::Bytes payload = f.drbg.generate(500);
  const PreparedUpdate update = prepare_update("application", 9, payload, 128, f.signer);
  UpdateReceiver receiver{f.signer.public_key};
  ASSERT_TRUE(receiver.begin(update.manifest).ok());
  for (std::size_t i = 0; i < update.chunks.size(); ++i) {
    core::Bytes chunk = update.chunks[i];
    if (i == 2) chunk[0] ^= 1;
    ASSERT_TRUE(receiver.feed(chunk).ok());
  }
  const auto image = receiver.finalize();
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.error().code, "bad_hash");
}

TEST(Update, RejectsIncompleteTransfer) {
  Fixture f;
  const PreparedUpdate update =
      prepare_update("application", 9, f.drbg.generate(500), 128, f.signer);
  UpdateReceiver receiver{f.signer.public_key};
  ASSERT_TRUE(receiver.begin(update.manifest).ok());
  ASSERT_TRUE(receiver.feed(update.chunks[0]).ok());
  const auto image = receiver.finalize();
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.error().code, "incomplete");
}

TEST(Update, RejectsOverflow) {
  Fixture f;
  const PreparedUpdate update =
      prepare_update("application", 9, f.drbg.generate(100), 64, f.signer);
  UpdateReceiver receiver{f.signer.public_key};
  ASSERT_TRUE(receiver.begin(update.manifest).ok());
  for (const auto& chunk : update.chunks) ASSERT_TRUE(receiver.feed(chunk).ok());
  const auto status = receiver.feed(update.chunks[0]);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, "overflow");
}

TEST(Update, FeedWithoutBeginFails) {
  Fixture f;
  UpdateReceiver receiver{f.signer.public_key};
  const core::Bytes chunk(10, 0);
  EXPECT_FALSE(receiver.feed(chunk).ok());
  EXPECT_FALSE(receiver.finalize().ok());
}

TEST(Update, RejectsZeroChunkSize) {
  Fixture f;
  PreparedUpdate update = prepare_update("application", 9, f.drbg.generate(100), 64, f.signer);
  update.manifest.chunk_size = 0;
  // Signature now mismatches too, but chunk_size check must not crash.
  UpdateReceiver receiver{f.signer.public_key};
  EXPECT_FALSE(receiver.begin(update.manifest).ok());
}

TEST(Update, UpdatedImageObeysRollbackProtection) {
  Fixture f;
  ASSERT_TRUE(f.rom.boot(f.standard_chain()).booted);  // floor: app v7
  const PreparedUpdate update =
      prepare_update("application", 5, f.drbg.generate(100), 64, f.signer);
  UpdateReceiver receiver{f.signer.public_key};
  ASSERT_TRUE(receiver.begin(update.manifest).ok());
  for (const auto& chunk : update.chunks) ASSERT_TRUE(receiver.feed(chunk).ok());
  auto image = receiver.finalize();
  ASSERT_TRUE(image.ok());

  auto chain = f.standard_chain();
  chain[2] = image.value();
  const BootReport report = f.rom.boot(chain);
  EXPECT_FALSE(report.booted);
  EXPECT_EQ(report.failure_code, "rollback");
}

}  // namespace
}  // namespace agrarsec::secure
