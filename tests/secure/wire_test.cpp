// Byte-level wire formats: certificate and handshake-flight decoding, and
// a complete handshake run purely over encoded bytes (as it would cross
// the radio).
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/handshake.h"

namespace agrarsec::secure {
namespace {

struct Fixture {
  crypto::Drbg drbg{17, "wire-test"};
  pki::CertificateAuthority root = pki::CertificateAuthority::create_root(
      "root", drbg.generate32(), 0, 1000 * core::kHour);
  pki::TrustStore trust;
  pki::Identity a = make("machine-a");
  pki::Identity b = make("machine-b");

  pki::Identity make(const std::string& name) {
    auto id = pki::enroll(root, drbg, name, pki::CertRole::kMachine, 0,
                          1000 * core::kHour);
    EXPECT_TRUE(id.ok());
    return std::move(id).take();
  }
  Fixture() { EXPECT_TRUE(trust.add_root(root.certificate()).ok()); }
};

TEST(Wire, CertificateRoundTrip) {
  Fixture f;
  const pki::Certificate& original = f.a.leaf();
  const auto decoded = pki::Certificate::decode(original.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->body.subject, original.body.subject);
  EXPECT_EQ(decoded->body.issuer, original.body.issuer);
  EXPECT_EQ(decoded->body.serial, original.body.serial);
  EXPECT_EQ(decoded->body.role, original.body.role);
  EXPECT_EQ(decoded->body.not_after, original.body.not_after);
  EXPECT_EQ(decoded->body.usage.encode(), original.body.usage.encode());
  EXPECT_EQ(core::to_hex(decoded->signature), core::to_hex(original.signature));
  // And the decoded certificate still verifies + re-encodes identically.
  EXPECT_TRUE(decoded->verify_signature(f.root.certificate().body.signing_key));
  EXPECT_EQ(core::to_hex(decoded->encode()), core::to_hex(original.encode()));
}

TEST(Wire, CertificateDecodeRejectsDamage) {
  Fixture f;
  const auto bytes = f.a.leaf().encode();
  // Truncations at every prefix length must fail cleanly.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_FALSE(pki::Certificate::decode(std::span(bytes.data(), len)).has_value())
        << "prefix " << len;
  }
  // Trailing garbage.
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(pki::Certificate::decode(extended).has_value());
  // Wrong magic.
  auto wrong = bytes;
  wrong[0] ^= 1;
  EXPECT_FALSE(pki::Certificate::decode(wrong).has_value());
}

TEST(Wire, CertificateDecodeRejectsBadEnums) {
  Fixture f;
  auto bytes = f.a.leaf().encode();
  // Role byte follows magic(16) + serial(8) + framed subject + framed
  // issuer + issuer serial(8). Corrupt it via a targeted rebuild instead:
  pki::Certificate cert = f.a.leaf();
  cert.body.role = static_cast<pki::CertRole>(250);
  EXPECT_FALSE(pki::Certificate::decode(cert.encode()).has_value());
  (void)bytes;
}

TEST(Wire, Msg1RoundTrip) {
  Fixture f;
  Handshake hs{f.a, f.trust, 10, ""};
  const HandshakeMsg1 m1 = hs.start(f.drbg);
  const auto decoded = HandshakeMsg1::decode(m1.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(core::to_hex(decoded->ephemeral), core::to_hex(m1.ephemeral));
  EXPECT_FALSE(HandshakeMsg1::decode(core::from_string("junk")).has_value());
}

TEST(Wire, Msg2RoundTrip) {
  Fixture f;
  Handshake init{f.a, f.trust, 10, ""};
  Handshake resp{f.b, f.trust, 10, ""};
  const HandshakeMsg1 m1 = init.start(f.drbg);
  auto m2 = resp.respond(m1, f.drbg);
  ASSERT_TRUE(m2.ok());

  const auto decoded = HandshakeMsg2::decode(m2.value().encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->chain.size(), m2.value().chain.size());
  EXPECT_EQ(decoded->chain[0].body.subject, "machine-b");
  EXPECT_EQ(core::to_hex(decoded->signature), core::to_hex(m2.value().signature));
}

TEST(Wire, Msg2DecodeRejectsTruncation) {
  Fixture f;
  Handshake init{f.a, f.trust, 10, ""};
  Handshake resp{f.b, f.trust, 10, ""};
  auto m2 = resp.respond(init.start(f.drbg), f.drbg);
  ASSERT_TRUE(m2.ok());
  const auto bytes = m2.value().encode();
  for (std::size_t len = 0; len < bytes.size(); len += 13) {
    EXPECT_FALSE(HandshakeMsg2::decode(std::span(bytes.data(), len)).has_value());
  }
}

TEST(Wire, Msg2DecodeRejectsOversizedChainCount) {
  // A forged header claiming 2^31 certificates must not allocate/loop.
  core::Bytes bytes = core::from_string("hs2");
  bytes.resize(3 + 32, 0);
  core::append_be32(bytes, 0x7fffffff);
  EXPECT_FALSE(HandshakeMsg2::decode(bytes).has_value());
}

TEST(Wire, FullHandshakeOverBytes) {
  // Every flight crosses as encoded bytes, as over the radio.
  Fixture f;
  Handshake init{f.a, f.trust, 10, "machine-b"};
  Handshake resp{f.b, f.trust, 10, "machine-a"};

  const core::Bytes wire1 = init.start(f.drbg).encode();
  const auto m1 = HandshakeMsg1::decode(wire1);
  ASSERT_TRUE(m1.has_value());

  auto m2 = resp.respond(*m1, f.drbg);
  ASSERT_TRUE(m2.ok());
  const core::Bytes wire2 = m2.value().encode();
  const auto m2d = HandshakeMsg2::decode(wire2);
  ASSERT_TRUE(m2d.has_value());

  auto m3 = init.consume_msg2(*m2d);
  ASSERT_TRUE(m3.ok()) << m3.error().to_string();
  const core::Bytes wire3 = m3.value().encode();
  const auto m3d = HandshakeMsg3::decode(wire3);
  ASSERT_TRUE(m3d.has_value());

  ASSERT_TRUE(resp.finish(*m3d).ok());

  Session sa = init.take_session();
  Session sb = resp.take_session();
  const Record r = sa.seal(core::from_string("over-the-air"));
  const auto opened = sb.open(Record::decode(r.encode()).value());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), core::from_string("over-the-air"));
}

TEST(Wire, TamperedWireMsg2FailsHandshake) {
  Fixture f;
  Handshake init{f.a, f.trust, 10, ""};
  Handshake resp{f.b, f.trust, 10, ""};
  auto m2 = resp.respond(init.start(f.drbg), f.drbg);
  ASSERT_TRUE(m2.ok());
  auto wire = m2.value().encode();
  wire[40] ^= 1;  // inside the certificate chain region
  const auto decoded = HandshakeMsg2::decode(wire);
  if (decoded) {
    // Structure may survive a bit flip, but the handshake must not.
    EXPECT_FALSE(init.consume_msg2(*decoded).ok());
  }
}

}  // namespace
}  // namespace agrarsec::secure
