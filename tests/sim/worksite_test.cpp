#include <gtest/gtest.h>

#include <set>

#include "sim/worksite.h"

namespace agrarsec::sim {
namespace {

WorksiteConfig small_site() {
  WorksiteConfig config;
  config.forest.bounds = {{0, 0}, {300, 300}};
  config.forest.trees_per_hectare = 100;  // sparse for fast tests
  config.forest.hill_count = 2;
  config.landing_area = {30, 30};
  config.harvester_output_m3_per_min = 10.0;  // fast production for tests
  config.load_time = 5 * core::kSecond;
  config.unload_time = 5 * core::kSecond;
  return config;
}

TEST(Worksite, PopulationAndAccess) {
  Worksite site{small_site(), 42};
  const MachineId f = site.add_forwarder("f1", {50, 50});
  const MachineId h = site.add_harvester("h1", {150, 150});
  const MachineId d = site.add_drone("d1", {50, 50});
  const HumanId w = site.add_worker("w1", {150, 150}, {150, 150});

  EXPECT_EQ(site.machines().size(), 3u);
  EXPECT_EQ(site.humans().size(), 1u);
  EXPECT_NE(site.machine(f), nullptr);
  EXPECT_EQ(site.machine(f)->kind(), MachineKind::kForwarder);
  EXPECT_EQ(site.machine(h)->kind(), MachineKind::kHarvester);
  EXPECT_EQ(site.machine(d)->kind(), MachineKind::kDrone);
  EXPECT_EQ(site.machine(MachineId{999}), nullptr);
  EXPECT_EQ(site.humans()[0]->id(), w);
}

TEST(Worksite, ClockAdvances) {
  Worksite site{small_site(), 42};
  EXPECT_EQ(site.clock().now(), 0);
  site.step();
  EXPECT_EQ(site.clock().now(), 100);
}

TEST(Worksite, HarvesterProducesPiles) {
  Worksite site{small_site(), 42};
  site.add_harvester("h1", {150, 150});
  for (int i = 0; i < 1200; ++i) site.step();  // 2 minutes at 10 m3/min
  EXPECT_GE(site.piles().size(), 2u);
  for (const LogPile& p : site.piles()) {
    EXPECT_GT(p.volume_m3, 0.0);
    EXPECT_TRUE(site.terrain().bounds().contains(p.position));
  }
}

TEST(Worksite, ForwarderCompletesCycle) {
  Worksite site{small_site(), 42};
  site.add_harvester("h1", {150, 150});
  const MachineId f = site.add_forwarder("f1", {60, 60});

  // Run up to 30 sim-minutes; the forwarder should deliver at least once.
  for (int i = 0; i < 18000 && site.completed_cycles() == 0; ++i) site.step();
  EXPECT_GE(site.completed_cycles(), 1u);
  EXPECT_GT(site.delivered_m3(), 0.0);
  (void)f;
}

TEST(Worksite, ForwarderTaskProgression) {
  Worksite site{small_site(), 42};
  site.add_harvester("h1", {150, 150});
  const MachineId f = site.add_forwarder("f1", {60, 60});

  std::set<ForwarderTask> seen;
  for (int i = 0; i < 18000 && site.completed_cycles() == 0; ++i) {
    site.step();
    seen.insert(site.task(f));
  }
  EXPECT_TRUE(seen.contains(ForwarderTask::kToPile));
  EXPECT_TRUE(seen.contains(ForwarderTask::kLoading));
  EXPECT_TRUE(seen.contains(ForwarderTask::kToLanding));
}

TEST(Worksite, StoppedForwarderMakesNoProgress) {
  Worksite site{small_site(), 42};
  site.add_harvester("h1", {150, 150});
  const MachineId f = site.add_forwarder("f1", {60, 60});
  for (int i = 0; i < 100; ++i) site.step();
  site.machine(f)->emergency_stop(true);
  const auto cycles_before = site.completed_cycles();
  for (int i = 0; i < 3000; ++i) site.step();
  EXPECT_EQ(site.completed_cycles(), cycles_before);
}

TEST(Worksite, DroneOrbitsAnchor) {
  Worksite site{small_site(), 42};
  const MachineId f = site.add_forwarder("f1", {100, 100});
  const MachineId d = site.add_drone("d1", {100, 100});
  site.set_drone_orbit(d, f, 25.0);
  for (int i = 0; i < 600; ++i) site.step();

  const double dist = core::distance(site.machine(d)->position(),
                                     site.machine(f)->position());
  EXPECT_GT(dist, 5.0);
  EXPECT_LT(dist, 60.0);
}

TEST(Worksite, SeparationTrackingRecordsCloseEncounters) {
  Worksite site{small_site(), 42};
  site.add_harvester("h1", {60, 60});
  const MachineId f = site.add_forwarder("f1", {50, 50});
  site.add_worker("w1", {60, 60}, {60, 60});
  (void)f;
  for (int i = 0; i < 6000; ++i) site.step();
  // Worker anchored right at the pile area: some proximity expected.
  EXPECT_LT(site.min_human_separation(), 100.0);
  EXPECT_GE(site.close_encounters(1000.0), site.close_encounters(10.0));
}

TEST(Worksite, ExhaustedPilesAreCompactedAway) {
  // Regression: piles_ only ever grew. Exhausted piles (volume below the
  // harvestable floor) stayed in the vector forever, so a long-running
  // site scanned an ever-larger list of dead piles on every dispatch.
  Worksite site{small_site(), 42};
  site.add_harvester("h1", {150, 150});
  // Enough forwarders to drain piles as fast as they appear.
  site.add_forwarder("f1", {60, 60});
  site.add_forwarder("f2", {80, 60});
  site.add_forwarder("f3", {60, 80});

  for (int i = 0; i < 18000; ++i) site.step();  // 30 sim-minutes

  EXPECT_GE(site.completed_cycles(), 3u);
  // Every listed pile is live; exhausted ones were swapped out.
  for (const LogPile& p : site.piles()) EXPECT_GE(p.volume_m3, 0.5);
  // 30 min at 10 m3/min and 7 m3 piles ≈ 42 piles produced; with three
  // forwarders draining, the live list must sit well below that total.
  EXPECT_LT(site.piles().size(), 40u);
}

TEST(Worksite, PileReferencesSurviveCompaction) {
  // Forwarder task state holds pile *ids*, not indices; compaction
  // swapping the vector around must never corrupt an in-progress load.
  // Symptom before the fix would be a forwarder loading from the wrong
  // pile (or past-the-end): delivered volume tracks completed cycles.
  Worksite site{small_site(), 9};
  site.add_harvester("h1", {150, 150});
  site.add_forwarder("f1", {60, 60});
  site.add_forwarder("f2", {200, 200});
  for (int i = 0; i < 18000; ++i) site.step();
  EXPECT_GE(site.completed_cycles(), 2u);
  EXPECT_GT(site.delivered_m3(), 0.0);
  // Delivered volume can only come from real piles: it is bounded by what
  // the harvester produced.
  const double produced_bound =
      10.0 * 30.0 + 14.0;  // rate * minutes + slack for the open piles
  EXPECT_LE(site.delivered_m3(), produced_bound);
}

TEST(Worksite, SeparationStatsStreamed) {
  // min/close-encounter metrics are answered from streaming statistics
  // (histogram + running moments), not a stored per-step sample list.
  Worksite site{small_site(), 42};
  site.add_harvester("h1", {60, 60});
  site.add_forwarder("f1", {50, 50});
  site.add_worker("w1", {60, 60}, {60, 60});
  for (int i = 0; i < 6000; ++i) site.step();

  const auto& stats = site.separation_stats();
  ASSERT_GT(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.min(), site.min_human_separation());
  EXPECT_LE(stats.min(), stats.mean());
  // The histogram and the running stats see the same sample stream.
  EXPECT_EQ(site.separation_histogram().total(), stats.count());
  // Thresholds at/above the tracked range cover every recorded sample.
  EXPECT_EQ(site.close_encounters(1e9), stats.count());
}

TEST(Worksite, EventBusPublishesPilesAndCycles) {
  Worksite site{small_site(), 42};
  int pile_events = 0;
  site.bus().subscribe("worksite/pile", [&](const core::Event&) { ++pile_events; });
  site.add_harvester("h1", {150, 150});
  for (int i = 0; i < 1200; ++i) site.step();
  EXPECT_GE(pile_events, 2);
}

TEST(Worksite, WeatherSettable) {
  Worksite site{small_site(), 42};
  EXPECT_EQ(site.weather(), Weather::kClear);
  site.set_weather(Weather::kFog);
  EXPECT_EQ(site.weather(), Weather::kFog);
  EXPECT_EQ(weather_name(Weather::kFog), "fog");
}

TEST(Worksite, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    Worksite site{small_site(), seed};
    site.add_harvester("h1", {150, 150});
    site.add_forwarder("f1", {60, 60});
    site.add_worker("w1", {100, 100}, {150, 150});
    for (int i = 0; i < 3000; ++i) site.step();
    return std::make_pair(site.delivered_m3(), site.machines()[1]->position());
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second.x, b.second.x);
  const auto c = run(8);
  EXPECT_NE(a.second.x, c.second.x);
}

}  // namespace
}  // namespace agrarsec::sim
