// Exhaustive equivalence of Terrain::occlusion_cause_batch against the
// per-ray occlusion_cause over randomized obstacle/hill fields and the
// degenerate rays the batch path's shortcuts could plausibly break:
// zero-length rays, from == to with differing heights, endpoints aligned
// on cell boundaries, and drone-altitude rays that exercise the
// hills-height-sum terrain-sampling skip. The contract is bit-for-bit:
// the batch entry point must return exactly what the per-ray entry point
// returns for every ray, in any bundle order.
#include "sim/terrain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/rng.h"

namespace agrarsec::sim {
namespace {

using Cause = Terrain::OcclusionCause;

/// Bundles `targets` from `from`/`agl`, resolves both ways, and requires
/// exact agreement per ray.
void expect_batch_matches(const Terrain& terrain, core::Vec2 from, double agl,
                          const std::vector<Terrain::LosTarget>& targets,
                          const char* label) {
  std::vector<Cause> batch;
  terrain.occlusion_cause_batch(from, agl, targets, batch);
  ASSERT_EQ(batch.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const Cause single =
        terrain.occlusion_cause(from, agl, targets[i].to_xy, targets[i].to_agl);
    EXPECT_EQ(batch[i], single)
        << label << ": ray " << i << " from (" << from.x << "," << from.y
        << ") agl " << agl << " to (" << targets[i].to_xy.x << ","
        << targets[i].to_xy.y << ") agl " << targets[i].to_agl;
  }
}

TEST(OcclusionBatchTest, MatchesPerRayOverRandomizedFields) {
  // Several stand densities, including obstacle-free (pure terrain) and
  // hill-free (pure obstacles): each generated field gets frames of
  // random rays from ground-mast and drone-altitude origins.
  struct FieldSpec {
    double trees_per_ha;
    double brush_per_ha;
    std::size_t hills;
    std::uint64_t seed;
  };
  const FieldSpec specs[] = {
      {400.0, 40.0, 6, 1},   // dense managed stand
      {80.0, 10.0, 6, 2},    // sparse
      {0.0, 0.0, 6, 3},      // terrain-only occlusion
      {400.0, 40.0, 0, 4},   // obstacle-only (flat ground)
      {1000.0, 120.0, 12, 5} // degenerate thicket
  };
  for (const FieldSpec& spec : specs) {
    ForestConfig forest;
    forest.bounds = {{0, 0}, {200, 200}};
    forest.trees_per_hectare = spec.trees_per_ha;
    forest.brush_per_hectare = spec.brush_per_ha;
    forest.boulders_per_hectare = spec.trees_per_ha > 0 ? 8.0 : 0.0;
    forest.hill_count = spec.hills;
    core::Rng terrain_rng{spec.seed};
    const Terrain terrain = Terrain::generate(forest, terrain_rng);

    core::Rng rng{spec.seed * 7919 + 13};
    for (int frame = 0; frame < 8; ++frame) {
      const core::Vec2 from{rng.uniform(5.0, 195.0), rng.uniform(5.0, 195.0)};
      const double agl = frame % 2 == 0 ? rng.uniform(1.0, 3.5)   // mast
                                        : rng.uniform(25.0, 60.0);  // drone
      std::vector<Terrain::LosTarget> targets;
      for (int i = 0; i < 48; ++i) {
        targets.push_back({{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                           rng.uniform(0.0, 2.5)});
      }
      expect_batch_matches(terrain, from, agl, targets, "random field");
    }
  }
}

TEST(OcclusionBatchTest, DegenerateRays) {
  ForestConfig forest;
  forest.bounds = {{0, 0}, {200, 200}};
  core::Rng terrain_rng{42};
  const Terrain terrain = Terrain::generate(forest, terrain_rng);

  const core::Vec2 from{55.0, 85.0};
  std::vector<Terrain::LosTarget> targets;
  // from == to, equal heights (planar length exactly zero).
  targets.push_back({from, 1.7});
  // from == to, differing heights (still zero planar length).
  targets.push_back({from, 40.0});
  targets.push_back({from, 0.0});
  // Sub-epsilon planar offset (the < 1e-9 early-out boundary).
  targets.push_back({{from.x + 1e-12, from.y}, 1.7});
  targets.push_back({{from.x, from.y + 1e-10}, 1.7});
  // Endpoints exactly on cell-size multiples (grid cell 10 m): axis-
  // aligned rays that ride cell boundaries the whole way.
  targets.push_back({{50.0, 85.0}, 1.7});
  targets.push_back({{150.0, 85.0}, 1.7});
  targets.push_back({{55.0, 200.0}, 1.7});
  targets.push_back({{60.0, 90.0}, 1.7});
  // Long diagonal corner-to-corner and out-of-frame-corner rays.
  targets.push_back({{0.0, 0.0}, 1.7});
  targets.push_back({{200.0, 200.0}, 0.5});
  targets.push_back({{200.0, 0.0}, 2.0});
  // Target at drone altitude (upward ray clears all hills -> sampling
  // skip) and at negative-ish ground hug.
  targets.push_back({{120.0, 40.0}, 55.0});
  targets.push_back({{120.0, 40.0}, 0.0});
  expect_batch_matches(terrain, from, 1.9, targets, "degenerate, mast origin");
  expect_batch_matches(terrain, from, 45.0, targets, "degenerate, drone origin");
  // Origin itself on a cell boundary.
  expect_batch_matches(terrain, {60.0, 90.0}, 2.2, targets,
                       "degenerate, boundary origin");
}

TEST(OcclusionBatchTest, BundleOrderDoesNotChangeResults) {
  // The batch sorts rays by direction internally; shuffling the input
  // bundle must permute the outputs identically (out[i] always belongs
  // to targets[i]).
  ForestConfig forest;
  forest.bounds = {{0, 0}, {200, 200}};
  core::Rng terrain_rng{7};
  const Terrain terrain = Terrain::generate(forest, terrain_rng);

  core::Rng rng{2024};
  const core::Vec2 from{100.0, 100.0};
  std::vector<Terrain::LosTarget> targets;
  for (int i = 0; i < 64; ++i) {
    targets.push_back({{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                       rng.uniform(0.5, 2.0)});
  }
  std::vector<Cause> base;
  terrain.occlusion_cause_batch(from, 2.5, targets, base);

  // Deterministic Fisher-Yates over indices, three different shuffles.
  std::vector<std::size_t> order(targets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i)));
      std::swap(order[i - 1], order[j]);
    }
    std::vector<Terrain::LosTarget> shuffled(targets.size());
    for (std::size_t i = 0; i < order.size(); ++i) shuffled[i] = targets[order[i]];
    std::vector<Cause> out;
    terrain.occlusion_cause_batch(from, 2.5, shuffled, out);
    ASSERT_EQ(out.size(), shuffled.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(out[i], base[order[i]]) << "round " << round << " slot " << i;
    }
  }
}

TEST(OcclusionBatchTest, SingleRayAndEmptyBundles) {
  ForestConfig forest;
  forest.bounds = {{0, 0}, {100, 100}};
  core::Rng terrain_rng{11};
  const Terrain terrain = Terrain::generate(forest, terrain_rng);

  std::vector<Terrain::LosTarget> empty;
  std::vector<Cause> out{Cause::kTree};  // stale contents must be cleared
  terrain.occlusion_cause_batch({10, 10}, 2.0, empty, out);
  EXPECT_TRUE(out.empty());

  // count == 1 takes the no-sort fast path.
  std::vector<Terrain::LosTarget> one{{{90.0, 90.0}, 1.5}};
  terrain.occlusion_cause_batch({10, 10}, 2.0, one, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], terrain.occlusion_cause({10, 10}, 2.0, {90.0, 90.0}, 1.5));
}

}  // namespace
}  // namespace agrarsec::sim
