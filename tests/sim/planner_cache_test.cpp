// Route cache, generation invalidation and lazy re-planning: the planner
// must behave as pure memoisation (bit-identical to an uncached planner),
// invalidate across terrain mutations, and let machines retarget routes
// without re-planning when the goal barely moved.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "sim/machine.h"
#include "sim/pathfinding.h"
#include "sim/worksite.h"

namespace agrarsec::sim {
namespace {

Terrain empty_terrain() {
  return Terrain{core::Aabb{{0, 0}, {200, 200}}, {}, {}};
}

Obstacle boulder(core::Vec2 at, double radius) {
  Obstacle o;
  o.kind = ObstacleKind::kBoulder;
  o.footprint = {at, radius};
  o.height_m = 2.0;
  return o;
}

bool same_route(const std::optional<std::vector<core::Vec2>>& a,
                const std::optional<std::vector<core::Vec2>>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  if (a->size() != b->size()) return false;
  for (std::size_t i = 0; i < a->size(); ++i) {
    if ((*a)[i].x != (*b)[i].x || (*a)[i].y != (*b)[i].y) return false;
  }
  return true;
}

TEST(PlannerCache, StartEqualsGoalCellYieldsSingleWaypoint) {
  const Terrain t = empty_terrain();
  const PathPlanner planner{t};
  // Same 4 m planning cell, different exact points.
  const auto path = planner.plan({50.2, 50.1}, {51.9, 50.8});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 1u);
  // The single waypoint is the goal cell's center.
  EXPECT_LT(core::distance(path->front(), {51.9, 50.8}),
            planner.config().cell_size_m);
}

TEST(PlannerCache, GoalOnBlockedCellSnapsToNearestFree) {
  std::vector<Obstacle> obstacles = {boulder({100, 100}, 5.0)};
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, std::move(obstacles), {}};
  const PathPlanner planner{t};
  // Goal dead-center on the boulder: plan() must snap it off and succeed.
  const auto path = planner.plan({20, 20}, {100, 100});
  ASSERT_TRUE(path.has_value());
  ASSERT_FALSE(path->empty());
  // Route terminates near (but not inside) the boulder footprint.
  const core::Vec2 end = path->back();
  EXPECT_LT(core::distance(end, {100, 100}), 20.0);
  EXPECT_FALSE(t.blocked(end, planner.config().clearance_m));
}

TEST(PlannerCache, RepeatedPlanHitsCache) {
  const Terrain t = empty_terrain();
  const PathPlanner planner{t};
  const auto first = planner.plan({10, 10}, {150, 150});
  const auto second = planner.plan({10, 10}, {150, 150});
  EXPECT_TRUE(same_route(first, second));
  EXPECT_EQ(planner.stats().plans, 2u);
  EXPECT_EQ(planner.stats().cache_hits, 1u);
  EXPECT_EQ(planner.stats().cache_misses, 1u);
  EXPECT_EQ(planner.cache_size(), 1u);
}

TEST(PlannerCache, UnreachableResultIsCachedToo) {
  std::vector<Obstacle> obstacles;
  for (double angle = 0; angle < 6.3; angle += 0.15) {
    obstacles.push_back(
        boulder({100 + 20 * std::cos(angle), 100 + 20 * std::sin(angle)}, 4.0));
  }
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, std::move(obstacles), {}};
  const PathPlanner planner{t};
  EXPECT_FALSE(planner.plan({10, 10}, {100, 100}).has_value());
  EXPECT_FALSE(planner.plan({10, 10}, {100, 100}).has_value());
  EXPECT_EQ(planner.stats().cache_hits, 1u);  // negative entry served
  EXPECT_EQ(planner.stats().cache_misses, 1u);
}

TEST(PlannerCache, TerrainMutationInvalidatesCachedRoute) {
  const Terrain t = empty_terrain();
  PathPlanner planner{t};
  const core::Vec2 start{20, 100};
  const core::Vec2 goal{180, 100};

  const auto original = planner.plan(start, goal);
  ASSERT_TRUE(original.has_value());
  const std::uint64_t gen0 = planner.generation();

  // Block a disc square across the straight line.
  planner.set_region_blocked({100, 100}, 12.0, true);
  EXPECT_GT(planner.generation(), gen0);

  const auto detour = planner.plan(start, goal);
  ASSERT_TRUE(detour.has_value());
  // The stale entry must have been evicted, not served.
  EXPECT_EQ(planner.stats().invalidations, 1u);
  EXPECT_EQ(planner.stats().cache_hits, 0u);
  EXPECT_FALSE(same_route(original, detour));
  // Every leg of the detour avoids the blocked disc.
  core::Vec2 prev = start;
  for (const core::Vec2 wp : *detour) {
    EXPECT_TRUE(planner.segment_clear(prev, wp));
    prev = wp;
  }

  // Freeing the region restores the original plan bit-for-bit (plans are
  // a pure function of the cells and the blocked grid).
  planner.set_region_blocked({100, 100}, 12.0, false);
  const auto restored = planner.plan(start, goal);
  EXPECT_TRUE(same_route(original, restored));
}

TEST(PlannerCache, NoOpMutationKeepsGenerationAndCache) {
  const Terrain t = empty_terrain();
  PathPlanner planner{t};
  const auto first = planner.plan({10, 10}, {150, 150});
  ASSERT_TRUE(first.has_value());
  const std::uint64_t gen = planner.generation();
  // Freeing already-free cells changes nothing: no generation bump, and
  // the cached route stays valid.
  planner.set_region_blocked({50, 50}, 10.0, false);
  EXPECT_EQ(planner.generation(), gen);
  (void)planner.plan({10, 10}, {150, 150});
  EXPECT_EQ(planner.stats().cache_hits, 1u);
}

TEST(PlannerCache, CacheOnAndOffAreBitIdentical) {
  core::Rng rng{3};
  ForestConfig forest;
  forest.bounds = {{0, 0}, {300, 300}};
  forest.boulders_per_hectare = 30;
  core::Rng terrain_rng{11};
  const Terrain t = Terrain::generate(forest, terrain_rng);

  PlannerConfig off;
  off.cache_enabled = false;
  const PathPlanner cached{t};
  const PathPlanner uncached{t, off};

  // Mixed fresh + repeated queries: repeats are exactly where a buggy
  // cache would diverge.
  std::vector<std::pair<core::Vec2, core::Vec2>> queries;
  for (int i = 0; i < 30; ++i) {
    queries.emplace_back(core::Vec2{rng.uniform(10, 290), rng.uniform(10, 290)},
                         core::Vec2{rng.uniform(10, 290), rng.uniform(10, 290)});
  }
  for (int i = 0; i < 20; ++i) queries.push_back(queries[static_cast<std::size_t>(i) % 10]);

  for (const auto& [from, to] : queries) {
    EXPECT_TRUE(same_route(cached.plan(from, to), uncached.plan(from, to)));
  }
  EXPECT_GT(cached.stats().cache_hits, 0u);
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
  EXPECT_EQ(uncached.cache_size(), 0u);
}

TEST(LazyReplan, ReusesRouteForNearbyGoal) {
  const Terrain t = empty_terrain();
  const PathPlanner planner{t};
  Machine m{MachineId{1}, MachineKind::kForwarder, "f1", {10, 10}, {}};

  const auto route = planner.plan({10, 10}, {150, 150});
  ASSERT_TRUE(route.has_value());
  m.set_route({route->begin(), route->end()}, {150, 150}, planner.generation());
  ASSERT_TRUE(m.route_goal().has_value());

  // Goal moved 3 m (< replan_threshold_m = 6): reuse, retargeting the tail.
  EXPECT_TRUE(m.try_reuse_route({153, 150}, planner));
  EXPECT_EQ(m.route_reuses(), 1u);
  ASSERT_FALSE(m.idle());
  EXPECT_EQ(m.route_goal()->x, 153.0);

  // Goal moved far: must decline so the caller re-plans.
  EXPECT_FALSE(m.try_reuse_route({10, 150}, planner));
  EXPECT_EQ(m.route_reuses(), 1u);
}

TEST(LazyReplan, DeclinesWhenRouteNoLongerClear) {
  const Terrain t = empty_terrain();
  PathPlanner planner{t};
  Machine m{MachineId{1}, MachineKind::kForwarder, "f1", {10, 100}, {}};
  const auto route = planner.plan({10, 100}, {190, 100});
  ASSERT_TRUE(route.has_value());
  m.set_route({route->begin(), route->end()}, {190, 100}, planner.generation());

  // A hazard appears across the straight route: reuse must be declined
  // even though the goal did not move at all.
  planner.set_region_blocked({100, 100}, 10.0, true);
  EXPECT_FALSE(m.try_reuse_route({190, 100}, planner));
}

TEST(LazyReplan, DeclinesAfterAnyGridMutation) {
  // Reuse only re-checks the pose leg and the retargeted tail, never the
  // intermediate legs — so it must decline on *any* grid mutation since
  // planning (stale generation), even one nowhere near those two legs.
  // Otherwise a hazard cutting a middle leg would be driven through.
  const Terrain t = empty_terrain();
  PathPlanner planner{t};
  Machine m{MachineId{1}, MachineKind::kForwarder, "f1", {10, 100}, {}};
  const auto route = planner.plan({10, 100}, {190, 100});
  ASSERT_TRUE(route.has_value());
  m.set_route({route->begin(), route->end()}, {190, 100}, planner.generation());

  // Same generation: reuse works.
  EXPECT_TRUE(m.try_reuse_route({192, 100}, planner));

  // Mutation far from the pose leg and the tail leg: generation is stale,
  // reuse declined, caller must re-plan.
  planner.set_region_blocked({100, 20}, 5.0, true);
  EXPECT_FALSE(m.try_reuse_route({190, 100}, planner));

  // A route planned under the new generation is reusable again.
  const auto fresh = planner.plan({10, 100}, {190, 100});
  ASSERT_TRUE(fresh.has_value());
  m.set_route({fresh->begin(), fresh->end()}, {190, 100}, planner.generation());
  EXPECT_TRUE(m.try_reuse_route({192, 100}, planner));
}

TEST(LazyReplan, UntrackedRouteIsNeverReused) {
  const Terrain t = empty_terrain();
  const PathPlanner planner{t};
  Machine m{MachineId{1}, MachineKind::kForwarder, "f1", {10, 10}, {}};
  m.set_route({{50, 50}});  // untracked overload
  EXPECT_FALSE(m.route_goal().has_value());
  EXPECT_FALSE(m.try_reuse_route({50, 50}, planner));
  // push_waypoint also clears tracking.
  m.set_route({{50, 50}}, {50, 50}, planner.generation());
  m.push_waypoint({60, 60});
  EXPECT_FALSE(m.route_goal().has_value());
}

TEST(PlannerCache, BudgetExhaustionIsNotCached) {
  // A search that dies on max_expansions is a transient failure, not proof
  // of unreachability: caching it would pin 'unreachable' on the cell pair
  // for the whole generation. Both plans below must run a real search.
  const Terrain t = empty_terrain();
  PlannerConfig config;
  config.max_expansions = 1;  // everything non-trivial exhausts the budget
  const PathPlanner planner{t, config};
  EXPECT_FALSE(planner.plan({10, 10}, {150, 30}).has_value());
  EXPECT_FALSE(planner.plan({10, 10}, {150, 30}).has_value());
  EXPECT_EQ(planner.stats().cache_hits, 0u);
  EXPECT_EQ(planner.stats().cache_misses, 2u);
  EXPECT_EQ(planner.cache_size(), 0u);
}

TEST(WorksiteMetrics, SurfacesPlannerAndReuseCounters) {
  WorksiteConfig config;
  config.forest.bounds = {{0, 0}, {250, 250}};
  config.harvester_output_m3_per_min = 30.0;  // piles appear within seconds
  Worksite site{config, 7};
  site.add_harvester("h", {125, 125});
  site.add_forwarder("f", {40, 40});
  site.add_worker("w", {60, 60}, {70, 70});
  for (int i = 0; i < 3000; ++i) site.step();

  const Worksite::Metrics m = site.metrics();
  EXPECT_EQ(m.delivered_m3, site.delivered_m3());
  EXPECT_EQ(m.completed_cycles, site.completed_cycles());
  EXPECT_EQ(m.min_human_separation, site.min_human_separation());
  EXPECT_EQ(m.separation_samples, site.separation_stats().count());
  EXPECT_EQ(m.planner.plans, site.planner().stats().plans);
  // A running worksite plans routes; the counters must be live.
  EXPECT_GT(m.planner.plans, 0u);
  EXPECT_EQ(m.planner.cache_hits + m.planner.cache_misses, m.planner.plans);
}

}  // namespace
}  // namespace agrarsec::sim
