#include <gtest/gtest.h>

#include "sim/human.h"
#include "sim/machine.h"

namespace agrarsec::sim {
namespace {

Machine forwarder_at(core::Vec2 p) {
  return Machine{MachineId{1}, MachineKind::kForwarder, "f1", p, MachineConfig{}};
}

TEST(Machine, IdleWithoutRoute) {
  Machine m = forwarder_at({0, 0});
  EXPECT_TRUE(m.idle());
  EXPECT_DOUBLE_EQ(m.step(100), 0.0);
  EXPECT_EQ(m.position(), (core::Vec2{0, 0}));
}

TEST(Machine, DrivesTowardWaypoint) {
  Machine m = forwarder_at({0, 0});
  m.set_route({{100, 0}});
  double travelled = 0;
  for (int i = 0; i < 100; ++i) travelled += m.step(100);  // 10 s
  EXPECT_GT(travelled, 20.0);
  EXPECT_GT(m.position().x, 20.0);
  EXPECT_NEAR(m.position().y, 0.0, 1.0);
}

TEST(Machine, ReachesAndPopsWaypoints) {
  Machine m = forwarder_at({0, 0});
  m.set_route({{10, 0}, {10, 10}});
  for (int i = 0; i < 600; ++i) m.step(100);
  EXPECT_TRUE(m.idle());
  EXPECT_NEAR(m.position().x, 10.0, 2.0);
  EXPECT_NEAR(m.position().y, 10.0, 2.0);
}

TEST(Machine, SpeedIsLimited) {
  Machine m = forwarder_at({0, 0});
  m.set_route({{1000, 0}});
  for (int i = 0; i < 200; ++i) {
    m.step(100);
    EXPECT_LE(m.speed(), m.config().max_speed_mps + 1e-9);
  }
}

TEST(Machine, EstopStopsQuickly) {
  Machine m = forwarder_at({0, 0});
  m.set_route({{1000, 0}});
  for (int i = 0; i < 100; ++i) m.step(100);  // reach cruise speed
  ASSERT_GT(m.speed(), 3.0);

  m.emergency_stop(true);
  EXPECT_TRUE(m.stopped());
  double stopping_distance = 0;
  int steps = 0;
  while (m.speed() > 0.01 && steps < 100) {
    stopping_distance += m.step(100);
    ++steps;
  }
  // v^2/(2a) = 16/6 ≈ 2.7 m at 4 m/s.
  EXPECT_LT(stopping_distance, 5.0);
  EXPECT_LT(steps, 20);
}

TEST(Machine, SoftStopTakesLonger) {
  Machine hard = forwarder_at({0, 0});
  Machine soft = forwarder_at({0, 0});
  for (Machine* m : {&hard, &soft}) {
    m->set_route({{1000, 0}});
    for (int i = 0; i < 100; ++i) m->step(100);
  }
  hard.emergency_stop(true);
  soft.emergency_stop(false);
  double hard_dist = 0, soft_dist = 0;
  for (int i = 0; i < 100; ++i) {
    hard_dist += hard.step(100);
    soft_dist += soft.step(100);
  }
  EXPECT_LT(hard_dist, soft_dist);
}

TEST(Machine, ReleaseResumesDriving) {
  Machine m = forwarder_at({0, 0});
  m.set_route({{1000, 0}});
  for (int i = 0; i < 50; ++i) m.step(100);
  m.emergency_stop(true);
  for (int i = 0; i < 50; ++i) m.step(100);
  const double x_stopped = m.position().x;
  m.release_stop();
  for (int i = 0; i < 50; ++i) m.step(100);
  EXPECT_GT(m.position().x, x_stopped + 5.0);
}

TEST(Machine, DegradedModeSlower) {
  Machine normal = forwarder_at({0, 0});
  Machine degraded = forwarder_at({0, 0});
  normal.set_route({{1000, 0}});
  degraded.set_route({{1000, 0}});
  degraded.set_degraded(true);
  for (int i = 0; i < 100; ++i) {
    normal.step(100);
    degraded.step(100);
  }
  EXPECT_GT(normal.position().x, degraded.position().x * 2);
  EXPECT_LE(degraded.speed(), degraded.config().degraded_speed_mps + 1e-9);
}

TEST(Machine, StopOverridesDegraded) {
  Machine m = forwarder_at({0, 0});
  m.emergency_stop(true);
  m.set_degraded(true);
  EXPECT_EQ(m.mode(), DriveMode::kStopped);
}

TEST(Machine, LoadAndUnload) {
  Machine m = forwarder_at({0, 0});
  m.load_logs(5.0);
  m.load_logs(5.0);
  EXPECT_DOUBLE_EQ(m.load_m3(), 10.0);
  EXPECT_FALSE(m.full());
  m.load_logs(100.0);  // clamped at capacity
  EXPECT_DOUBLE_EQ(m.load_m3(), m.config().load_capacity_m3);
  EXPECT_TRUE(m.full());
  EXPECT_DOUBLE_EQ(m.unload_logs(), m.config().load_capacity_m3);
  EXPECT_DOUBLE_EQ(m.load_m3(), 0.0);
}

TEST(Machine, OdometerAccumulates) {
  Machine m = forwarder_at({0, 0});
  m.set_route({{50, 0}});
  for (int i = 0; i < 300; ++i) m.step(100);
  EXPECT_NEAR(m.odometer(), 50.0, 3.0);
}

TEST(Machine, DroneSensorHeightIsAltitude) {
  MachineConfig config;
  config.altitude_m = 42.0;
  Machine drone{MachineId{2}, MachineKind::kDrone, "d1", {0, 0}, config};
  EXPECT_DOUBLE_EQ(drone.sensor_agl(), 42.0);
  Machine fw = forwarder_at({0, 0});
  EXPECT_DOUBLE_EQ(fw.sensor_agl(), fw.config().sensor_height_m);
}

TEST(Human, WalksTowardWaypointsWithinWorkArea) {
  HumanConfig config;
  config.pause_probability = 0.0;
  Human h{HumanId{1}, "w1", {0, 0}, {50, 50}, config};
  core::Rng rng{3};
  for (int i = 0; i < 5000; ++i) h.step(100, rng);
  // Must be inside (or near) the work area around the anchor.
  EXPECT_LT(core::distance(h.position(), {50, 50}),
            config.work_area_radius + 5.0);
  EXPECT_GT(core::distance(h.position(), {0, 0}), 1.0);  // moved at all
}

TEST(Human, WalkSpeedBounded) {
  HumanConfig config;
  config.pause_probability = 0.0;
  Human h{HumanId{1}, "w1", {0, 0}, {30, 0}, config};
  core::Rng rng{4};
  core::Vec2 prev = h.position();
  for (int i = 0; i < 200; ++i) {
    h.step(100, rng);
    EXPECT_LE(core::distance(prev, h.position()),
              config.walk_speed_mps * 0.1 + 1e-9);
    prev = h.position();
  }
}

TEST(Human, PausesHoldPosition) {
  HumanConfig config;
  config.pause_probability = 1.0;  // always pause at waypoints
  config.pause_mean = 10 * core::kSecond;
  Human h{HumanId{1}, "w1", {0, 0}, {5, 0}, config};
  core::Rng rng{5};
  // Walk long enough to hit a waypoint and start pausing.
  bool paused_somewhere = false;
  core::Vec2 prev = h.position();
  for (int i = 0; i < 2000; ++i) {
    h.step(100, rng);
    if (core::distance(prev, h.position()) < 1e-12) paused_somewhere = true;
    prev = h.position();
  }
  EXPECT_TRUE(paused_somewhere);
}


TEST(Machine, NoWaypointOrbiting) {
  // Regression: a waypoint placed beside the machine (inside the full-
  // speed turning radius) must still be captured — the approach slowdown
  // shrinks the turn radius below the waypoint tolerance.
  Machine m = forwarder_at({0, 0});
  m.set_route({{100, 0}});
  for (int i = 0; i < 100; ++i) m.step(100);  // cruise at full speed east
  ASSERT_GT(m.speed(), 3.5);
  // Next waypoint is 4 m to the side and slightly behind.
  const core::Vec2 side{m.position().x - 2.0, m.position().y + 4.0};
  m.set_route({side});
  int steps = 0;
  while (!m.idle() && steps < 600) {
    m.step(100);
    ++steps;
  }
  EXPECT_TRUE(m.idle()) << "machine orbited the waypoint for 60 s";
  EXPECT_LT(steps, 400);
}

TEST(Machine, ApproachSlowdownOnlyNearWaypoint) {
  // Far from the waypoint the machine still cruises at full speed.
  Machine m = forwarder_at({0, 0});
  m.set_route({{500, 0}});
  for (int i = 0; i < 150; ++i) m.step(100);
  EXPECT_GT(m.speed(), 3.5);
}

}  // namespace
}  // namespace agrarsec::sim
