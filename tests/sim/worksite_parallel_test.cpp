// Determinism contract of the sharded step (DESIGN.md §9): threads=N must
// be bit-identical to threads=1 — same metrics, same event sequence, same
// poses, same RNG outcomes — plus the per-entity stream and per-clearance
// planner invariants that make the parallel phases sound.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "sim/worksite.h"

namespace agrarsec::sim {
namespace {

WorksiteConfig fig1_site() {
  WorksiteConfig config;
  config.forest.bounds = {{0, 0}, {400, 400}};
  config.forest.trees_per_hectare = 200;
  config.landing_area = {40, 40};
  config.harvester_output_m3_per_min = 30.0;  // keep the fleet busy
  config.load_time = 10 * core::kSecond;
  config.unload_time = 8 * core::kSecond;
  // Windthrow on so the parity run also covers hazard spawning, planner
  // invalidation, and the hazard RNG stream.
  config.windthrow_rate_per_hour = 20.0;
  config.windthrow_duration = 30 * core::kSecond;
  return config;
}

struct RecordedEvent {
  std::string topic;
  std::string payload;
  std::uint64_t origin;
  core::SimTime time;
  bool operator==(const RecordedEvent&) const = default;
};

struct Snapshot {
  std::vector<RecordedEvent> events;
  std::vector<std::tuple<double, double, double, double, double>> machine_poses;
  std::vector<std::pair<double, double>> human_poses;
  Worksite::Metrics metrics;
  double sep_mean = 0.0;
  double sep_stddev = 0.0;
  std::uint64_t close_10m = 0;
  /// Deterministic telemetry export (registry counters + flight events):
  /// covered by the same bit-identical contract as everything above.
  std::string telemetry_json;
};

/// Builds the Figure-1-style mixed fleet, steps `steps` times at the given
/// shard count, and snapshots everything the parity contract covers.
Snapshot run_site(std::size_t threads, int steps, bool drone_follow = false,
                  Scheduling scheduling = Scheduling::kAdaptive) {
  WorksiteConfig config = fig1_site();
  config.threads = threads;
  config.drone_follow_post_integrate = drone_follow;
  config.scheduling = scheduling;
  Worksite site{config, 1234};

  Snapshot snap;
  site.bus().subscribe_all([&snap](const core::Event& e) {
    snap.events.push_back({e.topic, e.payload, e.origin, e.time});
  });

  site.add_harvester("h1", {250, 250});
  std::vector<MachineId> forwarders;
  for (int i = 0; i < 4; ++i) {
    forwarders.push_back(site.add_forwarder(
        "f" + std::to_string(i), {60.0 + 20.0 * i, 60.0}));
  }
  const MachineId drone = site.add_drone("d1", {50, 50});
  site.set_drone_orbit(drone, forwarders[0], 25.0);
  for (int i = 0; i < 8; ++i) {
    const core::Vec2 anchor{100.0 + 30.0 * (i % 4), 120.0 + 60.0 * (i / 4)};
    site.add_worker("w" + std::to_string(i), anchor, anchor);
  }

  for (int i = 0; i < steps; ++i) site.step();

  for (const Machine* m : site.machines()) {
    snap.machine_poses.emplace_back(m->position().x, m->position().y, m->heading(),
                                    m->speed(), m->load_m3());
  }
  for (const Human* h : site.humans()) {
    snap.human_poses.emplace_back(h->position().x, h->position().y);
  }
  snap.metrics = site.metrics();
  snap.sep_mean = site.separation_stats().mean();
  snap.sep_stddev = site.separation_stats().stddev();
  snap.close_10m = site.close_encounters(10.0);
  snap.telemetry_json = site.telemetry().deterministic_json();
  return snap;
}

void expect_identical(const Snapshot& a, const Snapshot& b, std::size_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  // Event sequence: exact, in order (publishes happen only in the serial
  // phases, in ascending machine-slot order).
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
  }
  // Poses: bit-identical doubles (same operations in the same order on
  // every entity, whatever thread stepped it).
  EXPECT_EQ(a.machine_poses, b.machine_poses);
  EXPECT_EQ(a.human_poses, b.human_poses);
  // Metrics, including the float accumulators whose summation order the
  // drain pins down.
  EXPECT_EQ(a.metrics.delivered_m3, b.metrics.delivered_m3);
  EXPECT_EQ(a.metrics.completed_cycles, b.metrics.completed_cycles);
  EXPECT_EQ(a.metrics.min_human_separation, b.metrics.min_human_separation);
  EXPECT_EQ(a.metrics.separation_samples, b.metrics.separation_samples);
  EXPECT_EQ(a.metrics.route_reuses, b.metrics.route_reuses);
  EXPECT_EQ(a.metrics.windthrow_events, b.metrics.windthrow_events);
  EXPECT_EQ(a.metrics.planner.plans, b.metrics.planner.plans);
  EXPECT_EQ(a.metrics.planner.cache_hits, b.metrics.planner.cache_hits);
  EXPECT_EQ(a.metrics.planner.cache_misses, b.metrics.planner.cache_misses);
  EXPECT_EQ(a.metrics.planner.invalidations, b.metrics.planner.invalidations);
  EXPECT_EQ(a.sep_mean, b.sep_mean);
  EXPECT_EQ(a.sep_stddev, b.sep_stddev);
  EXPECT_EQ(a.close_10m, b.close_10m);
  // Telemetry with per-shard counter lanes merges to the same bytes.
  EXPECT_EQ(a.telemetry_json, b.telemetry_json);
}

TEST(WorksiteParallel, ThreadCountIsUnobservable) {
  constexpr int kSteps = 600;  // one sim-minute, enough for full cycles
  const Snapshot serial = run_site(1, kSteps);
  ASSERT_FALSE(serial.events.empty());
  ASSERT_GT(serial.metrics.separation_samples, 0u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    expect_identical(serial, run_site(threads, kSteps), threads);
  }
}

// Work stealing from step one: the chunked self-scheduled assignment must
// honour the same bit-identical contract as the static split.
TEST(WorksiteParallel, WorkStealingThreadCountIsUnobservable) {
  constexpr int kSteps = 600;
  const Snapshot serial =
      run_site(1, kSteps, /*drone_follow=*/false, Scheduling::kWorkStealing);
  ASSERT_FALSE(serial.events.empty());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    expect_identical(
        serial,
        run_site(threads, kSteps, /*drone_follow=*/false, Scheduling::kWorkStealing),
        threads);
  }
}

// The scheduling policy itself (and wherever the adaptive mode's timing-
// driven switch lands, if it fires) must be unobservable: at a fixed
// thread count, all three modes produce the same bytes.
TEST(WorksiteParallel, SchedulingModeIsUnobservable) {
  constexpr int kSteps = 400;
  const Snapshot statics =
      run_site(8, kSteps, /*drone_follow=*/false, Scheduling::kStatic);
  ASSERT_FALSE(statics.events.empty());
  expect_identical(
      statics, run_site(8, kSteps, /*drone_follow=*/false, Scheduling::kWorkStealing),
      8);
  expect_identical(
      statics, run_site(8, kSteps, /*drone_follow=*/false, Scheduling::kAdaptive),
      8);
}

TEST(WorksiteParallel, ZeroThreadsMeansHardwareConcurrency) {
  // threads=0 must resolve and still honour the parity contract.
  const Snapshot serial = run_site(1, 200);
  expect_identical(serial, run_site(0, 200), 0);
}

// The post-integrate follower phase is serial, but the drones it defers
// are skipped by two parallel phases (decide, integrate) — the parity
// contract must hold with the flag on too.
TEST(WorksiteParallel, DroneFollowPostIntegrateThreadCountIsUnobservable) {
  constexpr int kSteps = 300;
  const Snapshot serial = run_site(1, kSteps, /*drone_follow=*/true);
  ASSERT_FALSE(serial.events.empty());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    expect_identical(serial, run_site(threads, kSteps, /*drone_follow=*/true),
                     threads);
  }
}

// The flag only re-times the drone's orbit update: everything else on the
// site — events, outcome metrics, every non-drone pose — is untouched,
// while the drone trajectory itself changes (it now tracks the post-step
// anchor pose).
TEST(WorksiteParallel, DroneFollowFlagOnlyAffectsDroneTrajectory) {
  constexpr int kSteps = 300;
  const Snapshot off = run_site(1, kSteps, /*drone_follow=*/false);
  const Snapshot on = run_site(1, kSteps, /*drone_follow=*/true);
  ASSERT_EQ(off.events.size(), on.events.size());
  EXPECT_EQ(off.human_poses, on.human_poses);
  EXPECT_EQ(off.metrics.delivered_m3, on.metrics.delivered_m3);
  EXPECT_EQ(off.metrics.completed_cycles, on.metrics.completed_cycles);
  // Slot 5 is the drone (harvester + 4 forwarders precede it).
  ASSERT_EQ(off.machine_poses.size(), 6u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(off.machine_poses[i], on.machine_poses[i]) << "machine " << i;
  }
  EXPECT_NE(off.machine_poses[5], on.machine_poses[5]);
}

// The follower phase shards across the pool when several drones are
// anchored on non-drones: a multi-drone site must stay bit-identical
// across thread counts with the flag on (regression for the serial ->
// sharded follow_drones change).
TEST(WorksiteParallel, MultiDroneFollowPostIntegrateParity) {
  constexpr int kSteps = 300;
  auto run_multi_drone = [](std::size_t threads) {
    WorksiteConfig config = fig1_site();
    config.threads = threads;
    config.drone_follow_post_integrate = true;
    Worksite site{config, 99};
    Snapshot snap;
    site.bus().subscribe_all([&snap](const core::Event& e) {
      snap.events.push_back({e.topic, e.payload, e.origin, e.time});
    });
    site.add_harvester("h1", {250, 250});
    std::vector<MachineId> forwarders;
    for (int i = 0; i < 6; ++i) {
      forwarders.push_back(
          site.add_forwarder("f" + std::to_string(i), {60.0 + 18.0 * i, 60.0}));
    }
    for (int i = 0; i < 6; ++i) {
      const MachineId drone =
          site.add_drone("d" + std::to_string(i), {50.0 + 25.0 * i, 40.0});
      site.set_drone_orbit(drone, forwarders[i], 20.0 + 2.0 * i);
    }
    for (int i = 0; i < 4; ++i) {
      const core::Vec2 anchor{120.0 + 40.0 * i, 150.0};
      site.add_worker("w" + std::to_string(i), anchor, anchor);
    }
    for (int i = 0; i < kSteps; ++i) site.step();
    for (const Machine* m : site.machines()) {
      snap.machine_poses.emplace_back(m->position().x, m->position().y,
                                      m->heading(), m->speed(), m->load_m3());
    }
    snap.metrics = site.metrics();
    snap.telemetry_json = site.telemetry().deterministic_json();
    return snap;
  };
  const Snapshot serial = run_multi_drone(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Snapshot sharded = run_multi_drone(threads);
    ASSERT_EQ(serial.events.size(), sharded.events.size());
    for (std::size_t i = 0; i < serial.events.size(); ++i) {
      EXPECT_EQ(serial.events[i], sharded.events[i]) << "event " << i;
    }
    EXPECT_EQ(serial.machine_poses, sharded.machine_poses);
    EXPECT_EQ(serial.telemetry_json, sharded.telemetry_json);
  }
}

// A drone anchored on another drone forces the serial follower fallback
// (the chained read depends on slot order); the site must still step and
// stay deterministic across thread counts.
TEST(WorksiteParallel, DroneOnDroneAnchorFallsBackSerially) {
  auto run_chained = [](std::size_t threads) {
    WorksiteConfig config = fig1_site();
    config.threads = threads;
    config.drone_follow_post_integrate = true;
    config.windthrow_rate_per_hour = 0.0;
    Worksite site{config, 17};
    const MachineId f = site.add_forwarder("f1", {60, 60});
    const MachineId d1 = site.add_drone("d1", {50, 40});
    const MachineId d2 = site.add_drone("d2", {70, 40});
    site.set_drone_orbit(d1, f, 25.0);
    site.set_drone_orbit(d2, d1, 15.0);  // drone-on-drone chain
    site.route_machine(f, {300, 300});
    for (int i = 0; i < 200; ++i) site.step();
    std::vector<std::pair<double, double>> poses;
    for (const Machine* m : site.machines()) {
      poses.emplace_back(m->position().x, m->position().y);
    }
    return poses;
  };
  const auto serial = run_chained(1);
  EXPECT_EQ(serial, run_chained(2));
  EXPECT_EQ(serial, run_chained(8));
}

// humans_within_slots is the allocation-free twin of humans_within: same
// set, same ascending-id order, slots resolving to the same people via
// the SoA mirror.
TEST(WorksiteParallel, HumansWithinSlotsMatchesHumansWithin) {
  WorksiteConfig config = fig1_site();
  Worksite site{config, 31};
  site.add_forwarder("f1", {60, 60});
  for (int i = 0; i < 12; ++i) {
    const core::Vec2 anchor{80.0 + 22.0 * (i % 6), 90.0 + 35.0 * (i / 6)};
    site.add_worker("w" + std::to_string(i), anchor, anchor);
  }
  for (int i = 0; i < 150; ++i) site.step();

  const HumanHotState& people = site.human_hot();
  std::vector<std::uint32_t> slots;
  for (const double radius : {0.0, 15.0, 60.0, 400.0}) {
    for (const core::Vec2 center :
         {core::Vec2{100, 100}, core::Vec2{60, 60}, core::Vec2{350, 350}}) {
      const auto ptrs = site.humans_within(center, radius);
      site.humans_within_slots(center, radius, slots);
      ASSERT_EQ(ptrs.size(), slots.size())
          << "radius " << radius << " center (" << center.x << "," << center.y << ")";
      for (std::size_t i = 0; i < ptrs.size(); ++i) {
        EXPECT_EQ(ptrs[i]->id().value(), people.id[slots[i]]);
        EXPECT_EQ(ptrs[i]->position().x, people.x[slots[i]]);
        EXPECT_EQ(ptrs[i]->position().y, people.y[slots[i]]);
        EXPECT_EQ(ptrs[i]->height(), people.height[slots[i]]);
      }
    }
  }
}

// The SoA mirrors must match the entities bit-for-bit between steps —
// from spawn (before any step) and after every refresh.
TEST(WorksiteParallel, HotStateMirrorsEntitiesBetweenSteps) {
  WorksiteConfig config = fig1_site();
  Worksite site{config, 63};
  site.add_harvester("h1", {250, 250});
  const MachineId f = site.add_forwarder("f1", {60, 60});
  const MachineId d = site.add_drone("d1", {50, 50});
  site.set_drone_orbit(d, f, 25.0);
  site.add_worker("w1", {150, 150}, {150, 150});
  site.add_worker("w2", {180, 160}, {180, 160});

  auto expect_mirrors_match = [&site] {
    const MachineHotState& hot = site.machine_hot();
    const auto machines = site.machines();
    ASSERT_EQ(hot.size(), machines.size());
    for (std::size_t slot = 0; slot < machines.size(); ++slot) {
      const Machine& m = *machines[slot];
      EXPECT_EQ(hot.x[slot], m.position().x);
      EXPECT_EQ(hot.y[slot], m.position().y);
      EXPECT_EQ(hot.heading[slot], m.heading());
      EXPECT_EQ(hot.speed[slot], m.speed());
      EXPECT_EQ(hot.id[slot], m.id().value());
      EXPECT_EQ(hot.kind[slot], m.kind());
    }
    const HumanHotState& people = site.human_hot();
    const auto humans = site.humans();
    ASSERT_EQ(people.size(), humans.size());
    for (std::size_t slot = 0; slot < humans.size(); ++slot) {
      const Human& h = *humans[slot];
      EXPECT_EQ(people.x[slot], h.position().x);
      EXPECT_EQ(people.y[slot], h.position().y);
      EXPECT_EQ(people.height[slot], h.height());
      EXPECT_EQ(people.id[slot], h.id().value());
    }
  };

  expect_mirrors_match();  // valid from spawn
  for (int i = 0; i < 120; ++i) site.step();
  expect_mirrors_match();
  // Spawning mid-run extends the mirrors immediately.
  site.add_worker("w3", {200, 200}, {200, 200});
  site.add_forwarder("f2", {90, 60});
  expect_mirrors_match();
  for (int i = 0; i < 60; ++i) site.step();
  expect_mirrors_match();
}

/// Drives a forwarder with an orbiting drone far enough away that the
/// drone never reaches its waypoint (so current_waypoint() stays exactly
/// the orbit target decide_drone set this step), and returns, per step,
/// the anchor's pre-step pose, post-step pose and the drone's waypoint.
struct FollowTrace {
  std::vector<core::Vec2> anchor_pre;
  std::vector<core::Vec2> anchor_post;
  std::vector<core::Vec2> drone_waypoint;
  core::SimDuration step_ms = 0;
};

FollowTrace run_follow_trace(bool post_integrate, int steps) {
  WorksiteConfig config = fig1_site();
  config.windthrow_rate_per_hour = 0.0;
  config.drone_follow_post_integrate = post_integrate;
  Worksite site{config, 42};
  const MachineId f = site.add_forwarder("f1", {60, 60});
  const MachineId d = site.add_drone("d1", {350, 350});  // far: never arrives
  site.set_drone_orbit(d, f, 25.0);
  site.route_machine(f, {300, 300});  // keep the anchor moving

  FollowTrace trace;
  trace.step_ms = config.step;
  for (int i = 0; i < steps; ++i) {
    trace.anchor_pre.push_back(site.machine(f)->position());
    site.step();
    trace.anchor_post.push_back(site.machine(f)->position());
    const auto wp = site.machine(d)->current_waypoint();
    trace.drone_waypoint.push_back(wp.value_or(core::Vec2{-1, -1}));
  }
  return trace;
}

// Default path: the orbit target is computed in the decide phase from the
// anchor's START-of-step pose — the documented one-step lag. This pins the
// default behavior bit-exactly (the flag must not change it).
TEST(WorksiteDroneFollow, DefaultDecidePhaseReadsPreStepPose) {
  const FollowTrace trace = run_follow_trace(false, 25);
  // The anchor must actually move, or pre == post and the test says nothing.
  ASSERT_NE(trace.anchor_pre.back().x, trace.anchor_post.back().x);
  double phase = 0.0;
  for (std::size_t i = 0; i < trace.drone_waypoint.size(); ++i) {
    phase += 0.35 * static_cast<double>(trace.step_ms) / core::kSecond;
    const core::Vec2 expected =
        trace.anchor_pre[i] +
        core::Vec2{std::cos(phase), std::sin(phase)} * 25.0;
    EXPECT_EQ(trace.drone_waypoint[i].x, expected.x) << "step " << i;
    EXPECT_EQ(trace.drone_waypoint[i].y, expected.y) << "step " << i;
  }
}

// Flag on: the follower phase runs after the integrate barrier, so the
// same computation now sees the anchor's CURRENT pose — the lag is gone.
TEST(WorksiteDroneFollow, PostIntegrateFollowerReadsPostStepPose) {
  const FollowTrace trace = run_follow_trace(true, 25);
  ASSERT_NE(trace.anchor_pre.back().x, trace.anchor_post.back().x);
  double phase = 0.0;
  for (std::size_t i = 0; i < trace.drone_waypoint.size(); ++i) {
    phase += 0.35 * static_cast<double>(trace.step_ms) / core::kSecond;
    const core::Vec2 expected =
        trace.anchor_post[i] +
        core::Vec2{std::cos(phase), std::sin(phase)} * 25.0;
    EXPECT_EQ(trace.drone_waypoint[i].x, expected.x) << "step " << i;
    EXPECT_EQ(trace.drone_waypoint[i].y, expected.y) << "step " << i;
  }
}

// Per-entity streams: an entity's RNG-driven behaviour depends only on the
// worksite seed and its own id, never on who else draws. Adding a second
// worker must leave the first worker's walk untouched (with the old shared
// stream it interleaved draws and diverged immediately).
TEST(WorksiteParallel, WorkerStreamIndependentOfPopulation) {
  WorksiteConfig config = fig1_site();
  config.windthrow_rate_per_hour = 0.0;

  Worksite alone{config, 77};
  const HumanId w_alone = alone.add_worker("w1", {150, 150}, {150, 150});

  Worksite crowded{config, 77};
  const HumanId w_crowded = crowded.add_worker("w1", {150, 150}, {150, 150});
  crowded.add_worker("w2", {180, 180}, {180, 180});
  crowded.add_worker("w3", {120, 190}, {120, 190});

  for (int i = 0; i < 500; ++i) {
    alone.step();
    crowded.step();
    const core::Vec2 pa = alone.human(w_alone)->position();
    const core::Vec2 pc = crowded.human(w_crowded)->position();
    ASSERT_EQ(pa.x, pc.x) << "step " << i;
    ASSERT_EQ(pa.y, pc.y) << "step " << i;
  }
}

// Same invariant for machines: the harvester's pile placement draws come
// from its own stream, so an unrelated extra machine does not perturb it.
TEST(WorksiteParallel, HarvesterStreamIndependentOfPopulation) {
  WorksiteConfig config = fig1_site();
  config.windthrow_rate_per_hour = 0.0;

  Worksite alone{config, 9};
  alone.add_harvester("h1", {250, 250});
  Worksite crowded{config, 9};
  crowded.add_harvester("h1", {250, 250});
  crowded.add_drone("d1", {50, 50});  // different kind, later id

  for (int i = 0; i < 400; ++i) {
    alone.step();
    crowded.step();
  }
  ASSERT_EQ(alone.piles().size(), crowded.piles().size());
  for (std::size_t i = 0; i < alone.piles().size(); ++i) {
    EXPECT_EQ(alone.piles()[i].position.x, crowded.piles()[i].position.x);
    EXPECT_EQ(alone.piles()[i].position.y, crowded.piles()[i].position.y);
  }
}

// S2: weather-driven windthrow must actually reach the planners — events
// on the bus, hazards counted, cached routes invalidated, debris cleared
// after the configured duration.
TEST(WorksiteParallel, WindthrowBlocksPlannersAndClears) {
  WorksiteConfig config = fig1_site();
  config.weather = Weather::kSnow;           // highest hazard factor
  config.windthrow_rate_per_hour = 2000.0;   // deterministic-ish: fires fast
  config.windthrow_duration = 5 * core::kSecond;
  Worksite site{config, 5};

  int spawned = 0;
  int cleared = 0;
  site.bus().subscribe("worksite/windthrow",
                       [&spawned](const core::Event&) { ++spawned; });
  site.bus().subscribe("worksite/windthrow-cleared",
                       [&cleared](const core::Event&) { ++cleared; });

  site.add_harvester("h1", {200, 200});
  site.add_forwarder("f1", {60, 60});
  (void)site.plan_route({60, 60}, {350, 350});  // warm a cache entry
  for (int i = 0; i < 1200; ++i) site.step();  // 2 sim-minutes

  EXPECT_GT(spawned, 0);
  EXPECT_GT(cleared, 0);
  EXPECT_EQ(site.metrics().windthrow_events, static_cast<std::uint64_t>(spawned));
  // Generation-invalidation: the warmed entry was planned before the first
  // windthrow bumped the blocked-grid generation, so re-querying the same
  // pair must evict it instead of serving a stale route.
  (void)site.plan_route({60, 60}, {350, 350});
  EXPECT_GT(site.metrics().planner.invalidations, 0u);
}

TEST(WorksiteParallel, WindthrowFactorOrdering) {
  EXPECT_LT(windthrow_weather_factor(Weather::kClear),
            windthrow_weather_factor(Weather::kFog));
  EXPECT_LT(windthrow_weather_factor(Weather::kFog),
            windthrow_weather_factor(Weather::kRain));
  EXPECT_LT(windthrow_weather_factor(Weather::kRain),
            windthrow_weather_factor(Weather::kSnow));
}

// S3: the exact sample set and the streaming histogram must agree on
// close_encounters at histogram bin edges (where no rounding happens).
TEST(WorksiteParallel, ExactSamplesAgreeWithHistogramAtBinEdges) {
  WorksiteConfig base = fig1_site();
  base.windthrow_rate_per_hour = 0.0;

  auto populate_and_run = [](Worksite& site) {
    site.add_harvester("h1", {250, 250});
    site.add_forwarder("f1", {60, 60});
    site.add_forwarder("f2", {90, 60});
    for (int i = 0; i < 6; ++i) {
      const core::Vec2 anchor{100.0 + 25.0 * i, 130.0};
      site.add_worker("w" + std::to_string(i), anchor, anchor);
    }
    for (int i = 0; i < 3000; ++i) site.step();
  };

  WorksiteConfig exact_cfg = base;
  exact_cfg.exact_separation_samples = true;
  Worksite exact{exact_cfg, 21};
  Worksite histo{base, 21};
  populate_and_run(exact);
  populate_and_run(histo);

  ASSERT_NE(exact.separation_samples(), nullptr);
  EXPECT_EQ(histo.separation_samples(), nullptr);
  ASSERT_GT(exact.separation_samples()->size(), 0u);
  EXPECT_EQ(exact.separation_samples()->size(),
            exact.separation_stats().count());

  // Identical simulations (the flag only adds retention), so the two
  // sites saw the same samples; compare both paths at every bin edge.
  ASSERT_EQ(exact.separation_stats().count(), histo.separation_stats().count());
  for (double edge = 0.0; edge <= base.separation_tracking_m + 0.5;
       edge += 25 * base.separation_bin_m) {
    EXPECT_EQ(exact.close_encounters(edge), histo.close_encounters(edge))
        << "threshold " << edge;
  }
  // Off-edge thresholds: the histogram rounds up to the next edge, so it
  // may only over-count, never under-count.
  EXPECT_GE(histo.close_encounters(10.05), exact.close_encounters(10.05));
}

// S1 regression: machines with different clearances must not share a route
// cache. A drone-width route served to a forwarder would thread gaps the
// forwarder cannot take.
TEST(WorksiteParallel, PerClearancePlannerInstances) {
  Worksite site{fig1_site(), 3};
  const MachineId f = site.add_forwarder("f1", {60, 60});
  const MachineId d = site.add_drone("d1", {60, 60});

  const double fc = Worksite::machine_clearance(*site.machine(f));
  const double dc = Worksite::machine_clearance(*site.machine(d));
  EXPECT_NEAR(fc, 2.0, 1e-9);  // 1.8 m body + margin = default planner
  EXPECT_NEAR(dc, 0.6, 1e-9);  // 0.4 m body + margin
  ASSERT_NE(&site.planner_for(fc), &site.planner_for(dc));
  EXPECT_EQ(&site.planner_for(fc), &site.planner());  // default instance reused
  EXPECT_NEAR(site.planner_for(dc).config().clearance_m, 0.6, 1e-9);

  // Routing the drone must not touch the forwarder planner's cache.
  const std::size_t before = site.planner().cache_size();
  site.route_machine(d, {300, 300});
  EXPECT_EQ(site.planner().cache_size(), before);

  // Both planners honour block_region (fleet-wide no-go).
  const std::uint64_t gen_f = site.planner_for(fc).generation();
  const std::uint64_t gen_d = site.planner_for(dc).generation();
  site.block_region({200, 200}, 15.0, true);
  EXPECT_GT(site.planner_for(fc).generation(), gen_f);
  EXPECT_GT(site.planner_for(dc).generation(), gen_d);
}

}  // namespace
}  // namespace agrarsec::sim
