// Parity tests: the uniform grid must return *bit-identical* results to a
// brute-force scan for every query, across inserts, moves and removals —
// including points outside the grid bounds (clamped into border cells).
#include "sim/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/rng.h"

namespace agrarsec::sim {
namespace {

constexpr core::Aabb kBounds{{0, 0}, {200, 200}};

/// Brute-force reference model.
struct Reference {
  std::unordered_map<std::uint64_t, core::Vec2> points;

  std::vector<std::uint64_t> query_radius(core::Vec2 center, double radius) const {
    std::vector<std::uint64_t> out;
    for (const auto& [id, pos] : points) {
      if (core::distance(pos, center) <= radius) out.push_back(id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::optional<std::uint64_t> nearest(core::Vec2 from) const {
    std::optional<std::uint64_t> best;
    double best_dist = 0.0;
    // Ascending id, matching the index's smaller-id tie-break.
    std::vector<std::uint64_t> ids;
    for (const auto& [id, pos] : points) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
      const double d = core::distance(points.at(id), from);
      if (!best || d < best_dist) {
        best = id;
        best_dist = d;
      }
    }
    return best;
  }
};

TEST(SpatialIndex, EmptyIndexQueries) {
  SpatialIndex index{kBounds, 10.0};
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.query_radius({50, 50}, 100.0).empty());
  EXPECT_FALSE(index.nearest({50, 50}).has_value());
  EXPECT_FALSE(index.position(1).has_value());
  index.remove(1);  // no-op, must not crash
}

TEST(SpatialIndex, InsertUpdateRemoveBookkeeping) {
  SpatialIndex index{kBounds, 10.0};
  index.insert(1, {10, 10});
  index.insert(2, {190, 190});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.contains(1));
  EXPECT_EQ(index.position(1), (core::Vec2{10, 10}));

  index.update(1, {100, 100});  // cross-cell move
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.position(1), (core::Vec2{100, 100}));

  index.update(1, {100.5, 100.5});  // same-cell move
  EXPECT_EQ(index.position(1), (core::Vec2{100.5, 100.5}));

  index.remove(1);
  EXPECT_FALSE(index.contains(1));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.nearest({0, 0}), std::optional<std::uint64_t>{2});
}

TEST(SpatialIndex, BoundaryInclusiveAndOutOfBoundsPoints) {
  SpatialIndex index{kBounds, 10.0};
  index.insert(1, {100, 100});
  index.insert(2, {100, 110});   // exactly on the query radius
  index.insert(3, {-50, -50});   // outside the grid bounds: clamped cell
  index.insert(4, {250, 250});   // outside on the other side

  EXPECT_EQ(index.query_radius({100, 100}, 10.0),
            (std::vector<std::uint64_t>{1, 2}));
  // Out-of-bounds points are still found, by exact distance.
  EXPECT_EQ(index.query_radius({-50, -50}, 1.0), (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(index.nearest({300, 300}), std::optional<std::uint64_t>{4});
}

TEST(SpatialIndex, NearestTieBreaksTowardsSmallerId) {
  SpatialIndex index{kBounds, 10.0};
  // Equidistant from the probe, in different cells.
  index.insert(7, {110, 100});
  index.insert(3, {90, 100});
  EXPECT_EQ(index.nearest({100, 100}), std::optional<std::uint64_t>{3});
}

TEST(SpatialIndex, RandomizedParityWithBruteForce) {
  core::Rng rng{2024};
  SpatialIndex index{kBounds, 15.0};
  Reference ref;

  const auto random_point = [&] {
    // Mostly inside, sometimes outside the bounds.
    return core::Vec2{rng.uniform(-40.0, 240.0), rng.uniform(-40.0, 240.0)};
  };

  std::uint64_t next_id = 1;
  for (int round = 0; round < 400; ++round) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.5 || ref.points.empty()) {
      const std::uint64_t id = next_id++;
      const core::Vec2 p = random_point();
      index.insert(id, p);
      ref.points[id] = p;
    } else if (roll < 0.8) {
      // Move a random existing point (walk or teleport).
      const auto it = std::next(ref.points.begin(),
                                static_cast<std::ptrdiff_t>(rng.next_below(
                                    ref.points.size())));
      const core::Vec2 p = random_point();
      index.update(it->first, p);
      it->second = p;
    } else {
      const auto it = std::next(ref.points.begin(),
                                static_cast<std::ptrdiff_t>(rng.next_below(
                                    ref.points.size())));
      index.remove(it->first);
      ref.points.erase(it);
    }

    ASSERT_EQ(index.size(), ref.points.size());
    // Several probes per round, radii from sub-cell to whole-world.
    for (int probe = 0; probe < 3; ++probe) {
      const core::Vec2 center = random_point();
      const double radius = rng.uniform(0.0, 120.0);
      ASSERT_EQ(index.query_radius(center, radius),
                ref.query_radius(center, radius))
          << "round " << round << " radius " << radius;
      ASSERT_EQ(index.nearest(center), ref.nearest(center)) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace agrarsec::sim
