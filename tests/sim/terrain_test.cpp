// Terrain generation, spatial index and line-of-sight (the Fig. 2 core).
#include <gtest/gtest.h>

#include "sim/terrain.h"

namespace agrarsec::sim {
namespace {

Terrain flat_with(std::vector<Obstacle> obstacles) {
  return Terrain{core::Aabb{{0, 0}, {200, 200}}, std::move(obstacles), {}};
}

Obstacle boulder(core::Vec2 at, double radius, double height) {
  Obstacle o;
  o.kind = ObstacleKind::kBoulder;
  o.footprint = {at, radius};
  o.height_m = height;
  return o;
}

TEST(Terrain, GenerateRespectsDensity) {
  ForestConfig config;
  config.bounds = {{0, 0}, {500, 500}};  // 25 ha
  config.trees_per_hectare = 400;
  core::Rng rng{42};
  const Terrain t = Terrain::generate(config, rng);
  // trees + boulders + brush ~ (400+8+40)*25 = 11200, Poisson-ish.
  EXPECT_GT(t.obstacle_count(), 9000u);
  EXPECT_LT(t.obstacle_count(), 14000u);
}

TEST(Terrain, GenerateDeterministicPerSeed) {
  ForestConfig config;
  core::Rng r1{7}, r2{7};
  const Terrain t1 = Terrain::generate(config, r1);
  const Terrain t2 = Terrain::generate(config, r2);
  EXPECT_EQ(t1.obstacle_count(), t2.obstacle_count());
}

TEST(Terrain, FlatGroundIsZero) {
  const Terrain t = flat_with({});
  EXPECT_DOUBLE_EQ(t.ground_height({50, 50}), 0.0);
}

TEST(Terrain, HillRaisesGround) {
  Terrain t{core::Aabb{{0, 0}, {200, 200}}, {}, {Hill{{100, 100}, 8.0, 30.0}}};
  EXPECT_NEAR(t.ground_height({100, 100}), 8.0, 1e-9);
  EXPECT_GT(t.ground_height({120, 100}), 0.5);
  EXPECT_LT(t.ground_height({199, 199}), 0.1);
}

TEST(Terrain, ClearLineOfSightOnFlatGround) {
  const Terrain t = flat_with({});
  EXPECT_TRUE(t.line_of_sight({0, 0}, 2.0, {100, 0}, 1.7));
}

TEST(Terrain, BoulderBlocksGroundLevelView) {
  const Terrain t = flat_with({boulder({50, 0}, 2.0, 3.0)});
  // Sensor at 2.6 m, person torso at ~1.2 m: ray passes below 3 m boulder.
  EXPECT_FALSE(t.line_of_sight({0, 0}, 2.6, {100, 0}, 1.2));
}

TEST(Terrain, ElevatedViewpointClearsBoulder) {
  const Terrain t = flat_with({boulder({50, 0}, 2.0, 3.0)});
  // Drone at 40 m sees over the 3 m boulder.
  EXPECT_TRUE(t.line_of_sight({0, 0}, 40.0, {100, 0}, 1.2));
}

TEST(Terrain, ObstacleBesideRayDoesNotBlock) {
  const Terrain t = flat_with({boulder({50, 10}, 2.0, 3.0)});
  EXPECT_TRUE(t.line_of_sight({0, 0}, 2.6, {100, 0}, 1.2));
}

TEST(Terrain, TallObstacleBlocksEvenSteepRays) {
  // A 16 m "tree wall" halfway: even a 12 m viewpoint is blocked toward a
  // ground target when the crossing height is below the tree top.
  const Terrain t = flat_with({boulder({50, 0}, 1.0, 16.0)});
  EXPECT_FALSE(t.line_of_sight({0, 0}, 12.0, {100, 0}, 1.2));
  // From 100 m up it clears.
  EXPECT_TRUE(t.line_of_sight({0, 0}, 100.0, {100, 0}, 1.2));
}

TEST(Terrain, ObstacleNearEndpointIgnored) {
  // An obstacle hugging the observer must not self-occlude.
  const Terrain t = flat_with({boulder({0.3, 0}, 0.5, 5.0)});
  EXPECT_TRUE(t.line_of_sight({0, 0}, 2.6, {100, 0}, 1.2));
}

TEST(Terrain, HillBlocksViewAcrossCrest) {
  Terrain t{core::Aabb{{0, 0}, {200, 200}}, {}, {Hill{{100, 0}, 10.0, 20.0}}};
  // Both endpoints low, 10 m crest between them.
  EXPECT_FALSE(t.line_of_sight({20, 0}, 2.0, {180, 0}, 1.7));
  // High drone clears the crest.
  EXPECT_TRUE(t.line_of_sight({20, 0}, 50.0, {180, 0}, 1.7));
}

TEST(Terrain, LineOfSightSymmetricOnFlat) {
  const Terrain t = flat_with({boulder({50, 0}, 2.0, 3.0)});
  EXPECT_EQ(t.line_of_sight({0, 0}, 2.0, {100, 0}, 2.0),
            t.line_of_sight({100, 0}, 2.0, {0, 0}, 2.0));
}

TEST(Terrain, BlockedDetectsOverlap) {
  const Terrain t = flat_with({boulder({50, 50}, 2.0, 3.0)});
  EXPECT_TRUE(t.blocked({51, 50}, 1.0));
  EXPECT_FALSE(t.blocked({60, 50}, 1.0));
  // Radius matters.
  EXPECT_TRUE(t.blocked({55, 50}, 4.0));
}

TEST(Terrain, ObstaclesNearSegmentFindsStraddlers) {
  // Obstacle centered off the segment but radius reaching it.
  const Terrain t = flat_with({boulder({50, 3}, 4.0, 3.0)});
  const auto found = t.obstacles_near_segment({0, 0}, {100, 0});
  EXPECT_EQ(found.size(), 1u);
  const auto none = t.obstacles_near_segment({0, 20}, {100, 20});
  EXPECT_TRUE(none.empty());
}

TEST(Terrain, ZeroLengthSightIsClear) {
  const Terrain t = flat_with({boulder({50, 0}, 2.0, 3.0)});
  EXPECT_TRUE(t.line_of_sight({50, 0}, 1.0, {50, 0}, 1.0));
}

}  // namespace
}  // namespace agrarsec::sim
