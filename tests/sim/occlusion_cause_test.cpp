// Occlusion-cause attribution (feeds the SOTIF census).
#include <gtest/gtest.h>

#include "sim/terrain.h"

namespace agrarsec::sim {
namespace {

Obstacle make(ObstacleKind kind, core::Vec2 at, double radius, double height) {
  Obstacle o;
  o.kind = kind;
  o.footprint = {at, radius};
  o.height_m = height;
  return o;
}

TEST(OcclusionCause, NoneOnOpenGround) {
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, {}, {}};
  EXPECT_EQ(t.occlusion_cause({0, 0}, 2.6, {100, 0}, 1.2),
            Terrain::OcclusionCause::kNone);
}

TEST(OcclusionCause, IdentifiesBoulder) {
  const Terrain t{core::Aabb{{0, 0}, {200, 200}},
                  {make(ObstacleKind::kBoulder, {50, 0}, 2.0, 3.0)}, {}};
  EXPECT_EQ(t.occlusion_cause({0, 0}, 2.6, {100, 0}, 1.2),
            Terrain::OcclusionCause::kBoulder);
}

TEST(OcclusionCause, IdentifiesBrush) {
  const Terrain t{core::Aabb{{0, 0}, {200, 200}},
                  {make(ObstacleKind::kBrush, {80, 0}, 1.0, 1.8)}, {}};
  // Brush at 1.8 m blocks close to the target end of the 2.6->1.2 ray.
  EXPECT_EQ(t.occlusion_cause({0, 0}, 2.6, {100, 0}, 1.2),
            Terrain::OcclusionCause::kBrush);
}

TEST(OcclusionCause, IdentifiesTreeStem) {
  const Terrain t{core::Aabb{{0, 0}, {200, 200}},
                  {make(ObstacleKind::kTree, {50, 0}, 0.3, 16.0)}, {}};
  EXPECT_EQ(t.occlusion_cause({0, 0}, 2.6, {100, 0}, 1.2),
            Terrain::OcclusionCause::kTree);
}

TEST(OcclusionCause, IdentifiesTerrainCrest) {
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, {},
                  {Hill{{100, 0}, 10.0, 20.0}}};
  EXPECT_EQ(t.occlusion_cause({20, 0}, 2.0, {180, 0}, 1.7),
            Terrain::OcclusionCause::kTerrain);
}

TEST(OcclusionCause, ObstacleBeatsTerrainWhenBothPresent) {
  // Attribution reports the first blocker class found; obstacles are
  // checked before ground sampling.
  const Terrain t{core::Aabb{{0, 0}, {200, 200}},
                  {make(ObstacleKind::kBoulder, {90, 0}, 2.0, 30.0)},
                  {Hill{{100, 0}, 10.0, 20.0}}};
  EXPECT_EQ(t.occlusion_cause({20, 0}, 2.0, {180, 0}, 1.7),
            Terrain::OcclusionCause::kBoulder);
}

TEST(OcclusionCause, ElevatedViewClearsAll) {
  const Terrain t{core::Aabb{{0, 0}, {200, 200}},
                  {make(ObstacleKind::kBoulder, {50, 0}, 2.0, 3.0),
                   make(ObstacleKind::kBrush, {70, 0}, 1.0, 1.8)},
                  {Hill{{100, 0}, 4.0, 30.0}}};
  EXPECT_EQ(t.occlusion_cause({0, 0}, 60.0, {100, 0}, 1.2),
            Terrain::OcclusionCause::kNone);
}

}  // namespace
}  // namespace agrarsec::sim
