#include <gtest/gtest.h>

#include "sim/pathfinding.h"
#include "sim/worksite.h"

namespace agrarsec::sim {
namespace {

Terrain empty_terrain() {
  return Terrain{core::Aabb{{0, 0}, {200, 200}}, {}, {}};
}

Obstacle boulder(core::Vec2 at, double radius) {
  Obstacle o;
  o.kind = ObstacleKind::kBoulder;
  o.footprint = {at, radius};
  o.height_m = 2.0;
  return o;
}

TEST(PathPlanner, StraightLineWhenClear) {
  const Terrain t = empty_terrain();
  const PathPlanner planner{t};
  const auto path = planner.plan({10, 10}, {150, 150});
  ASSERT_TRUE(path.has_value());
  // Smoothing collapses the clear route to a single hop.
  EXPECT_LE(path->size(), 2u);
  EXPECT_LT(core::distance(path->back(), {150, 150}), 5.0);
}

TEST(PathPlanner, RoutesAroundWall) {
  // A wall of boulders with a gap at the south end.
  std::vector<Obstacle> obstacles;
  for (double y = 40; y <= 200; y += 6) obstacles.push_back(boulder({100, y}, 3.5));
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, std::move(obstacles), {}};
  const PathPlanner planner{t};
  const auto path = planner.plan({20, 100}, {180, 100});
  ASSERT_TRUE(path.has_value());

  // Walk the route: every leg keeps clearance.
  core::Vec2 prev{20, 100};
  double length = 0;
  for (const core::Vec2 wp : *path) {
    EXPECT_TRUE(planner.segment_clear(prev, wp))
        << "(" << prev.x << "," << prev.y << ")->(" << wp.x << "," << wp.y << ")";
    length += core::distance(prev, wp);
    prev = wp;
  }
  EXPECT_LT(core::distance(prev, {180, 100}), 6.0);
  // Detour via the gap (~y<40) is clearly longer than the straight 160 m.
  EXPECT_GT(length, 180.0);
}

TEST(PathPlanner, UnreachableGoalReturnsNullopt) {
  // Fully enclosed goal: ring of touching boulders.
  std::vector<Obstacle> obstacles;
  for (double angle = 0; angle < 6.3; angle += 0.15) {
    obstacles.push_back(
        boulder({100 + 20 * std::cos(angle), 100 + 20 * std::sin(angle)}, 4.0));
  }
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, std::move(obstacles), {}};
  PlannerConfig config;
  config.clearance_m = 2.0;
  const PathPlanner planner{t, config};
  // Goal deep inside the ring (nearest-free snap cannot escape: the free
  // cells inside the ring are disconnected from outside).
  const auto path = planner.plan({10, 10}, {100, 100});
  EXPECT_FALSE(path.has_value());
}

TEST(PathPlanner, SteepHillIsAvoided) {
  // A single very steep hill in the middle; max_slope forbids crossing.
  Terrain t{core::Aabb{{0, 0}, {200, 200}}, {},
            {Hill{{100, 100}, 40.0, 18.0}}};
  PlannerConfig config;
  config.max_slope = 0.3;
  const PathPlanner planner{t, config};
  const auto path = planner.plan({20, 100}, {180, 100});
  ASSERT_TRUE(path.has_value());
  // No waypoint sits on the steep flank (|grad| peaks around r≈sigma).
  for (const core::Vec2 wp : *path) {
    const double d = core::distance(wp, {100, 100});
    EXPECT_TRUE(d > 30.0 || d < 4.0) << "waypoint on steep flank at r=" << d;
  }
}

TEST(PathPlanner, StartInsideObstacleSnapsOut) {
  std::vector<Obstacle> obstacles = {boulder({50, 50}, 5.0)};
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, std::move(obstacles), {}};
  const PathPlanner planner{t};
  const auto path = planner.plan({50, 50}, {150, 150});  // start blocked
  ASSERT_TRUE(path.has_value());
  EXPECT_LT(core::distance(path->back(), {150, 150}), 6.0);
}

TEST(PathPlanner, CorridorWithSideExitIsReachable) {
  // Regression: the JPS cardinal ray returned 'dead end' before testing
  // for a forced neighbour, so the last cell of a corridor — blocked
  // straight ahead but with an open side exit — was never reported as a
  // jump point and the goal behind the exit came back unreachable.
  //
  // Cell grid (4 m cells): a sealed horizontal corridor on row 10 from
  // cx=3..20, walls on rows 9 and 11 plus both ends, with the single
  // opening above the corridor's last cell at (20, 11).
  const Terrain t = empty_terrain();
  PathPlanner planner{t};
  auto block_cell = [&](int cx, int cy) {
    const double s = planner.config().cell_size_m;
    planner.set_region_blocked({(cx + 0.5) * s, (cy + 0.5) * s}, 0.5, true);
  };
  for (int cx = 2; cx <= 21; ++cx) {
    block_cell(cx, 9);
    if (cx != 20) block_cell(cx, 11);
  }
  block_cell(2, 10);   // sealed left end
  block_cell(21, 10);  // sealed right end (the forced-turn dead end)

  const core::Vec2 start{3.5 * 4.0, 10.5 * 4.0};  // inside the corridor
  const core::Vec2 goal{20.5 * 4.0, 13.5 * 4.0};  // beyond the side exit
  const auto path = planner.plan(start, goal);
  ASSERT_TRUE(path.has_value()) << "corridor side exit missed by JPS";
  EXPECT_LT(core::distance(path->back(), goal), 6.0);
  core::Vec2 prev = start;
  for (const core::Vec2 wp : *path) {
    EXPECT_TRUE(planner.segment_clear(prev, wp))
        << "(" << prev.x << "," << prev.y << ")->(" << wp.x << "," << wp.y << ")";
    prev = wp;
  }
  // And back out again: entering the corridor needs the mirrored forced
  // turn at the exit cell.
  EXPECT_TRUE(planner.plan(goal, start).has_value());
}

TEST(PathPlanner, CellFreeRespectsBounds) {
  const Terrain t = empty_terrain();
  const PathPlanner planner{t};
  EXPECT_FALSE(planner.cell_free(-1, 0));
  EXPECT_FALSE(planner.cell_free(0, -1));
  EXPECT_FALSE(planner.cell_free(10000, 0));
  EXPECT_TRUE(planner.cell_free(1, 1));
}

TEST(PathPlanner, SegmentClearDetectsObstacle) {
  std::vector<Obstacle> obstacles = {boulder({100, 100}, 4.0)};
  const Terrain t{core::Aabb{{0, 0}, {200, 200}}, std::move(obstacles), {}};
  const PathPlanner planner{t};
  EXPECT_FALSE(planner.segment_clear({80, 100}, {120, 100}));
  EXPECT_TRUE(planner.segment_clear({80, 120}, {120, 120}));
}

TEST(PathPlanner, WorksiteRoutesAvoidObstacles) {
  // End-to-end: forwarder mission routes keep clearance in a dense stand.
  WorksiteConfig config;
  config.forest.bounds = {{0, 0}, {250, 250}};
  config.forest.boulders_per_hectare = 40;
  config.forest.boulder_radius_mean = 1.5;
  Worksite site{config, 99};
  // Pick start/goal with real clearance so the first/last legs are not
  // forced through a straddling obstacle.
  auto find_clear = [&](core::Vec2 seed) {
    for (double r = 0; r < 60; r += 3) {
      for (double a = 0; a < 6.3; a += 0.5) {
        const core::Vec2 p = seed + core::Vec2{r * std::cos(a), r * std::sin(a)};
        if (site.terrain().bounds().contains(p) && !site.terrain().blocked(p, 4.0)) {
          return p;
        }
      }
    }
    return seed;
  };
  const core::Vec2 start = find_clear({10, 10});
  const core::Vec2 goal = find_clear({240, 240});
  const auto route = site.plan_route(start, goal);
  ASSERT_FALSE(route.empty());
  core::Vec2 prev = start;
  for (const core::Vec2 wp : route) {
    // Legs must not pass through any boulder footprint (stems are thinner
    // than the planner clearance grid, so check boulders specifically).
    for (const auto* o : site.terrain().obstacles_near_segment(prev, wp, 0.0)) {
      EXPECT_NE(o->kind, ObstacleKind::kBoulder)
          << "route leg crosses a boulder";
    }
    prev = wp;
  }
}

}  // namespace
}  // namespace agrarsec::sim
