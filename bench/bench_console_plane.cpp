// Console observability-plane benchmark: throughput of the poll-driven
// HTTP server and the SSE flight-recorder stream against a live
// FleetService, on a connections x request-mix grid.
//
//  - HTTP axis: keep-alive clients doing sequential round trips over one
//    connection (serial rates, gated by the baseline) and over 8
//    concurrent connections (parallel rates, printed but untracked —
//    they fold in the runner's core count). Request mixes: "sessions"
//    (cheap snapshot), "flight" (recorder tail render), "mixed".
//  - Stream axis: one subscriber draining a pre-filled flight recorder
//    over /stream/flight/<id>. The reassembled payload must be
//    byte-identical to the recorder's polled JSONL export — a fast
//    stream that delivers different bytes is a parity failure, same
//    contract as the step benchmarks. Drain rate is bounded by the
//    server's poll tick x chunk size, so it gates the streaming plane's
//    delivery pipeline, not the simulator.
//
// Lines of the form "BENCH name=value" are machine-readable; CI captures
// them into BENCH_baseline.json and fails on large regressions
// (scripts/bench_gate.py).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "crypto/random.h"
#include "net/stream.h"
#include "obs/telemetry.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "service/console.h"
#include "service/fleet_service.h"

using namespace agrarsec;

namespace {

integration::SecuredWorksiteConfig session_config(std::uint64_t seed) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.harvester_output_m3_per_min = 30.0;
  config.worksite.load_time = 15 * core::kSecond;
  return config;
}

/// One keep-alive round trip: writes `request`, consumes exactly one
/// response (Content-Length framed) from `buf`. False on error/timeout.
bool roundtrip(net::TcpStream& conn, const std::string& request, std::string& buf) {
  if (!conn.write_all(std::string_view{request}, 5000)) return false;
  std::uint8_t chunk[4096];
  for (;;) {
    const std::size_t hdr_end = buf.find("\r\n\r\n");
    if (hdr_end != std::string::npos) {
      const std::size_t cl = buf.find("Content-Length: ");
      if (cl == std::string::npos || cl > hdr_end) return false;
      const std::size_t body =
          static_cast<std::size_t>(std::strtoull(buf.c_str() + cl + 16, nullptr, 10));
      const std::size_t total = hdr_end + 4 + body;
      if (buf.size() >= total) {
        buf.erase(0, total);
        return true;
      }
    }
    const long n = conn.read_some(chunk, sizeof(chunk), 5000);
    if (n <= 0) return false;
    buf.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
  }
}

std::string get_line(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n";
}

/// `count` round trips on one fresh keep-alive connection; returns
/// successful requests (== count unless the server misbehaved).
std::uint64_t run_client(std::uint16_t port, const std::vector<std::string>& mix,
                         std::uint64_t count) {
  net::TcpStream conn = net::TcpStream::connect_local(port);
  if (!conn.valid()) return 0;
  std::string buf;
  std::uint64_t ok = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!roundtrip(conn, mix[static_cast<std::size_t>(i % mix.size())], buf)) break;
    ++ok;
  }
  return ok;
}

struct HttpAxisResult {
  double rate = 0.0;
  std::uint64_t failed = 0;
};

HttpAxisResult run_http_axis(std::uint16_t port, const std::vector<std::string>& mix,
                             std::size_t connections, std::uint64_t per_connection) {
  // The request budget per connection stays under the server's
  // max_requests_per_connection (default 128) so keep-alive never cycles.
  std::atomic<std::uint64_t> ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  if (connections == 1) {
    ok += run_client(port, mix, per_connection);
  } else {
    std::vector<std::thread> clients;
    clients.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
      clients.emplace_back([&ok, port, &mix, per_connection] {
        ok.fetch_add(run_client(port, mix, per_connection),
                     std::memory_order_relaxed);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  HttpAxisResult r;
  r.rate = static_cast<double>(ok.load()) / secs;
  r.failed = static_cast<std::uint64_t>(connections) * per_connection - ok.load();
  return r;
}

struct StreamResult {
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  int mismatches = 0;
};

/// Drains a pre-filled flight recorder over SSE and checks the
/// reassembled payload against the polled JSONL export byte-for-byte.
StreamResult run_stream_drain(std::uint16_t port, service::SessionId id,
                              const std::string& expected, std::uint64_t events) {
  StreamResult r;
  r.events = events;
  net::TcpStream sub = net::TcpStream::connect_local(port);
  if (!sub.valid()) {
    ++r.mismatches;
    return r;
  }
  const std::string get =
      get_line("/stream/flight/" + std::to_string(id) + "?cursor=0");
  if (!sub.write_all(std::string_view{get}, 5000)) {
    ++r.mismatches;
    return r;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::string raw;
  std::string payload;
  std::size_t scanned = 0;
  bool headers_done = false;
  std::uint8_t chunk[8192];
  while (payload.size() < expected.size()) {
    const long n = sub.read_some(chunk, sizeof(chunk), 5000);
    if (n <= 0) {
      std::printf("  STREAM STALL: %zu/%zu payload bytes\n", payload.size(),
                  expected.size());
      ++r.mismatches;
      return r;
    }
    raw.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(n));
    if (!headers_done) {
      const std::size_t end = raw.find("\r\n\r\n");
      if (end == std::string::npos) continue;
      scanned = end + 4;
      headers_done = true;
    }
    for (;;) {
      const std::size_t frame_end = raw.find("\n\n", scanned);
      if (frame_end == std::string::npos) break;
      const std::string_view frame =
          std::string_view{raw}.substr(scanned, frame_end - scanned);
      scanned = frame_end + 2;
      const std::size_t data_at = frame.find("data: ");
      if (data_at == std::string_view::npos) continue;
      payload.append(frame.substr(data_at + 6));
      payload.push_back('\n');
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec = static_cast<double>(events) / secs;
  if (payload != expected) {
    ++r.mismatches;
    std::printf("  STREAM PARITY MISMATCH: SSE payload differs from polled"
                " JSONL export (%zu vs %zu bytes)\n",
                payload.size(), expected.size());
  }
  std::printf("  %llu events drained in %.3fs -> %.0f events/sec"
              " (%d mismatches)\n",
              static_cast<unsigned long long>(events), secs, r.events_per_sec,
              r.mismatches);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  obs::consume_artifact_dir_flag(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::printf("=== console observability-plane benchmark ===\n\n");

  // Live fleet + console, the same shape the ops examples use.
  crypto::Drbg drbg{77, "bench-console"};
  auto root = pki::CertificateAuthority::create_root("bench-root", drbg.generate32(),
                                                     0, 1000 * core::kHour);
  pki::TrustStore trust;
  if (!trust.add_root(root.certificate()).ok()) return 1;
  auto console_id = pki::enroll(root, drbg, "console-01",
                                pki::CertRole::kOperatorStation, 0,
                                1000 * core::kHour);
  if (!console_id.ok()) return 1;

  service::FleetServiceConfig fleet_config;
  fleet_config.fleet_seed = 777;
  service::FleetService fleet{fleet_config};
  std::vector<service::SessionId> ids;
  for (std::uint64_t key = 0; key < 2; ++key) {
    ids.push_back(fleet.create_session_keyed(
        session_config(service::FleetService::derive_session_seed(777, key)), key));
  }
  fleet.step_all(20);

  service::ConsoleService console{fleet, console_id.value(), trust, 78};
  if (!console.start().ok()) return 1;

  const std::string flight_target = "/flight/" + std::to_string(ids[0]) + "?n=32";
  const std::vector<std::string> mix_sessions{get_line("/sessions")};
  const std::vector<std::string> mix_flight{get_line(flight_target)};
  const std::vector<std::string> mix_mixed{get_line("/sessions"),
                                           get_line(flight_target),
                                           get_line("/ids")};

  const std::uint64_t per_conn = quick ? 20 : 100;
  // Best-of-N trials per cell: one scheduler stall (delayed ACK, core
  // handoff) inside a ~0.1s measurement window craters a single trial by
  // 3x on a small runner, and the gate tracks the server's capability,
  // not the runner's noise floor.
  const int trials = quick ? 2 : 3;
  std::uint64_t failed = 0;
  struct Cell {
    const char* mix_name;
    const std::vector<std::string>* mix;
    double serial = 0.0;
    double parallel8 = 0.0;
  };
  Cell cells[] = {{"sessions", &mix_sessions},
                  {"flight", &mix_flight},
                  {"mixed", &mix_mixed}};
  std::printf("HTTP axis: %llu requests per connection, connections x mix,"
              " best of %d trials\n",
              static_cast<unsigned long long>(per_conn), trials);
  for (Cell& cell : cells) {
    for (int trial = 0; trial < trials; ++trial) {
      const HttpAxisResult serial =
          run_http_axis(console.http_port(), *cell.mix, 1, per_conn);
      const HttpAxisResult parallel =
          run_http_axis(console.http_port(), *cell.mix, 8, per_conn);
      if (serial.rate > cell.serial) cell.serial = serial.rate;
      if (parallel.rate > cell.parallel8) cell.parallel8 = parallel.rate;
      failed += serial.failed + parallel.failed;
    }
    std::printf("  mix=%-8s  1 conn: %7.0f req/sec   8 conns: %7.0f req/sec\n",
                cell.mix_name, cell.serial, cell.parallel8);
  }

  // Streaming axis: pre-fill a recorder with synthetic events so the
  // drain measures the delivery pipeline (pump -> SSE framing -> socket),
  // not the simulator's event production rate.
  const std::uint64_t stream_events = quick ? 512 : 3000;
  obs::FlightRecorder& recorder = fleet.session(ids[1])->telemetry().recorder();
  for (std::uint64_t i = 0; i < stream_events; ++i) {
    recorder.record(static_cast<core::SimTime>(i), "bench", "stream-fill", i);
  }
  const std::uint64_t total = recorder.total_recorded();
  const std::uint64_t held = recorder.size();
  const std::string expected = recorder.to_jsonl();
  std::printf("\nSSE drain: %llu held events (%llu recorded) via"
              " /stream/flight/%llu\n",
              static_cast<unsigned long long>(held),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(ids[1]));
  const StreamResult stream =
      run_stream_drain(console.http_port(), ids[1], expected, held);

  const std::uint64_t http_errors = console.http().protocol_errors();
  console.stop();
  obs::write_bench_artifact(fleet.telemetry(), "bench_console_plane");

  int mismatches = stream.mismatches;
  if (failed != 0) {
    ++mismatches;
    std::printf("  HTTP MISMATCH: %llu round trips failed\n",
                static_cast<unsigned long long>(failed));
  }
  if (http_errors != 0) {
    ++mismatches;
    std::printf("  HTTP MISMATCH: %llu protocol errors from well-formed"
                " clients\n",
                static_cast<unsigned long long>(http_errors));
  }

  // Serial rates and exact counters gate (BENCH_baseline.json); the
  // *_parallel8 rates are visible in CI logs but untracked.
  std::printf("\nBENCH console_http_requests_per_sec=%.0f\n", cells[0].serial);
  std::printf("BENCH console_http_requests_per_sec_flight=%.0f\n", cells[1].serial);
  std::printf("BENCH console_http_requests_per_sec_mixed=%.0f\n", cells[2].serial);
  std::printf("BENCH console_http_requests_per_sec_parallel8=%.0f\n",
              cells[0].parallel8);
  std::printf("BENCH console_http_requests_per_sec_flight_parallel8=%.0f\n",
              cells[1].parallel8);
  std::printf("BENCH console_http_requests_per_sec_mixed_parallel8=%.0f\n",
              cells[2].parallel8);
  std::printf("BENCH console_sse_drain_events_per_sec=%.0f\n",
              stream.events_per_sec);
  std::printf("BENCH console_plane_mismatches=%d\n", mismatches);
  if (!quick) {
    std::printf("BENCH console_stream_events_exact=%llu\n",
                static_cast<unsigned long long>(stream.events));
  }
  return mismatches == 0 ? 0 : 1;
}
