// SAC construction & evaluation at scale (google-benchmark + summary
// table): CASCADE generation from the TARA, full-argument evaluation,
// DOT export, and synthetic scaling of the threat count (how the SAC
// machinery behaves as the forestry catalogue grows).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "assurance/cascade.h"
#include "assurance/compliance.h"
#include "risk/catalog.h"
#include "risk/coanalysis.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

risk::Tara scaled_tara(int multiplier) {
  risk::ItemDefinition item = risk::forestry_item();
  auto threats = risk::forestry_threats(item);
  const std::size_t base = threats.size();
  std::uint64_t next_id = 1000;
  for (int m = 1; m < multiplier; ++m) {
    for (std::size_t i = 0; i < base; ++i) {
      risk::ThreatScenario copy = threats[i];
      copy.id = ThreatId{next_id++};
      copy.name = copy.name + "-v" + std::to_string(m);
      threats.push_back(std::move(copy));
    }
  }
  risk::Tara tara{std::move(item)};
  for (auto& t : threats) tara.add_threat(std::move(t));
  tara.assess(risk::control_catalogue());
  return tara;
}

void BM_TaraAssess(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(risk::build_forestry_tara());
  }
}
BENCHMARK(BM_TaraAssess);

void BM_CascadeGeneration(benchmark::State& state) {
  const risk::Tara tara = scaled_tara(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    assurance::EvidenceRegistry registry;
    auto result = assurance::build_security_case(tara, registry);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(tara.results().size()) + " threats");
}
BENCHMARK(BM_CascadeGeneration)->Arg(1)->Arg(4)->Arg(16);

void BM_ArgumentEvaluation(benchmark::State& state) {
  const risk::Tara tara = scaled_tara(static_cast<int>(state.range(0)));
  assurance::EvidenceRegistry registry;
  const auto result = assurance::build_security_case(tara, registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.argument.evaluate(registry));
  }
  state.SetLabel(std::to_string(result.argument.size()) + " nodes");
}
BENCHMARK(BM_ArgumentEvaluation)->Arg(1)->Arg(4)->Arg(16);

void BM_ArgumentValidation(benchmark::State& state) {
  const risk::Tara tara = scaled_tara(4);
  assurance::EvidenceRegistry registry;
  const auto result = assurance::build_security_case(tara, registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.argument.validate());
  }
}
BENCHMARK(BM_ArgumentValidation);

void BM_DotExport(benchmark::State& state) {
  const risk::Tara tara = scaled_tara(4);
  assurance::EvidenceRegistry registry;
  const auto result = assurance::build_security_case(tara, registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.argument.to_dot());
  }
}
BENCHMARK(BM_DotExport);

void BM_CoAnalysis(benchmark::State& state) {
  const risk::Tara tara = risk::build_forestry_tara();
  for (auto _ : state) {
    const auto fca = risk::build_forestry_coanalysis(tara);
    benchmark::DoNotOptimize(fca.analysis.analyze(tara));
  }
}
BENCHMARK(BM_CoAnalysis);

void print_summary() {
  const risk::Tara tara = risk::build_forestry_tara();
  assurance::EvidenceRegistry registry;
  auto sac = assurance::build_security_case(tara, registry);
  const auto fca = risk::build_forestry_coanalysis(tara);
  assurance::extend_with_coanalysis(sac, fca.analysis.analyze(tara), registry);
  const auto eval = sac.argument.evaluate(registry);

  std::size_t supported = 0, partial = 0, undeveloped = 0, unsupported = 0;
  for (const auto& [id, e] : eval) {
    switch (e.status) {
      case assurance::SupportStatus::kSupported: ++supported; break;
      case assurance::SupportStatus::kPartial: ++partial; break;
      case assurance::SupportStatus::kUndeveloped: ++undeveloped; break;
      case assurance::SupportStatus::kUnsupported: ++unsupported; break;
    }
  }
  std::printf("\n=== SAC summary (forestry worksite) ===\n");
  std::printf("argument nodes: %zu (supported %zu, partial %zu, undeveloped %zu, "
              "unsupported %zu)\n",
              sac.argument.size(), supported, partial, undeveloped, unsupported);
  std::printf("evidence items: %zu\n", registry.size());
  std::printf("structural problems: %zu\n", sac.argument.validate().size());
  std::printf("undeveloped goals are the open points the paper's §V says the\n"
              "modular SAC must track across the SoS.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_assurance_case.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_assurance_case"};

  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
