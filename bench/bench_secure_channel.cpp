// Secure-channel cost ablation (google-benchmark): full handshake,
// per-record seal/open across protection levels (plaintext copy vs
// MAC-only vs full AEAD record), and certificate-chain validation — the
// DESIGN.md ablation for the record-layer design choice.
#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/random.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/handshake.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

struct Env {
  crypto::Drbg drbg{5, "bench-secure"};
  pki::CertificateAuthority ca = pki::CertificateAuthority::create_root(
      "bench-root", drbg.generate32(), 0, 1000 * core::kHour);
  pki::TrustStore trust;
  pki::Identity a;
  pki::Identity b;

  Env() {
    (void)trust.add_root(ca.certificate());
    a = pki::enroll(ca, drbg, "a", pki::CertRole::kMachine, 0, 1000 * core::kHour)
            .take();
    b = pki::enroll(ca, drbg, "b", pki::CertRole::kDrone, 0, 1000 * core::kHour)
            .take();
  }
};

Env& env() {
  static Env e;
  return e;
}

void BM_FullHandshake(benchmark::State& state) {
  Env& e = env();
  for (auto _ : state) {
    auto pair = secure::establish(e.a, e.b, e.trust, 10, e.drbg);
    benchmark::DoNotOptimize(pair);
  }
}
BENCHMARK(BM_FullHandshake);

void BM_ChainValidation(benchmark::State& state) {
  Env& e = env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.trust.validate(e.a.chain, 10));
  }
}
BENCHMARK(BM_ChainValidation);

void BM_RecordPlaintextCopy(benchmark::State& state) {
  crypto::Drbg drbg{6, "payload"};
  const auto payload = drbg.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::Bytes copy = payload;  // the "no protection" baseline
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RecordPlaintextCopy)->Arg(64)->Arg(1024);

void BM_RecordMacOnly(benchmark::State& state) {
  crypto::Drbg drbg{6, "payload"};
  const auto key = drbg.generate32();
  const auto payload = drbg.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256::mac(key, payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RecordMacOnly)->Arg(64)->Arg(1024);

void BM_RecordAeadSealOpen(benchmark::State& state) {
  Env& e = env();
  auto pair = secure::establish(e.a, e.b, e.trust, 10, e.drbg);
  auto& sessions = pair.value();
  crypto::Drbg drbg{6, "payload"};
  const auto payload = drbg.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const secure::Record record = sessions.initiator.seal(payload);
    auto opened = sessions.responder.open(record);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RecordAeadSealOpen)->Arg(64)->Arg(1024);

void BM_SessionThroughputMessagesPerSec(benchmark::State& state) {
  // Realistic machine message: 86-byte detection record.
  Env& e = env();
  auto pair = secure::establish(e.a, e.b, e.trust, 10, e.drbg);
  auto& sessions = pair.value();
  crypto::Drbg drbg{7, "msg"};
  const auto payload = drbg.generate(86);
  for (auto _ : state) {
    const secure::Record record = sessions.initiator.seal(payload);
    auto opened = sessions.responder.open(record);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SessionThroughputMessagesPerSec);

}  // namespace

// BENCHMARK_MAIN supplies main; a static artifact writes
// bench_secure_channel.telemetry.json when the process exits.
static agrarsec::obs::BenchArtifact g_artifact{"bench_secure_channel"};

BENCHMARK_MAIN();
