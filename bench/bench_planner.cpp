// Planner hot-path benchmark: the dispatcher re-plans routes for the same
// handful of (machine, pile/landing) cell pairs every few steps, which is
// exactly the workload the route cache targets. This bench replays a
// realistic repeated-query mix against a cached and an uncached planner,
// reports the throughput ratio (the PR's acceptance floor is 5x), and
// cross-checks that every cached answer is bit-identical to the uncached
// one — the cache must be a pure memoisation, never a behaviour change.
#include <chrono>
#include <cstdio>
#include <optional>
#include <vector>

#include "core/rng.h"
#include "obs/telemetry.h"
#include "sim/pathfinding.h"
#include "sim/terrain.h"

using namespace agrarsec;

namespace {

using Plan = std::optional<std::vector<core::Vec2>>;

struct Query {
  core::Vec2 from;
  core::Vec2 to;
};

/// The dispatcher workload: a small working set of endpoints queried over
/// and over (machines shuttling between piles and the landing), plus a
/// trickle of fresh pairs as new piles spawn.
std::vector<Query> make_queries(const sim::Terrain& terrain, std::size_t count) {
  core::Rng rng{7};
  const core::Aabb& b = terrain.bounds();
  std::vector<Query> working_set;
  for (std::size_t i = 0; i < 24; ++i) {
    working_set.push_back(Query{
        {rng.uniform(b.min.x + 10, b.max.x - 10), rng.uniform(b.min.y + 10, b.max.y - 10)},
        {rng.uniform(b.min.x + 10, b.max.x - 10), rng.uniform(b.min.y + 10, b.max.y - 10)}});
  }
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 16 == 15) {  // occasional fresh pair: a newly spawned pile
      queries.push_back(Query{
          {rng.uniform(b.min.x + 10, b.max.x - 10), rng.uniform(b.min.y + 10, b.max.y - 10)},
          {rng.uniform(b.min.x + 10, b.max.x - 10), rng.uniform(b.min.y + 10, b.max.y - 10)}});
    } else {
      queries.push_back(working_set[rng.next_below(working_set.size())]);
    }
  }
  return queries;
}

bool same_plan(const Plan& a, const Plan& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  if (a->size() != b->size()) return false;
  for (std::size_t i = 0; i < a->size(); ++i) {
    if ((*a)[i].x != (*b)[i].x || (*a)[i].y != (*b)[i].y) return false;
  }
  return true;
}

double run(const sim::PathPlanner& planner, const std::vector<Query>& queries,
           std::vector<Plan>* out) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Query& q : queries) {
    Plan p = planner.plan(q.from, q.to);
    if (out != nullptr) out->push_back(std::move(p));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // The cached planner mirrors its stats into this registry; the artifact
  // (bench_planner.telemetry.json) carries hit/miss/expansion counters
  // alongside the wall time.
  obs::Telemetry telemetry;
  obs::BenchArtifact artifact{"bench_planner", &telemetry};

  core::Rng rng{42};
  sim::ForestConfig forest;
  forest.bounds = {{0, 0}, {500, 500}};
  forest.trees_per_hectare = 250;
  const sim::Terrain terrain = sim::Terrain::generate(forest, rng);

  constexpr std::size_t kQueries = 4000;
  const std::vector<Query> queries = make_queries(terrain, kQueries);

  sim::PlannerConfig cached_cfg;
  sim::PlannerConfig uncached_cfg;
  uncached_cfg.cache_enabled = false;
  sim::PathPlanner cached{terrain, cached_cfg};
  const sim::PathPlanner uncached{terrain, uncached_cfg};
  cached.set_telemetry(&telemetry.registry());

  // Parity first (also warms the cache for the timed run).
  std::vector<Plan> cached_plans, uncached_plans;
  cached_plans.reserve(kQueries);
  uncached_plans.reserve(kQueries);
  run(cached, queries, &cached_plans);
  run(uncached, queries, &uncached_plans);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    if (!same_plan(cached_plans[i], uncached_plans[i])) ++mismatches;
  }

  const double t_cached = run(cached, queries, nullptr);
  const double t_uncached = run(uncached, queries, nullptr);
  const double rate_cached = static_cast<double>(kQueries) / t_cached;
  const double rate_uncached = static_cast<double>(kQueries) / t_uncached;

  const sim::PlannerStats& stats = cached.stats();
  std::printf("queries               : %zu (working set 24, 1/16 fresh)\n", kQueries);
  std::printf("cached                : %10.0f plans/s  (%.3f s)\n", rate_cached, t_cached);
  std::printf("uncached              : %10.0f plans/s  (%.3f s)\n", rate_uncached, t_uncached);
  std::printf("speedup               : %10.1fx  (acceptance floor: 5x)\n",
              rate_cached / rate_uncached);
  std::printf("parity mismatches     : %zu of %zu (must be 0)\n", mismatches, kQueries);
  std::printf("cache hits/misses     : %llu / %llu\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));
  std::printf("jps expansions        : %llu\n",
              static_cast<unsigned long long>(stats.jps_expansions));
  std::printf("cache entries         : %zu\n", cached.cache_size());
  // Machine-readable lines for the CI regression gate (scripts/bench_gate.py).
  std::printf("BENCH planner_cached_plans_per_sec=%.0f\n", rate_cached);
  std::printf("BENCH planner_uncached_plans_per_sec=%.0f\n", rate_uncached);
  std::printf("BENCH planner_parity_mismatches=%zu\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
