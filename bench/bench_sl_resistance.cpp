// §IV-D reproduction: IEC 62443 security levels vs attacker capability.
// Sweeps attacker tiers (SL1-style casual ... SL3-style sophisticated)
// against configurations hardened to increasing levels, and measures the
// attacker's actual effect on the live worksite. The expected shape:
// a configuration resists attackers at or below its level.
#include <cstdio>
#include <string>

#include "integration/secured_worksite.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

struct Hardening {
  const char* name;
  bool secure_links;
  bool ids;
};

struct Outcome {
  std::uint64_t spoofs_accepted = 0;
  std::uint64_t estops = 0;       ///< attacker-induced + legitimate
  std::uint64_t ids_alerts = 0;
  bool machine_frozen = false;    ///< attacker held the machine stopped
};

Outcome engage(const Hardening& hardening, int attacker_level,
               core::SimDuration duration, std::uint64_t seed) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.secure_links = hardening.secure_links;
  config.ids_enabled = hardening.ids;
  integration::SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  auto& attacker = site.add_attacker({120, 120}, attacker_level);
  std::size_t jammer_index = 0;
  bool has_jammer = false;
  if (net::attacker_profile_for_level(attacker_level).can_jam) {
    net::Jammer jammer;
    jammer.position = {150, 150};
    jammer.radius_m = 1000.0;
    jammer.effectiveness = 0.9;
    jammer.active = true;
    jammer_index = site.radio().add_jammer(jammer);
    has_jammer = true;
  }
  (void)jammer_index;
  (void)has_jammer;

  const core::SimTime end = site.worksite().clock().now() + duration;
  while (site.worksite().clock().now() < end) {
    site.step();
    const core::SimTime now = site.worksite().clock().now();
    if (now % (2 * core::kSecond) == 0) {
      // The attacker tries everything its tier allows, every 2 s.
      attacker.spoof(site.radio(), now, 3 /*operator*/,
                     net::MessageType::kEstopCommand,
                     net::EstopBody{1, 0}.encode(), site.forwarder_node());
      attacker.replay_latest(site.radio(), now);
      attacker.flood(site.radio(), now, 3, 20);
    }
  }

  Outcome o;
  o.spoofs_accepted = site.security_metrics().spoofed_messages_accepted;
  o.estops = site.monitor().stats().estops;
  o.ids_alerts = site.ids().total_alerts();
  o.machine_frozen = site.worksite().machine(site.forwarder_id())->stopped();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_sl_resistance.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_sl_resistance"};

  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const core::SimDuration duration = (quick ? 2 : 5) * core::kMinute;

  const Hardening configs[] = {
      {"SL1: plaintext, no IDS", false, false},
      {"SL2: plaintext + IDS", false, true},
      {"SL3: secure links + IDS", true, true},
  };

  std::printf("=== IEC 62443-style hardening vs attacker capability ===\n");
  std::printf("attacker fires spoof/replay/flood (and jamming at level 3) "
              "every 2 s for %lld min\n\n",
              static_cast<long long>(duration / core::kMinute));
  std::printf("%-26s %-10s %9s %7s %10s %8s\n", "configuration", "attacker",
              "spoofs-in", "estops", "IDS-alerts", "frozen");
  std::printf("----------------------------------------------------------------"
              "---------\n");

  for (const Hardening& hardening : configs) {
    for (const int level : {1, 2, 3}) {
      const Outcome o = engage(hardening, level, duration, 11);
      std::printf("%-26s %-10s %9lu %7lu %10lu %8s\n", hardening.name,
                  (std::string("level-") + std::to_string(level)).c_str(),
                  static_cast<unsigned long>(o.spoofs_accepted),
                  static_cast<unsigned long>(o.estops),
                  static_cast<unsigned long>(o.ids_alerts),
                  o.machine_frozen ? "YES" : "no");
    }
    std::printf("\n");
  }

  std::printf("shape check: the plaintext config is owned by a level-2 attacker\n"
              "(accepted spoofs, machine frozen); secure links zero out accepted\n"
              "spoofs at every level; level-3 jamming still costs availability —\n"
              "matching the SL ladder semantics of IEC 62443.\n");
  return 0;
}
