// §III-B reproduction (ComFASE-style): attacks on communication can lead
// to unsafe behaviour of the autonomous machine — and the defence stack
// restores safety.
//
// The sharpest interplay scenario is *cover forgery*: the attacker
// de-auth-drops the drone's genuine detection reports while injecting
// forged "drone alive" heartbeats. On plaintext links the forwarder
// believes its collaborative safety cover is intact and keeps full speed
// with only its occludable own sensing — hazardous exposures rise. With
// authenticated links the forgeries are rejected, the cover goes stale,
// and the machine falls back to its safe degraded mode.
#include <cstdio>
#include <string>

#include "integration/secured_worksite.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

enum class AttackKind {
  kNone,
  kCoverForgery,   ///< drop real drone traffic + spoof heartbeats
  kStaleReplay,    ///< drop real drone traffic + replay old frames
  kJamming,        ///< wideband availability attack
  kDeauthDrop,     ///< drop drone traffic only (no forgery)
};

const char* attack_name(AttackKind k) {
  switch (k) {
    case AttackKind::kNone: return "no attack";
    case AttackKind::kCoverForgery: return "cover forgery";
    case AttackKind::kStaleReplay: return "stale replay";
    case AttackKind::kJamming: return "jamming";
    case AttackKind::kDeauthDrop: return "de-auth drop";
  }
  return "?";
}

struct RunResult {
  std::uint64_t blind_fast = 0;
  std::uint64_t hazardous = 0;
  std::uint64_t estops = 0;
  double coverage = 1.0;
  double delivered = 0.0;
};

RunResult run(AttackKind attack, bool secure, std::uint64_t seed,
              core::SimDuration duration) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.secure_links = secure;
  config.ids_enabled = false;  // isolate the channel-protection effect
  config.worksite.forest.boulders_per_hectare = 64;
  config.worksite.forest.brush_per_hectare = 96;
  config.worksite.forest.boulder_height_mean = 2.2;
  config.worksite.forest.brush_height_mean = 1.8;
  config.monitor.cover_timeout = 2 * core::kSecond;

  integration::SecuredWorksite site{config};
  for (int i = 0; i < 4; ++i) {
    site.worksite().add_worker("w" + std::to_string(i), {70.0 + 12 * i, 65.0},
                               {90, 90});
  }
  site.run_for(core::kMinute);  // clean warm-up: cover established

  net::AttackerNode* attacker = nullptr;
  if (attack == AttackKind::kCoverForgery || attack == AttackKind::kStaleReplay) {
    attacker = &site.add_attacker({110, 110}, 3);
    site.radio().add_drop_rule(net::DropRule{site.drone_node(), 1.0, true});
  }
  if (attack == AttackKind::kDeauthDrop) {
    site.radio().add_drop_rule(net::DropRule{site.drone_node(), 1.0, true});
  }
  if (attack == AttackKind::kJamming) {
    net::Jammer jammer;
    jammer.position = {150, 150};
    jammer.radius_m = 1000.0;
    jammer.effectiveness = 0.95;
    jammer.active = true;
    site.radio().add_jammer(jammer);
  }

  const core::SimTime end = site.worksite().clock().now() + duration;
  const NodeId fwd = site.forwarder_node();
  while (site.worksite().clock().now() < end) {
    site.step();
    const core::SimTime now = site.worksite().clock().now();
    if (attacker != nullptr && now % 200 == 0) {
      if (attack == AttackKind::kCoverForgery) {
        attacker->spoof(site.radio(), now, 2 /*drone*/,
                        net::MessageType::kHeartbeat, {}, fwd);
      } else {
        // Hold-back replay: release frames captured >= 10 s ago, with the
        // timestamp refreshed. Trivial on plaintext; useless against the
        // authenticated record content (inner timestamp is stale).
        attacker->replay_latest(
            site.radio(), now,
            [fwd, now](const net::Frame& f) {
              return f.dst == fwd && f.sent_at + 10 * core::kSecond <= now;
            },
            /*refresh_timestamp=*/true);
      }
    }
  }

  RunResult r;
  r.blind_fast = site.safety_outcome().blind_fast_steps;
  r.hazardous = site.safety_outcome().hazardous_exposures;
  r.estops = site.monitor().stats().estops;
  r.coverage = site.safety_outcome().coverage();
  r.delivered = site.worksite().delivered_m3();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_attack_to_hazard.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_attack_to_hazard"};

  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const core::SimDuration duration = (quick ? 8 : 20) * core::kMinute;
  const std::uint64_t kSeed = 7;

  std::printf("=== attack -> hazard propagation (§III-B) ===\n");
  std::printf("%lld sim-minutes per cell, 4 workers, occluded stand;\n"
              "hazard = steps with a person in the critical zone while the\n"
              "machine still moves\n\n",
              static_cast<long long>(duration / core::kMinute));

  std::printf("%-16s | %-30s | %-30s\n", "", "plaintext links", "secure links");
  std::printf("%-16s | %9s %7s %10s | %9s %7s %10s\n", "attack", "blindfast",
              "estops", "coverage", "blindfast", "estops", "coverage");
  std::printf("-----------------+--------------------------------+--------------"
              "------------------\n");

  for (const AttackKind attack :
       {AttackKind::kNone, AttackKind::kCoverForgery, AttackKind::kStaleReplay,
        AttackKind::kJamming, AttackKind::kDeauthDrop}) {
    const RunResult open = run(attack, false, kSeed, duration);
    const RunResult hard = run(attack, true, kSeed, duration);
    std::printf("%-16s | %9lu %7lu %9.1f%% | %9lu %7lu %9.1f%%\n",
                attack_name(attack), static_cast<unsigned long>(open.blind_fast),
                static_cast<unsigned long>(open.estops), 100.0 * open.coverage,
                static_cast<unsigned long>(hard.blind_fast),
                static_cast<unsigned long>(hard.estops), 100.0 * hard.coverage);
  }

  std::printf("\n--- ablation: e-stop arbitration under jamming ---\n");
  std::printf("%-28s %8s %8s %10s\n", "cover-loss policy", "hazard", "estops",
              "delivered");
  for (const bool stop_on_loss : {false, true}) {
    integration::SecuredWorksiteConfig config;
    config.seed = kSeed;
    config.monitor.cover_timeout = 2 * core::kSecond;
    config.monitor.stop_on_cover_loss = stop_on_loss;
    integration::SecuredWorksite site{config};
    for (int i = 0; i < 4; ++i) {
      site.worksite().add_worker("w" + std::to_string(i), {70.0 + 12 * i, 65.0},
                                 {90, 90});
    }
    site.run_for(core::kMinute);
    net::Jammer jammer;
    jammer.position = {150, 150};
    jammer.radius_m = 1000.0;
    jammer.effectiveness = 0.95;
    jammer.active = true;
    site.radio().add_jammer(jammer);
    site.run_for(duration);
    std::printf("%-28s %8lu %8lu %8.1fm3\n",
                stop_on_loss ? "stop on cover loss" : "degrade to crawl",
                static_cast<unsigned long>(site.safety_outcome().hazardous_exposures),
                static_cast<unsigned long>(site.monitor().stats().estops),
                site.worksite().delivered_m3());
  }

  std::printf("\nshape check: cover forgery / stale replay raise hazardous\n"
              "exposure on plaintext links (machine keeps full speed on forged\n"
              "cover) and are neutralized by authenticated records; jamming and\n"
              "plain de-auth cost availability in both configurations because\n"
              "the stale-cover fallback degrades the machine safely — exactly\n"
              "the safety/cybersecurity interplay of §III-B.\n");
  return 0;
}
