// Figure 1 reproduction: the partially-autonomous worksite in operation —
// autonomous forwarder(s) cycling logs, manual harvester producing, drone
// observing, workers on foot. Sweeps the machine count and reports
// productivity and the safety/security activity envelope, with the
// security stack on vs off (its overhead must not cost productivity).
#include <cstdio>
#include <string>

#include "integration/secured_worksite.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

struct ShiftResult {
  double delivered_m3 = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t estops = 0;
  std::uint64_t encounters = 0;
  std::uint64_t frames = 0;
  std::uint64_t ids_alerts = 0;
};

ShiftResult run_shift(bool secure, int workers, core::SimDuration duration,
                      std::uint64_t seed, std::size_t forwarders = 1) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.secure_links = secure;
  config.forwarder_count = forwarders;
  config.worksite.forest.trees_per_hectare = 250;

  integration::SecuredWorksite site{config};
  for (int i = 0; i < workers; ++i) {
    site.worksite().add_worker("w" + std::to_string(i), {230.0 + 10 * i, 240.0},
                               {250, 250});
  }
  site.run_for(duration);

  ShiftResult r;
  r.delivered_m3 = site.worksite().delivered_m3();
  r.cycles = site.worksite().completed_cycles();
  for (std::size_t i = 0; i < site.forwarder_count(); ++i) {
    r.estops += site.monitor(i).stats().estops;
  }
  r.encounters = site.safety_outcome().encounters;
  r.frames = site.radio().total_sent();
  r.ids_alerts = site.ids().total_alerts();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_fig1_worksite.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_fig1_worksite"};

  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const core::SimDuration shift = (quick ? 20 : 60) * core::kMinute;

  std::printf("=== Figure 1: partially-autonomous worksite, %lld-minute shift ===\n\n",
              static_cast<long long>(shift / core::kMinute));

  std::printf("worker-count sweep (secure links on):\n");
  std::printf("%8s %12s %8s %8s %11s %9s %10s\n", "workers", "delivered",
              "cycles", "e-stops", "encounters", "frames", "IDS-alerts");
  for (const int workers : {0, 2, 4, 8}) {
    const ShiftResult r = run_shift(true, workers, shift, 42);
    std::printf("%8d %10.1fm3 %8lu %8lu %11lu %9lu %10lu\n", workers,
                r.delivered_m3, static_cast<unsigned long>(r.cycles),
                static_cast<unsigned long>(r.estops),
                static_cast<unsigned long>(r.encounters),
                static_cast<unsigned long>(r.frames),
                static_cast<unsigned long>(r.ids_alerts));
  }

  std::printf("\nforwarder-fleet sweep (4 workers, secure links on):\n");
  std::printf("%10s %12s %8s %8s %9s %10s\n", "forwarders", "delivered",
              "cycles", "e-stops", "frames", "IDS-alerts");
  for (const std::size_t fleet : {1u, 2u, 3u}) {
    const ShiftResult r = run_shift(true, 4, shift, 42, fleet);
    std::printf("%10zu %10.1fm3 %8lu %8lu %9lu %10lu\n", fleet, r.delivered_m3,
                static_cast<unsigned long>(r.cycles),
                static_cast<unsigned long>(r.estops),
                static_cast<unsigned long>(r.frames),
                static_cast<unsigned long>(r.ids_alerts));
  }

  std::printf("\nsecurity overhead on productivity (4 workers, matched seeds):\n");
  std::printf("%-18s %12s %8s %8s\n", "configuration", "delivered", "cycles",
              "e-stops");
  for (const bool secure : {false, true}) {
    const ShiftResult r = run_shift(secure, 4, shift, 42);
    std::printf("%-18s %10.1fm3 %8lu %8lu\n",
                secure ? "secured links" : "plaintext links", r.delivered_m3,
                static_cast<unsigned long>(r.cycles),
                static_cast<unsigned long>(r.estops));
  }

  std::printf("\nshape check: productivity is worker-safety limited, not\n"
              "security limited — the secured configuration moves the same\n"
              "volume (crypto cost is negligible at machine message rates).\n");
  return 0;
}
