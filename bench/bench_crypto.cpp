// Microbenchmarks for the from-scratch crypto substrate (google-benchmark):
// establishes that the security stack's primitives are fast enough for
// machine message rates by orders of magnitude — the quantitative basis
// for the "security costs no productivity" claim in bench_fig1.
#include <benchmark/benchmark.h>

#include "crypto/aead.h"
#include "crypto/ed25519.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/x25519.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

core::Bytes make_payload(std::size_t n) {
  crypto::Drbg drbg{1, "bench"};
  return drbg.generate(n);
}

void BM_Sha256(benchmark::State& state) {
  const auto data = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const auto data = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha512::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const auto key = make_payload(32);
  const auto data = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256::mac(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_HkdfExpand(benchmark::State& state) {
  const auto prk = crypto::hkdf_extract(make_payload(32), make_payload(32));
  const auto info = core::from_string("session-keys");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hkdf_expand(prk, info, 64));
  }
}
BENCHMARK(BM_HkdfExpand);

void BM_AeadSeal(benchmark::State& state) {
  const auto key = make_payload(32);
  const auto nonce = make_payload(12);
  const auto aad = make_payload(16);
  const auto payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aead_seal(key, nonce, aad, payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(256)->Arg(4096);

void BM_AeadOpen(benchmark::State& state) {
  const auto key = make_payload(32);
  const auto nonce = make_payload(12);
  const auto aad = make_payload(16);
  const auto sealed =
      crypto::aead_seal(key, nonce, aad,
                        make_payload(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto opened = crypto::aead_open(key, nonce, aad, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(64)->Arg(4096);

void BM_X25519Shared(benchmark::State& state) {
  crypto::Drbg drbg{2, "x25519"};
  const auto a_priv = drbg.generate32();
  const auto b_priv = drbg.generate32();
  const auto b_pub = crypto::x25519_base(b_priv);
  crypto::X25519Key out{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::x25519_shared(a_priv, b_pub, out));
  }
}
BENCHMARK(BM_X25519Shared);

void BM_Ed25519Sign(benchmark::State& state) {
  crypto::Drbg drbg{3, "ed"};
  const auto kp = crypto::ed25519_keypair(drbg.generate32());
  const auto msg = make_payload(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519_sign(kp, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  crypto::Drbg drbg{3, "ed"};
  const auto kp = crypto::ed25519_keypair(drbg.generate32());
  const auto msg = make_payload(256);
  const auto sig = crypto::ed25519_sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519_verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

}  // namespace

// BENCHMARK_MAIN supplies main; a static artifact writes
// bench_crypto.telemetry.json when the process exits.
static agrarsec::obs::BenchArtifact g_artifact{"bench_crypto"};

BENCHMARK_MAIN();
