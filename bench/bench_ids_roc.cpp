// IDS detection quality across attack classes: detection rate (per attack
// event) and false-alarm rate (per benign hour), under signature-only /
// anomaly-only / combined configurations — the DESIGN.md IDS ablation.
#include <cstdio>
#include <string>

#include "integration/secured_worksite.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

enum class AttackClass { kSpoofEstop, kReplay, kFlood, kTeleportTelemetry };

const char* attack_class_name(AttackClass a) {
  switch (a) {
    case AttackClass::kSpoofEstop: return "spoofed e-stop";
    case AttackClass::kReplay: return "replay";
    case AttackClass::kFlood: return "flood";
    case AttackClass::kTeleportTelemetry: return "telemetry spoof";
  }
  return "?";
}

struct RocPoint {
  std::uint64_t attacks_launched = 0;
  std::uint64_t alerts_during_attack = 0;
  std::uint64_t benign_alerts = 0;
};

RocPoint measure(AttackClass attack, bool signatures, bool anomaly,
                 core::SimDuration duration, std::uint64_t seed) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.secure_links = false;  // IDS watches the attackable baseline
  config.ids_enabled = false;   // we drive a dedicated IDS with custom config
  integration::SecuredWorksite site{config};
  site.worksite().add_worker("w", {75, 60}, {90, 90});

  ids::IdsConfig ids_config;
  ids_config.enable_signatures = signatures;
  ids_config.enable_anomaly = anomaly;
  ids::IntrusionDetectionSystem ids{ids_config};
  ids.register_node(1, false);
  ids.register_node(2, false);
  ids.register_node(3, true);
  site.radio().add_sniffer([&](const net::Frame& frame) {
    ids.observe(frame, site.worksite().clock().now());
  });

  // Benign phase: measure false alarms.
  const core::SimTime benign_end = site.worksite().clock().now() + duration;
  while (site.worksite().clock().now() < benign_end) {
    site.step();
    ids.tick(site.worksite().clock().now());
  }
  RocPoint point;
  point.benign_alerts = ids.total_alerts();

  // Attack phase: one attack burst every 5 s.
  auto& attacker = site.add_attacker({110, 110}, 2);
  const NodeId fwd = site.forwarder_node();
  const core::SimTime attack_end = site.worksite().clock().now() + duration;
  std::uint64_t alerts_at_phase_start = ids.total_alerts();
  while (site.worksite().clock().now() < attack_end) {
    site.step();
    const core::SimTime now = site.worksite().clock().now();
    ids.tick(now);
    if (now % (5 * core::kSecond) == 0) {
      ++point.attacks_launched;
      switch (attack) {
        case AttackClass::kSpoofEstop:
          attacker.spoof(site.radio(), now, 1 /*unauthorized machine id*/,
                         net::MessageType::kEstopCommand,
                         net::EstopBody{1, 0}.encode(), fwd);
          break;
        case AttackClass::kReplay:
          attacker.replay_latest(site.radio(), now);
          break;
        case AttackClass::kFlood:
          attacker.flood(site.radio(), now, 3, 150);
          break;
        case AttackClass::kTeleportTelemetry:
          attacker.spoof(site.radio(), now, 1,
                         net::MessageType::kTelemetry,
                         net::TelemetryBody{5000.0, 5000.0, 0.0, 3.0}.encode(),
                         NodeId::invalid());
          break;
      }
    }
  }
  point.alerts_during_attack = ids.total_alerts() - alerts_at_phase_start;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_ids_roc.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_ids_roc"};

  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const core::SimDuration phase = (quick ? 2 : 6) * core::kMinute;

  struct Mode {
    const char* name;
    bool signatures;
    bool anomaly;
  };
  const Mode modes[] = {{"signatures-only", true, false},
                        {"anomaly-only", false, true},
                        {"combined", true, true}};

  std::printf("=== IDS detection quality by attack class ===\n");
  std::printf("benign + attack phases of %lld min each; attack burst every 5 s\n\n",
              static_cast<long long>(phase / core::kMinute));
  std::printf("%-18s %-18s %9s %13s %13s\n", "attack class", "IDS mode", "attacks",
              "attack-alerts", "benign-alerts");
  std::printf("--------------------------------------------------------------------"
              "-----\n");

  for (const AttackClass attack :
       {AttackClass::kSpoofEstop, AttackClass::kReplay, AttackClass::kFlood,
        AttackClass::kTeleportTelemetry}) {
    for (const Mode& mode : modes) {
      const RocPoint p = measure(attack, mode.signatures, mode.anomaly, phase, 13);
      std::printf("%-18s %-18s %9lu %13lu %13lu\n", attack_class_name(attack),
                  mode.name, static_cast<unsigned long>(p.attacks_launched),
                  static_cast<unsigned long>(p.alerts_during_attack),
                  static_cast<unsigned long>(p.benign_alerts));
    }
    std::printf("\n");
  }

  std::printf("shape check: signature rules catch the protocol-level attacks\n"
              "(spoof/replay/teleport) with near-zero benign alerts; the anomaly\n"
              "detectors add coverage for volumetric attacks (flood); combined\n"
              "dominates both — the standard IDS layering argument.\n");
  return 0;
}
