// Figure 2 reproduction: "the collaborative drone allows for an additional
// point of view to eliminate occlusions caused by terrain obstacles."
//
// Sweep: occlusion density (boulders+brush per hectare) x configuration
// (forwarder-only vs forwarder+drone), matched seeds. Reported series:
//   - encounter miss rate (person entered the warning zone, never fused)
//   - median time-to-detect
//   - hazardous exposure steps (person in critical zone, machine moving)
//
// Expected shape (the paper's qualitative claim): forwarder-only miss rate
// climbs with occlusion density; adding the drone keeps it near flat.
#include <cstdio>
#include <string>
#include <vector>

#include "integration/secured_worksite.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

struct CellResult {
  std::uint64_t encounters = 0;
  std::uint64_t missed = 0;
  core::SampleSet ttd;
  std::uint64_t hazardous = 0;
  std::uint64_t zone_steps = 0;
  std::uint64_t covered_steps = 0;

  [[nodiscard]] double miss_rate() const {
    return encounters == 0 ? 0.0
                           : static_cast<double>(missed) /
                                 static_cast<double>(encounters);
  }
  [[nodiscard]] double coverage() const {
    return zone_steps == 0 ? 1.0
                           : static_cast<double>(covered_steps) /
                                 static_cast<double>(zone_steps);
  }
};

CellResult run_cell(double occlusion_per_ha, bool drone, std::uint64_t seeds,
                    core::SimDuration duration) {
  CellResult cell;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    integration::SecuredWorksiteConfig config;
    config.seed = seed * 1000 + (drone ? 0 : 1);  // matched terrain via worksite seed
    config.seed = seed;  // identical worksite for both arms
    config.drone_enabled = drone;
    config.worksite.forest.trees_per_hectare = 200;
    config.worksite.forest.boulders_per_hectare = occlusion_per_ha * 0.4;
    config.worksite.forest.brush_per_hectare = occlusion_per_ha * 0.6;
    // Sight-blocking occluders: glacial boulders and tall regen understory
    // (above the torso line the forwarder mast must see).
    config.worksite.forest.boulder_height_mean = 2.2;
    config.worksite.forest.brush_height_mean = 1.8;
    config.worksite.forest.hill_count = 4;

    integration::SecuredWorksite site{config};
    for (int i = 0; i < 4; ++i) {
      site.worksite().add_worker("w" + std::to_string(i),
                                 {70.0 + 12 * i, 65.0}, {90, 90});
    }
    site.run_for(duration);

    const auto& outcome = site.safety_outcome();
    cell.encounters += outcome.encounters;
    cell.missed += outcome.missed_encounters;
    cell.hazardous += outcome.hazardous_exposures;
    cell.zone_steps += outcome.person_zone_steps;
    cell.covered_steps += outcome.person_covered_steps;
    for (double v : outcome.time_to_detect_ms.samples()) cell.ttd.add(v);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_fig2_occlusion.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_fig2_occlusion"};

  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::uint64_t seeds = quick ? 2 : 5;
  const core::SimDuration duration = (quick ? 5 : 12) * core::kMinute;

  std::printf("=== Figure 2: drone viewpoint vs terrain occlusion ===\n");
  std::printf("%u seeds x %lld sim-minutes per cell; matched worksites\n\n",
              static_cast<unsigned>(seeds),
              static_cast<long long>(duration / core::kMinute));
  std::printf("%-10s | %-38s | %-38s\n", "", "forwarder-only", "forwarder + drone");
  std::printf("%-10s | %9s %9s %8s %7s | %9s %9s %8s %7s\n", "occl./ha",
              "coverage", "miss", "ttd-med", "hazard", "coverage", "miss",
              "ttd-med", "hazard");
  std::printf("-----------+----------------------------------------+--------------"
              "--------------------------\n");

  for (const double density : {0.0, 40.0, 80.0, 160.0, 320.0}) {
    const CellResult solo = run_cell(density, false, seeds, duration);
    const CellResult duo = run_cell(density, true, seeds, duration);
    std::printf("%-10.0f | %8.1f%% %8.1f%% %6.0fms %7lu | %8.1f%% %8.1f%% %6.0fms %7lu\n",
                density, 100.0 * solo.coverage(), 100.0 * solo.miss_rate(),
                solo.ttd.empty() ? 0.0 : solo.ttd.median(),
                static_cast<unsigned long>(solo.hazardous),
                100.0 * duo.coverage(), 100.0 * duo.miss_rate(),
                duo.ttd.empty() ? 0.0 : duo.ttd.median(),
                static_cast<unsigned long>(duo.hazardous));
  }

  std::printf("\nshape check (paper claim): forwarder-only coverage of people in\n"
              "the warning zone falls as occlusion density grows; the elevated\n"
              "drone viewpoint keeps coverage nearly flat — the additional point\n"
              "of view eliminates terrain-occlusion blind spots.\n");

  // SOTIF attribution (§III-C): where do the ground-level blind steps come
  // from? One high-occlusion forwarder-only run, per triggering condition.
  {
    integration::SecuredWorksiteConfig config;
    config.seed = 3;
    config.drone_enabled = false;
    config.worksite.forest.trees_per_hectare = 200;
    config.worksite.forest.boulders_per_hectare = 128;
    config.worksite.forest.brush_per_hectare = 192;
    config.worksite.forest.boulder_height_mean = 2.2;
    config.worksite.forest.brush_height_mean = 1.8;
    integration::SecuredWorksite site{config};
    for (int i = 0; i < 4; ++i) {
      site.worksite().add_worker("w" + std::to_string(i), {70.0 + 12 * i, 65.0},
                                 {90, 90});
    }
    site.run_for(duration);

    std::printf("\n--- SOTIF triggering-condition census (forwarder-only, "
                "320 occl./ha) ---\n");
    std::printf("%-22s %12s %12s %12s\n", "condition", "encounters", "hazardous",
                "hazard-rate");
    for (const auto& condition : site.sotif().conditions()) {
      const auto ev = site.sotif().evidence(condition.id);
      if (ev.encounters == 0) continue;
      std::printf("%-22s %12lu %12lu %11.1f%%\n", condition.id.c_str(),
                  static_cast<unsigned long>(ev.encounters),
                  static_cast<unsigned long>(ev.hazardous),
                  100.0 * ev.hazard_rate());
    }
    const auto census = site.sotif().census();
    std::printf("scenario areas: known-safe %lu, known-hazardous %lu, "
                "unknown %lu\n",
                static_cast<unsigned long>(census.known_safe),
                static_cast<unsigned long>(census.known_hazardous),
                static_cast<unsigned long>(census.unknown_safe +
                                           census.unknown_hazardous));
  }

  // Ablation: fusion policy (design choice flagged in DESIGN.md).
  std::printf("\n--- ablation: fusion policy at high occlusion (160/ha) ---\n");
  for (const auto policy : {safety::FusionPolicy::kUnion,
                            safety::FusionPolicy::kConfidenceWeighted}) {
    CellResult cell;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      integration::SecuredWorksiteConfig config;
      config.seed = seed;
      config.worksite.forest.boulders_per_hectare = 64;
      config.worksite.forest.brush_per_hectare = 96;
      config.worksite.forest.boulder_height_mean = 2.2;
      config.worksite.forest.brush_height_mean = 1.8;
      config.drone_enabled = false;  // policy differences show ground-level
      config.fusion.policy = policy;
      integration::SecuredWorksite site{config};
      for (int i = 0; i < 4; ++i) {
        site.worksite().add_worker("w" + std::to_string(i),
                                   {70.0 + 12 * i, 65.0}, {90, 90});
      }
      site.run_for(duration);
      cell.encounters += site.safety_outcome().encounters;
      cell.missed += site.safety_outcome().missed_encounters;
      cell.zone_steps += site.safety_outcome().person_zone_steps;
      cell.covered_steps += site.safety_outcome().person_covered_steps;
    }
    std::printf("%-22s coverage %5.1f%%, miss-rate %5.1f%% (%lu/%lu)\n",
                policy == safety::FusionPolicy::kUnion ? "union" : "conf-weighted",
                100.0 * cell.coverage(), 100.0 * cell.miss_rate(),
                static_cast<unsigned long>(cell.missed),
                static_cast<unsigned long>(cell.encounters));
  }
  return 0;
}
