// Figure 3 reproduction: the knowledge-building pipeline for
// "cybersecurity for an autonomous system of systems in the forestry
// domain". The paper's five phases become executable stages, and the
// bench reports what each phase contributes to the final combined threat
// model — the artifact Figure 3's arrows converge into.
//
//   phase 1  robotics in forestry        -> use-case item definition
//   phase 2  forestry characteristics    -> Table I rows
//   phase 3  similar domains (mining,    -> transferred threat classes
//            automotive)
//   phase 4  SoS cybersecurity           -> composition issues checked
//   phase 5  autonomous machinery reqs   -> standards-derived controls
//   merge    combined understanding      -> assessed TARA + zone model
#include <chrono>
#include <cstdio>

#include "risk/catalog.h"
#include "risk/coanalysis.h"
#include "risk/iec62443.h"
#include "sos/system.h"

#include "obs/telemetry.h"

using namespace agrarsec;

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_fig3_methodology.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_fig3_methodology"};

  std::printf("=== Figure 3: methodology pipeline, executed ===\n\n");
  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1: the use case & its assets (robotics in forestry).
  const risk::ItemDefinition item = risk::forestry_item();
  std::printf("phase 1  robotics-in-forestry   : item '%s'\n", item.name.c_str());
  std::printf("         assets identified      : %zu\n", item.assets.size());

  // Phase 2: forestry-domain characteristics (Table I).
  const auto characteristics = risk::table1_characteristics();
  std::printf("phase 2  forestry specifics     : %zu characteristics\n",
              characteristics.size());

  // Phase 3: knowledge transfer — threats instantiated from the mining /
  // automotive attack classes onto the forestry assets.
  const auto threats = risk::forestry_threats(item);
  std::size_t dos = 0, spoof = 0, info = 0;
  for (const auto& t : threats) {
    if (t.stride == risk::Stride::kDenialOfService) ++dos;
    if (t.stride == risk::Stride::kSpoofing) ++spoof;
    if (t.stride == risk::Stride::kInformationDisclosure) ++info;
  }
  std::printf("phase 3  similar-domain transfer: %zu threat scenarios "
              "(%zu DoS, %zu spoofing, %zu disclosure, %zu other)\n",
              threats.size(), dos, spoof, info, threats.size() - dos - spoof - info);

  // Phase 4: SoS composition problems (Waller & Craddock checks).
  const sos::SosComposition composition = sos::build_forestry_sos();
  const auto issues = composition.check();
  std::printf("phase 4  SoS cybersecurity      : %zu systems, %zu contracts, "
              "%zu composition issues\n",
              composition.systems().size(), composition.contracts().size(),
              issues.size());

  // Phase 5: autonomous machinery requirements -> control catalogue.
  const auto controls = risk::control_catalogue();
  const auto countermeasures = risk::countermeasure_catalogue();
  std::printf("phase 5  machinery requirements : %zu controls (21434), "
              "%zu countermeasures (62443)\n",
              controls.size(), countermeasures.size());

  // Merge: combined understanding = assessed TARA + zones + co-analysis.
  risk::Tara tara{item};
  for (auto t : threats) tara.add_threat(std::move(t));
  tara.assess(controls);
  const risk::ZoneModel zones = risk::forestry_zone_model(item);
  const auto fca = risk::build_forestry_coanalysis(tara);
  const auto verdicts = fca.analysis.analyze(tara);
  std::size_t combined_ok = 0;
  for (const auto& v : verdicts) combined_ok += v.combined_ok ? 1 : 0;

  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("merge    combined model         : %zu assessed threats, "
              "%zu zones/%zu conduits, %zu/%zu hazards combined-OK\n",
              tara.results().size(), zones.zones().size(), zones.conduits().size(),
              combined_ok, verdicts.size());
  std::printf("\npipeline wall time: %.1f ms (fully automated re-derivation)\n", ms);

  std::printf("\nshape check: every Figure 3 phase contributes non-trivially and\n"
              "the merge closes over all of them — the 'combined understanding'\n"
              "node of the figure is this executable artifact.\n");
  return 0;
}
