// Fleet-scale hot-loop baseline: steps a worksite with 32 autonomous
// forwarders and 64 human workers for 10 simulated minutes and reports
// steps/sec, so perf regressions in the per-step path (spatial queries,
// separation tracking, pile lookup, radio delivery) show up as a number
// future PRs must not lower. Outcome metrics are printed alongside the
// rate as a cheap cross-check that optimisations did not change what the
// simulation computes.
#include <chrono>
#include <cstdio>
#include <string>

#include "net/radio.h"
#include "sim/worksite.h"

using namespace agrarsec;

namespace {

constexpr std::size_t kForwarders = 32;
constexpr std::size_t kWorkers = 64;

double run_worksite(core::SimDuration sim_duration) {
  sim::WorksiteConfig config;
  config.forest.bounds = {{0, 0}, {500, 500}};
  config.forest.trees_per_hectare = 250;
  config.landing_area = {40, 40};
  // Enough production and short enough handling times that the whole
  // fleet keeps moving — an idle fleet would not exercise the hot loop.
  config.harvester_output_m3_per_min = 60.0;
  config.load_time = 20 * core::kSecond;
  config.unload_time = 15 * core::kSecond;

  sim::Worksite site{config, 42};
  site.add_harvester("h1", {250, 250});
  site.add_harvester("h2", {350, 300});
  for (std::size_t i = 0; i < kForwarders; ++i) {
    site.add_forwarder("f" + std::to_string(i),
                       {60.0 + 12.0 * static_cast<double>(i % 8),
                        60.0 + 15.0 * static_cast<double>(i / 8)});
  }
  for (std::size_t i = 0; i < kWorkers; ++i) {
    const core::Vec2 anchor{80.0 + 45.0 * static_cast<double>(i % 8),
                            80.0 + 45.0 * static_cast<double>(i / 8)};
    site.add_worker("w" + std::to_string(i), anchor, anchor);
  }

  const auto steps = static_cast<std::uint64_t>(sim_duration / config.step);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < steps; ++s) site.step();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double rate = static_cast<double>(steps) / secs;

  std::printf("  %zu forwarders + %zu workers, %lld sim-min: %llu steps in %.3fs"
              " -> %.0f steps/sec\n",
              kForwarders, kWorkers,
              static_cast<long long>(sim_duration / core::kMinute),
              static_cast<unsigned long long>(steps), secs, rate);
  std::printf("  cross-check: delivered=%.1fm3 cycles=%llu min_sep=%.2fm"
              " close<10m=%llu piles=%zu\n",
              site.delivered_m3(),
              static_cast<unsigned long long>(site.completed_cycles()),
              site.min_human_separation(),
              static_cast<unsigned long long>(site.close_encounters(10.0)),
              site.piles().size());
  return rate;
}

double run_radio(std::size_t nodes, std::uint64_t steps) {
  net::RadioConfig config;
  config.latency_jitter = 8;  // non-monotone deliver_at exercises ordering
  net::RadioMedium medium{core::Rng{7}, config};
  std::vector<core::Vec2> positions(nodes);
  std::uint64_t received = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    positions[i] = {static_cast<double>(i % 8) * 40.0,
                    static_cast<double>(i / 8) * 40.0};
    medium.attach(NodeId{i + 1}, [&positions, i] { return positions[i]; },
                  [&received](const net::Frame&, core::SimTime) { ++received; });
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < steps; ++s) {
    const core::SimTime now = static_cast<core::SimTime>(s) * 100;
    for (std::size_t i = 0; i < nodes; ++i) {
      net::Frame f;
      f.src = NodeId{i + 1};
      f.dst = NodeId::invalid();  // broadcast
      f.channel = static_cast<std::uint32_t>(i % 4);
      medium.send(std::move(f), now);
    }
    medium.step(now);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double rate = static_cast<double>(steps) / secs;
  std::printf("  %zu nodes broadcasting, %llu steps in %.3fs -> %.0f steps/sec"
              " (%llu deliveries)\n",
              nodes, static_cast<unsigned long long>(steps), secs, rate,
              static_cast<unsigned long long>(received));
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const core::SimDuration sim_minutes = (quick ? 2 : 10) * core::kMinute;

  std::printf("=== fleet-scale hot-loop benchmark ===\n\n");
  std::printf("worksite step loop:\n");
  run_worksite(sim_minutes);
  std::printf("\nradio medium, jittered broadcast fan-out:\n");
  run_radio(64, quick ? 2000 : 10000);
  return 0;
}
