// Fleet-scale hot-loop baseline with --threads and --sessions axes.
// Steps the 16-machine Figure-1-style site (2 harvesters, 12 forwarders,
// 2 drones, 48 workers, windthrow hazards on) and reports steps/sec at
// threads=1 and at the requested shard count, so both the serial hot
// path and the parallel-stepping speedup show up as numbers future PRs
// must not lower. The --sessions axis does the same one level up: a
// FleetService stepping N independent secured worksite sessions, serial
// vs batched across the pool, reported as session-steps/sec.
//
// Determinism is part of the contract: before timing, a parity
// cross-check runs the same site serially and sharded and compares
// metrics bit-for-bit, the full event-bus sequence, and every machine
// pose. The fleet section extends it per session: every session's
// deterministic telemetry export must be byte-identical across service
// thread counts, and session 0 must match a solo run outside any fleet.
// Any mismatch fails the benchmark (non-zero exit) — a fast wrong
// simulation is not an optimisation.
//
// Lines of the form "BENCH name=value" are machine-readable; CI captures
// them into BENCH_baseline.json and fails on large regressions
// (scripts/bench_gate.py).
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/radio.h"
#include "obs/telemetry.h"
#include "service/fleet_service.h"
#include "sim/worksite.h"

using namespace agrarsec;

namespace {

/// Population/extent preset for the worksite axis. The default preset is
/// the 16-machine Figure-1-style site every baseline key gates on; the
/// large preset (4x machines, 4x workers, 4x area) is the fleet-scale
/// configuration the SoA/work-stealing work targets.
struct SitePreset {
  const char* name;
  std::size_t harvesters;
  std::size_t forwarders;
  std::size_t drones;
  std::size_t workers;
  double extent_m;
  std::size_t worker_cols;  ///< worker-anchor grid width (keeps anchors in bounds)
};
constexpr SitePreset kDefaultPreset{"default", 2, 12, 2, 48, 500.0, 8};
constexpr SitePreset kLargePreset{"large", 4, 48, 8, 192, 1000.0, 16};

// --- FNV-1a digests over simulation outcomes -------------------------------

struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) { bytes(s.data(), s.size()); }
};

sim::WorksiteConfig site_config(const SitePreset& preset) {
  sim::WorksiteConfig config;
  config.forest.bounds = {{0, 0}, {preset.extent_m, preset.extent_m}};
  config.forest.trees_per_hectare = 250;
  config.landing_area = {40, 40};
  // Enough production and short enough handling times that the whole
  // fleet keeps moving — an idle fleet would not exercise the hot loop.
  config.harvester_output_m3_per_min = 60.0;
  config.load_time = 20 * core::kSecond;
  config.unload_time = 15 * core::kSecond;
  // Windthrow on: planner-cache generation invalidation is part of the
  // steady-state load, not a cold path.
  config.weather = sim::Weather::kRain;
  config.windthrow_rate_per_hour = 6.0;
  return config;
}

void populate(sim::Worksite& site, const SitePreset& preset) {
  const double mid = preset.extent_m / 2.0;
  std::vector<MachineId> forwarders;
  for (std::size_t i = 0; i < preset.harvesters; ++i) {
    site.add_harvester("h" + std::to_string(i),
                       {mid + 100.0 * static_cast<double>(i % 4), mid});
  }
  for (std::size_t i = 0; i < preset.forwarders; ++i) {
    forwarders.push_back(
        site.add_forwarder("f" + std::to_string(i),
                           {60.0 + 12.0 * static_cast<double>(i % 8),
                            60.0 + 15.0 * static_cast<double>(i / 8)}));
  }
  for (std::size_t i = 0; i < preset.drones; ++i) {
    const MachineId drone =
        site.add_drone("d" + std::to_string(i), {60.0 + 30.0 * static_cast<double>(i), 50.0});
    site.set_drone_orbit(drone, forwarders[i], 25.0);
  }
  for (std::size_t i = 0; i < preset.workers; ++i) {
    const core::Vec2 anchor{
        80.0 + 45.0 * static_cast<double>(i % preset.worker_cols),
        80.0 + 45.0 * static_cast<double>(i / preset.worker_cols)};
    site.add_worker("w" + std::to_string(i), anchor, anchor);
  }
}

struct RunResult {
  double rate = 0.0;
  std::uint64_t metrics_digest = 0;
  std::uint64_t event_digest = 0;
  std::uint64_t pose_digest = 0;
  sim::Worksite::Metrics metrics;
  /// Deterministic telemetry export (counters + flight recorder, no wall
  /// clock) — must be byte-identical across thread counts.
  std::string telemetry_json;
  std::vector<std::uint64_t> shard_busy_ns;
  std::uint64_t parallel_phase_ns = 0;  ///< span wall time of sharded phases
  /// Dispatch-to-completion wall time summed over the actual parallel
  /// jobs (ThreadPool job observer): excludes the serial work (effect
  /// drains, index rebuilds) that runs inside the same phase spans, so it
  /// is the correct utilization denominator. Always <= parallel_phase_ns.
  std::uint64_t parallel_wall_ns = 0;
};

RunResult run_worksite(std::size_t threads, std::uint64_t steps,
                       const SitePreset& preset = kDefaultPreset,
                       sim::Scheduling scheduling = sim::Scheduling::kStatic,
                       bool write_artifact = false) {
  sim::WorksiteConfig config = site_config(preset);
  config.threads = threads;
  config.scheduling = scheduling;
  sim::Worksite site{config, 42};

  Digest events;
  site.bus().subscribe_all([&events](const core::Event& e) {
    events.str(e.topic);
    events.str(e.payload);
    events.u64(e.origin);
    events.u64(static_cast<std::uint64_t>(e.time));
  });
  populate(site, preset);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < steps; ++s) site.step();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  RunResult r;
  r.rate = static_cast<double>(steps) / secs;
  r.event_digest = events.h;
  r.metrics = site.metrics();

  Digest m;
  m.f64(r.metrics.delivered_m3);
  m.u64(r.metrics.completed_cycles);
  m.f64(r.metrics.min_human_separation);
  m.u64(r.metrics.separation_samples);
  m.u64(r.metrics.route_reuses);
  m.u64(r.metrics.windthrow_events);
  m.u64(r.metrics.planner.plans);
  m.u64(r.metrics.planner.cache_hits);
  m.f64(site.separation_stats().mean());
  m.f64(site.separation_stats().stddev());
  m.u64(site.close_encounters(10.0));
  r.metrics_digest = m.h;

  Digest poses;
  for (const sim::Machine* machine : site.machines()) {
    poses.u64(machine->id().value());
    poses.f64(machine->position().x);
    poses.f64(machine->position().y);
    poses.f64(machine->heading());
    poses.f64(machine->speed());
    poses.f64(machine->load_m3());
    poses.f64(machine->odometer());
  }
  for (const sim::Human* human : site.humans()) {
    poses.f64(human->position().x);
    poses.f64(human->position().y);
  }
  r.pose_digest = poses.h;

  r.telemetry_json = site.telemetry().deterministic_json();
  const obs::Tracer& tracer = site.telemetry().tracer();
  for (std::size_t shard = 0; shard < tracer.shard_count(); ++shard) {
    r.shard_busy_ns.push_back(tracer.shard_busy_ns(shard));
  }
  for (std::size_t i = 0; i < tracer.phase_count(); ++i) {
    const std::string_view name = tracer.phase_name(i);
    if (name == "worksite.decide" || name == "worksite.integrate" ||
        name == "worksite.separation") {
      r.parallel_phase_ns += tracer.stats(i).total_ns;
    }
  }
  r.parallel_wall_ns = tracer.parallel_wall_ns();
  if (write_artifact) {
    obs::write_bench_artifact(site.telemetry(), "bench_fleet_scale");
  }
  return r;
}

/// Per-shard utilization: busy time each pool worker spent inside sharded
/// job bodies, as a fraction of the wall time actually spent dispatched
/// on parallel jobs (parallel_wall_ns, the job-observer sum). The earlier
/// revision divided by the enclosing phase-span totals, which include the
/// serial drains/index work running inside the same spans — that
/// overstated idle fractions; utilization_accounting_ok() pins the fix.
void print_utilization(const char* label, const RunResult& r) {
  if (r.shard_busy_ns.size() <= 1 || r.parallel_wall_ns == 0) return;
  std::printf("  per-shard utilization [%s] (%.1f ms in parallel jobs, "
              "%.1f ms in parallel phases):\n",
              label, static_cast<double>(r.parallel_wall_ns) / 1e6,
              static_cast<double>(r.parallel_phase_ns) / 1e6);
  for (std::size_t shard = 0; shard < r.shard_busy_ns.size(); ++shard) {
    const double busy_ms = static_cast<double>(r.shard_busy_ns[shard]) / 1e6;
    const double frac = static_cast<double>(r.shard_busy_ns[shard]) /
                        static_cast<double>(r.parallel_wall_ns);
    std::printf("    shard %2zu: %8.1f ms busy  %5.1f%%\n", shard, busy_ms,
                100.0 * frac);
  }
}

/// Regression assertion for the utilization denominator: the job-observer
/// wall sum must be a strict subset of the enclosing phase spans (it
/// excludes their serial segments), and no shard can be busier than the
/// jobs were long. A violation counts as a parity mismatch — wrong
/// utilization numbers have steered real scheduling decisions.
bool utilization_accounting_ok(const RunResult& r) {
  if (r.parallel_wall_ns > r.parallel_phase_ns) return false;
  for (const std::uint64_t busy : r.shard_busy_ns) {
    if (busy > r.parallel_wall_ns) return false;
  }
  return true;
}

// --- fleet-service --sessions axis -----------------------------------------

/// One fleet session: the full secured stack over a thinner stand, busy
/// enough that every session exercises sensing, radio and safety per step.
integration::SecuredWorksiteConfig fleet_session_config() {
  integration::SecuredWorksiteConfig config;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.harvester_output_m3_per_min = 30.0;
  config.worksite.load_time = 15 * core::kSecond;
  config.worksite.unload_time = 10 * core::kSecond;
  return config;
}

struct FleetRunResult {
  double rate = 0.0;  ///< aggregate session-steps/sec across the fleet
  std::vector<std::string> session_exports;  ///< deterministic, key order
  std::uint64_t sessions_stepped = 0;
};

FleetRunResult run_fleet(std::size_t threads, std::size_t sessions,
                         std::uint64_t steps, std::size_t artifact_count) {
  service::FleetServiceConfig config;
  config.threads = threads;
  config.fleet_seed = 4242;
  service::FleetService fleet{config};

  std::vector<service::SessionId> ids;
  for (std::uint64_t key = 0; key < sessions; ++key) {
    const service::SessionId id =
        fleet.create_session_keyed(fleet_session_config(), key);
    ids.push_back(id);
    integration::SecuredWorksite& site = *fleet.session(id);
    for (int w = 0; w < 2; ++w) {
      site.worksite().add_worker("w" + std::to_string(w),
                                 {75.0 + 10.0 * w, 60.0}, {80, 80});
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  fleet.step_all(steps);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  FleetRunResult r;
  r.rate = static_cast<double>(sessions) * static_cast<double>(steps) / secs;
  r.sessions_stepped = steps == 0 ? 0 : fleet.total_session_steps() / steps;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    r.session_exports.push_back(fleet.session_deterministic_json(ids[k]));
    // Per-session telemetry artifacts for CI upload (capped: 64 sessions
    // would flood the artifact store; the first few cover the contract).
    if (k < artifact_count) {
      fleet.session(ids[k])->telemetry().write_json(obs::artifact_path(
          "bench_fleet_scale.session" + std::to_string(k) + ".telemetry.json"));
    }
  }
  return r;
}

// --- batched line-of-sight micro-bench --------------------------------------

struct LosResult {
  double rays_per_sec = 0.0;
  int mismatches = 0;  ///< batch result != per-ray result (spot check)
};

/// Streams perception-shaped sight-line bundles through
/// Terrain::occlusion_cause_batch: 64 sensor frames (half ground-mast,
/// half drone-altitude origins) x 96 targets over a dense stand. Every
/// 17th ray is re-resolved through the per-ray entry point and compared —
/// a batch that is fast but different is a parity failure, same contract
/// as the step benchmarks.
LosResult run_los(std::uint64_t rounds) {
  sim::ForestConfig forest;  // defaults: 500x500, 400 stems/ha, 6 hills
  core::Rng terrain_rng{99};
  const sim::Terrain terrain = sim::Terrain::generate(forest, terrain_rng);

  constexpr std::size_t kFrames = 64;
  constexpr std::size_t kRays = 96;
  core::Rng rng{1234};
  std::vector<core::Vec2> origins(kFrames);
  std::vector<double> agls(kFrames);
  std::vector<std::vector<sim::Terrain::LosTarget>> bundles(kFrames);
  for (std::size_t f = 0; f < kFrames; ++f) {
    origins[f] = {rng.uniform(40.0, 460.0), rng.uniform(40.0, 460.0)};
    agls[f] = (f % 2 == 0) ? 2.5 : 40.0;  // forwarder mast / drone altitude
    bundles[f].resize(kRays);
    for (std::size_t i = 0; i < kRays; ++i) {
      const double angle = rng.uniform(0.0, 6.283185307179586);
      const double dist = rng.uniform(5.0, 90.0);
      core::Vec2 to = origins[f] + core::Vec2{std::cos(angle), std::sin(angle)} * dist;
      to = forest.bounds.clamp(to);
      bundles[f][i] = {to, rng.uniform(1.0, 2.0)};
    }
  }

  LosResult r;
  std::vector<sim::Terrain::OcclusionCause> causes;
  std::uint64_t resolved = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (std::size_t f = 0; f < kFrames; ++f) {
      terrain.occlusion_cause_batch(origins[f], agls[f], bundles[f], causes);
      resolved += causes.size();
      if (round == 0) {
        for (std::size_t i = 0; i < kRays; i += 17) {
          if (causes[i] != terrain.occlusion_cause(origins[f], agls[f],
                                                   bundles[f][i].to_xy,
                                                   bundles[f][i].to_agl)) {
            ++r.mismatches;
            std::printf("  LOS MISMATCH: frame %zu ray %zu batch != per-ray\n",
                        f, i);
          }
        }
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.rays_per_sec = static_cast<double>(resolved) / secs;
  std::printf("  %zu frames x %zu rays x %llu rounds in %.3fs -> %.0f rays/sec"
              " (%d spot-check mismatches)\n",
              kFrames, kRays, static_cast<unsigned long long>(rounds), secs,
              r.rays_per_sec, r.mismatches);
  return r;
}

struct RadioResult {
  double rate = 0.0;
  std::uint64_t dropped = 0;  ///< frames lost to loss/collision/jam/drop
};

RadioResult run_radio(std::size_t nodes, std::uint64_t steps) {
  net::RadioConfig config;
  config.latency_jitter = 8;  // non-monotone deliver_at exercises ordering
  net::RadioMedium medium{core::Rng{7}, config};
  std::vector<core::Vec2> positions(nodes);
  std::uint64_t received = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    positions[i] = {static_cast<double>(i % 8) * 40.0,
                    static_cast<double>(i / 8) * 40.0};
    medium.attach(NodeId{i + 1}, [&positions, i] { return positions[i]; },
                  [&received](const net::Frame&, core::SimTime) { ++received; });
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t s = 0; s < steps; ++s) {
    const core::SimTime now = static_cast<core::SimTime>(s) * 100;
    for (std::size_t i = 0; i < nodes; ++i) {
      net::Frame f;
      f.src = NodeId{i + 1};
      f.dst = NodeId::invalid();  // broadcast
      f.channel = static_cast<std::uint32_t>(i % 4);
      medium.send(std::move(f), now);
    }
    medium.step(now);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  RadioResult r;
  r.rate = static_cast<double>(steps) / secs;
  r.dropped = medium.count(net::DeliveryOutcome::kPathLoss) +
              medium.count(net::DeliveryOutcome::kCollision) +
              medium.count(net::DeliveryOutcome::kJammed) +
              medium.count(net::DeliveryOutcome::kDropped);
  std::printf("  %zu nodes broadcasting, %llu steps in %.3fs -> %.0f steps/sec"
              " (%llu deliveries, %llu dropped)\n",
              nodes, static_cast<unsigned long long>(steps), secs, r.rate,
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(r.dropped));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  bool quick = false;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  std::size_t sessions = 0;  // 0 = default per mode (64 full, 8 quick)
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<std::size_t>(std::strtoull(arg.c_str() + 10, nullptr, 10));
      if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    } else if (arg.rfind("--sessions=", 0) == 0) {
      sessions = static_cast<std::size_t>(std::strtoull(arg.c_str() + 11, nullptr, 10));
    } else if (arg == "--sessions" && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    }
  }
  if (sessions == 0) sessions = quick ? 8 : 64;

  const std::uint64_t steps =
      static_cast<std::uint64_t>((quick ? 2 : 10) * core::kMinute) / 100;

  std::printf("=== fleet-scale hot-loop benchmark ===\n\n");
  std::printf("worksite [default]: %zu machines (%zuh+%zuf+%zud) + %zu workers,"
              " %llu steps\n",
              kDefaultPreset.harvesters + kDefaultPreset.forwarders +
                  kDefaultPreset.drones,
              kDefaultPreset.harvesters, kDefaultPreset.forwarders,
              kDefaultPreset.drones, kDefaultPreset.workers,
              static_cast<unsigned long long>(steps));

  const RunResult serial = run_worksite(1, steps);
  std::printf("  threads=1:  %.0f steps/sec\n", serial.rate);
  const RunResult sharded =
      run_worksite(threads, steps, kDefaultPreset, sim::Scheduling::kStatic,
                   /*write_artifact=*/true);
  std::printf("  threads=%zu: %.0f steps/sec (%.2fx) [static]\n", threads,
              sharded.rate, sharded.rate / serial.rate);
  const RunResult stealing =
      run_worksite(threads, steps, kDefaultPreset, sim::Scheduling::kWorkStealing);
  std::printf("  threads=%zu: %.0f steps/sec (%.2fx) [work-stealing]\n", threads,
              stealing.rate, stealing.rate / serial.rate);

  print_utilization("static", sharded);
  print_utilization("work-stealing", stealing);
  std::printf("  cross-check: delivered=%.1fm3 cycles=%llu min_sep=%.2fm"
              " windthrow=%llu reuses=%llu\n",
              serial.metrics.delivered_m3,
              static_cast<unsigned long long>(serial.metrics.completed_cycles),
              serial.metrics.min_human_separation,
              static_cast<unsigned long long>(serial.metrics.windthrow_events),
              static_cast<unsigned long long>(serial.metrics.route_reuses));

  // Serial-vs-parallel parity: all three digests must match bit-for-bit.
  int mismatches = 0;
  if (serial.metrics_digest != sharded.metrics_digest) {
    ++mismatches;
    std::printf("  PARITY MISMATCH: metrics digest %016llx != %016llx\n",
                static_cast<unsigned long long>(serial.metrics_digest),
                static_cast<unsigned long long>(sharded.metrics_digest));
  }
  if (serial.event_digest != sharded.event_digest) {
    ++mismatches;
    std::printf("  PARITY MISMATCH: event digest %016llx != %016llx\n",
                static_cast<unsigned long long>(serial.event_digest),
                static_cast<unsigned long long>(sharded.event_digest));
  }
  if (serial.pose_digest != sharded.pose_digest) {
    ++mismatches;
    std::printf("  PARITY MISMATCH: pose digest %016llx != %016llx\n",
                static_cast<unsigned long long>(serial.pose_digest),
                static_cast<unsigned long long>(sharded.pose_digest));
  }
  // Telemetry export parity: counters and flight-recorder events must be
  // byte-identical across thread counts (the wall-clock annex is excluded
  // from the deterministic export by design).
  if (serial.telemetry_json != sharded.telemetry_json) {
    ++mismatches;
    std::printf("  PARITY MISMATCH: deterministic telemetry export differs\n");
  }
  // Work-stealing parity: the chunked self-scheduled assignment must be as
  // bit-identical to the serial run as the static one is.
  if (serial.metrics_digest != stealing.metrics_digest ||
      serial.event_digest != stealing.event_digest ||
      serial.pose_digest != stealing.pose_digest ||
      serial.telemetry_json != stealing.telemetry_json) {
    ++mismatches;
    std::printf("  PARITY MISMATCH: work-stealing run differs from serial\n");
  }
  if (!utilization_accounting_ok(sharded) || !utilization_accounting_ok(stealing)) {
    ++mismatches;
    std::printf("  ACCOUNTING MISMATCH: parallel-job wall exceeds phase spans"
                " (utilization denominator regressed)\n");
  }
  std::printf("  parity: %d mismatches (threads=1 vs threads=%zu)\n", mismatches,
              threads);

  // Large preset: the fleet-scale site the SoA layout and work stealing
  // target. Serial rate gates in the baseline; the parallel run doubles
  // as an adaptive-mode parity check at scale.
  const std::uint64_t large_steps = quick ? 120 : 600;
  std::printf("\nworksite [large]: %zu machines (%zuh+%zuf+%zud) + %zu workers,"
              " %llu steps\n",
              kLargePreset.harvesters + kLargePreset.forwarders + kLargePreset.drones,
              kLargePreset.harvesters, kLargePreset.forwarders, kLargePreset.drones,
              kLargePreset.workers, static_cast<unsigned long long>(large_steps));
  const RunResult large_serial = run_worksite(1, large_steps, kLargePreset);
  std::printf("  threads=1:  %.0f steps/sec\n", large_serial.rate);
  const RunResult large_sharded =
      run_worksite(threads, large_steps, kLargePreset, sim::Scheduling::kAdaptive);
  std::printf("  threads=%zu: %.0f steps/sec (%.2fx) [adaptive]\n", threads,
              large_sharded.rate, large_sharded.rate / large_serial.rate);
  print_utilization("large adaptive", large_sharded);
  if (large_serial.metrics_digest != large_sharded.metrics_digest ||
      large_serial.event_digest != large_sharded.event_digest ||
      large_serial.pose_digest != large_sharded.pose_digest ||
      large_serial.telemetry_json != large_sharded.telemetry_json) {
    ++mismatches;
    std::printf("  PARITY MISMATCH: large-preset adaptive run differs from serial\n");
  }
  if (!utilization_accounting_ok(large_sharded)) {
    ++mismatches;
    std::printf("  ACCOUNTING MISMATCH: large-preset parallel-job wall exceeds"
                " phase spans\n");
  }

  // Fleet-service axis: N independent secured-worksite sessions batched
  // across the pool, one session per work item. Aggregate throughput is
  // session-steps/sec; parity is per-session byte-identical deterministic
  // exports between thread counts AND against a session running alone
  // (fleet size must be unobservable from inside a session).
  const std::uint64_t fleet_steps = quick ? 50 : 200;
  std::printf("\nfleet service: %zu sessions x %llu steps\n", sessions,
              static_cast<unsigned long long>(fleet_steps));
  const FleetRunResult fleet_serial = run_fleet(1, sessions, fleet_steps, 0);
  std::printf("  threads=1:  %.0f session-steps/sec\n", fleet_serial.rate);
  const FleetRunResult fleet_sharded =
      run_fleet(threads, sessions, fleet_steps, std::min<std::size_t>(sessions, 8));
  const double fleet_speedup = fleet_sharded.rate / fleet_serial.rate;
  std::printf("  threads=%zu: %.0f session-steps/sec (%.2fx)\n", threads,
              fleet_sharded.rate, fleet_speedup);
  const FleetRunResult fleet_solo = run_fleet(1, 1, fleet_steps, 0);

  int fleet_mismatches = 0;
  for (std::size_t k = 0; k < sessions; ++k) {
    if (fleet_serial.session_exports[k] != fleet_sharded.session_exports[k]) {
      ++fleet_mismatches;
      std::printf("  FLEET PARITY MISMATCH: session %zu export differs"
                  " (threads=1 vs threads=%zu)\n", k, threads);
    }
  }
  if (fleet_solo.session_exports[0] != fleet_serial.session_exports[0]) {
    ++fleet_mismatches;
    std::printf("  FLEET PARITY MISMATCH: session 0 alone differs from"
                " session 0 in a %zu-session fleet\n", sessions);
  }
  std::printf("  parity: %d mismatches (%zu sessions x {threads 1, %zu}, solo"
              " cross-check)\n", fleet_mismatches, sessions, threads);
  mismatches += fleet_mismatches;

  std::printf("\nbatched line-of-sight resolve, perception-shaped bundles:\n");
  const LosResult los = run_los(quick ? 20 : 100);
  mismatches += los.mismatches;

  std::printf("\nradio medium, jittered broadcast fan-out:\n");
  const RadioResult radio = run_radio(64, quick ? 2000 : 10000);

  // Machine-readable summary for the CI regression gate. Only the serial
  // rate gates: the parallel rate depends on the runner's core count.
  // "*_exact" metrics are deterministic semantics, not rates: bench_gate.py
  // requires them to match the baseline exactly (full-length run) in both
  // directions, so a behaviour change to the planner cache or the radio
  // loss model cannot hide inside the perf tolerance.
  std::printf("\nBENCH worksite_steps_per_sec=%.0f\n", serial.rate);
  std::printf("BENCH worksite_steps_per_sec_parallel=%.0f\n", sharded.rate);
  std::printf("BENCH worksite_steps_per_sec_parallel_ws=%.0f\n", stealing.rate);
  std::printf("BENCH worksite_steps_per_sec_large=%.0f\n", large_serial.rate);
  std::printf("BENCH worksite_steps_per_sec_large_parallel=%.0f\n",
              large_sharded.rate);
  std::printf("BENCH los_rays_per_sec=%.0f\n", los.rays_per_sec);
  std::printf("BENCH parity_mismatches=%d\n", mismatches);
  std::printf("BENCH fleet_session_steps_per_sec=%.0f\n", fleet_serial.rate);
  std::printf("BENCH fleet_session_steps_per_sec_parallel=%.0f\n",
              fleet_sharded.rate);
  std::printf("BENCH fleet_parity_mismatches=%d\n", fleet_mismatches);
  std::printf("BENCH radio_steps_per_sec=%.0f\n", radio.rate);
  if (!quick) {
    const double hit_rate =
        serial.metrics.planner.plans == 0
            ? 0.0
            : static_cast<double>(serial.metrics.planner.cache_hits) /
                  static_cast<double>(serial.metrics.planner.plans);
    std::printf("BENCH planner_cache_hit_rate_exact=%.6f\n", hit_rate);
    std::printf("BENCH fleet_sessions_stepped_exact=%llu\n",
                static_cast<unsigned long long>(fleet_sharded.sessions_stepped));
    std::printf("BENCH radio_dropped_frames_exact=%llu\n",
                static_cast<unsigned long long>(radio.dropped));
  }
  return mismatches == 0 ? 0 : 1;
}
