// Table I reproduction: the eight forestry-domain characteristics,
// re-derived as *quantified* rows by running the TARA over the
// characteristic-tagged threat catalogue. For each row: the threats it
// contributes, worst initial risk, worst residual risk after the control
// stack, and the highest CAL it demands.
#include <cstdio>

#include "risk/catalog.h"

#include "obs/telemetry.h"

using namespace agrarsec;

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_table1_characteristics.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_table1_characteristics"};

  std::printf("=== Table I: forestry-domain characteristics, quantified ===\n\n");

  const risk::Tara tara = risk::build_forestry_tara();
  const auto characteristics = risk::table1_characteristics();
  const auto rollup = tara.by_characteristic();

  std::printf("%-32s %8s %9s %9s %6s\n", "characteristic (Table I row)", "threats",
              "max-risk", "residual", "CAL");
  std::printf("--------------------------------------------------------------------"
              "-------\n");
  for (const auto& c : characteristics) {
    for (const auto& row : rollup) {
      if (row.characteristic != c.name) continue;
      std::printf("%-32s %8zu %9d %9d %6s\n", c.name.c_str(), row.threats,
                  row.max_initial_risk, row.max_residual_risk,
                  std::string(risk::cal_name(row.max_cal)).c_str());
    }
  }

  std::printf("\ntotals: %zu threat scenarios, max risk %d -> residual %d\n",
              tara.results().size(), tara.max_initial_risk(),
              tara.max_residual_risk());
  std::printf("threats at risk >= 4: %zu initial -> %zu residual\n",
              tara.count_at_or_above(4, false), tara.count_at_or_above(4, true));

  std::printf("\nper-row descriptions (paper text):\n");
  for (const auto& c : characteristics) {
    std::printf("  %-32s %.60s...\n", c.name.c_str(), c.description.c_str());
  }

  std::printf("\nshape check: 'Heavy Machinery' and 'Autonomous Machinery' rows\n"
              "carry the top (severe-safety) risks, matching the paper's emphasis\n"
              "that threats compromising safety are the gravest concern.\n");
  return 0;
}
