// §III-D reproduction: sensing validity across environmental conditions.
// The paper argues that validating perception across weather is a core
// challenge for simulation-based development; this bench produces the
// sensitivity tables such a validation campaign would target:
//   (a) raw per-modality detection probability vs distance and weather,
//   (b) end-to-end safety coverage of the worksite per weather, with the
//       SOTIF attribution of the blind steps.
#include <cstdio>
#include <string>

#include "integration/secured_worksite.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

double detection_rate(sensors::Modality modality, sim::Weather weather,
                      double distance) {
  sim::WorksiteConfig site_config;
  site_config.forest.bounds = {{0, 0}, {300, 300}};
  site_config.forest.trees_per_hectare = 0;
  site_config.forest.boulders_per_hectare = 0;
  site_config.forest.brush_per_hectare = 0;
  site_config.forest.hill_count = 0;
  site_config.weather = weather;
  sim::Worksite site{site_config, 5};
  const auto fw = site.add_forwarder("f", {50, 50});
  site.add_worker("w", {50 + distance, 50}, {50 + distance, 50});

  sensors::PerceptionConfig config;
  config.modality = modality;
  config.range_m = 40.0;
  sensors::PerceptionSensor sensor{SensorId{1}, config};
  core::Rng rng{7};
  int hits = 0;
  constexpr int kFrames = 1000;
  for (int i = 0; i < kFrames; ++i) {
    hits += static_cast<int>(
        !sensor.sense(site, *site.machine(fw), i, rng).empty());
  }
  return static_cast<double>(hits) / kFrames;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_weather_sotif.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_weather_sotif"};

  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const core::SimDuration duration = (quick ? 5 : 12) * core::kMinute;

  std::printf("=== weather sensitivity of the perception stack (§III-D) ===\n\n");

  std::printf("(a) raw per-frame detection probability, open field:\n");
  std::printf("%-8s %-8s | %7s %7s %7s %7s\n", "sensor", "weather", "10m", "20m",
              "30m", "38m");
  for (const auto modality : {sensors::Modality::kLidar, sensors::Modality::kCamera}) {
    for (const auto weather : {sim::Weather::kClear, sim::Weather::kRain,
                               sim::Weather::kFog, sim::Weather::kSnow}) {
      std::printf("%-8s %-8s |", std::string(sensors::modality_name(modality)).c_str(),
                  std::string(sim::weather_name(weather)).c_str());
      for (const double d : {10.0, 20.0, 30.0, 38.0}) {
        std::printf(" %6.2f", detection_rate(modality, weather, d));
      }
      std::printf("\n");
    }
  }

  std::printf("\n(b) end-to-end zone coverage per weather "
              "(occluded stand, %lld min):\n",
              static_cast<long long>(duration / core::kMinute));
  std::printf("%-8s | %-22s | %-22s\n", "", "forwarder-only", "forwarder + drone");
  std::printf("%-8s | %10s %10s | %10s %10s\n", "weather", "coverage", "blindfast",
              "coverage", "blindfast");
  for (const auto weather : {sim::Weather::kClear, sim::Weather::kRain,
                             sim::Weather::kFog, sim::Weather::kSnow}) {
    double coverage[2];
    std::uint64_t blind[2];
    for (const bool drone : {false, true}) {
      integration::SecuredWorksiteConfig config;
      config.seed = 11;
      config.drone_enabled = drone;
      config.worksite.weather = weather;
      config.worksite.forest.boulders_per_hectare = 64;
      config.worksite.forest.brush_per_hectare = 96;
      config.worksite.forest.boulder_height_mean = 2.2;
      config.worksite.forest.brush_height_mean = 1.8;
      integration::SecuredWorksite site{config};
      for (int i = 0; i < 4; ++i) {
        site.worksite().add_worker("w" + std::to_string(i), {70.0 + 12 * i, 65.0},
                                   {90, 90});
      }
      site.run_for(duration);
      coverage[drone ? 1 : 0] = site.safety_outcome().coverage();
      blind[drone ? 1 : 0] = site.safety_outcome().blind_fast_steps;
    }
    std::printf("%-8s | %9.1f%% %10lu | %9.1f%% %10lu\n",
                std::string(sim::weather_name(weather)).c_str(), 100.0 * coverage[0],
                static_cast<unsigned long>(blind[0]), 100.0 * coverage[1],
                static_cast<unsigned long>(blind[1]));
  }

  std::printf("\nshape check: table (a) exposes the per-modality asymmetry (fog\n"
              "collapses the camera's envelope far sooner than the lidar's);\n"
              "table (b) shows the close-orbit drone still covers the warning\n"
              "zone in all weathers because its stand-off stays inside the\n"
              "shrunken envelope — the kind of interaction a §III-D validation\n"
              "matrix must cover before crediting the drone as a safety function.\n");
  return 0;
}
