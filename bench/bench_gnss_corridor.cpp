// Corridor-departure experiment: GNSS spoofing walks an autonomous
// forwarder off its extraction corridor (the "gnss-spoof-walkoff" threat
// and "corridor-departure" hazard of the co-analysis), and the
// plausibility monitor (GNSS/odometry cross-check) restores the safe
// state. The navigation loop believes the GNSS fix; a slow spoof drift
// therefore translates 1:1 into physical cross-track error until the
// innovation gate fires.
#include <cstdio>
#include <string>

#include "core/stats.h"
#include "sensors/gnss.h"
#include "sim/machine.h"

#include "obs/telemetry.h"

using namespace agrarsec;

namespace {

struct CorridorResult {
  double max_cross_track = 0.0;    ///< worst physical deviation (m)
  double final_cross_track = 0.0;
  bool stopped_by_monitor = false;
  core::SimTime detection_time = -1;
};

/// Follows a straight corridor along +x at y=0 for `duration`, navigating
/// on GNSS fixes. Dead reckoning integrates commanded motion and is
/// periodically used by the plausibility monitor (when enabled).
CorridorResult drive_corridor(const sensors::GnssAttack& attack, bool monitor_on,
                              core::SimDuration duration, std::uint64_t seed) {
  sim::MachineConfig machine_config;
  sim::Machine forwarder{MachineId{1}, sim::MachineKind::kForwarder, "f1",
                         {0, 0}, machine_config};
  sensors::GnssReceiver gnss{SensorId{1},
                             sensors::GnssConfig{.noise_sigma_m = 0.5,
                                                 .canopy_factor = 1.5,
                                                 .fix_probability = 0.99}};
  sensors::GnssReceiver attacked = gnss;
  attacked.set_attack(attack);
  sensors::GnssPlausibilityMonitor monitor{8.0};
  core::Rng rng{seed};

  // Dead reckoning state: starts aligned with truth and accumulates the
  // machine's own odometry (in the simulator, odometry is exact, so dead
  // reckoning tracks truth with only integration drift we model as zero —
  // conservative *against* the defence, since real odometry drifts).
  core::Vec2 dead_reckoned = forwarder.position();
  core::Vec2 last_true = forwarder.position();

  CorridorResult result;
  const core::SimDuration step = 100;
  for (core::SimTime now = 0; now < duration; now += step) {
    // Navigation cycle at 1 Hz: fix -> believed position -> steer to the
    // corridor point 25 m ahead *of the believed position*.
    if (now % core::kSecond == 0) {
      const auto fix = attacked.fix(forwarder.position(), now, rng);
      if (fix) {
        if (monitor_on && monitor.check(*fix, dead_reckoned)) {
          // Innovation gate fired: navigation integrity lost -> safe stop.
          forwarder.emergency_stop(true);
          result.stopped_by_monitor = true;
          if (result.detection_time < 0) result.detection_time = now;
        } else {
          const core::Vec2 believed = fix->position;
          // Corridor point ahead, expressed relative to belief. The
          // command "go to (x+25, 0)" lands at a physically shifted spot
          // when the belief is shifted.
          const core::Vec2 target{believed.x + 25.0, 0.0};
          const core::Vec2 offset = target - believed;  // intended motion
          forwarder.set_route({forwarder.position() + offset});
        }
      }
    }

    forwarder.step(step);
    dead_reckoned = dead_reckoned + (forwarder.position() - last_true);
    last_true = forwarder.position();

    const double cross_track = std::abs(forwarder.position().y);
    result.max_cross_track = std::max(result.max_cross_track, cross_track);
  }
  result.final_cross_track = std::abs(forwarder.position().y);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  agrarsec::obs::consume_artifact_dir_flag(argc, argv);
  // Writes bench_gnss_corridor.telemetry.json (registry + wall time) at exit.
  agrarsec::obs::BenchArtifact artifact{"bench_gnss_corridor"};

  constexpr core::SimDuration kRun = 4 * core::kMinute;

  std::printf("=== GNSS spoofing vs corridor keeping ===\n");
  std::printf("straight 25 m-lookahead corridor follow, %lld sim-minutes\n\n",
              static_cast<long long>(kRun / core::kMinute));
  std::printf("%-34s %-10s %12s %12s %10s\n", "attack", "monitor", "max-xtrack",
              "final-xtrack", "detected");
  std::printf("--------------------------------------------------------------------"
              "------\n");

  struct Case {
    const char* name;
    sensors::GnssAttack attack;
  };
  // Spoof drift pushes the *believed* position along +y, so the controller
  // steers the machine to -y: physical corridor departure.
  sensors::GnssAttack honest{};
  sensors::GnssAttack jump{};
  jump.active_spoof = true;
  jump.spoof_offset = {0.0, 40.0};
  sensors::GnssAttack creep{};
  creep.active_spoof = true;
  creep.spoof_drift_mps = 0.15;
  creep.spoof_drift_dir = {0.0, 1.0};  // push belief off-corridor

  const Case cases[] = {{"none", honest},
                        {"jump spoof (+40 m)", jump},
                        {"slow walk-off (0.15 m/s drift)", creep}};

  for (const Case& c : cases) {
    for (const bool monitor_on : {false, true}) {
      const CorridorResult r = drive_corridor(c.attack, monitor_on, kRun, 99);
      std::printf("%-34s %-10s %10.1fm %10.1fm %10s\n", c.name,
                  monitor_on ? "on" : "off", r.max_cross_track,
                  r.final_cross_track,
                  r.stopped_by_monitor
                      ? (std::to_string(r.detection_time / core::kSecond) + "s").c_str()
                      : "-");
    }
  }

  std::printf("\nshape check: without the plausibility monitor, the jump spoof\n"
              "yanks the machine ~40 m off the corridor and the slow walk-off\n"
              "accumulates unboundedly; with the GNSS/odometry gate the jump is\n"
              "caught at once and the creep at the gate radius — the machine\n"
              "stops inside (or just outside) the cleared corridor. This is the\n"
              "'gnss-spoof-walkoff -> corridor-departure' edge of the\n"
              "co-analysis, closed by the 'gnss-plausibility' control.\n");
  return 0;
}
