// agrarsec-lint: static security-architecture analyzer CLI.
//
// Lints the assembled zone/TARA/GSN/PKI models of this repository — the
// same models the examples build — and emits compiler-style diagnostics.
// Pure graph reasoning, fully deterministic: two runs over the same model
// produce byte-identical output, so CI can gate on new findings via the
// baseline file.
//
//   agrarsec_lint [--model=risk|assurance|pki|all|defective]
//                 [--format=text|json] [--baseline=FILE]
//                 [--write-baseline=FILE] [--coverage-json[=FILE]]
//                 [--list-rules] [--stats[=FILE]]
//
// --stats emits analyzer self-telemetry (rules run, findings per rule
// family, per-pass wall time) through the repo's obs registry — the same
// machinery the simulation exports — as JSON to FILE, or to stderr so
// --format=json pipelines keep a clean stdout.
//
// --coverage-json writes the TARA->IDS->scenario coverage matrix
// (DESIGN.md §15.3) to FILE, or to stdout when no findings report was
// requested there.
//
// Exit codes: 0 = no error-severity findings beyond the baseline,
//             1 = un-baselined error findings, 2 = usage/IO error,
//             3 = model construction failed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/baseline.h"
#include "analysis/coverage.h"
#include "assurance/cascade.h"
#include "ids/rule_table.h"
#include "assurance/compliance.h"
#include "core/time.h"
#include "crypto/random.h"
#include "obs/telemetry.h"
#include "pki/authority.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "risk/catalog.h"
#include "risk/coanalysis.h"
#include "risk/iec62443.h"

using namespace agrarsec;

namespace {

/// Owning storage behind the const pointers of analysis::Model.
struct ModelBundle {
  std::optional<risk::Tara> tara;
  std::optional<risk::ZoneModel> zones;
  std::vector<risk::Countermeasure> countermeasures;
  std::vector<risk::Control> controls;
  std::vector<risk::ForestryCharacteristic> characteristics;
  std::optional<assurance::CascadeResult> sac;
  std::optional<assurance::ArgumentModel> argument;  ///< used when no sac
  std::optional<assurance::EvidenceRegistry> evidence;
  std::optional<assurance::ComplianceMap> compliance;
  std::optional<pki::TrustStore> trust;
  std::vector<analysis::PkiEndpoint> endpoints;
  std::vector<ids::DetectionRuleInfo> ids_rules;
  std::vector<analysis::ExecutableScenario> scenarios;

  [[nodiscard]] analysis::Model view() const {
    analysis::Model model;
    if (tara) {
      model.tara = &*tara;
      model.item = &tara->item();
    }
    if (zones) {
      model.zones = &*zones;
      model.countermeasures = &countermeasures;
    }
    if (!controls.empty()) model.controls = &controls;
    if (!characteristics.empty()) model.characteristics = &characteristics;
    if (sac) model.argument = &sac->argument;
    if (argument) model.argument = &*argument;
    if (evidence) model.evidence = &*evidence;
    if (compliance) model.compliance = &*compliance;
    if (trust) {
      model.trust = &*trust;
      model.endpoints = &endpoints;
    }
    if (!ids_rules.empty()) model.ids_rules = &ids_rules;
    if (!scenarios.empty()) model.scenarios = &scenarios;
    return model;
  }
};

/// The model examples/risk_assessment.cpp assembles: the forestry TARA,
/// the IEC 62443 zone model over its item, and both catalogues.
void add_risk_model(ModelBundle& bundle) {
  bundle.tara = risk::build_forestry_tara();
  bundle.zones = risk::forestry_zone_model(bundle.tara->item());
  bundle.countermeasures = risk::countermeasure_catalogue();
  bundle.controls = risk::control_catalogue();
  bundle.characteristics = risk::table1_characteristics();
  // Coverage layer: the shipped IDS rule table and scenario registry.
  bundle.ids_rules = ids::detection_rule_table();
  bundle.scenarios = analysis::scenario_registry();
}

/// The model examples/assurance_case.cpp assembles: CASCADE-generated SAC
/// extended with the co-analysis leg, plus the EU 2023/1230 / CRA
/// compliance mapping used there.
void add_assurance_model(ModelBundle& bundle) {
  if (!bundle.tara) bundle.tara = risk::build_forestry_tara();
  bundle.evidence.emplace();
  bundle.sac = assurance::build_security_case(*bundle.tara, *bundle.evidence);
  const auto fca = risk::build_forestry_coanalysis(*bundle.tara);
  assurance::extend_with_coanalysis(*bundle.sac, fca.analysis.analyze(*bundle.tara),
                                    *bundle.evidence);

  bundle.compliance.emplace(assurance::machinery_requirements());
  bundle.compliance->map("MR-1.1.9", "G-top");
  bundle.compliance->map("MR-1.2.1", "G-asset-estop-function");
  bundle.compliance->map("MR-1.2.1", "G-interplay");
  bundle.compliance->map("MR-1.1.6", "G-asset-mission-control");
  bundle.compliance->map("MR-1.2.2", "G-asset-m2m-radio-link");
  bundle.compliance->map("MR-1.3.7", "G-asset-people-detection-chain");
  bundle.compliance->map("CRA-SUR-1", "G-asset-forwarder-firmware");
  bundle.compliance->map("CRA-SUR-2", "G-asset-audit-log");
}

/// The PKI trust relationships of the secured worksite: a site root CA,
/// and the machine/drone/operator endpoints enrolled under it.
void add_pki_model(ModelBundle& bundle) {
  crypto::Drbg drbg(1, "agrarsec-lint");
  auto ca = pki::CertificateAuthority::create_root("site-ca", drbg.generate32(), 0,
                                                   1000 * core::kHour);
  bundle.trust.emplace();
  if (auto status = bundle.trust->add_root(ca.certificate()); !status.ok()) {
    throw std::logic_error("trust store rejected root: " + status.error().to_string());
  }

  const struct {
    const char* subject;
    pki::CertRole role;
  } kEndpoints[] = {
      {"forwarder-01", pki::CertRole::kMachine},
      {"drone-01", pki::CertRole::kDrone},
      {"operator-station", pki::CertRole::kOperatorStation},
  };
  for (const auto& endpoint : kEndpoints) {
    auto identity = pki::enroll(ca, drbg, endpoint.subject, endpoint.role, 0,
                                1000 * core::kHour);
    if (!identity.ok()) throw std::logic_error("enrollment failed");
    bundle.endpoints.push_back({endpoint.subject, identity.value().chain});
  }
}

/// A deliberately broken model: one seeded defect per rule family, used by
/// CI to prove the non-zero exit path and by demos to show the output.
void add_defective_model(ModelBundle& bundle) {
  // ZC001/ZC002/ZC003/ZC004: undeclared conduit endpoint, SL gap, a
  // bridging conduit with no compensating countermeasure, unzoned asset.
  bundle.tara.emplace(risk::forestry_item(), risk::TaraConfig{
                                                 .reduce_threshold = 6,
                                                 .avoid_threshold = 6,
                                             });
  for (risk::ThreatScenario& threat :
       risk::forestry_threats(bundle.tara->item())) {
    bundle.tara->add_threat(std::move(threat));
  }
  // TA002 (unknown asset): a threat against an asset the item never declared.
  risk::ThreatScenario ghost;
  ghost.id = ThreatId{9001};
  ghost.asset = AssetId{9001};
  ghost.name = "ghost-asset-threat";
  ghost.damage.safety = risk::ImpactLevel::kSevere;
  bundle.tara->add_threat(std::move(ghost));
  // TA001: reduce_threshold 6 leaves every high risk kRetain (untreated).
  bundle.tara->assess(risk::control_catalogue());
  bundle.controls = risk::control_catalogue();
  bundle.characteristics = risk::table1_characteristics();
  // TA003: a characteristic nothing instantiates.
  bundle.characteristics.push_back(
      {"orphan-characteristic", "a catalogue row no threat was derived from"});

  bundle.countermeasures = risk::countermeasure_catalogue();
  bundle.zones.emplace();
  risk::Zone safety_zone;
  safety_zone.name = "safety";
  safety_zone.target = {4, 4, 4, 4, 4, 4, 4};  // nothing installed: ZC002
  if (!bundle.tara->item().assets.empty()) {
    safety_zone.assets.push_back(bundle.tara->item().assets.front().id);
  }
  risk::Zone data_zone;
  data_zone.name = "data";
  data_zone.target = {1, 1, 1, 1, 1, 1, 1};
  const ZoneId safety_id = bundle.zones->add_zone(std::move(safety_zone));
  const ZoneId data_id = bundle.zones->add_zone(std::move(data_zone));
  risk::Conduit bridge;  // ZC003: gap 3, no countermeasures
  bridge.name = "bridge";
  bridge.from = safety_id;
  bridge.to = data_id;
  bundle.zones->add_conduit(std::move(bridge));
  risk::Conduit dangling;  // ZC001: endpoint zone never declared
  dangling.name = "dangling";
  dangling.from = safety_id;
  dangling.to = ZoneId{999};
  bundle.zones->add_conduit(std::move(dangling));
  // ZC004: every asset except the first is unzoned.
  // SA002: a locally hardened zone reachable over a bare conduit from the
  // soft data zone — the trusted-channel pivot undercuts its defences.
  // SA004: that conduit's crypto also exceeds both endpoint targets.
  risk::Zone hardened_zone;
  hardened_zone.name = "hardened";
  hardened_zone.target = {1, 1, 1, 1, 1, 1, 1};
  hardened_zone.countermeasures = {"secure-channel", "access-control"};
  const ZoneId hardened_id = bundle.zones->add_zone(std::move(hardened_zone));
  risk::Conduit pivot;
  pivot.name = "pivot";
  pivot.from = data_id;
  pivot.to = hardened_id;
  bundle.zones->add_conduit(std::move(pivot));
  risk::Conduit gilded;
  gilded.name = "gilded";
  gilded.from = data_id;
  gilded.to = hardened_id;
  gilded.countermeasures = {"secure-channel"};
  bundle.zones->add_conduit(std::move(gilded));

  // CV003: a detection rule watching a threat the TARA never lists.
  // CV004: a registered scenario exercising nothing catalogued.
  bundle.ids_rules = ids::detection_rule_table();
  bundle.ids_rules.push_back({"dead-rule", "signature",
                              "watches a threat the catalogue dropped",
                              {"no-such-threat"}});
  bundle.scenarios = analysis::scenario_registry();
  bundle.scenarios.push_back(
      {"orphan-scenario", "examples/nowhere.cpp", {"uncatalogued-threat"}});

  // GS001..GS004: a cyclic, evidence-dangling, open-goal argument with a
  // compliance mapping into the void.
  bundle.argument.emplace();
  bundle.evidence.emplace();
  const GsnId top = bundle.argument->add(assurance::GsnType::kGoal, "G-top",
                                         "system acceptably secure");
  const GsnId strategy = bundle.argument->add(assurance::GsnType::kStrategy,
                                              "S-argue", "argue over assets");
  const GsnId leaf = bundle.argument->add(assurance::GsnType::kGoal, "G-leaf",
                                          "asset secure");
  bundle.argument->support(top, strategy);
  bundle.argument->support(strategy, leaf);
  bundle.argument->support(leaf, top);  // GS001: cycle
  const GsnId solution = bundle.argument->add(assurance::GsnType::kSolution,
                                              "Sn-tests", "verification results");
  bundle.argument->support(strategy, solution);
  bundle.argument->bind_evidence(solution, EvidenceId{4242});  // GS002: dangling
  bundle.argument->add(assurance::GsnType::kGoal, "G-open",
                       "goal nobody developed");  // GS003
  bundle.compliance.emplace(assurance::machinery_requirements());
  bundle.compliance->map("MR-1.1.9", "G-missing");  // GS004

  // PK001: an endpoint enrolled under a CA the trust store never saw.
  crypto::Drbg drbg(2, "agrarsec-lint-defective");
  auto site_ca = pki::CertificateAuthority::create_root(
      "site-ca", drbg.generate32(), 0, 1000 * core::kHour);
  auto rogue_ca = pki::CertificateAuthority::create_root(
      "rogue-ca", drbg.generate32(), 0, 1000 * core::kHour);
  bundle.trust.emplace();
  if (auto status = bundle.trust->add_root(site_ca.certificate()); !status.ok()) {
    throw std::logic_error("trust store rejected root: " + status.error().to_string());
  }
  auto rogue = pki::enroll(rogue_ca, drbg, "impostor-forwarder",
                           pki::CertRole::kMachine, 0, 1000 * core::kHour);
  if (!rogue.ok()) throw std::logic_error("enrollment failed");
  bundle.endpoints.push_back({"impostor-forwarder", rogue.value().chain});
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--model=risk|assurance|pki|all|defective]\n"
               "          [--format=text|json] [--baseline=FILE]\n"
               "          [--write-baseline=FILE] [--coverage-json[=FILE]]\n"
               "          [--list-rules] [--stats[=FILE]]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name = "all";
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  bool list_rules = false;
  bool stats = false;
  std::string stats_path;
  bool coverage = false;
  std::string coverage_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(std::strlen(prefix));
      return std::nullopt;
    };
    if (auto v = value_of("--model=")) model_name = *v;
    else if (auto v2 = value_of("--format=")) format = *v2;
    else if (auto v3 = value_of("--baseline=")) baseline_path = *v3;
    else if (auto v4 = value_of("--write-baseline=")) write_baseline_path = *v4;
    else if (arg == "--list-rules") list_rules = true;
    else if (arg == "--stats") stats = true;
    else if (auto v5 = value_of("--stats=")) { stats = true; stats_path = *v5; }
    else if (arg == "--coverage-json") coverage = true;
    else if (auto v6 = value_of("--coverage-json=")) {
      coverage = true;
      coverage_path = *v6;
    }
    else return usage(argv[0]);
  }
  if (format != "text" && format != "json") return usage(argv[0]);

  if (list_rules) {
    std::printf("%-5s  %-7s  %-12s  %-10s  %s\n", "rule", "sev", "family",
                "pass", "summary");
    for (const analysis::RuleInfo& rule : analysis::rule_catalogue()) {
      std::printf("%s  %-7s  %-12s  %-10s  %s\n", std::string(rule.id).c_str(),
                  std::string(analysis::severity_name(rule.severity)).c_str(),
                  std::string(rule.family).c_str(), std::string(rule.pass).c_str(),
                  std::string(rule.summary).c_str());
    }
    return 0;
  }

  ModelBundle bundle;
  try {
    if (model_name == "risk") {
      add_risk_model(bundle);
    } else if (model_name == "assurance") {
      add_assurance_model(bundle);
    } else if (model_name == "pki") {
      add_pki_model(bundle);
    } else if (model_name == "all") {
      add_risk_model(bundle);
      add_assurance_model(bundle);
      add_pki_model(bundle);
    } else if (model_name == "defective") {
      add_defective_model(bundle);
    } else {
      return usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "agrarsec_lint: model construction failed: %s\n", e.what());
    return 3;
  }

  obs::Telemetry telemetry;
  const analysis::Analyzer analyzer;
  const obs::PhaseId ph_analyze = telemetry.tracer().phase("lint.analyze");
  std::vector<analysis::Diagnostic> findings;
  std::vector<analysis::PassStats> pass_stats;
  {
    const obs::Tracer::Span span{telemetry.tracer(), ph_analyze};
    findings = analyzer.analyze(bundle.view(), stats ? &pass_stats : nullptr);
  }

  if (stats) {
    obs::Registry& reg = telemetry.registry();
    reg.counter("lint.rules_run").add(analysis::rule_catalogue().size());
    reg.counter("lint.findings").add(findings.size());
    for (const analysis::Diagnostic& d : findings) {
      // Map the finding back to its rule family via the catalogue so the
      // per-family counters use the shipped taxonomy, not prefix guessing.
      std::string_view family = "unknown";
      for (const analysis::RuleInfo& rule : analysis::rule_catalogue()) {
        if (rule.id == d.rule) { family = rule.family; break; }
      }
      reg.counter("lint.findings." + std::string(family)).add();
    }
    const auto& analyze_stats = telemetry.tracer().stats(ph_analyze);
    reg.gauge("lint.analyze_wall_seconds")
        .set(static_cast<double>(analyze_stats.total_ns) / 1e9);
    for (const analysis::PassStats& pass : pass_stats) {
      reg.gauge("lint.pass." + pass.pass + ".wall_seconds")
          .set(static_cast<double>(pass.wall_ns) / 1e9);
      reg.counter("lint.pass." + pass.pass + ".findings").add(pass.findings);
    }
    const std::string stats_json = telemetry.to_json();
    if (stats_path.empty()) {
      std::fputs(stats_json.c_str(), stderr);
      std::fputc('\n', stderr);
    } else if (!write_file(stats_path, stats_json + "\n")) {
      std::fprintf(stderr, "agrarsec_lint: cannot write stats '%s'\n",
                   stats_path.c_str());
      return 2;
    }
  }

  if (!write_baseline_path.empty()) {
    const analysis::Baseline baseline = analysis::Baseline::from(findings);
    if (!write_file(write_baseline_path, baseline.to_json())) {
      std::fprintf(stderr, "agrarsec_lint: cannot write baseline '%s'\n",
                   write_baseline_path.c_str());
      return 2;
    }
  }

  if (coverage) {
    const std::string report = analysis::render_coverage_json(
        analysis::build_coverage(bundle.view()), bundle.view());
    if (coverage_path.empty()) {
      std::fputs(report.c_str(), stdout);
    } else if (!write_file(coverage_path, report)) {
      std::fprintf(stderr, "agrarsec_lint: cannot write coverage '%s'\n",
                   coverage_path.c_str());
      return 2;
    }
  }

  analysis::Baseline baseline;
  if (!baseline_path.empty()) {
    const auto content = read_file(baseline_path);
    if (!content) {
      std::fprintf(stderr, "agrarsec_lint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::string error;
    auto parsed = analysis::Baseline::parse(*content, &error);
    if (!parsed) {
      std::fprintf(stderr, "agrarsec_lint: bad baseline '%s': %s\n",
                   baseline_path.c_str(), error.c_str());
      return 2;
    }
    baseline = std::move(*parsed);
    // A suppression nothing matches anymore is a fixed finding that never
    // got un-suppressed: warn so the baseline shrinks back over time.
    for (const std::string& stale : baseline.stale_keys(findings)) {
      std::fprintf(stderr, "agrarsec_lint: stale baseline entry: %s\n",
                   stale.c_str());
    }
  }

  const std::vector<analysis::Diagnostic> fresh = baseline.filter(findings);
  if (format == "json") {
    std::fputs(analysis::render_json(fresh).c_str(), stdout);
  } else {
    std::printf("agrarsec-lint: model '%s', %zu finding(s) (%zu baselined)\n",
                model_name.c_str(), findings.size(), findings.size() - fresh.size());
    std::fputs(analysis::render_text(fresh).c_str(), stdout);
  }

  return analysis::count_severity(fresh, analysis::Severity::kError) > 0 ? 1 : 0;
}
