// Pinned-session exporter for the CI semantic-diff gate: runs one fixed
// (config, seed) FleetService session for a fixed number of steps and
// prints its deterministic telemetry export to stdout. The bytes are the
// contract — scripts/export_diff_gate.py compares them against the
// committed golden (tests/golden/session_export*.json) and fails CI on
// ANY byte change, so a behaviour drift in the sim/security/safety stack
// cannot land silently as "just telemetry noise". Intentional behaviour
// changes re-bless the goldens with --update and the diff shows up in
// review.
//
// The gate is a matrix of four pinned variants (argv[1]):
//   base               the original session (golden: session_export.json)
//   attack             + a level-2 attacker running a scripted spoof and
//                        replay campaign against the forwarder
//   drone-follow       + worksite drone_follow_post_integrate enabled
//   attack-drone-follow  both, exercising the interaction
// so drift in the attack-handling or deferred-drone code paths is caught
// even when the quiet base session never reaches them.
#include <cstdio>
#include <cstring>
#include <string>

#include "net/attacker.h"
#include "net/message.h"
#include "service/fleet_service.h"

using namespace agrarsec;

namespace {

/// The pinned session configuration: mirror of the bench fleet-session
/// shape (thin stand, busy handling) with the worksite's parallel phases
/// driven through the service pool at threads=2, so the export also
/// witnesses the thread-count-invariance contract end to end.
integration::SecuredWorksiteConfig pinned_session_config() {
  integration::SecuredWorksiteConfig config;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.harvester_output_m3_per_min = 30.0;
  config.worksite.load_time = 15 * core::kSecond;
  config.worksite.unload_time = 10 * core::kSecond;
  config.worksite.windthrow_rate_per_hour = 4.0;
  config.worksite.weather = sim::Weather::kRain;
  return config;
}

constexpr std::uint64_t kFleetSeed = 4242;
constexpr std::uint64_t kSessionKey = 7;
constexpr std::uint64_t kSteps = 200;
// Attack variant schedule: warm up, then alternate forged e-stops and
// refreshed replays on fixed step indices.
constexpr std::uint64_t kAttackStart = 50;
constexpr std::uint64_t kSpoofPeriod = 10;
constexpr std::uint64_t kReplayPeriod = 7;

}  // namespace

int main(int argc, char** argv) {
  const std::string variant = argc > 1 ? argv[1] : "base";
  const bool attack = variant == "attack" || variant == "attack-drone-follow";
  const bool drone_follow =
      variant == "drone-follow" || variant == "attack-drone-follow";
  if (variant != "base" && !attack && !drone_follow) {
    std::fprintf(stderr,
                 "usage: session_export "
                 "[base|attack|drone-follow|attack-drone-follow]\n");
    return 2;
  }

  integration::SecuredWorksiteConfig config = pinned_session_config();
  config.worksite.drone_follow_post_integrate = drone_follow;

  service::FleetServiceConfig fleet_config;
  fleet_config.threads = 2;
  fleet_config.fleet_seed = kFleetSeed;
  service::FleetService fleet{fleet_config};

  const service::SessionId id =
      fleet.create_session_keyed(config, kSessionKey);
  integration::SecuredWorksite& site = *fleet.session(id);
  site.worksite().add_worker("w0", {75.0, 60.0}, {80, 80});
  site.worksite().add_worker("w1", {85.0, 60.0}, {80, 80});

  if (!attack) {
    fleet.step_all(kSteps);
  } else {
    fleet.step_all(kAttackStart);
    net::AttackerNode& attacker = site.add_attacker({60.0, 60.0}, 2);
    const NodeId forwarder = site.forwarder_node();
    for (std::uint64_t step = kAttackStart; step < kSteps; ++step) {
      const core::SimTime now = site.worksite().clock().now();
      if ((step - kAttackStart) % kSpoofPeriod == 0) {
        attacker.spoof(site.radio(), now, 3 /*operator id*/,
                       net::MessageType::kEstopCommand,
                       net::EstopBody{1, 0}.encode(), forwarder);
      }
      if ((step - kAttackStart) % kReplayPeriod == 0) {
        attacker.replay_latest(
            site.radio(), now,
            [forwarder](const net::Frame& f) { return f.dst == forwarder; },
            /*refresh_timestamp=*/true);
      }
      fleet.step_all(1);
    }
  }

  const std::string json = fleet.session_deterministic_json(id);
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}
