// Pinned-session exporter for the CI semantic-diff gate: runs one fixed
// (config, seed) FleetService session for a fixed number of steps and
// prints its deterministic telemetry export to stdout. The bytes are the
// contract — scripts/export_diff_gate.py compares them against the
// committed golden (tests/golden/session_export.json) and fails CI on
// ANY byte change, so a behaviour drift in the sim/security/safety stack
// cannot land silently as "just telemetry noise". Intentional behaviour
// changes re-bless the golden with --update and the diff shows up in
// review.
#include <cstdio>
#include <string>

#include "service/fleet_service.h"

using namespace agrarsec;

namespace {

/// The pinned session configuration: mirror of the bench fleet-session
/// shape (thin stand, busy handling) with the worksite's parallel phases
/// driven through the service pool at threads=2, so the export also
/// witnesses the thread-count-invariance contract end to end.
integration::SecuredWorksiteConfig pinned_session_config() {
  integration::SecuredWorksiteConfig config;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.harvester_output_m3_per_min = 30.0;
  config.worksite.load_time = 15 * core::kSecond;
  config.worksite.unload_time = 10 * core::kSecond;
  config.worksite.windthrow_rate_per_hour = 4.0;
  config.worksite.weather = sim::Weather::kRain;
  return config;
}

constexpr std::uint64_t kFleetSeed = 4242;
constexpr std::uint64_t kSessionKey = 7;
constexpr std::uint64_t kSteps = 200;

}  // namespace

int main() {
  service::FleetServiceConfig fleet_config;
  fleet_config.threads = 2;
  fleet_config.fleet_seed = kFleetSeed;
  service::FleetService fleet{fleet_config};

  const service::SessionId id =
      fleet.create_session_keyed(pinned_session_config(), kSessionKey);
  integration::SecuredWorksite& site = *fleet.session(id);
  site.worksite().add_worker("w0", {75.0, 60.0}, {80, 80});
  site.worksite().add_worker("w1", {85.0, 60.0}, {80, 80});

  fleet.step_all(kSteps);

  const std::string json = fleet.session_deterministic_json(id);
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}
