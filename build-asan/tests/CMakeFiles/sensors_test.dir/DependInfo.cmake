
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sensors/sensors_test.cpp" "tests/CMakeFiles/sensors_test.dir/sensors/sensors_test.cpp.o" "gcc" "tests/CMakeFiles/sensors_test.dir/sensors/sensors_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
