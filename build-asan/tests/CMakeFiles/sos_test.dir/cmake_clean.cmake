file(REMOVE_RECURSE
  "CMakeFiles/sos_test.dir/sos/sos_test.cpp.o"
  "CMakeFiles/sos_test.dir/sos/sos_test.cpp.o.d"
  "sos_test"
  "sos_test.pdb"
  "sos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
