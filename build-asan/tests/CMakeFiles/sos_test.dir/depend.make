# Empty dependencies file for sos_test.
# This may be replaced when dependencies are built.
