
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/machine_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/machine_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/machine_test.cpp.o.d"
  "/root/repo/tests/sim/occlusion_cause_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/occlusion_cause_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/occlusion_cause_test.cpp.o.d"
  "/root/repo/tests/sim/pathfinding_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/pathfinding_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/pathfinding_test.cpp.o.d"
  "/root/repo/tests/sim/spatial_index_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/spatial_index_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/spatial_index_test.cpp.o.d"
  "/root/repo/tests/sim/terrain_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/terrain_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/terrain_test.cpp.o.d"
  "/root/repo/tests/sim/worksite_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/worksite_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/worksite_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
