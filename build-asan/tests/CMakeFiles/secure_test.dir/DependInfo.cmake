
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/secure/audit_log_test.cpp" "tests/CMakeFiles/secure_test.dir/secure/audit_log_test.cpp.o" "gcc" "tests/CMakeFiles/secure_test.dir/secure/audit_log_test.cpp.o.d"
  "/root/repo/tests/secure/boot_test.cpp" "tests/CMakeFiles/secure_test.dir/secure/boot_test.cpp.o" "gcc" "tests/CMakeFiles/secure_test.dir/secure/boot_test.cpp.o.d"
  "/root/repo/tests/secure/secure_test.cpp" "tests/CMakeFiles/secure_test.dir/secure/secure_test.cpp.o" "gcc" "tests/CMakeFiles/secure_test.dir/secure/secure_test.cpp.o.d"
  "/root/repo/tests/secure/wire_test.cpp" "tests/CMakeFiles/secure_test.dir/secure/wire_test.cpp.o" "gcc" "tests/CMakeFiles/secure_test.dir/secure/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/secure/CMakeFiles/agrarsec_secure.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pki/CMakeFiles/agrarsec_pki.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/agrarsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
