file(REMOVE_RECURSE
  "CMakeFiles/secure_test.dir/secure/audit_log_test.cpp.o"
  "CMakeFiles/secure_test.dir/secure/audit_log_test.cpp.o.d"
  "CMakeFiles/secure_test.dir/secure/boot_test.cpp.o"
  "CMakeFiles/secure_test.dir/secure/boot_test.cpp.o.d"
  "CMakeFiles/secure_test.dir/secure/secure_test.cpp.o"
  "CMakeFiles/secure_test.dir/secure/secure_test.cpp.o.d"
  "CMakeFiles/secure_test.dir/secure/wire_test.cpp.o"
  "CMakeFiles/secure_test.dir/secure/wire_test.cpp.o.d"
  "secure_test"
  "secure_test.pdb"
  "secure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
