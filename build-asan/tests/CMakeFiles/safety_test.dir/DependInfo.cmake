
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/safety/fusion_test.cpp" "tests/CMakeFiles/safety_test.dir/safety/fusion_test.cpp.o" "gcc" "tests/CMakeFiles/safety_test.dir/safety/fusion_test.cpp.o.d"
  "/root/repo/tests/safety/iso13849_test.cpp" "tests/CMakeFiles/safety_test.dir/safety/iso13849_test.cpp.o" "gcc" "tests/CMakeFiles/safety_test.dir/safety/iso13849_test.cpp.o.d"
  "/root/repo/tests/safety/monitor_test.cpp" "tests/CMakeFiles/safety_test.dir/safety/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/safety_test.dir/safety/monitor_test.cpp.o.d"
  "/root/repo/tests/safety/sotif_test.cpp" "tests/CMakeFiles/safety_test.dir/safety/sotif_test.cpp.o" "gcc" "tests/CMakeFiles/safety_test.dir/safety/sotif_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/safety/CMakeFiles/agrarsec_safety.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
