
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bytes_test.cpp" "tests/CMakeFiles/core_test.dir/core/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/bytes_test.cpp.o.d"
  "/root/repo/tests/core/event_bus_test.cpp" "tests/CMakeFiles/core_test.dir/core/event_bus_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/event_bus_test.cpp.o.d"
  "/root/repo/tests/core/geometry_test.cpp" "tests/CMakeFiles/core_test.dir/core/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/geometry_test.cpp.o.d"
  "/root/repo/tests/core/log_test.cpp" "tests/CMakeFiles/core_test.dir/core/log_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/log_test.cpp.o.d"
  "/root/repo/tests/core/result_test.cpp" "tests/CMakeFiles/core_test.dir/core/result_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/result_test.cpp.o.d"
  "/root/repo/tests/core/rng_test.cpp" "tests/CMakeFiles/core_test.dir/core/rng_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rng_test.cpp.o.d"
  "/root/repo/tests/core/stats_test.cpp" "tests/CMakeFiles/core_test.dir/core/stats_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stats_test.cpp.o.d"
  "/root/repo/tests/core/types_test.cpp" "tests/CMakeFiles/core_test.dir/core/types_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/types_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
