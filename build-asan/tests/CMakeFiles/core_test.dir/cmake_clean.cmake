file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/bytes_test.cpp.o"
  "CMakeFiles/core_test.dir/core/bytes_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/event_bus_test.cpp.o"
  "CMakeFiles/core_test.dir/core/event_bus_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/geometry_test.cpp.o"
  "CMakeFiles/core_test.dir/core/geometry_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/log_test.cpp.o"
  "CMakeFiles/core_test.dir/core/log_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/result_test.cpp.o"
  "CMakeFiles/core_test.dir/core/result_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/rng_test.cpp.o"
  "CMakeFiles/core_test.dir/core/rng_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/stats_test.cpp.o"
  "CMakeFiles/core_test.dir/core/stats_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/types_test.cpp.o"
  "CMakeFiles/core_test.dir/core/types_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
