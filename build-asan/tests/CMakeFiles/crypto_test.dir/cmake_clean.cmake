file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/ed25519_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/ed25519_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/hash_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/hash_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/hkdf_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/hkdf_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/hmac_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/hmac_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/property_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/property_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/random_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/random_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o.d"
  "crypto_test"
  "crypto_test.pdb"
  "crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
