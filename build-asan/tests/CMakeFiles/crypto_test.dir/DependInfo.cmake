
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aead_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o.d"
  "/root/repo/tests/crypto/chacha20_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o.d"
  "/root/repo/tests/crypto/ed25519_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/ed25519_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/ed25519_test.cpp.o.d"
  "/root/repo/tests/crypto/hash_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/hash_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/hash_test.cpp.o.d"
  "/root/repo/tests/crypto/hkdf_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/hkdf_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/hkdf_test.cpp.o.d"
  "/root/repo/tests/crypto/hmac_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/hmac_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/hmac_test.cpp.o.d"
  "/root/repo/tests/crypto/poly1305_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o.d"
  "/root/repo/tests/crypto/property_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/property_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/property_test.cpp.o.d"
  "/root/repo/tests/crypto/random_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/random_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/random_test.cpp.o.d"
  "/root/repo/tests/crypto/x25519_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/crypto/CMakeFiles/agrarsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
