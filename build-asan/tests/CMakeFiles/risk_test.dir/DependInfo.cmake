
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/risk/attack_path_test.cpp" "tests/CMakeFiles/risk_test.dir/risk/attack_path_test.cpp.o" "gcc" "tests/CMakeFiles/risk_test.dir/risk/attack_path_test.cpp.o.d"
  "/root/repo/tests/risk/coanalysis_test.cpp" "tests/CMakeFiles/risk_test.dir/risk/coanalysis_test.cpp.o" "gcc" "tests/CMakeFiles/risk_test.dir/risk/coanalysis_test.cpp.o.d"
  "/root/repo/tests/risk/iec62443_test.cpp" "tests/CMakeFiles/risk_test.dir/risk/iec62443_test.cpp.o" "gcc" "tests/CMakeFiles/risk_test.dir/risk/iec62443_test.cpp.o.d"
  "/root/repo/tests/risk/property_test.cpp" "tests/CMakeFiles/risk_test.dir/risk/property_test.cpp.o" "gcc" "tests/CMakeFiles/risk_test.dir/risk/property_test.cpp.o.d"
  "/root/repo/tests/risk/tara_test.cpp" "tests/CMakeFiles/risk_test.dir/risk/tara_test.cpp.o" "gcc" "tests/CMakeFiles/risk_test.dir/risk/tara_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/risk/CMakeFiles/agrarsec_risk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/safety/CMakeFiles/agrarsec_safety.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
