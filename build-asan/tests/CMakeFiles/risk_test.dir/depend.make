# Empty dependencies file for risk_test.
# This may be replaced when dependencies are built.
