file(REMOVE_RECURSE
  "CMakeFiles/risk_test.dir/risk/attack_path_test.cpp.o"
  "CMakeFiles/risk_test.dir/risk/attack_path_test.cpp.o.d"
  "CMakeFiles/risk_test.dir/risk/coanalysis_test.cpp.o"
  "CMakeFiles/risk_test.dir/risk/coanalysis_test.cpp.o.d"
  "CMakeFiles/risk_test.dir/risk/iec62443_test.cpp.o"
  "CMakeFiles/risk_test.dir/risk/iec62443_test.cpp.o.d"
  "CMakeFiles/risk_test.dir/risk/property_test.cpp.o"
  "CMakeFiles/risk_test.dir/risk/property_test.cpp.o.d"
  "CMakeFiles/risk_test.dir/risk/tara_test.cpp.o"
  "CMakeFiles/risk_test.dir/risk/tara_test.cpp.o.d"
  "risk_test"
  "risk_test.pdb"
  "risk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
