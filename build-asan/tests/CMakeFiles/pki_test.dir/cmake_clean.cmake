file(REMOVE_RECURSE
  "CMakeFiles/pki_test.dir/pki/crl_wire_test.cpp.o"
  "CMakeFiles/pki_test.dir/pki/crl_wire_test.cpp.o.d"
  "CMakeFiles/pki_test.dir/pki/pki_test.cpp.o"
  "CMakeFiles/pki_test.dir/pki/pki_test.cpp.o.d"
  "pki_test"
  "pki_test.pdb"
  "pki_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
