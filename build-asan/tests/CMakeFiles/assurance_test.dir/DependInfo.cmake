
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assurance/cascade_test.cpp" "tests/CMakeFiles/assurance_test.dir/assurance/cascade_test.cpp.o" "gcc" "tests/CMakeFiles/assurance_test.dir/assurance/cascade_test.cpp.o.d"
  "/root/repo/tests/assurance/gsn_test.cpp" "tests/CMakeFiles/assurance_test.dir/assurance/gsn_test.cpp.o" "gcc" "tests/CMakeFiles/assurance_test.dir/assurance/gsn_test.cpp.o.d"
  "/root/repo/tests/assurance/modular_test.cpp" "tests/CMakeFiles/assurance_test.dir/assurance/modular_test.cpp.o" "gcc" "tests/CMakeFiles/assurance_test.dir/assurance/modular_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/assurance/CMakeFiles/agrarsec_assurance.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/risk/CMakeFiles/agrarsec_risk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/safety/CMakeFiles/agrarsec_safety.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sos/CMakeFiles/agrarsec_sos.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/agrarsec_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
