# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/core_test[1]_include.cmake")
include("/root/repo/build-asan/tests/crypto_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pki_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_test[1]_include.cmake")
include("/root/repo/build-asan/tests/secure_test[1]_include.cmake")
include("/root/repo/build-asan/tests/ids_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sensors_test[1]_include.cmake")
include("/root/repo/build-asan/tests/safety_test[1]_include.cmake")
include("/root/repo/build-asan/tests/risk_test[1]_include.cmake")
include("/root/repo/build-asan/tests/assurance_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sos_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
