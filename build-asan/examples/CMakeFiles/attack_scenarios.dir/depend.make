# Empty dependencies file for attack_scenarios.
# This may be replaced when dependencies are built.
