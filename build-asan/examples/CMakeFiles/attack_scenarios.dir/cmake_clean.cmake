file(REMOVE_RECURSE
  "CMakeFiles/attack_scenarios.dir/attack_scenarios.cpp.o"
  "CMakeFiles/attack_scenarios.dir/attack_scenarios.cpp.o.d"
  "attack_scenarios"
  "attack_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
