file(REMOVE_RECURSE
  "CMakeFiles/incident_response.dir/incident_response.cpp.o"
  "CMakeFiles/incident_response.dir/incident_response.cpp.o.d"
  "incident_response"
  "incident_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
