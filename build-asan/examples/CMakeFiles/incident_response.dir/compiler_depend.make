# Empty compiler generated dependencies file for incident_response.
# This may be replaced when dependencies are built.
