# Empty dependencies file for risk_assessment.
# This may be replaced when dependencies are built.
