file(REMOVE_RECURSE
  "CMakeFiles/risk_assessment.dir/risk_assessment.cpp.o"
  "CMakeFiles/risk_assessment.dir/risk_assessment.cpp.o.d"
  "risk_assessment"
  "risk_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
