file(REMOVE_RECURSE
  "CMakeFiles/secure_fleet_ops.dir/secure_fleet_ops.cpp.o"
  "CMakeFiles/secure_fleet_ops.dir/secure_fleet_ops.cpp.o.d"
  "secure_fleet_ops"
  "secure_fleet_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_fleet_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
