# Empty compiler generated dependencies file for secure_fleet_ops.
# This may be replaced when dependencies are built.
