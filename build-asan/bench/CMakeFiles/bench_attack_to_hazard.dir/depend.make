# Empty dependencies file for bench_attack_to_hazard.
# This may be replaced when dependencies are built.
