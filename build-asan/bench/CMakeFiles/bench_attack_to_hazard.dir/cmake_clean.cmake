file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_to_hazard.dir/bench_attack_to_hazard.cpp.o"
  "CMakeFiles/bench_attack_to_hazard.dir/bench_attack_to_hazard.cpp.o.d"
  "bench_attack_to_hazard"
  "bench_attack_to_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_to_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
