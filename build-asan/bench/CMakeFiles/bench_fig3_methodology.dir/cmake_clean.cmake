file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_methodology.dir/bench_fig3_methodology.cpp.o"
  "CMakeFiles/bench_fig3_methodology.dir/bench_fig3_methodology.cpp.o.d"
  "bench_fig3_methodology"
  "bench_fig3_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
