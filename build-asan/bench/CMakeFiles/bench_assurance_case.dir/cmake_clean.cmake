file(REMOVE_RECURSE
  "CMakeFiles/bench_assurance_case.dir/bench_assurance_case.cpp.o"
  "CMakeFiles/bench_assurance_case.dir/bench_assurance_case.cpp.o.d"
  "bench_assurance_case"
  "bench_assurance_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assurance_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
