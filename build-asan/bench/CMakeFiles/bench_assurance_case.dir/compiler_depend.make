# Empty compiler generated dependencies file for bench_assurance_case.
# This may be replaced when dependencies are built.
