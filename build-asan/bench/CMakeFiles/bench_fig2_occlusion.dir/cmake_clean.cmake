file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_occlusion.dir/bench_fig2_occlusion.cpp.o"
  "CMakeFiles/bench_fig2_occlusion.dir/bench_fig2_occlusion.cpp.o.d"
  "bench_fig2_occlusion"
  "bench_fig2_occlusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_occlusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
