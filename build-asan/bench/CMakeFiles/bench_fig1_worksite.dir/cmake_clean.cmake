file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_worksite.dir/bench_fig1_worksite.cpp.o"
  "CMakeFiles/bench_fig1_worksite.dir/bench_fig1_worksite.cpp.o.d"
  "bench_fig1_worksite"
  "bench_fig1_worksite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_worksite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
