# Empty compiler generated dependencies file for bench_fig1_worksite.
# This may be replaced when dependencies are built.
