file(REMOVE_RECURSE
  "CMakeFiles/bench_weather_sotif.dir/bench_weather_sotif.cpp.o"
  "CMakeFiles/bench_weather_sotif.dir/bench_weather_sotif.cpp.o.d"
  "bench_weather_sotif"
  "bench_weather_sotif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weather_sotif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
