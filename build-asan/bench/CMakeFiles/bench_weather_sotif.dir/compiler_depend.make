# Empty compiler generated dependencies file for bench_weather_sotif.
# This may be replaced when dependencies are built.
