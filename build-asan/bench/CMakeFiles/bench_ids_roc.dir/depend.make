# Empty dependencies file for bench_ids_roc.
# This may be replaced when dependencies are built.
