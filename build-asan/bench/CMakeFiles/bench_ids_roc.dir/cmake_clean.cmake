file(REMOVE_RECURSE
  "CMakeFiles/bench_ids_roc.dir/bench_ids_roc.cpp.o"
  "CMakeFiles/bench_ids_roc.dir/bench_ids_roc.cpp.o.d"
  "bench_ids_roc"
  "bench_ids_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ids_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
