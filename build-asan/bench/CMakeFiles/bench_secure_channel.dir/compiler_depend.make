# Empty compiler generated dependencies file for bench_secure_channel.
# This may be replaced when dependencies are built.
