file(REMOVE_RECURSE
  "CMakeFiles/bench_secure_channel.dir/bench_secure_channel.cpp.o"
  "CMakeFiles/bench_secure_channel.dir/bench_secure_channel.cpp.o.d"
  "bench_secure_channel"
  "bench_secure_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secure_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
