file(REMOVE_RECURSE
  "CMakeFiles/bench_gnss_corridor.dir/bench_gnss_corridor.cpp.o"
  "CMakeFiles/bench_gnss_corridor.dir/bench_gnss_corridor.cpp.o.d"
  "bench_gnss_corridor"
  "bench_gnss_corridor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gnss_corridor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
