# Empty dependencies file for bench_gnss_corridor.
# This may be replaced when dependencies are built.
