# Empty compiler generated dependencies file for bench_fleet_scale.
# This may be replaced when dependencies are built.
