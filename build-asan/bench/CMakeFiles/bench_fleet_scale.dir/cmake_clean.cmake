file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet_scale.dir/bench_fleet_scale.cpp.o"
  "CMakeFiles/bench_fleet_scale.dir/bench_fleet_scale.cpp.o.d"
  "bench_fleet_scale"
  "bench_fleet_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
