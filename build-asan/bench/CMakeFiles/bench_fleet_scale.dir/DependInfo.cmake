
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fleet_scale.cpp" "bench/CMakeFiles/bench_fleet_scale.dir/bench_fleet_scale.cpp.o" "gcc" "bench/CMakeFiles/bench_fleet_scale.dir/bench_fleet_scale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/integration/CMakeFiles/agrarsec_integration.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/risk/CMakeFiles/agrarsec_risk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/assurance/CMakeFiles/agrarsec_assurance.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sos/CMakeFiles/agrarsec_sos.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/secure/CMakeFiles/agrarsec_secure.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pki/CMakeFiles/agrarsec_pki.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/agrarsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ids/CMakeFiles/agrarsec_ids.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/safety/CMakeFiles/agrarsec_safety.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/agrarsec_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
