file(REMOVE_RECURSE
  "CMakeFiles/bench_sl_resistance.dir/bench_sl_resistance.cpp.o"
  "CMakeFiles/bench_sl_resistance.dir/bench_sl_resistance.cpp.o.d"
  "bench_sl_resistance"
  "bench_sl_resistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sl_resistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
