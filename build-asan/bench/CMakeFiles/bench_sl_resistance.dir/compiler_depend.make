# Empty compiler generated dependencies file for bench_sl_resistance.
# This may be replaced when dependencies are built.
