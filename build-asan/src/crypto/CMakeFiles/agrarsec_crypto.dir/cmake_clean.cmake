file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_crypto.dir/aead.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/hmac.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/random.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/random.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/sha256.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/sha512.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/agrarsec_crypto.dir/x25519.cpp.o"
  "CMakeFiles/agrarsec_crypto.dir/x25519.cpp.o.d"
  "libagrarsec_crypto.a"
  "libagrarsec_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
