# Empty compiler generated dependencies file for agrarsec_crypto.
# This may be replaced when dependencies are built.
