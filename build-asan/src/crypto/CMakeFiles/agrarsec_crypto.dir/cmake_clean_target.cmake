file(REMOVE_RECURSE
  "libagrarsec_crypto.a"
)
