# Empty dependencies file for agrarsec_risk.
# This may be replaced when dependencies are built.
