file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_risk.dir/attack_path.cpp.o"
  "CMakeFiles/agrarsec_risk.dir/attack_path.cpp.o.d"
  "CMakeFiles/agrarsec_risk.dir/catalog.cpp.o"
  "CMakeFiles/agrarsec_risk.dir/catalog.cpp.o.d"
  "CMakeFiles/agrarsec_risk.dir/coanalysis.cpp.o"
  "CMakeFiles/agrarsec_risk.dir/coanalysis.cpp.o.d"
  "CMakeFiles/agrarsec_risk.dir/iec62443.cpp.o"
  "CMakeFiles/agrarsec_risk.dir/iec62443.cpp.o.d"
  "CMakeFiles/agrarsec_risk.dir/tara.cpp.o"
  "CMakeFiles/agrarsec_risk.dir/tara.cpp.o.d"
  "libagrarsec_risk.a"
  "libagrarsec_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
