
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/risk/attack_path.cpp" "src/risk/CMakeFiles/agrarsec_risk.dir/attack_path.cpp.o" "gcc" "src/risk/CMakeFiles/agrarsec_risk.dir/attack_path.cpp.o.d"
  "/root/repo/src/risk/catalog.cpp" "src/risk/CMakeFiles/agrarsec_risk.dir/catalog.cpp.o" "gcc" "src/risk/CMakeFiles/agrarsec_risk.dir/catalog.cpp.o.d"
  "/root/repo/src/risk/coanalysis.cpp" "src/risk/CMakeFiles/agrarsec_risk.dir/coanalysis.cpp.o" "gcc" "src/risk/CMakeFiles/agrarsec_risk.dir/coanalysis.cpp.o.d"
  "/root/repo/src/risk/iec62443.cpp" "src/risk/CMakeFiles/agrarsec_risk.dir/iec62443.cpp.o" "gcc" "src/risk/CMakeFiles/agrarsec_risk.dir/iec62443.cpp.o.d"
  "/root/repo/src/risk/tara.cpp" "src/risk/CMakeFiles/agrarsec_risk.dir/tara.cpp.o" "gcc" "src/risk/CMakeFiles/agrarsec_risk.dir/tara.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/safety/CMakeFiles/agrarsec_safety.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
