file(REMOVE_RECURSE
  "libagrarsec_risk.a"
)
