# CMake generated Testfile for 
# Source directory: /root/repo/src/risk
# Build directory: /root/repo/build-asan/src/risk
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
