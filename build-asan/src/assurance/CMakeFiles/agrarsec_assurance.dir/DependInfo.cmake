
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assurance/cascade.cpp" "src/assurance/CMakeFiles/agrarsec_assurance.dir/cascade.cpp.o" "gcc" "src/assurance/CMakeFiles/agrarsec_assurance.dir/cascade.cpp.o.d"
  "/root/repo/src/assurance/compliance.cpp" "src/assurance/CMakeFiles/agrarsec_assurance.dir/compliance.cpp.o" "gcc" "src/assurance/CMakeFiles/agrarsec_assurance.dir/compliance.cpp.o.d"
  "/root/repo/src/assurance/evidence.cpp" "src/assurance/CMakeFiles/agrarsec_assurance.dir/evidence.cpp.o" "gcc" "src/assurance/CMakeFiles/agrarsec_assurance.dir/evidence.cpp.o.d"
  "/root/repo/src/assurance/gsn.cpp" "src/assurance/CMakeFiles/agrarsec_assurance.dir/gsn.cpp.o" "gcc" "src/assurance/CMakeFiles/agrarsec_assurance.dir/gsn.cpp.o.d"
  "/root/repo/src/assurance/modular.cpp" "src/assurance/CMakeFiles/agrarsec_assurance.dir/modular.cpp.o" "gcc" "src/assurance/CMakeFiles/agrarsec_assurance.dir/modular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/risk/CMakeFiles/agrarsec_risk.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sos/CMakeFiles/agrarsec_sos.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/safety/CMakeFiles/agrarsec_safety.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/agrarsec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
