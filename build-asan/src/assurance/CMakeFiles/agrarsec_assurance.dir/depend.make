# Empty dependencies file for agrarsec_assurance.
# This may be replaced when dependencies are built.
