file(REMOVE_RECURSE
  "libagrarsec_assurance.a"
)
