file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_assurance.dir/cascade.cpp.o"
  "CMakeFiles/agrarsec_assurance.dir/cascade.cpp.o.d"
  "CMakeFiles/agrarsec_assurance.dir/compliance.cpp.o"
  "CMakeFiles/agrarsec_assurance.dir/compliance.cpp.o.d"
  "CMakeFiles/agrarsec_assurance.dir/evidence.cpp.o"
  "CMakeFiles/agrarsec_assurance.dir/evidence.cpp.o.d"
  "CMakeFiles/agrarsec_assurance.dir/gsn.cpp.o"
  "CMakeFiles/agrarsec_assurance.dir/gsn.cpp.o.d"
  "CMakeFiles/agrarsec_assurance.dir/modular.cpp.o"
  "CMakeFiles/agrarsec_assurance.dir/modular.cpp.o.d"
  "libagrarsec_assurance.a"
  "libagrarsec_assurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_assurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
