# Empty compiler generated dependencies file for agrarsec_pki.
# This may be replaced when dependencies are built.
