file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_pki.dir/authority.cpp.o"
  "CMakeFiles/agrarsec_pki.dir/authority.cpp.o.d"
  "CMakeFiles/agrarsec_pki.dir/certificate.cpp.o"
  "CMakeFiles/agrarsec_pki.dir/certificate.cpp.o.d"
  "CMakeFiles/agrarsec_pki.dir/identity.cpp.o"
  "CMakeFiles/agrarsec_pki.dir/identity.cpp.o.d"
  "CMakeFiles/agrarsec_pki.dir/trust_store.cpp.o"
  "CMakeFiles/agrarsec_pki.dir/trust_store.cpp.o.d"
  "libagrarsec_pki.a"
  "libagrarsec_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
