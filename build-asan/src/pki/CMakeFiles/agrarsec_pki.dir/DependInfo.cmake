
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pki/authority.cpp" "src/pki/CMakeFiles/agrarsec_pki.dir/authority.cpp.o" "gcc" "src/pki/CMakeFiles/agrarsec_pki.dir/authority.cpp.o.d"
  "/root/repo/src/pki/certificate.cpp" "src/pki/CMakeFiles/agrarsec_pki.dir/certificate.cpp.o" "gcc" "src/pki/CMakeFiles/agrarsec_pki.dir/certificate.cpp.o.d"
  "/root/repo/src/pki/identity.cpp" "src/pki/CMakeFiles/agrarsec_pki.dir/identity.cpp.o" "gcc" "src/pki/CMakeFiles/agrarsec_pki.dir/identity.cpp.o.d"
  "/root/repo/src/pki/trust_store.cpp" "src/pki/CMakeFiles/agrarsec_pki.dir/trust_store.cpp.o" "gcc" "src/pki/CMakeFiles/agrarsec_pki.dir/trust_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/agrarsec_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
