file(REMOVE_RECURSE
  "libagrarsec_pki.a"
)
