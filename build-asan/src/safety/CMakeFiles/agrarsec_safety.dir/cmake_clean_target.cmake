file(REMOVE_RECURSE
  "libagrarsec_safety.a"
)
