file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_safety.dir/fusion.cpp.o"
  "CMakeFiles/agrarsec_safety.dir/fusion.cpp.o.d"
  "CMakeFiles/agrarsec_safety.dir/iso13849.cpp.o"
  "CMakeFiles/agrarsec_safety.dir/iso13849.cpp.o.d"
  "CMakeFiles/agrarsec_safety.dir/monitor.cpp.o"
  "CMakeFiles/agrarsec_safety.dir/monitor.cpp.o.d"
  "CMakeFiles/agrarsec_safety.dir/sotif.cpp.o"
  "CMakeFiles/agrarsec_safety.dir/sotif.cpp.o.d"
  "libagrarsec_safety.a"
  "libagrarsec_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
