
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safety/fusion.cpp" "src/safety/CMakeFiles/agrarsec_safety.dir/fusion.cpp.o" "gcc" "src/safety/CMakeFiles/agrarsec_safety.dir/fusion.cpp.o.d"
  "/root/repo/src/safety/iso13849.cpp" "src/safety/CMakeFiles/agrarsec_safety.dir/iso13849.cpp.o" "gcc" "src/safety/CMakeFiles/agrarsec_safety.dir/iso13849.cpp.o.d"
  "/root/repo/src/safety/monitor.cpp" "src/safety/CMakeFiles/agrarsec_safety.dir/monitor.cpp.o" "gcc" "src/safety/CMakeFiles/agrarsec_safety.dir/monitor.cpp.o.d"
  "/root/repo/src/safety/sotif.cpp" "src/safety/CMakeFiles/agrarsec_safety.dir/sotif.cpp.o" "gcc" "src/safety/CMakeFiles/agrarsec_safety.dir/sotif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sensors/CMakeFiles/agrarsec_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
