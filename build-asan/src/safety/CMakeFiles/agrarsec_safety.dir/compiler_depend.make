# Empty compiler generated dependencies file for agrarsec_safety.
# This may be replaced when dependencies are built.
