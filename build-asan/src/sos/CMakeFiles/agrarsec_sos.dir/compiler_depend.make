# Empty compiler generated dependencies file for agrarsec_sos.
# This may be replaced when dependencies are built.
