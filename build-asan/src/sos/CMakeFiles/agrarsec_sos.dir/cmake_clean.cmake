file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_sos.dir/emergent.cpp.o"
  "CMakeFiles/agrarsec_sos.dir/emergent.cpp.o.d"
  "CMakeFiles/agrarsec_sos.dir/system.cpp.o"
  "CMakeFiles/agrarsec_sos.dir/system.cpp.o.d"
  "libagrarsec_sos.a"
  "libagrarsec_sos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_sos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
