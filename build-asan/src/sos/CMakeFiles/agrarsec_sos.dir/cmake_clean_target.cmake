file(REMOVE_RECURSE
  "libagrarsec_sos.a"
)
