file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_sim.dir/human.cpp.o"
  "CMakeFiles/agrarsec_sim.dir/human.cpp.o.d"
  "CMakeFiles/agrarsec_sim.dir/machine.cpp.o"
  "CMakeFiles/agrarsec_sim.dir/machine.cpp.o.d"
  "CMakeFiles/agrarsec_sim.dir/pathfinding.cpp.o"
  "CMakeFiles/agrarsec_sim.dir/pathfinding.cpp.o.d"
  "CMakeFiles/agrarsec_sim.dir/spatial_index.cpp.o"
  "CMakeFiles/agrarsec_sim.dir/spatial_index.cpp.o.d"
  "CMakeFiles/agrarsec_sim.dir/terrain.cpp.o"
  "CMakeFiles/agrarsec_sim.dir/terrain.cpp.o.d"
  "CMakeFiles/agrarsec_sim.dir/worksite.cpp.o"
  "CMakeFiles/agrarsec_sim.dir/worksite.cpp.o.d"
  "libagrarsec_sim.a"
  "libagrarsec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
