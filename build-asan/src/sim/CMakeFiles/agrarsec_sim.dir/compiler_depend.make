# Empty compiler generated dependencies file for agrarsec_sim.
# This may be replaced when dependencies are built.
