file(REMOVE_RECURSE
  "libagrarsec_sim.a"
)
