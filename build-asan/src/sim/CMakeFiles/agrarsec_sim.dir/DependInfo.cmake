
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/human.cpp" "src/sim/CMakeFiles/agrarsec_sim.dir/human.cpp.o" "gcc" "src/sim/CMakeFiles/agrarsec_sim.dir/human.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/agrarsec_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/agrarsec_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/pathfinding.cpp" "src/sim/CMakeFiles/agrarsec_sim.dir/pathfinding.cpp.o" "gcc" "src/sim/CMakeFiles/agrarsec_sim.dir/pathfinding.cpp.o.d"
  "/root/repo/src/sim/spatial_index.cpp" "src/sim/CMakeFiles/agrarsec_sim.dir/spatial_index.cpp.o" "gcc" "src/sim/CMakeFiles/agrarsec_sim.dir/spatial_index.cpp.o.d"
  "/root/repo/src/sim/terrain.cpp" "src/sim/CMakeFiles/agrarsec_sim.dir/terrain.cpp.o" "gcc" "src/sim/CMakeFiles/agrarsec_sim.dir/terrain.cpp.o.d"
  "/root/repo/src/sim/worksite.cpp" "src/sim/CMakeFiles/agrarsec_sim.dir/worksite.cpp.o" "gcc" "src/sim/CMakeFiles/agrarsec_sim.dir/worksite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
