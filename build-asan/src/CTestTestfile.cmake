# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("crypto")
subdirs("pki")
subdirs("net")
subdirs("secure")
subdirs("ids")
subdirs("sim")
subdirs("sensors")
subdirs("safety")
subdirs("risk")
subdirs("assurance")
subdirs("sos")
subdirs("integration")
