file(REMOVE_RECURSE
  "libagrarsec_net.a"
)
