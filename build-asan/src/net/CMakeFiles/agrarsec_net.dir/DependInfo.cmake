
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/attacker.cpp" "src/net/CMakeFiles/agrarsec_net.dir/attacker.cpp.o" "gcc" "src/net/CMakeFiles/agrarsec_net.dir/attacker.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/agrarsec_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/agrarsec_net.dir/message.cpp.o.d"
  "/root/repo/src/net/radio.cpp" "src/net/CMakeFiles/agrarsec_net.dir/radio.cpp.o" "gcc" "src/net/CMakeFiles/agrarsec_net.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
