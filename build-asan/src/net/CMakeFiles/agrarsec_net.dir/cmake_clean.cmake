file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_net.dir/attacker.cpp.o"
  "CMakeFiles/agrarsec_net.dir/attacker.cpp.o.d"
  "CMakeFiles/agrarsec_net.dir/message.cpp.o"
  "CMakeFiles/agrarsec_net.dir/message.cpp.o.d"
  "CMakeFiles/agrarsec_net.dir/radio.cpp.o"
  "CMakeFiles/agrarsec_net.dir/radio.cpp.o.d"
  "libagrarsec_net.a"
  "libagrarsec_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
