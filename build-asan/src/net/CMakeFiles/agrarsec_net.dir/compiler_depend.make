# Empty compiler generated dependencies file for agrarsec_net.
# This may be replaced when dependencies are built.
