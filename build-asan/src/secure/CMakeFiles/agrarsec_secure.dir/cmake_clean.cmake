file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_secure.dir/audit_log.cpp.o"
  "CMakeFiles/agrarsec_secure.dir/audit_log.cpp.o.d"
  "CMakeFiles/agrarsec_secure.dir/boot.cpp.o"
  "CMakeFiles/agrarsec_secure.dir/boot.cpp.o.d"
  "CMakeFiles/agrarsec_secure.dir/handshake.cpp.o"
  "CMakeFiles/agrarsec_secure.dir/handshake.cpp.o.d"
  "CMakeFiles/agrarsec_secure.dir/session.cpp.o"
  "CMakeFiles/agrarsec_secure.dir/session.cpp.o.d"
  "CMakeFiles/agrarsec_secure.dir/update.cpp.o"
  "CMakeFiles/agrarsec_secure.dir/update.cpp.o.d"
  "libagrarsec_secure.a"
  "libagrarsec_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
