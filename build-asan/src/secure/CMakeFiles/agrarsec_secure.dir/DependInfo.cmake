
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secure/audit_log.cpp" "src/secure/CMakeFiles/agrarsec_secure.dir/audit_log.cpp.o" "gcc" "src/secure/CMakeFiles/agrarsec_secure.dir/audit_log.cpp.o.d"
  "/root/repo/src/secure/boot.cpp" "src/secure/CMakeFiles/agrarsec_secure.dir/boot.cpp.o" "gcc" "src/secure/CMakeFiles/agrarsec_secure.dir/boot.cpp.o.d"
  "/root/repo/src/secure/handshake.cpp" "src/secure/CMakeFiles/agrarsec_secure.dir/handshake.cpp.o" "gcc" "src/secure/CMakeFiles/agrarsec_secure.dir/handshake.cpp.o.d"
  "/root/repo/src/secure/session.cpp" "src/secure/CMakeFiles/agrarsec_secure.dir/session.cpp.o" "gcc" "src/secure/CMakeFiles/agrarsec_secure.dir/session.cpp.o.d"
  "/root/repo/src/secure/update.cpp" "src/secure/CMakeFiles/agrarsec_secure.dir/update.cpp.o" "gcc" "src/secure/CMakeFiles/agrarsec_secure.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/agrarsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/pki/CMakeFiles/agrarsec_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
