file(REMOVE_RECURSE
  "libagrarsec_secure.a"
)
