# Empty compiler generated dependencies file for agrarsec_secure.
# This may be replaced when dependencies are built.
