# CMake generated Testfile for 
# Source directory: /root/repo/src/secure
# Build directory: /root/repo/build-asan/src/secure
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
