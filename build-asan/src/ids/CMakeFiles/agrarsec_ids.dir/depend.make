# Empty dependencies file for agrarsec_ids.
# This may be replaced when dependencies are built.
