file(REMOVE_RECURSE
  "libagrarsec_ids.a"
)
