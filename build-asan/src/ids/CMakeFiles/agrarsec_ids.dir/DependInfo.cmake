
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ids/anomaly.cpp" "src/ids/CMakeFiles/agrarsec_ids.dir/anomaly.cpp.o" "gcc" "src/ids/CMakeFiles/agrarsec_ids.dir/anomaly.cpp.o.d"
  "/root/repo/src/ids/correlation.cpp" "src/ids/CMakeFiles/agrarsec_ids.dir/correlation.cpp.o" "gcc" "src/ids/CMakeFiles/agrarsec_ids.dir/correlation.cpp.o.d"
  "/root/repo/src/ids/ids.cpp" "src/ids/CMakeFiles/agrarsec_ids.dir/ids.cpp.o" "gcc" "src/ids/CMakeFiles/agrarsec_ids.dir/ids.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/agrarsec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
