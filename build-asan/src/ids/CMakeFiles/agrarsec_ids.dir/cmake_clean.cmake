file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_ids.dir/anomaly.cpp.o"
  "CMakeFiles/agrarsec_ids.dir/anomaly.cpp.o.d"
  "CMakeFiles/agrarsec_ids.dir/correlation.cpp.o"
  "CMakeFiles/agrarsec_ids.dir/correlation.cpp.o.d"
  "CMakeFiles/agrarsec_ids.dir/ids.cpp.o"
  "CMakeFiles/agrarsec_ids.dir/ids.cpp.o.d"
  "libagrarsec_ids.a"
  "libagrarsec_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
