# Empty dependencies file for agrarsec_integration.
# This may be replaced when dependencies are built.
