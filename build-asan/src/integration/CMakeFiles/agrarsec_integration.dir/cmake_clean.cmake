file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_integration.dir/secured_worksite.cpp.o"
  "CMakeFiles/agrarsec_integration.dir/secured_worksite.cpp.o.d"
  "libagrarsec_integration.a"
  "libagrarsec_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
