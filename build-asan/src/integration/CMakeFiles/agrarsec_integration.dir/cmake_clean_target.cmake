file(REMOVE_RECURSE
  "libagrarsec_integration.a"
)
