file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_sensors.dir/gnss.cpp.o"
  "CMakeFiles/agrarsec_sensors.dir/gnss.cpp.o.d"
  "CMakeFiles/agrarsec_sensors.dir/perception.cpp.o"
  "CMakeFiles/agrarsec_sensors.dir/perception.cpp.o.d"
  "libagrarsec_sensors.a"
  "libagrarsec_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
