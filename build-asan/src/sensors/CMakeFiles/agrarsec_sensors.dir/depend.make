# Empty dependencies file for agrarsec_sensors.
# This may be replaced when dependencies are built.
