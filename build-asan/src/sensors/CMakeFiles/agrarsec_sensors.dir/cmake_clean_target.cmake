file(REMOVE_RECURSE
  "libagrarsec_sensors.a"
)
