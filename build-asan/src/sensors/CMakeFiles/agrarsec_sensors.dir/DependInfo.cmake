
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/gnss.cpp" "src/sensors/CMakeFiles/agrarsec_sensors.dir/gnss.cpp.o" "gcc" "src/sensors/CMakeFiles/agrarsec_sensors.dir/gnss.cpp.o.d"
  "/root/repo/src/sensors/perception.cpp" "src/sensors/CMakeFiles/agrarsec_sensors.dir/perception.cpp.o" "gcc" "src/sensors/CMakeFiles/agrarsec_sensors.dir/perception.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/agrarsec_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/agrarsec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
