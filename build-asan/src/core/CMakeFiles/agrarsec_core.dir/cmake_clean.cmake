file(REMOVE_RECURSE
  "CMakeFiles/agrarsec_core.dir/bytes.cpp.o"
  "CMakeFiles/agrarsec_core.dir/bytes.cpp.o.d"
  "CMakeFiles/agrarsec_core.dir/event_bus.cpp.o"
  "CMakeFiles/agrarsec_core.dir/event_bus.cpp.o.d"
  "CMakeFiles/agrarsec_core.dir/geometry.cpp.o"
  "CMakeFiles/agrarsec_core.dir/geometry.cpp.o.d"
  "CMakeFiles/agrarsec_core.dir/log.cpp.o"
  "CMakeFiles/agrarsec_core.dir/log.cpp.o.d"
  "CMakeFiles/agrarsec_core.dir/rng.cpp.o"
  "CMakeFiles/agrarsec_core.dir/rng.cpp.o.d"
  "CMakeFiles/agrarsec_core.dir/stats.cpp.o"
  "CMakeFiles/agrarsec_core.dir/stats.cpp.o.d"
  "libagrarsec_core.a"
  "libagrarsec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agrarsec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
