# Empty dependencies file for agrarsec_core.
# This may be replaced when dependencies are built.
