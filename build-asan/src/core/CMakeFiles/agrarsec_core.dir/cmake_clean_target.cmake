file(REMOVE_RECURSE
  "libagrarsec_core.a"
)
