# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/pki_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/secure_test[1]_include.cmake")
include("/root/repo/build/tests/ids_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sensors_test[1]_include.cmake")
include("/root/repo/build/tests/safety_test[1]_include.cmake")
include("/root/repo/build/tests/risk_test[1]_include.cmake")
include("/root/repo/build/tests/assurance_test[1]_include.cmake")
include("/root/repo/build/tests/sos_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
