// Builds the Security Assurance Case for the worksite (paper §V):
// CASCADE-style generation from the TARA, the safety-interplay extension
// from the co-analysis, evaluation against the evidence registry, and the
// Regulation (EU) 2023/1230 compliance mapping. Optionally dumps the GSN
// graph as DOT.
//
//   build/examples/assurance_case [--dot]
#include <cstdio>
#include <cstring>

#include "assurance/cascade.h"
#include "assurance/compliance.h"
#include "assurance/modular.h"
#include "risk/catalog.h"
#include "risk/coanalysis.h"

using namespace agrarsec;

int main(int argc, char** argv) {
  const bool dump_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  const risk::Tara tara = risk::build_forestry_tara();
  assurance::EvidenceRegistry registry;
  assurance::CascadeResult sac = assurance::build_security_case(tara, registry);

  const auto fca = risk::build_forestry_coanalysis(tara);
  assurance::extend_with_coanalysis(sac, fca.analysis.analyze(tara), registry);

  if (dump_dot) {
    std::fputs(sac.argument.to_dot().c_str(), stdout);
    return 0;
  }

  std::printf("security assurance case for '%s'\n", tara.item().name.c_str());
  std::printf("================================================\n");
  std::printf("argument nodes: %zu, evidence items: %zu\n", sac.argument.size(),
              registry.size());

  const auto problems = sac.argument.validate();
  std::printf("structural validation: %s\n",
              problems.empty() ? "clean" : problems.front().c_str());

  const auto eval = sac.argument.evaluate(registry);
  const auto& top = eval.at(sac.top_goal.value());
  std::printf("top claim: %s (confidence %.3f)\n\n",
              std::string(assurance::support_status_name(top.status)).c_str(),
              top.confidence);

  // Per-asset goals overview.
  std::printf("asset goals:\n");
  for (const risk::Asset& asset : tara.item().assets) {
    const assurance::GsnNode* node =
        sac.argument.by_label("G-asset-" + asset.name);
    if (node == nullptr) continue;
    const auto& e = eval.at(node->id.value());
    std::printf("  %-24s %-12s conf %.3f\n", asset.name.c_str(),
                std::string(assurance::support_status_name(e.status)).c_str(),
                e.confidence);
  }

  // Compliance mapping.
  assurance::ComplianceMap compliance{assurance::machinery_requirements()};
  compliance.map("MR-1.1.9", "G-top");
  compliance.map("MR-1.2.1", "G-asset-estop-function");
  compliance.map("MR-1.2.1", "G-interplay");
  compliance.map("MR-1.1.6", "G-asset-mission-control");
  compliance.map("MR-1.2.2", "G-asset-m2m-radio-link");
  compliance.map("MR-1.3.7", "G-asset-people-detection-chain");
  compliance.map("CRA-SUR-1", "G-asset-forwarder-firmware");
  compliance.map("CRA-SUR-2", "G-asset-audit-log");

  std::printf("\nRegulation (EU) 2023/1230 + CRA coverage:\n");
  for (const auto& status : compliance.evaluate(sac.argument, registry)) {
    std::printf("  %-10s %-46s %s\n", status.requirement.id.c_str(),
                status.requirement.title.c_str(),
                !status.mapped ? "UNMAPPED"
                               : (status.supported ? "supported" : "OPEN"));
  }
  std::printf("coverage: %.0f%%\n",
              100.0 * compliance.coverage(sac.argument, registry));

  // Modular SoS case: import this case as the forwarder's module next to
  // the drone vendor's and the operator's, over the composition checks.
  {
    const auto composition = sos::build_forestry_sos();
    assurance::EvidenceRegistry sos_registry;
    std::vector<assurance::AssuranceModule> modules;
    modules.push_back(assurance::summarize_module(
        "autonomous-forwarder", "forest-machine-oem", sac.argument, sac.top_goal,
        registry));
    assurance::AssuranceModule drone_mod;
    drone_mod.system_name = "observation-drone";
    drone_mod.owner = "drone-vendor";
    drone_mod.top_claim = "drone platform acceptably secure (vendor case)";
    drone_mod.status = assurance::SupportStatus::kSupported;
    drone_mod.confidence = 0.85;
    modules.push_back(drone_mod);
    assurance::AssuranceModule op_mod = drone_mod;
    op_mod.system_name = "operator-station";
    op_mod.owner = "forestry-company";
    op_mod.top_claim = "operator station acceptably secure (company case)";
    op_mod.confidence = 0.8;
    modules.push_back(op_mod);

    const auto sos_case =
        assurance::build_sos_case(composition, modules, sos_registry);
    const auto sos_eval = sos_case.argument.evaluate(sos_registry);
    const auto& sos_top = sos_eval.at(sos_case.top_goal.value());
    std::printf("\nmodular SoS case: %zu nodes, top claim %s (conf %.3f)\n",
                sos_case.argument.size(),
                std::string(assurance::support_status_name(sos_top.status)).c_str(),
                sos_top.confidence);
    std::printf("(the forwarder module's status was imported from the case "
                "above — its open interplay hazards propagate to the SoS "
                "level, which is the point of modular assurance)\n");
  }

  // Continuous assurance: a field regression drops evidence confidence and
  // the case reacts.
  std::printf("\ncontinuous assurance demo: secure-channel verification fails in "
              "the field...\n");
  registry.update_confidence(sac.control_evidence.at("secure-channel"), 0.0);
  const auto eval2 = sac.argument.evaluate(registry);
  const auto& top2 = eval2.at(sac.top_goal.value());
  std::printf("top claim now: %s — the case demands re-verification before the "
              "machine returns to service\n",
              std::string(assurance::support_status_name(top2.status)).c_str());
  return 0;
}
