// Runs the forestry-adapted risk assessment methodology end to end:
// ISO/SAE 21434 TARA over the Table I threat catalogue, IEC 62443
// zone/conduit gap analysis, and the safety-security co-analysis — the
// workflow the paper sketches as its future methodology (§VI).
//
//   build/examples/risk_assessment
#include <cstdio>

#include "risk/attack_path.h"
#include "risk/catalog.h"
#include "risk/coanalysis.h"
#include "risk/iec62443.h"

using namespace agrarsec;

int main() {
  std::printf("forestry worksite risk assessment (ISO/SAE 21434 + IEC 62443)\n");
  std::printf("==============================================================\n\n");

  const risk::Tara tara = risk::build_forestry_tara();
  std::printf("item: %s\n", tara.item().name.c_str());
  std::printf("assets: %zu, threat scenarios: %zu\n\n", tara.item().assets.size(),
              tara.results().size());

  std::printf("%-26s %-22s %5s %5s %5s %s\n", "threat", "asset", "risk", "resid",
              "CAL", "treatment");
  for (const auto& r : tara.results()) {
    const risk::Asset* asset = tara.item().find(r.scenario.asset);
    std::printf("%-26s %-22s %5d %5d %5s %s\n", r.scenario.name.c_str(),
                asset != nullptr ? asset->name.c_str() : "?", r.initial_risk,
                r.residual_risk, std::string(risk::cal_name(r.cal)).c_str(),
                std::string(risk::treatment_name(r.treatment)).c_str());
  }

  std::printf("\nmax risk: initial %d -> residual %d; highest CAL: %s\n",
              tara.max_initial_risk(), tara.max_residual_risk(),
              std::string(risk::cal_name(tara.max_cal())).c_str());

  // IEC 62443 zones & conduits.
  std::printf("\nIEC 62443 zone/conduit security levels\n");
  std::printf("--------------------------------------\n");
  const risk::ZoneModel zones = risk::forestry_zone_model(tara.item());
  const auto catalogue = risk::countermeasure_catalogue();
  for (const risk::Zone& z : zones.zones()) {
    std::printf("zone %-10s SL-T %s\n                SL-A %s\n", z.name.c_str(),
                risk::sl_vector_to_string(z.target).c_str(),
                risk::sl_vector_to_string(zones.achieved(z, catalogue)).c_str());
  }
  const auto gaps = zones.gaps(catalogue);
  if (gaps.empty()) {
    std::printf("no SL gaps — achieved levels meet every target\n");
  } else {
    std::printf("open gaps (%zu):\n", gaps.size());
    for (const auto& gap : gaps) {
      std::printf("  %-28s %-4s target %d achieved %d\n", gap.subject.c_str(),
                  std::string(risk::fr_name(gap.fr)).c_str(), gap.target,
                  gap.achieved);
    }
  }

  // Attack-path analysis (clause 15.7) for the headline threats.
  std::printf("\nattack-path analysis (ISO 21434 clause 15.7)\n");
  std::printf("---------------------------------------------\n");
  struct TreeCase {
    const char* threat;
    risk::AttackNode::Ptr tree;
    std::vector<std::string> blocked;
    const char* control;
  };
  const TreeCase tree_cases[] = {
      {"estop-replay", risk::estop_replay_tree(), {"replay-plaintext"},
       "secure-channel"},
      {"malicious-update", risk::malicious_update_tree(), {"push-unsigned"},
       "signed-firmware"},
      {"gnss-spoof-walkoff", risk::gnss_walkoff_tree(), {"fast-jump"},
       "gnss-plausibility"},
  };
  for (const TreeCase& c : tree_cases) {
    const auto before = c.tree->cheapest_path();
    const auto after = c.tree->cheapest_path(c.blocked);
    std::printf("%-20s cheapest path: ", c.threat);
    if (before) {
      for (std::size_t i = 0; i < before->steps.size(); ++i) {
        std::printf("%s%s", i ? " -> " : "", before->steps[i].id.c_str());
      }
      std::printf(" (%s)\n",
                  std::string(risk::feasibility_name(
                                  risk::feasibility_from_potential(before->potential)))
                      .c_str());
    } else {
      std::printf("infeasible\n");
    }
    std::printf("%-20s with %-18s: ", "", c.control);
    if (after) {
      for (std::size_t i = 0; i < after->steps.size(); ++i) {
        std::printf("%s%s", i ? " -> " : "", after->steps[i].id.c_str());
      }
      std::printf(" (%s)\n",
                  std::string(risk::feasibility_name(
                                  risk::feasibility_from_potential(after->potential)))
                      .c_str());
    } else {
      std::printf("no remaining path — scenario infeasible\n");
    }
  }

  // Co-analysis.
  std::printf("\nsafety-security co-analysis (IEC TS 63074 reading)\n");
  std::printf("---------------------------------------------------\n");
  const risk::ForestryCoAnalysis fca = risk::build_forestry_coanalysis(tara);
  for (const auto& v : fca.analysis.analyze(tara)) {
    std::printf("hazard %-28s requires %s", v.hazard.name.c_str(),
                std::string(safety::performance_level_name(v.required)).c_str());
    if (v.achieved) {
      std::printf(", achieves %s",
                  std::string(safety::performance_level_name(*v.achieved)).c_str());
    }
    if (v.under_attack) {
      std::printf(" (under attack: %s)",
                  std::string(safety::performance_level_name(*v.under_attack)).c_str());
    }
    std::printf("\n  safety %s | security %s | combined %s\n",
                v.safety_ok ? "OK" : "OPEN", v.security_ok ? "OK" : "OPEN",
                v.combined_ok ? "OK" : "OPEN");
    for (const ThreatId t : v.critical_threats) {
      for (const auto& r : tara.results()) {
        if (r.scenario.id == t) {
          std::printf("    blocking threat: %s (residual risk %d)\n",
                      r.scenario.name.c_str(), r.residual_risk);
        }
      }
    }
  }
  return 0;
}
