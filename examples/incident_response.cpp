// Incident response walkthrough: a fleet worksite is attacked mid-shift;
// afterwards the operator reconstructs what happened from the machine's
// own artifacts — correlated IDS incidents, the tamper-evident audit
// trail (EU 2023/1230 Annex III 1.1.9 evidence duty), emergent-behaviour
// findings and the SOTIF census. Ends with a tamper check: a manipulated
// log is caught by the signed hash chain.
//
//   build/examples/incident_response
#include <cstdio>

#include "integration/secured_worksite.h"

using namespace agrarsec;

int main() {
  integration::SecuredWorksiteConfig config;
  config.seed = 404;
  config.forwarder_count = 2;
  config.worksite.forest.boulders_per_hectare = 40;
  config.monitor.restart_delay = 2 * core::kSecond;
  config.fusion.freshness_window = 500;

  integration::SecuredWorksite site{config};
  site.worksite().add_worker("feller-1", {230, 240}, {250, 250});
  site.worksite().add_worker("feller-2", {260, 250}, {250, 250});

  std::printf("incident response walkthrough — 2 forwarders, secured links\n");
  std::printf("============================================================\n\n");

  std::printf("[shift] 5 quiet minutes...\n");
  site.run_for(5 * core::kMinute);

  std::printf("[attack] spoof burst + flood from a roadside attacker...\n");
  auto& attacker = site.add_attacker({150, 150}, 2);
  for (int i = 0; i < 20; ++i) {
    attacker.spoof(site.radio(), site.worksite().clock().now(), 3 /*operator*/,
                   net::MessageType::kEstopCommand, net::EstopBody{1, 0}.encode(),
                   site.forwarder_node());
    site.run_for(2 * core::kSecond);
  }
  attacker.flood(site.radio(), site.worksite().clock().now(), 3, 400);
  site.run_for(core::kMinute);

  std::printf("[attack] pulsed lidar ghosting against forwarder-2...\n");
  sensors::SensorAttack on;
  on.ghosts = 2;
  on.ghost_radius_m = 9.0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    site.attack_forwarder_sensor(on, 1);
    site.run_for(3 * core::kSecond);
    site.attack_forwarder_sensor({}, 1);
    site.run_for(5 * core::kSecond);
  }
  site.run_for(2 * core::kMinute);  // quiet tail closes incidents

  // --- the operator's reconstruction ---
  std::printf("\n--- correlated incidents (%zu total, %zu still open) ---\n",
              site.incidents().incidents().size(), site.incidents().open_count());
  for (const auto& incident : site.incidents().incidents()) {
    std::printf("  %s\n", ids::AlertCorrelator::summarize(incident).c_str());
  }

  std::printf("\n--- audit trail (%zu entries) ---\n", site.audit().size());
  std::printf("  e-stop events:   %zu\n", site.audit().by_category("estop").size());
  std::printf("  degradations:    %zu\n", site.audit().by_category("degraded").size());
  std::printf("  critical alerts: %zu\n", site.audit().by_category("ids-alert").size());
  const auto checkpoint = site.audit().checkpoint();
  const auto verdict = secure::AuditLog::verify(site.audit().entries(), checkpoint,
                                                site.audit().public_key());
  std::printf("  chain verification against signed checkpoint: %s\n",
              verdict ? "BROKEN" : "intact");

  std::printf("\n--- tamper attempt: defence counsel edits entry #2 ---\n");
  auto tampered = site.audit().entries();
  if (tampered.size() > 2) {
    tampered[2].detail = "routine stop (nothing to see)";
    const auto broken =
        secure::AuditLog::verify(tampered, checkpoint, site.audit().public_key());
    if (broken) {
      std::printf("  verification fails at entry %lu — manipulation detected\n",
                  static_cast<unsigned long>(*broken));
    } else {
      std::printf("  verification unexpectedly passed (BUG)\n");
    }
  }

  std::printf("\n--- emergent behaviour (SoS view) ---\n");
  std::printf("  stop-start oscillations: %lu\n",
              static_cast<unsigned long>(
                  site.emergent().count("stop-start-oscillation")));
  std::printf("  cascade degradations:    %lu\n",
              static_cast<unsigned long>(site.emergent().count("cascade-degradation")));

  std::printf("\n--- per-machine stops ---\n");
  for (std::size_t i = 0; i < site.forwarder_count(); ++i) {
    std::printf("  forwarder-%zu: %lu e-stops\n", i + 1,
                static_cast<unsigned long>(site.monitor(i).stats().estops));
  }

  std::printf("\n--- SOTIF census of blind steps during the shift ---\n");
  for (const auto& condition : site.sotif().conditions()) {
    const auto ev = site.sotif().evidence(condition.id);
    if (ev.encounters == 0) continue;
    std::printf("  %-20s %lu\n", condition.id.c_str(),
                static_cast<unsigned long>(ev.encounters));
  }

  std::printf("\nconclusion: every operator-facing artifact above was produced\n"
              "by the machines themselves, survives the uplink outage typical\n"
              "of remote sites, and is evidence-grade (signed, tamper-evident)\n"
              "— the §V/Annex-III story, executed.\n");
  return 0;
}
