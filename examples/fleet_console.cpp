// Embedded operations console walkthrough: a FleetService running several
// secured worksite sessions, with the on-machine console serving live
// JSON snapshots over HTTP and the authenticated control plane driving
// pause / single-step / attack injection / evidence export over our own
// secure-channel records.
//
//   build/examples/fleet_console            # narrated walkthrough
//   build/examples/fleet_console --smoke    # quiet, exits non-zero on any
//                                           # failed round trip (CI smoke)
#include <cstdio>
#include <cstring>
#include <string>

#include "crypto/random.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "service/console.h"
#include "service/fleet_service.h"

using namespace agrarsec;

namespace {

integration::SecuredWorksiteConfig session_config(std::uint64_t seed) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.forest.boulders_per_hectare = 20;
  config.worksite.harvester_output_m3_per_min = 20.0;
  config.worksite.load_time = 10 * core::kSecond;
  return config;
}

bool fail(const char* what) {
  std::fprintf(stderr, "fleet_console: FAILED: %s\n", what);
  return false;
}

bool run(bool smoke) {
  const bool chatty = !smoke;

  // Site PKI: one root, a console identity on the machine, an operator
  // station identity for the client side.
  crypto::Drbg drbg{2026, "console-demo"};
  auto root = pki::CertificateAuthority::create_root(
      "site-root", drbg.generate32(), 0, 3650 * 24 * core::kHour);
  pki::TrustStore trust;
  if (!trust.add_root(root.certificate()).ok()) return fail("trust bootstrap");
  auto console_id = pki::enroll(root, drbg, "console-01",
                                pki::CertRole::kOperatorStation, 0,
                                365 * 24 * core::kHour);
  auto operator_id = pki::enroll(root, drbg, "operator-01",
                                 pki::CertRole::kOperatorStation, 0,
                                 365 * 24 * core::kHour);
  if (!console_id.ok() || !operator_id.ok()) return fail("enrollment");

  // Fleet: three keyed sessions, stepped a little so the snapshots carry
  // real content.
  service::FleetServiceConfig fleet_config;
  fleet_config.threads = 2;
  fleet_config.fleet_seed = 42;
  service::FleetService fleet{fleet_config};
  std::vector<service::SessionId> ids;
  for (std::uint64_t key = 0; key < 3; ++key) {
    ids.push_back(fleet.create_session_keyed(
        session_config(service::FleetService::derive_session_seed(42, key)), key));
  }
  fleet.step_all(20);

  service::ConsoleService console{fleet, console_id.value(), trust, 7};
  if (!console.start().ok()) return fail("console start");
  if (chatty) {
    std::printf("console up: http://127.0.0.1:%u  control port %u\n\n",
                console.http_port(), console.control_port());
  }

  // Read-only HTTP plane.
  auto sessions = service::http_get_local(console.http_port(), "/sessions");
  if (!sessions.ok()) return fail("GET /sessions");
  if (chatty) std::printf("GET /sessions\n  %s\n\n", sessions.value().c_str());
  auto metrics = service::http_get_local(console.http_port(), "/metrics");
  if (!metrics.ok()) return fail("GET /metrics");
  if (metrics.value().find("fleet.session_steps") == std::string::npos) {
    return fail("/metrics missing fleet counters");
  }
  if (chatty) {
    std::printf("GET /metrics -> %zu bytes of registry + traces\n",
                metrics.value().size());
    auto flight = service::http_get_local(
        console.http_port(), "/flight/" + std::to_string(ids[0]) + "?n=3");
    if (flight.ok()) std::printf("GET /flight/%llu?n=3\n  %s\n\n",
                                 static_cast<unsigned long long>(ids[0]),
                                 flight.value().c_str());
  }

  // Authenticated control plane: handshake, then sealed JSON-RPC records.
  crypto::Drbg op_drbg{2027, "operator"};
  auto client = service::ConsoleClient::connect(
      console.control_port(), operator_id.value(), trust, op_drbg, "console-01");
  if (!client.ok()) return fail("control handshake");
  if (chatty) {
    std::printf("control channel up, authenticated peer '%s'\n",
                client.value().peer_subject().c_str());
  }

  auto paused = client.value().call("pause");
  if (!paused.ok() || !fleet.paused()) return fail("pause");
  const std::uint64_t steps_at_pause = fleet.total_session_steps();
  fleet.step_all(50);  // driver keeps calling; the pause gates it
  if (fleet.total_session_steps() != steps_at_pause) return fail("pause gating");

  auto stepped = client.value().call("step", "{\"steps\":5}");
  if (!stepped.ok()) return fail("step");
  if (fleet.total_session_steps() != steps_at_pause + 5 * ids.size()) {
    return fail("operator single-step count");
  }
  if (chatty) std::printf("paused fleet, operator-stepped 5: %s\n",
                          stepped.value().c_str());

  auto injected = client.value().call(
      "inject-attack",
      "{\"session\":" + std::to_string(ids[1]) + ",\"x\":60,\"y\":60,\"level\":2}");
  if (!injected.ok()) return fail("inject-attack");

  auto exported = client.value().call(
      "export", "{\"session\":" + std::to_string(ids[0]) + "}");
  if (!exported.ok()) return fail("export");
  if (chatty) std::printf("exported session %llu evidence: %zu bytes\n",
                          static_cast<unsigned long long>(ids[0]),
                          exported.value().size());

  if (!client.value().call("resume").ok() || fleet.paused()) return fail("resume");
  fleet.step_all(5);

  console.stop();
  if (chatty) std::printf("\nconsole stopped cleanly\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (!run(smoke)) return 1;
  if (smoke) std::printf("fleet_console smoke: OK\n");
  return 0;
}
