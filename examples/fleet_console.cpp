// Embedded operations console walkthrough: a FleetService running several
// secured worksite sessions, with the on-machine console serving live
// JSON snapshots over HTTP and the authenticated control plane driving
// pause / single-step / attack injection / evidence export over our own
// secure-channel records. The second half streams flight-recorder events
// over SSE and then runs a scripted control-plane attack (handshake
// bruteforce, replay burst, command flood) against the console's own IDS
// sensor — the coverage analyzer's `console-control-plane-attack`
// scenario points here.
//
//   build/examples/fleet_console            # narrated walkthrough
//   build/examples/fleet_console --smoke    # quiet, exits non-zero on any
//                                           # failed round trip (CI smoke)
#include <cstdio>
#include <chrono>
#include <cstring>
#include <thread>
#include <string>

#include "core/bytes.h"
#include "crypto/random.h"
#include "net/stream.h"
#include "secure/session.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "service/console.h"
#include "service/fleet_service.h"

using namespace agrarsec;

namespace {

integration::SecuredWorksiteConfig session_config(std::uint64_t seed) {
  integration::SecuredWorksiteConfig config;
  config.seed = seed;
  config.worksite.forest.trees_per_hectare = 120;
  config.worksite.forest.boulders_per_hectare = 20;
  config.worksite.harvester_output_m3_per_min = 20.0;
  config.worksite.load_time = 10 * core::kSecond;
  return config;
}

bool fail(const char* what) {
  std::fprintf(stderr, "fleet_console: FAILED: %s\n", what);
  return false;
}

bool run(bool smoke) {
  const bool chatty = !smoke;

  // Site PKI: one root, a console identity on the machine, an operator
  // station identity for the client side.
  crypto::Drbg drbg{2026, "console-demo"};
  auto root = pki::CertificateAuthority::create_root(
      "site-root", drbg.generate32(), 0, 3650 * 24 * core::kHour);
  pki::TrustStore trust;
  if (!trust.add_root(root.certificate()).ok()) return fail("trust bootstrap");
  auto console_id = pki::enroll(root, drbg, "console-01",
                                pki::CertRole::kOperatorStation, 0,
                                365 * 24 * core::kHour);
  auto operator_id = pki::enroll(root, drbg, "operator-01",
                                 pki::CertRole::kOperatorStation, 0,
                                 365 * 24 * core::kHour);
  if (!console_id.ok() || !operator_id.ok()) return fail("enrollment");

  // Fleet: three keyed sessions, stepped a little so the snapshots carry
  // real content.
  service::FleetServiceConfig fleet_config;
  fleet_config.threads = 2;
  fleet_config.fleet_seed = 42;
  service::FleetService fleet{fleet_config};
  std::vector<service::SessionId> ids;
  for (std::uint64_t key = 0; key < 3; ++key) {
    ids.push_back(fleet.create_session_keyed(
        session_config(service::FleetService::derive_session_seed(42, key)), key));
  }
  fleet.step_all(20);

  service::ConsoleService console{fleet, console_id.value(), trust, 7};
  if (!console.start().ok()) return fail("console start");
  if (chatty) {
    std::printf("console up: http://127.0.0.1:%u  control port %u\n\n",
                console.http_port(), console.control_port());
  }

  // Read-only HTTP plane.
  auto sessions = service::http_get_local(console.http_port(), "/sessions");
  if (!sessions.ok()) return fail("GET /sessions");
  if (chatty) std::printf("GET /sessions\n  %s\n\n", sessions.value().c_str());
  auto metrics = service::http_get_local(console.http_port(), "/metrics");
  if (!metrics.ok()) return fail("GET /metrics");
  if (metrics.value().find("fleet.session_steps") == std::string::npos) {
    return fail("/metrics missing fleet counters");
  }
  if (chatty) {
    std::printf("GET /metrics -> %zu bytes of registry + traces\n",
                metrics.value().size());
    auto flight = service::http_get_local(
        console.http_port(), "/flight/" + std::to_string(ids[0]) + "?n=3");
    if (flight.ok()) std::printf("GET /flight/%llu?n=3\n  %s\n\n",
                                 static_cast<unsigned long long>(ids[0]),
                                 flight.value().c_str());
  }

  // Authenticated control plane: handshake, then sealed JSON-RPC records.
  crypto::Drbg op_drbg{2027, "operator"};
  auto client = service::ConsoleClient::connect(
      console.control_port(), operator_id.value(), trust, op_drbg, "console-01");
  if (!client.ok()) return fail("control handshake");
  if (chatty) {
    std::printf("control channel up, authenticated peer '%s'\n",
                client.value().peer_subject().c_str());
  }

  auto paused = client.value().call("pause");
  if (!paused.ok() || !fleet.paused()) return fail("pause");
  const std::uint64_t steps_at_pause = fleet.total_session_steps();
  fleet.step_all(50);  // driver keeps calling; the pause gates it
  if (fleet.total_session_steps() != steps_at_pause) return fail("pause gating");

  auto stepped = client.value().call("step", "{\"steps\":5}");
  if (!stepped.ok()) return fail("step");
  if (fleet.total_session_steps() != steps_at_pause + 5 * ids.size()) {
    return fail("operator single-step count");
  }
  if (chatty) std::printf("paused fleet, operator-stepped 5: %s\n",
                          stepped.value().c_str());

  auto injected = client.value().call(
      "inject-attack",
      "{\"session\":" + std::to_string(ids[1]) + ",\"x\":60,\"y\":60,\"level\":2}");
  if (!injected.ok()) return fail("inject-attack");

  auto exported = client.value().call(
      "export", "{\"session\":" + std::to_string(ids[0]) + "}");
  if (!exported.ok()) return fail("export");
  if (chatty) std::printf("exported session %llu evidence: %zu bytes\n",
                          static_cast<unsigned long long>(ids[0]),
                          exported.value().size());

  if (!client.value().call("resume").ok() || fleet.paused()) return fail("resume");
  fleet.step_all(5);

  // Streaming plane: subscribe to the session's flight recorder over SSE
  // and check the live push carries real event frames with sequence ids.
  {
    net::TcpStream sub = net::TcpStream::connect_local(console.http_port());
    if (!sub.valid()) return fail("SSE connect");
    const std::string get = "GET /stream/flight/" + std::to_string(ids[0]) +
                            "?cursor=0 HTTP/1.1\r\nHost: x\r\n\r\n";
    if (!sub.write_all(std::string_view{get}, 2000)) return fail("SSE request");
    std::string got;
    std::uint8_t chunk[2048];
    while (got.find("\ndata: {\"seq\":") == std::string::npos) {
      const long n = sub.read_some(chunk, sizeof(chunk), 2000);
      if (n <= 0) return fail("SSE stream stalled before first event");
      got.append(reinterpret_cast<const char*>(chunk),
                 static_cast<std::size_t>(n));
    }
    if (got.find("Content-Type: text/event-stream") == std::string::npos) {
      return fail("SSE content type");
    }
    if (chatty) {
      std::printf("SSE /stream/flight/%llu delivered live events (%zu bytes)\n",
                  static_cast<unsigned long long>(ids[0]), got.size());
    }
  }

  // Scripted control-plane attack against the console's own IDS sensor:
  // the control plane is an attack surface, so its abuse must itself be a
  // detected event (TARA threats console-handshake-bruteforce,
  // console-replay-burst, console-command-flood).
  {
    // Handshake bruteforce: garbage first flights until the streak trips.
    // The probes queue behind the operator's idle control connection, so
    // the sensor count is awaited, not asserted immediately.
    for (int i = 0; i < 5; ++i) {
      net::TcpStream probe = net::TcpStream::connect_local(console.control_port());
      if (!probe.valid()) return fail("bruteforce connect");
      const core::Bytes garbage = core::from_string("definitely not msg1");
      if (!net::write_frame(probe, garbage, 500)) return fail("bruteforce frame");
      std::uint8_t sink[64];
      while (probe.read_some(sink, sizeof(sink), 500) > 0) {
      }
    }
    for (int waited = 0;
         console.sensor_alert_count("control-bruteforce") == 0; waited += 50) {
      if (waited > 8000) return fail("bruteforce undetected");
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // The bruteforce storm starved the operator's old connection; a fresh
    // handshake is the operator's recovery path (same as after rotation).
    client = service::ConsoleClient::connect(
        console.control_port(), operator_id.value(), trust, op_drbg, "console-01");
    if (!client.ok()) return fail("control re-handshake");

    // Replay burst: forged sealed records on the authenticated session.
    crypto::Drbg fuzz{2028, "fuzz"};
    for (int i = 0; i < 8; ++i) {
      secure::Record forged;
      forged.sequence = 5000 + static_cast<std::uint64_t>(i);
      forged.ciphertext = fuzz.generate(48);
      if (!client.value().send_raw_frame(forged.encode())) {
        return fail("replay frame");
      }
    }
    if (!client.value().call("ping").ok()) return fail("post-replay ping");
    if (console.sensor_alert_count("control-replay-burst") == 0) {
      return fail("replay burst undetected");
    }

    // Command flood: hammer genuine dispatches past the rate threshold.
    for (int i = 0; i < 31; ++i) {
      if (!client.value().call("ping").ok()) return fail("flood ping");
    }
    if (console.sensor_alert_count("control-flood") == 0) {
      return fail("command flood undetected");
    }
    if (chatty) {
      auto ids_view = service::http_get_local(console.http_port(), "/ids");
      std::printf("control-plane attack detected by the console sensor:\n  %s\n",
                  ids_view.ok() ? ids_view.value().c_str() : "(/ids unavailable)");
    }
  }

  console.stop();
  if (chatty) std::printf("\nconsole stopped cleanly\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (!run(smoke)) return 1;
  if (smoke) std::printf("fleet_console smoke: OK\n");
  return 0;
}
