// Quickstart: spin up the secured worksite of the paper's Figure 1, run a
// short shift, and print the safety/security picture.
//
//   build/examples/quickstart [minutes]
#include <cstdio>
#include <cstdlib>

#include "integration/secured_worksite.h"

using namespace agrarsec;

int main(int argc, char** argv) {
  const int minutes = argc > 1 ? std::atoi(argv[1]) : 30;

  integration::SecuredWorksiteConfig config;
  config.seed = 2026;
  config.secure_links = true;
  config.ids_enabled = true;

  integration::SecuredWorksite site{config};

  // A small crew working around the harvester.
  site.worksite().add_worker("chainsaw-1", {240, 240}, {250, 250});
  site.worksite().add_worker("chainsaw-2", {260, 260}, {250, 250});
  site.worksite().add_worker("surveyor", {100, 100}, {150, 150});

  std::printf("agrarsec quickstart — %d simulated minutes\n", minutes);
  std::printf("  forwarder: autonomous, lidar mast + drone cover\n");
  std::printf("  links: %s, IDS: %s\n\n",
              config.secure_links ? "AEAD secure channel" : "PLAINTEXT",
              config.ids_enabled ? "on" : "off");

  for (int m = 1; m <= minutes; ++m) {
    site.run_for(core::kMinute);
    if (m % 10 == 0 || m == minutes) {
      std::printf("[%3d min] delivered %.1f m3, cycles %lu, e-stops %lu, "
                  "degrades %lu\n",
                  m, site.worksite().delivered_m3(),
                  static_cast<unsigned long>(site.worksite().completed_cycles()),
                  static_cast<unsigned long>(site.monitor().stats().estops),
                  static_cast<unsigned long>(site.monitor().stats().degrades));
    }
  }

  const auto& sec = site.security_metrics();
  const auto& out = site.safety_outcome();
  std::printf("\n--- security ---\n");
  std::printf("detection reports   sent %lu, accepted %lu, rejected %lu\n",
              static_cast<unsigned long>(sec.detection_reports_sent),
              static_cast<unsigned long>(sec.detection_reports_accepted),
              static_cast<unsigned long>(sec.detection_reports_rejected));
  std::printf("spoofed msgs accepted: %lu (must be 0 with secure links)\n",
              static_cast<unsigned long>(sec.spoofed_messages_accepted));
  std::printf("IDS alerts: %lu\n",
              static_cast<unsigned long>(site.ids().total_alerts()));

  std::printf("\n--- safety ---\n");
  std::printf("worker encounters: %lu, missed: %lu\n",
              static_cast<unsigned long>(out.encounters),
              static_cast<unsigned long>(out.missed_encounters));
  if (!out.time_to_detect_ms.empty()) {
    std::printf("time-to-detect: median %.0f ms, p95 %.0f ms\n",
                out.time_to_detect_ms.median(), out.time_to_detect_ms.percentile(0.95));
  }
  std::printf("hazardous exposure steps: %lu of %lu in-zone steps\n",
              static_cast<unsigned long>(out.hazardous_exposures),
              static_cast<unsigned long>(out.exposure_steps));
  std::printf("min human separation while moving: %.1f m\n",
              site.worksite().min_human_separation());
  return 0;
}
