// Attack walkthrough: runs the worksite through the attack classes the
// paper's survey (§IV-C) transfers from mining/automotive — spoofed
// commands, replay, jamming, GNSS spoofing, sensor ghosting — first
// against the plaintext baseline, then against the hardened stack, and
// prints what each defence layer contributed.
//
//   build/examples/attack_scenarios
#include <cstdio>
#include <string>

#include "integration/secured_worksite.h"

using namespace agrarsec;

namespace {

struct ScenarioResult {
  std::string name;
  bool machine_compromised = false;  ///< attacker affected physical behaviour
  std::string note;
};

ScenarioResult spoofed_estop(bool secure) {
  integration::SecuredWorksiteConfig config;
  config.seed = 100;
  config.secure_links = secure;
  config.ids_enabled = false;
  integration::SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  auto& attacker = site.add_attacker({120, 120}, 2);
  attacker.spoof(site.radio(), site.worksite().clock().now(), 3 /*operator id*/,
                 net::MessageType::kEstopCommand, net::EstopBody{1, 0}.encode(),
                 site.forwarder_node());
  site.run_for(5 * core::kSecond);

  ScenarioResult r;
  r.name = std::string("spoofed e-stop (") + (secure ? "secure" : "plaintext") + ")";
  r.machine_compromised = site.worksite().machine(site.forwarder_id())->stopped();
  r.note = r.machine_compromised ? "forged stop command executed"
                                 : "forged command discarded (no valid record)";
  return r;
}

ScenarioResult replay_detections(bool secure) {
  integration::SecuredWorksiteConfig config;
  config.seed = 101;
  config.secure_links = secure;
  config.ids_enabled = false;
  integration::SecuredWorksite site{config};
  site.worksite().add_worker("w", {75, 60}, {80, 80});
  site.run_for(2 * core::kMinute);

  auto& attacker = site.add_attacker({100, 100}, 2);
  const NodeId fwd = site.forwarder_node();
  const auto accepted_before = site.security_metrics().detection_reports_accepted;
  const auto rejected_before = site.security_metrics().detection_reports_rejected;
  for (int i = 0; i < 20; ++i) {
    attacker.replay_latest(site.radio(), site.worksite().clock().now(),
                           [fwd](const net::Frame& f) { return f.dst == fwd; });
    site.run_for(core::kSecond);
  }
  const auto accepted_delta =
      site.security_metrics().detection_reports_accepted - accepted_before;
  const auto rejected_delta =
      site.security_metrics().detection_reports_rejected - rejected_before;

  ScenarioResult r;
  r.name = std::string("replayed detections (") + (secure ? "secure" : "plaintext") + ")";
  r.machine_compromised = !secure;
  r.note = secure ? "record layer rejected " + std::to_string(rejected_delta) +
                        " replays"
                  : "stale reports mixed into fusion (" +
                        std::to_string(accepted_delta) + " msgs accepted)";
  return r;
}

ScenarioResult jam_safety_link() {
  integration::SecuredWorksiteConfig config;
  config.seed = 102;
  config.monitor.cover_timeout = 2 * core::kSecond;
  integration::SecuredWorksite site{config};
  site.run_for(core::kMinute);

  net::Jammer jammer;
  jammer.position = {200, 200};
  jammer.radius_m = 1000.0;
  jammer.effectiveness = 1.0;
  jammer.active = true;
  site.radio().add_jammer(jammer);
  site.run_for(10 * core::kSecond);

  const auto mode = site.worksite().machine(site.forwarder_id())->mode();
  ScenarioResult r;
  r.name = "wideband jamming of the safety link";
  r.machine_compromised = false;  // availability attack, safe reaction expected
  r.note = std::string("forwarder reaction: ") +
           (mode == sim::DriveMode::kDegraded
                ? "degraded to crawl (cover-loss fallback)"
                : mode == sim::DriveMode::kStopped ? "stopped" : "NONE (unsafe!)");
  if (mode == sim::DriveMode::kNormal) r.machine_compromised = true;
  return r;
}

ScenarioResult ghost_lidar() {
  integration::SecuredWorksiteConfig config;
  config.seed = 103;
  integration::SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  sensors::SensorAttack attack;
  attack.ghosts = 4;
  attack.ghost_radius_m = 9.0;
  site.attack_forwarder_sensor(attack);
  site.run_for(core::kMinute);

  ScenarioResult r;
  r.name = "lidar ghost injection";
  r.machine_compromised = site.monitor().stats().estops > 0;
  r.note = "spurious e-stops: " + std::to_string(site.monitor().stats().estops) +
           " (fail-safe, but availability lost)";
  return r;
}

ScenarioResult ids_catches_flood() {
  integration::SecuredWorksiteConfig config;
  config.seed = 104;
  integration::SecuredWorksite site{config};
  site.run_for(30 * core::kSecond);

  auto& attacker = site.add_attacker({150, 150}, 2);
  attacker.flood(site.radio(), site.worksite().clock().now(), 3, 500);
  site.run_for(5 * core::kSecond);

  ScenarioResult r;
  r.name = "channel flooding vs IDS";
  r.machine_compromised = false;
  r.note = "IDS alerts: " + std::to_string(site.ids().total_alerts()) +
           " (rules: malformed=" + std::to_string(site.ids().alert_count("malformed")) +
           ", rate-anomaly=" + std::to_string(site.ids().alert_count("rate-anomaly")) +
           ")";
  return r;
}

void print(const ScenarioResult& r) {
  std::printf("  %-44s %s\n      %s\n", r.name.c_str(),
              r.machine_compromised ? "[ATTACK EFFECTIVE]" : "[defended]",
              r.note.c_str());
}

}  // namespace

int main() {
  std::printf("attack scenarios against the autonomous forestry worksite\n");
  std::printf("=========================================================\n\n");

  std::printf("baseline (plaintext links, as §III-B warns):\n");
  print(spoofed_estop(false));
  print(replay_detections(false));

  std::printf("\nhardened stack (PKI + secure channel + IDS + fallbacks):\n");
  print(spoofed_estop(true));
  print(replay_detections(true));
  print(jam_safety_link());
  print(ghost_lidar());
  print(ids_catches_flood());

  std::printf("\nconclusion: integrity attacks are closed out by the secure\n"
              "channel; availability attacks (jamming, ghosting) remain and\n"
              "must be answered by safe degradation — the safety/security\n"
              "interplay the paper calls for.\n");
  return 0;
}
