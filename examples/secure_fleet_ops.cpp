// Fleet operations walkthrough: PKI lifecycle (enrollment, revocation,
// CRL distribution), secure boot of the forwarder ECU, a signed
// over-the-air firmware update delivered over the machine link — the
// platform-security path of the stack — and finally the FleetService
// session daemon running several secured worksites concurrently with
// per-session determinism.
//
//   build/examples/secure_fleet_ops
#include <cstdio>

#include "crypto/random.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/boot.h"
#include "secure/handshake.h"
#include "secure/update.h"
#include "service/fleet_service.h"

using namespace agrarsec;

int main() {
  std::printf("fleet platform security walkthrough\n");
  std::printf("===================================\n\n");

  crypto::Drbg drbg{77, "fleet-ops"};

  // 1. Site PKI bring-up.
  auto root = pki::CertificateAuthority::create_root("komatsu-site-7-root",
                                                     drbg.generate32(), 0,
                                                     3650 * 24 * core::kHour);
  pki::TrustStore trust;
  (void)trust.add_root(root.certificate());
  std::printf("[pki] root CA '%s' (fingerprint %s)\n", root.name().c_str(),
              root.certificate().fingerprint().c_str());

  auto forwarder = pki::enroll(root, drbg, "forwarder-01", pki::CertRole::kMachine,
                               0, 365 * 24 * core::kHour);
  auto drone = pki::enroll(root, drbg, "drone-01", pki::CertRole::kDrone, 0,
                           365 * 24 * core::kHour);
  auto old_drone = pki::enroll(root, drbg, "drone-legacy", pki::CertRole::kDrone, 0,
                               365 * 24 * core::kHour);
  std::printf("[pki] enrolled forwarder-01, drone-01, drone-legacy (%lu certs)\n\n",
              static_cast<unsigned long>(root.issued_count()));

  // 2. Secure boot of the forwarder ECU.
  const auto oem_signer = crypto::ed25519_keypair(drbg.generate32());
  secure::SecureBootRom rom{oem_signer.public_key};

  auto make_image = [&](const char* name, std::uint32_t version, const char* blob) {
    secure::BootImage image;
    image.name = name;
    image.version = version;
    image.payload = core::from_string(blob);
    secure::sign_image(image, oem_signer);
    return image;
  };
  std::vector<secure::BootImage> chain = {
      make_image("bootloader", 3, "bl"),
      make_image("safety-rtos", 12, "rtos"),
      make_image("autonomy-app", 41, "app-v41"),
  };
  auto report = rom.boot(chain);
  std::printf("[boot] chain verification: %s, platform measurement %.16s...\n",
              report.booted ? "PASS" : "FAIL",
              core::to_hex(report.platform_measurement).c_str());

  // Tampered image must not boot.
  auto tampered = chain;
  tampered[2].payload.push_back(0x90);  // implant
  report = rom.boot(tampered);
  std::printf("[boot] implanted app image: %s at stage '%s' (%s)\n\n",
              report.booted ? "BOOTED (BAD!)" : "refused", report.failed_stage.c_str(),
              report.failure_code.c_str());

  // 3. Signed OTA update v41 -> v42.
  const core::Bytes new_app = drbg.generate(48 * 1024);
  const secure::PreparedUpdate update =
      secure::prepare_update("autonomy-app", 42, new_app, 4096, oem_signer);
  std::printf("[ota] update autonomy-app v42: %zu chunks of %u bytes\n",
              update.chunks.size(), update.manifest.chunk_size);

  secure::UpdateReceiver receiver{oem_signer.public_key};
  (void)receiver.begin(update.manifest);
  for (const auto& chunk : update.chunks) (void)receiver.feed(chunk);
  auto image = receiver.finalize();
  std::printf("[ota] transfer + verification: %s\n", image.ok() ? "PASS" : "FAIL");

  chain[2] = image.value();
  report = rom.boot(chain);
  std::printf("[ota] boot with v42: %s (rollback floor now %u)\n",
              report.booted ? "PASS" : "FAIL", rom.rollback_floor("autonomy-app"));

  // Downgrade attack: re-deliver v41.
  const secure::PreparedUpdate downgrade =
      secure::prepare_update("autonomy-app", 41, core::from_string("app-v41"), 4096,
                             oem_signer);
  secure::UpdateReceiver receiver2{oem_signer.public_key};
  (void)receiver2.begin(downgrade.manifest);
  for (const auto& chunk : downgrade.chunks) (void)receiver2.feed(chunk);
  auto old_image = receiver2.finalize();
  chain[2] = old_image.value();
  report = rom.boot(chain);
  std::printf("[ota] downgrade to v41: %s (%s)\n\n",
              report.booted ? "BOOTED (BAD!)" : "refused", report.failure_code.c_str());

  // 4. Decommissioning: revoke the legacy drone, distribute the CRL, and
  //    watch its handshake fail while the current drone still connects.
  root.revoke(old_drone.value().leaf().body.serial);
  (void)trust.add_crl(root.current_crl(1000), root.certificate());
  std::printf("[pki] revoked drone-legacy; CRL covers %zu serial(s)\n",
              root.current_crl(1000).revoked_serials.size());

  auto good = secure::establish(drone.value(), forwarder.value(), trust, 2000, drbg);
  std::printf("[hs ] drone-01     -> forwarder-01: %s\n",
              good.ok() ? "session established" : good.error().code.c_str());
  auto bad = secure::establish(old_drone.value(), forwarder.value(), trust, 2000, drbg);
  std::printf("[hs ] drone-legacy -> forwarder-01: %s\n",
              bad.ok() ? "session established (BAD!)" : bad.error().code.c_str());

  // 5. Session traffic sample.
  if (good.ok()) {
    auto& pair = good.value();
    const auto payload = core::from_string("detection x=31.5 y=44.2 conf=0.93");
    const secure::Record record = pair.initiator.seal(payload);
    const auto opened = pair.responder.open(record);
    std::printf("[link] sealed %zu bytes -> record %zu bytes -> opened: %s\n",
                payload.size(), record.encode().size(),
                opened.ok() ? "PASS" : "FAIL");
  }

  // 6. Multi-worksite operations: the FleetService runs each stand as an
  //    independent secured session, batched across a thread pool. Session
  //    seeds derive from (fleet_seed, stand key), so every session replays
  //    bit-identically no matter how the fleet is scheduled.
  std::printf("\n[fleet] FleetService: 4 secured worksite sessions\n");
  service::FleetServiceConfig fleet_config;
  fleet_config.threads = 0;  // use hardware concurrency
  fleet_config.fleet_seed = 77;
  service::FleetService fleet{fleet_config};

  auto stand_config = [] {
    integration::SecuredWorksiteConfig config;
    config.worksite.forest.trees_per_hectare = 150;
    config.worksite.harvester_output_m3_per_min = 20.0;
    return config;
  };
  std::vector<service::SessionId> stands;
  for (std::uint64_t key = 0; key < 4; ++key) {
    const service::SessionId id = fleet.create_session_keyed(stand_config(), key);
    fleet.session(id)->worksite().add_worker("scaler", {70, 60}, {80, 80});
    stands.push_back(id);
  }
  const std::uint64_t fleet_steps =
      static_cast<std::uint64_t>(10 * core::kMinute / stand_config().worksite.step);
  fleet.step_all(fleet_steps);

  for (const service::SessionId id : stands) {
    std::printf("[fleet] stand %llu: %.1f m3 delivered, %llu reports accepted\n",
                static_cast<unsigned long long>(id),
                fleet.session(id)->worksite().delivered_m3(),
                static_cast<unsigned long long>(
                    fleet.session(id)->security_metrics().detection_reports_accepted));
  }
  const integration::SecurityMetrics totals = fleet.aggregate_security_metrics();
  std::printf("[fleet] aggregate: %llu reports sent, %llu spoofed accepted, "
              "%llu session-steps\n",
              static_cast<unsigned long long>(totals.detection_reports_sent),
              static_cast<unsigned long long>(totals.spoofed_messages_accepted),
              static_cast<unsigned long long>(fleet.total_session_steps()));

  // Replay stand 0 solo with the same derived seed: byte-identical export.
  integration::SecuredWorksiteConfig replay_config = stand_config();
  replay_config.seed = service::FleetService::derive_session_seed(77, 0);
  integration::SecuredWorksite replay{replay_config};
  replay.worksite().add_worker("scaler", {70, 60}, {80, 80});
  replay.run_for(10 * core::kMinute);
  const bool replay_match = replay.telemetry().deterministic_json() ==
                            fleet.session_deterministic_json(stands[0]);
  std::printf("[fleet] solo replay of stand 0 matches in-fleet run: %s\n",
              replay_match ? "PASS" : "FAIL");
  return replay_match ? 0 : 1;
}
