#!/usr/bin/env python3
"""Semantic-diff gate over the pinned session export matrix.

Runs the session_export binary over a small pinned-session matrix
(attack campaign on/off x drone-follow on/off) and byte-compares each
variant's stdout against its committed golden. The deterministic export
contains every registry counter and flight-recorder event of the full
stack for that session, so ANY behaviour change — sim, sensors, radio,
security, safety — shows up as a byte diff here and fails CI, even when
every invariant-style test still passes. Intentional changes re-bless:

    python3 scripts/export_diff_gate.py --binary build/tools/session_export \
        --matrix --update

which also prints a structured summary of which counters/gauges moved
(old -> new per variant), so the golden diff in review is readable.

Variant goldens live at tests/golden/session_export.json (base) and
tests/golden/session_export.<variant>.json.

Exit codes: 0 = all match (or goldens updated), 1 = mismatch / missing
golden, 2 = usage or binary failure.
"""

import argparse
import difflib
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"
VARIANTS = ("base", "attack", "drone-follow", "attack-drone-follow")


def golden_for(variant: str) -> pathlib.Path:
    if variant == "base":
        return GOLDEN_DIR / "session_export.json"
    return GOLDEN_DIR / f"session_export.{variant}.json"


def run_variant(binary: str, variant: str):
    """Returns stdout bytes, or None after printing the failure."""
    try:
        proc = subprocess.run([binary, variant], capture_output=True,
                              timeout=600)
    except (OSError, subprocess.TimeoutExpired) as err:
        print(f"export-diff: failed to run {binary} {variant}: {err}",
              file=sys.stderr)
        return None
    if proc.returncode != 0:
        sys.stderr.buffer.write(proc.stderr)
        print(f"export-diff: {binary} {variant} exited {proc.returncode}",
              file=sys.stderr)
        return None
    return proc.stdout


def metric_scalars(blob: bytes) -> dict:
    """Flattens metrics.counters and metrics.gauges to one name->value map;
    empty on parse failure (the byte diff still carries the gate)."""
    try:
        metrics = json.loads(blob)["metrics"]
    except (ValueError, KeyError):
        return {}
    out = {}
    for section in ("counters", "gauges"):
        for name, value in metrics.get(section, {}).items():
            out[name] = value
    return out


def print_counter_moves(variant: str, old: bytes, new: bytes) -> None:
    """Structured re-bless summary: which scalars moved, old -> new."""
    before, after = metric_scalars(old), metric_scalars(new)
    moved = [(name, before.get(name), after.get(name))
             for name in sorted(set(before) | set(after))
             if before.get(name) != after.get(name)]
    if not moved:
        print(f"  [{variant}] no counter/gauge movement "
              "(flight-recorder or histogram change)")
        return
    print(f"  [{variant}] {len(moved)} counter(s)/gauge(s) moved:")
    for name, old_value, new_value in moved:
        print(f"    {name}: {old_value} -> {new_value}")


def check_variant(binary: str, variant: str, golden_path: pathlib.Path,
                  update: bool) -> int:
    current = run_variant(binary, variant)
    if current is None:
        return 2

    if update:
        old = golden_path.read_bytes() if golden_path.exists() else b""
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_bytes(current)
        print(f"export-diff: blessed {len(current)} bytes -> {golden_path}")
        if old and old != current:
            print_counter_moves(variant, old, current)
        return 0

    if not golden_path.exists():
        print(f"export-diff: golden {golden_path} missing; run with --update",
              file=sys.stderr)
        return 1

    golden = golden_path.read_bytes()
    if golden == current:
        print(f"export-diff: [{variant}] OK "
              f"({len(current)} bytes, byte-identical)")
        return 0

    print(f"export-diff: [{variant}] MISMATCH against committed golden",
          file=sys.stderr)
    diff = difflib.unified_diff(
        golden.decode(errors="replace").splitlines(keepends=True),
        current.decode(errors="replace").splitlines(keepends=True),
        fromfile=str(golden_path),
        tofile=f"session_export {variant} (current build)",
    )
    shown = 0
    for line in diff:
        sys.stderr.write(line)
        shown += 1
        if shown >= 200:
            sys.stderr.write("... (diff truncated)\n")
            break
    print("export-diff: if this change is intentional, re-bless with "
          "--update and commit the golden diff", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the session_export binary")
    parser.add_argument("--variant", choices=VARIANTS, default="base",
                        help="single variant to gate (default: base)")
    parser.add_argument("--matrix", action="store_true",
                        help="gate every variant in the pinned matrix")
    parser.add_argument("--golden", default=None,
                        help="override the golden path (single-variant only)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden(s) from the current binary "
                             "and summarize counter movement")
    args = parser.parse_args()

    if args.matrix and args.golden:
        print("export-diff: --golden conflicts with --matrix", file=sys.stderr)
        return 2

    variants = VARIANTS if args.matrix else (args.variant,)
    worst = 0
    for variant in variants:
        golden_path = (pathlib.Path(args.golden)
                       if args.golden else golden_for(variant))
        worst = max(worst,
                    check_variant(args.binary, variant, golden_path,
                                  args.update))
    return worst


if __name__ == "__main__":
    sys.exit(main())
