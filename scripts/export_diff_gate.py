#!/usr/bin/env python3
"""Semantic-diff gate over the pinned session export.

Runs the session_export binary (one fixed (config, seed) FleetService
session, 200 steps) and byte-compares its stdout against the committed
golden. The deterministic export contains every registry counter and
flight-recorder event of the full stack for that session, so ANY
behaviour change — sim, sensors, radio, security, safety — shows up as a
byte diff here and fails CI, even when every invariant-style test still
passes. Intentional changes re-bless the golden:

    python3 scripts/export_diff_gate.py --binary build/tools/session_export --update

and the golden's diff is reviewed like any other contract change.

Exit codes: 0 = match (or golden updated), 1 = mismatch / missing golden,
2 = usage or binary failure.
"""

import argparse
import difflib
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_GOLDEN = REPO_ROOT / "tests" / "golden" / "session_export.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the session_export binary")
    parser.add_argument("--golden", default=str(DEFAULT_GOLDEN),
                        help=f"golden file (default: {DEFAULT_GOLDEN})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden from the current binary")
    args = parser.parse_args()

    try:
        proc = subprocess.run([args.binary], capture_output=True, timeout=600)
    except (OSError, subprocess.TimeoutExpired) as err:
        print(f"export-diff: failed to run {args.binary}: {err}", file=sys.stderr)
        return 2
    if proc.returncode != 0:
        sys.stderr.buffer.write(proc.stderr)
        print(f"export-diff: {args.binary} exited {proc.returncode}",
              file=sys.stderr)
        return 2
    current = proc.stdout

    golden_path = pathlib.Path(args.golden)
    if args.update:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_bytes(current)
        print(f"export-diff: blessed {len(current)} bytes -> {golden_path}")
        return 0

    if not golden_path.exists():
        print(f"export-diff: golden {golden_path} missing; run with --update",
              file=sys.stderr)
        return 1

    golden = golden_path.read_bytes()
    if golden == current:
        print(f"export-diff: OK ({len(current)} bytes, byte-identical)")
        return 0

    print("export-diff: MISMATCH against committed golden", file=sys.stderr)
    diff = difflib.unified_diff(
        golden.decode(errors="replace").splitlines(keepends=True),
        current.decode(errors="replace").splitlines(keepends=True),
        fromfile=str(golden_path),
        tofile="session_export (current build)",
    )
    shown = 0
    for line in diff:
        sys.stderr.write(line)
        shown += 1
        if shown >= 200:
            sys.stderr.write("... (diff truncated)\n")
            break
    print("export-diff: if this change is intentional, re-bless with "
          "--update and commit the golden diff", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
