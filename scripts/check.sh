#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a sanitizer pass
# (ASan + UBSan) over the subsystems touched by the hot-loop work, then a
# ThreadSanitizer pass over the parallel-stepping suites.
# Usage: scripts/check.sh [--full-asan]   (--full-asan runs every test
# suite under the sanitizers instead of just the hot-loop ones)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== console smoke: live endpoints + control plane + streaming =="
# Ephemeral ports, a raw-socket /metrics fetch, a pause/step/resume round
# trip over the secure control channel, an SSE flight-recorder stream,
# and a scripted control-plane attack that must trip the console's IDS
# sensor — the end-to-end path a CI regression in the net/ or service/
# layers would break first.
./build/examples/fleet_console --smoke

echo "== static analysis: agrarsec-lint over the committed models =="
# Gate on NEW findings only: everything in the checked-in baseline is
# known backlog; any un-baselined error finding fails the stage.
./build/tools/agrarsec_lint --model=all --baseline=.agrarsec-lint-baseline.json
# The deliberately-defective model must keep tripping the non-zero exit —
# this proves the gate actually gates.
if ./build/tools/agrarsec_lint --model=defective >/dev/null; then
  echo "check.sh: defective model linted clean — the lint gate is broken" >&2
  exit 1
fi

echo "== static analysis: clang-tidy (skips when not installed) =="
./scripts/tidy.sh build

echo "== sanitizers: ASan + UBSan =="
cmake -B build-asan -S . -DAGRARSEC_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
if [[ "${1:-}" == "--full-asan" ]]; then
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
else
  # The suites covering the spatial index, radio heap, event bus and
  # worksite compaction paths.
  cmake --build build-asan -j "$JOBS" --target core_test net_test sim_test
  ./build-asan/tests/core_test
  ./build-asan/tests/net_test
  ./build-asan/tests/sim_test
fi

echo "== sanitizers: TSan over the parallel stepping paths =="
# The suites that actually run worker threads: the thread pool itself,
# the mutex-guarded logger under concurrent writers + sink swaps, the
# telemetry registry's sharded lanes, the sharded worksite step at
# threads > 1, the fleet service batching whole sessions across the
# pool, and the console's HTTP + control server threads snapshotting and
# pausing against concurrent step_all batches. A data race in the
# decide/integrate/sample phases fails here even though the parity tests
# (which compare outcomes, not interleavings) might still pass. The
# net_test torture suite and the ConsoleStream/ConsoleSensor suites add
# the poll-driven HTTP server under concurrent clients, SSE subscribers
# against a stepping fleet, and the control-plane IDS sensor written by
# the control thread while /ids reads it.
cmake -B build-tsan -S . -DAGRARSEC_TSAN=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-tsan -j "$JOBS" --target core_test net_test sim_test obs_test service_test
./build-tsan/tests/core_test --gtest_filter='ThreadPool*:LogThreadSafety*'
./build-tsan/tests/net_test --gtest_filter='HttpServerTorture*'
./build-tsan/tests/obs_test --gtest_filter='RegistryTest.MergeIsDeterministic*'
./build-tsan/tests/sim_test --gtest_filter='WorksiteParallel*'
./build-tsan/tests/service_test --gtest_filter='FleetServiceParallel*:ConsoleParallel*:ConsoleStream*:ConsoleSensor*'

echo "== all checks passed =="
