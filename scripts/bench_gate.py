#!/usr/bin/env python3
"""Benchmark regression gate over "BENCH name=value" lines.

The benchmarks (bench_fleet_scale, bench_planner) print machine-readable
summary lines of the form

    BENCH worksite_steps_per_sec=59183

This script compares them against the tracked baseline (BENCH_baseline.json)
and fails when

  * any "*_mismatches" metric is non-zero (parity is a hard invariant), or
  * any "*_exact" metric differs from its baseline in either direction
    (these carry deterministic semantics — planner cache hit rate, radio
    drop counts — from full-length runs, so a behaviour change cannot
    hide inside the perf tolerance), or
  * any other metric fell more than --tolerance (default 30%) below its
    baseline value.

Rates above baseline never fail; run with --update after a deliberate
performance change (or on new reference hardware) to rewrite the baseline
from the captured output. Absolute rates vary between machines, which is
what the generous default tolerance absorbs — the gate catches collapses,
not noise.

Re-blessing convention: capture FULL-LENGTH runs (no --quick), e.g.

    ./build/bench/bench_planner | tee bench_planner.out
    ./build/bench/bench_fleet_scale --threads=0 --sessions 64 | tee bench_fleet.out
    python3 scripts/bench_gate.py --update BENCH_baseline.json \
        bench_planner.out bench_fleet.out

then hand-trim every "*_parallel*" key from BENCH_baseline.json before
committing: parallel rates fold in the runner's core count and thread
scaling, so they are machine-dependent in a way the tolerance cannot
absorb (a 2-core CI runner is not 30% slower than an 8-core dev box —
it is several times slower). Serial rates, ray-cast throughput and the
exact/mismatch counters are what the gate tracks; unknown keys in the
output are printed but never gate, so the parallel rates remain visible
in CI logs without failing them. Builds configured with
-DAGRARSEC_NATIVE=ON must never bless the baseline (FP contraction can
shift *_exact metrics).

Usage:
    bench_gate.py [--update] [--tolerance 0.30] BASELINE OUTPUT...
    (OUTPUT files hold captured benchmark stdout; "-" reads stdin)
"""

import argparse
import json
import re
import sys

BENCH_LINE = re.compile(r"^BENCH\s+([A-Za-z0-9_]+)=(-?[0-9.]+)\s*$")


def parse_bench_lines(paths):
    values = {}
    for path in paths:
        stream = sys.stdin if path == "-" else open(path, encoding="utf-8")
        with stream:
            for line in stream:
                match = BENCH_LINE.match(line.strip())
                if match:
                    values[match.group(1)] = float(match.group(2))
    return values


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="tracked baseline JSON")
    parser.add_argument("outputs", nargs="+", help="benchmark stdout captures")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the captured values")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    args = parser.parse_args()

    current = parse_bench_lines(args.outputs)
    if not current:
        print("bench_gate: no BENCH lines found in input", file=sys.stderr)
        return 1

    failures = []
    for name, value in sorted(current.items()):
        if name.endswith("_mismatches") and value != 0:
            failures.append(f"{name}={value:g} (parity must be 0)")

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump({k: current[k] for k in sorted(current)}, f, indent=2)
            f.write("\n")
        print(f"bench_gate: baseline {args.baseline} updated "
              f"({len(current)} metrics)")
        return 1 if failures else 0

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"bench_gate: baseline {args.baseline} missing "
              "(run with --update to create it)", file=sys.stderr)
        return 1

    for name, base in sorted(baseline.items()):
        if name.endswith("_mismatches"):
            continue  # gated on the current value above, not on deltas
        if name not in current:
            failures.append(f"{name}: missing from benchmark output")
            continue
        if name.endswith("_exact"):
            # Semantic counter: exact match required, both directions.
            status = "ok" if current[name] == base else "CHANGED"
            print(f"bench_gate: {name}: {current[name]:g} vs baseline "
                  f"{base:g} (exact) {status}")
            if current[name] != base:
                failures.append(
                    f"{name}={current[name]:g} != baseline {base:g} "
                    "(exact-match metric; rerun full-length and --update "
                    "after a deliberate behaviour change)")
            continue
        floor = base * (1.0 - args.tolerance)
        status = "ok" if current[name] >= floor else "REGRESSED"
        print(f"bench_gate: {name}: {current[name]:g} vs baseline {base:g} "
              f"(floor {floor:g}) {status}")
        if current[name] < floor:
            failures.append(
                f"{name}={current[name]:g} fell below {floor:g} "
                f"(baseline {base:g}, tolerance {args.tolerance:.0%})")

    for name in sorted(set(current) - set(baseline)):
        print(f"bench_gate: {name}: {current[name]:g} (no baseline; "
              "add with --update)")

    if failures:
        print("bench_gate: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench_gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
