#!/usr/bin/env bash
# clang-tidy over the library, tool and example sources, using the
# compile_commands.json the CMake configure step exports. Two tiers:
#
#   gating    src/analysis + src/risk — any warning fails (the semantic
#             analyzer and risk model are the review-critical surface)
#   advisory  everything else — findings are printed for the log but do
#             not fail the job
#
# Skips with a notice (exit 0) when clang-tidy is not installed — the CI
# tidy job installs it; local containers may not have it.
# Usage: scripts/tidy.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy-{20,19,18,17,16,15,14}; do
    if command -v "$candidate" >/dev/null; then
      TIDY="$(command -v "$candidate")"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "tidy.sh: clang-tidy not installed — skipping (CI runs it)"
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing" >&2
  exit 2
fi

mapfile -t GATED < <(git ls-files 'src/analysis/*.cpp' 'src/risk/*.cpp')
mapfile -t ADVISORY < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp' 'examples/*.cpp' \
  | grep -v -e '^src/analysis/' -e '^src/risk/')

echo "tidy.sh: $TIDY gating over ${#GATED[@]} files (src/analysis, src/risk)"
"$TIDY" -p "$BUILD_DIR" --quiet "${GATED[@]}"

echo "tidy.sh: $TIDY advisory over ${#ADVISORY[@]} files"
# --warnings-as-errors='-*' overrides the config's '*' so findings print
# without failing the job.
"$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='-*' "${ADVISORY[@]}" ||
  echo "tidy.sh: advisory findings above (not gating)"
echo "tidy.sh: done"
