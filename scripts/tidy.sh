#!/usr/bin/env bash
# clang-tidy gate over the library, tool and example sources, using the
# compile_commands.json the CMake configure step exports. Skips with a
# notice (exit 0) when clang-tidy is not installed — the CI tidy job
# installs it; local containers may not have it.
# Usage: scripts/tidy.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy-{20,19,18,17,16,15,14}; do
    if command -v "$candidate" >/dev/null; then
      TIDY="$(command -v "$candidate")"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "tidy.sh: clang-tidy not installed — skipping (CI runs it)"
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing" >&2
  exit 2
fi

mapfile -t SOURCES < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp' 'examples/*.cpp')
echo "tidy.sh: $TIDY over ${#SOURCES[@]} files"
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "tidy.sh: clean"
