#!/usr/bin/env python3
"""Source-level determinism lint for the simulation/service/observability tree.

The repo's replay and semantic-diff gates depend on src/sim, src/service,
src/obs and src/net being bit-deterministic for a pinned (config, seed)
(src/net's transport loop is wall-side, but its deadlines must use the
annotated "wall." convention so accidental clock reads cannot leak into
exports). This
lint flags the source patterns that historically break that property:

  DL001  wall-clock reads: std::chrono::system_clock anywhere; std::time /
         gettimeofday / localtime; steady_clock outside wall-instrumented
         files (a file is wall-instrumented when it or its .h/.cpp sibling
         mentions "wall" — the trace/telemetry timing layer).
  DL002  ambient randomness: rand()/srand()/std::random_device instead of
         the seeded core::Rng.
  DL003  range-for iteration over a std::unordered_* container declared in
         the same file — iteration order is implementation-defined, so any
         export or accumulation driven by it is nondeterministic.

Findings are suppressed by .determinism-lint-baseline.json (keys are
"RULE path symbol", line-number free so they survive unrelated edits);
stale suppressions are warned. Mirrors the agrarsec-lint workflow:

    python3 scripts/determinism_lint.py --write-baseline   # bless
    python3 scripts/determinism_lint.py                    # gate (CI)

Exit codes: 0 = clean (or baseline written), 1 = findings above the
baseline, 2 = usage/IO error.
"""

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src/sim", "src/service", "src/obs", "src/net")
BASELINE_PATH = REPO_ROOT / ".determinism-lint-baseline.json"

WALL_CLOCK_PATTERNS = (
    (r"std::chrono::system_clock", "system_clock"),
    (r"\bgettimeofday\b", "gettimeofday"),
    (r"\bstd::time\s*\(", "std::time"),
    (r"\blocaltime\b|\bgmtime\b", "localtime"),
)
STEADY_CLOCK_RE = re.compile(r"steady_clock")
RANDOM_PATTERNS = (
    (r"\bstd::rand\b|(?<![\w:])rand\s*\(\s*\)", "rand"),
    (r"\bsrand\s*\(", "srand"),
    (r"std::random_device", "random_device"),
)
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)\s*[;{=]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*&?\s*(?:this->)?(\w+)\s*\)")
COMMENT_RE = re.compile(r"//.*$")


def is_wall_instrumented(path: pathlib.Path) -> bool:
    """A file (or its header/impl sibling) that names "wall" is the timing
    instrumentation layer and may legitimately read the monotonic clock."""
    candidates = [path]
    for suffix in (".h", ".cpp"):
        sibling = path.with_suffix(suffix)
        if sibling != path and sibling.exists():
            candidates.append(sibling)
    return any(re.search(r"\bwall\b", c.read_text(encoding="utf-8"),
                         re.IGNORECASE) for c in candidates)


def lint_file(path: pathlib.Path):
    """Yields (rule, relpath, symbol, line_number, line_text)."""
    rel = path.relative_to(REPO_ROOT).as_posix()
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    wall_ok = is_wall_instrumented(path)
    unordered_names = set(UNORDERED_DECL_RE.findall(text))

    for number, raw in enumerate(lines, start=1):
        line = COMMENT_RE.sub("", raw)
        if "NOLINT(determinism)" in raw:
            continue
        for pattern, symbol in WALL_CLOCK_PATTERNS:
            if re.search(pattern, line):
                yield ("DL001", rel, symbol, number, raw.strip())
        if not wall_ok and STEADY_CLOCK_RE.search(line):
            yield ("DL001", rel, "steady_clock", number, raw.strip())
        for pattern, symbol in RANDOM_PATTERNS:
            if re.search(pattern, line):
                yield ("DL002", rel, symbol, number, raw.strip())
        match = RANGE_FOR_RE.search(line)
        if match and match.group(1) in unordered_names:
            yield ("DL003", rel, match.group(1), number, raw.strip())


def collect_findings(root: pathlib.Path):
    findings = []
    for directory in SCAN_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".h", ".cpp"):
                findings.extend(lint_file(path))
    return findings


def finding_key(finding) -> str:
    rule, rel, symbol, _, _ = finding
    return f"{rule} {rel} {symbol}"


def load_baseline(path: pathlib.Path):
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != 1 or not isinstance(data.get("suppressions"), list):
        raise ValueError(f"{path}: unrecognized baseline format")
    return set(data["suppressions"])


def write_baseline(path: pathlib.Path, findings) -> None:
    keys = sorted({finding_key(f) for f in findings})
    path.write_text(
        json.dumps({"version": 1, "suppressions": keys}, indent=2) + "\n",
        encoding="utf-8")


SELF_TEST_CASES = (
    ("auto t = std::chrono::system_clock::now();", "DL001"),
    ("int r = rand();", "DL002"),
    ("std::random_device rd;", "DL002"),
    ("std::unordered_map<int, int> m_;\nfor (auto& kv : m_) export_row(kv);",
     "DL003"),
)


def self_test() -> int:
    import tempfile
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for index, (snippet, expected_rule) in enumerate(SELF_TEST_CASES):
            sample = root / f"case{index}.cpp"
            sample.write_text(snippet + "\n", encoding="utf-8")
            rules = {f[0] for f in lint_file_at(sample, root)}
            if expected_rule not in rules:
                print(f"self-test: case {index} expected {expected_rule}, "
                      f"got {sorted(rules)}", file=sys.stderr)
                failures += 1
        # Negative: seeded Rng and ordered iteration are clean.
        clean = root / "clean.cpp"
        clean.write_text(
            "core::Rng rng{seed};\nstd::map<int,int> m_;\n"
            "for (auto& kv : m_) use(kv);\n", encoding="utf-8")
        if lint_file_at(clean, root):
            print("self-test: clean snippet produced findings", file=sys.stderr)
            failures += 1
        # Negative: a wall-instrumented file may read steady_clock.
        timed = root / "timer.cpp"
        timed.write_text(
            "// wall clock sampling layer\n"
            "auto t = std::chrono::steady_clock::now();\n", encoding="utf-8")
        if lint_file_at(timed, root):
            print("self-test: wall-instrumented steady_clock flagged",
                  file=sys.stderr)
            failures += 1
    print("determinism_lint self-test: "
          + ("PASS" if failures == 0 else f"{failures} FAILURES"))
    return 0 if failures == 0 else 1


def lint_file_at(path: pathlib.Path, root: pathlib.Path):
    """lint_file with relpaths computed against `root` (self-test helper)."""
    global REPO_ROOT
    saved = REPO_ROOT
    REPO_ROOT = root
    try:
        return list(lint_file(path))
    finally:
        REPO_ROOT = saved


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path, default=BASELINE_PATH)
    parser.add_argument("--write-baseline", action="store_true",
                        help="bless current findings into the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = collect_findings(REPO_ROOT)
    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"determinism_lint: wrote {len(findings)} suppressions to "
              f"{args.baseline}")
        return 0

    try:
        suppressed = load_baseline(args.baseline)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"determinism_lint: {error}", file=sys.stderr)
        return 2

    live = [f for f in findings if finding_key(f) not in suppressed]
    used = {finding_key(f) for f in findings}
    for stale in sorted(suppressed - used):
        print(f"determinism_lint: stale baseline entry: {stale}",
              file=sys.stderr)

    for rule, rel, symbol, number, text in live:
        print(f"{rel}:{number}: {rule} [{symbol}] {text}")
    if live:
        print(f"determinism_lint: {len(live)} finding(s) above baseline",
              file=sys.stderr)
        return 1
    print(f"determinism_lint: clean ({len(findings)} suppressed, "
          f"{len(suppressed)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
