#include "core/event_bus.h"

#include <algorithm>

namespace agrarsec::core {

EventBus::Subscription EventBus::subscribe(const std::string& topic, Handler handler) {
  const Subscription handle = next_handle_++;
  by_topic_[topic].push_back(Entry{handle, std::move(handler)});
  return handle;
}

EventBus::Subscription EventBus::subscribe_all(Handler handler) {
  const Subscription handle = next_handle_++;
  wildcard_.push_back(Entry{handle, std::move(handler)});
  return handle;
}

void EventBus::unsubscribe(Subscription handle) {
  auto erase_from = [handle](std::vector<Entry>& entries) {
    std::erase_if(entries, [handle](const Entry& e) { return e.handle == handle; });
  };
  for (auto& [topic, entries] : by_topic_) erase_from(entries);
  erase_from(wildcard_);
}

void EventBus::publish(Event event) {
  ++published_;
  if (delivering_) {
    pending_.push_back(std::move(event));
    return;
  }
  // Scope guard: a throwing handler must not leave delivering_ stuck true,
  // which would silently queue every later publish forever. The exception
  // still propagates; undelivered reentrant events are discarded with the
  // failed batch.
  struct DeliveryScope {
    EventBus* bus;
    ~DeliveryScope() {
      bus->delivering_ = false;
      bus->pending_.clear();
    }
  };
  delivering_ = true;
  DeliveryScope scope{this};
  deliver(event);
  // Drain events published from inside handlers, breadth-first.
  while (!pending_.empty()) {
    std::vector<Event> batch;
    batch.swap(pending_);
    for (const Event& e : batch) deliver(e);
  }
}

void EventBus::deliver(const Event& event) {
  if (auto it = by_topic_.find(event.topic); it != by_topic_.end()) {
    // Copy: handlers may (un)subscribe while we iterate.
    const std::vector<Entry> entries = it->second;
    for (const Entry& e : entries) e.handler(event);
  }
  const std::vector<Entry> taps = wildcard_;
  for (const Entry& e : taps) e.handler(event);
}

std::size_t EventBus::subscriber_count() const {
  std::size_t n = wildcard_.size();
  for (const auto& [topic, entries] : by_topic_) n += entries.size();
  return n;
}

}  // namespace agrarsec::core
