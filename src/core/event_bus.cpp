#include "core/event_bus.h"

#include <algorithm>

namespace agrarsec::core {

EventBus::Subscription EventBus::subscribe(std::string_view topic, Handler handler) {
  const Subscription handle = next_handle_++;
  // Heterogeneous find first: the common case (topic already known) never
  // materialises a std::string key.
  auto it = by_topic_.find(topic);
  if (it == by_topic_.end()) {
    it = by_topic_.try_emplace(std::string(topic)).first;
  }
  it->second.push_back(Entry{handle, std::move(handler)});
  subscriptions_.emplace(handle, it->first);
  ++live_subscribers_;
  return handle;
}

EventBus::Subscription EventBus::subscribe_all(Handler handler) {
  const Subscription handle = next_handle_++;
  wildcard_.push_back(Entry{handle, std::move(handler)});
  subscriptions_.emplace(handle, std::nullopt);
  ++live_subscribers_;
  return handle;
}

void EventBus::unsubscribe(Subscription handle) {
  const auto sub = subscriptions_.find(handle);
  if (sub == subscriptions_.end()) return;

  std::deque<Entry>* entries = &wildcard_;
  if (sub->second) {
    const auto topic = by_topic_.find(*sub->second);
    if (topic == by_topic_.end()) return;  // unreachable: map entries paired
    entries = &topic->second;
  }
  const auto entry = std::find_if(
      entries->begin(), entries->end(),
      [handle](const Entry& e) { return e.handle == handle; });
  if (entry != entries->end() && !entry->dead) {
    if (delivering_) {
      // A delivery is iterating this list — possibly executing this very
      // handler. Tombstone; compact() reclaims it after the batch.
      entry->dead = true;
      ++tombstones_;
    } else {
      entries->erase(entry);
    }
    --live_subscribers_;
  }
  subscriptions_.erase(sub);
}

void EventBus::publish(Event event) {
  ++published_;
  if (delivering_) {
    pending_.push_back(std::move(event));
    return;
  }
  // Scope guard: a throwing handler must not leave delivering_ stuck true,
  // which would silently queue every later publish forever. The exception
  // still propagates; undelivered reentrant events are discarded with the
  // failed batch. Tombstoned entries are reclaimed here in either case.
  struct DeliveryScope {
    EventBus* bus;
    ~DeliveryScope() {
      bus->delivering_ = false;
      bus->pending_.clear();
      if (bus->tombstones_ > 0) bus->compact();
    }
  };
  delivering_ = true;
  DeliveryScope scope{this};
  deliver(event);
  // Drain events published from inside handlers, breadth-first.
  while (!pending_.empty()) {
    std::vector<Event> batch;
    batch.swap(pending_);
    for (const Event& e : batch) deliver(e);
  }
}

void EventBus::deliver(const Event& event) {
  // In-place dispatch, bounded by the length at entry: handlers appended
  // during delivery (subscribe-from-handler) sit past `n` and do not see
  // this event; deque appends never move existing entries, so the entry a
  // handler runs out of stays put even while it mutates the bus.
  if (const auto it = by_topic_.find(std::string_view{event.topic});
      it != by_topic_.end()) {
    std::deque<Entry>& entries = it->second;
    const std::size_t n = entries.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!entries[i].dead) entries[i].handler(event);
    }
  }
  const std::size_t n = wildcard_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!wildcard_[i].dead) wildcard_[i].handler(event);
  }
}

void EventBus::compact() {
  const auto dead = [](const Entry& e) { return e.dead; };
  for (auto it = by_topic_.begin(); it != by_topic_.end();) {
    auto& entries = it->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(), dead),
                  entries.end());
    // Emptied topics are dropped so the topic map tracks live interest
    // instead of growing with every topic ever subscribed to.
    it = entries.empty() ? by_topic_.erase(it) : std::next(it);
  }
  wildcard_.erase(std::remove_if(wildcard_.begin(), wildcard_.end(), dead),
                  wildcard_.end());
  tombstones_ = 0;
}

}  // namespace agrarsec::core
