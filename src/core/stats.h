// Streaming statistics used across the experiment harnesses: Welford
// mean/variance, min/max, fixed-bin histograms and exact percentiles over
// retained samples (experiment scales are small enough to retain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace agrarsec::core {

/// Welford online accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (Chan's parallel formula).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sample-retaining collector with exact percentiles.
class SampleSet {
 public:
  void add(double x);
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Exact percentile by linear interpolation; q in [0,1]. Throws on empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-range histogram with uniform bins plus under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;

  /// Renders a compact ASCII bar chart (for bench output).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace agrarsec::core
