// Fixed-size thread pool for deterministic data-parallel simulation
// phases. The worksite's hot loop shards per-entity work across a small
// set of persistent workers (std::thread + condition_variable, no
// external dependencies); determinism is preserved by the callers, which
// only hand the pool *pure per-entity* work — every shared side effect is
// buffered per entity and drained serially afterwards (see
// sim::Worksite::step and DESIGN.md §9).
//
// Design notes:
//  - Workers are started once and parked on a condition variable between
//    jobs; a job is published by bumping a generation counter, so a
//    parallel_for costs two notify/wait handshakes, not thread spawns.
//  - The calling thread participates as shard 0, so a pool of size N uses
//    N-1 background workers and never idles the caller.
//  - Two assignment modes (DESIGN.md §14). kContiguous splits [0, n) into
//    at most shard_count() contiguous ranges; the split depends only on
//    (n, shard_count()), never on timing. kWorkStealing hands out fixed
//    chunks from a shared atomic cursor, so a slow shard sheds work to
//    idle ones — WHICH thread runs an index is then timing-dependent, but
//    every index still runs exactly once and the `shard` passed to the
//    body is the executing participant's stable index, so per-shard
//    scratch stays single-writer. Callers must not depend on the
//    index→shard mapping in either mode: work items must be independent
//    and shared effects slot-buffered for the result to be both
//    thread-count- and assignment-invariant.
//  - Exceptions thrown by shard bodies are captured; the first one (in
//    shard order, which is deterministic under kContiguous and
//    participant-order under kWorkStealing) is rethrown on the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agrarsec::core {

class ThreadPool {
 public:
  /// A pool executing across `threads` shards in total (the caller counts
  /// as one). `threads <= 1` creates no background workers; parallel_for
  /// then runs inline, which is the degenerate serial case callers rely
  /// on for threads=1 parity runs. `threads = 0` resolves to
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total shards (caller + workers), >= 1.
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

  /// Work-assignment policy for parallel_for (see the header comment).
  enum class Assignment : std::uint8_t {
    kContiguous = 0,    ///< fixed [s*n/S, (s+1)*n/S) ranges
    kWorkStealing = 1,  ///< chunks claimed from a shared atomic cursor
  };
  /// Serial-phase only (never while a job is in flight). The mode may be
  /// switched freely between jobs: outcomes of well-formed jobs (pure
  /// per-index work, slot-buffered effects) are assignment-invariant.
  void set_assignment(Assignment assignment) { assignment_ = assignment; }
  [[nodiscard]] Assignment assignment() const { return assignment_; }

  /// Shard body: [begin, end) index range plus the shard index (stable
  /// scratch-buffer key: shard s only ever runs on one thread per job).
  /// Under kWorkStealing the body is invoked once per claimed chunk, so
  /// several (begin, end) ranges may arrive for the same shard.
  using ShardFn = std::function<void(std::size_t begin, std::size_t end,
                                     std::size_t shard)>;

  /// Runs `fn` over [0, n) and blocks until every shard finished. Safe to
  /// call repeatedly (the hot loop calls it several times per step); not
  /// reentrant from within a shard body.
  void parallel_for(std::size_t n, const ShardFn& fn);

  /// Observation hook: called once per participating shard per job with
  /// the wall-clock nanoseconds the shard spent in the job (all its
  /// chunks under kWorkStealing). Invoked on the thread that ran the
  /// shard, so it fires concurrently for different shards — observers
  /// must be safe for that (per-shard accumulator lanes are enough, see
  /// obs::Tracer). Must not be swapped while a job is in flight. Pass
  /// nullptr to disable. Observation-only: the timings must never feed
  /// back into simulation state.
  using ShardObserver = std::function<void(std::size_t shard, std::uint64_t busy_ns)>;
  void set_shard_observer(ShardObserver observer) { observer_ = std::move(observer); }

  /// Observation hook: called once per parallel_for on the calling thread
  /// (a serial context) with the job's dispatch-to-completion wall time.
  /// This measures only the span the pool actually had work in flight —
  /// the denominator the per-shard utilization table needs (setup and
  /// serial drains between jobs are excluded by construction). Must not
  /// be swapped while a job is in flight; observation-only.
  using JobObserver = std::function<void(std::uint64_t wall_ns)>;
  void set_job_observer(JobObserver observer) { job_observer_ = std::move(observer); }

  /// Exponential moving average of per-job busy-time imbalance
  /// (max shard busy / mean shard busy, jobs with n >= shard_count only);
  /// 0 until a multi-shard job ran. >= 1 by construction; sustained
  /// values well above 1 mean the contiguous split is leaving shards
  /// idle, which is the signal adaptive callers use to switch to
  /// kWorkStealing. Read from serial contexts only. Observation-derived
  /// but safe to feed into *scheduling* (not simulation state): outcomes
  /// are assignment-invariant, so when the switch happens cannot be
  /// observed in any deterministic export.
  [[nodiscard]] double busy_imbalance() const { return imbalance_ewma_; }

 private:
  void worker_loop(std::size_t worker_index);
  /// Runs one participant's share of the current job (one contiguous
  /// range or a sequence of stolen chunks), capturing any exception.
  void run_shard(std::size_t shard);
  /// Folds the finished job's per-shard busy times into the imbalance
  /// EWMA. Caller-side, after the completion barrier.
  void update_imbalance();

  std::size_t shard_count_ = 1;
  std::vector<std::thread> workers_;
  ShardObserver observer_;      ///< optional per-shard busy-time tap
  JobObserver job_observer_;    ///< optional per-job wall-time tap
  Assignment assignment_ = Assignment::kContiguous;
  double imbalance_ewma_ = 0.0;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const ShardFn* job_fn_ = nullptr;  ///< valid while a job is in flight
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 1;        ///< chunk size under kWorkStealing
  Assignment job_assignment_ = Assignment::kContiguous;  ///< frozen per job
  std::atomic<std::size_t> job_cursor_{0};  ///< next chunk to claim
  std::uint64_t job_generation_ = 0;  ///< bumped to publish a job
  std::size_t shards_remaining_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> shard_errors_;  ///< one slot per shard
  /// Per-shard busy ns for the in-flight job (single writer per slot;
  /// read by the caller after the completion barrier).
  std::vector<std::uint64_t> job_busy_ns_;
};

}  // namespace agrarsec::core
