// Fixed-size thread pool for deterministic data-parallel simulation
// phases. The worksite's hot loop shards per-entity work across a small
// set of persistent workers (std::thread + condition_variable, no
// external dependencies); determinism is preserved by the callers, which
// only hand the pool *pure per-entity* work — every shared side effect is
// buffered per entity and drained serially afterwards (see
// sim::Worksite::step and DESIGN.md §9).
//
// Design notes:
//  - Workers are started once and parked on a condition variable between
//    jobs; a job is published by bumping a generation counter, so a
//    parallel_for costs two notify/wait handshakes, not thread spawns.
//  - The calling thread participates as shard 0, so a pool of size N uses
//    N-1 background workers and never idles the caller.
//  - parallel_for splits [0, n) into at most shard_count() contiguous
//    ranges. The split depends only on (n, shard_count()), never on
//    timing — but callers must not depend on it either: work items must
//    be independent for the result to be thread-count-invariant.
//  - Exceptions thrown by shard bodies are captured; the first one (in
//    shard order, which is deterministic) is rethrown on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agrarsec::core {

class ThreadPool {
 public:
  /// A pool executing across `threads` shards in total (the caller counts
  /// as one). `threads <= 1` creates no background workers; parallel_for
  /// then runs inline, which is the degenerate serial case callers rely
  /// on for threads=1 parity runs. `threads = 0` resolves to
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total shards (caller + workers), >= 1.
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

  /// Shard body: [begin, end) index range plus the shard index (stable
  /// scratch-buffer key: shard s only ever runs on one thread per job).
  using ShardFn = std::function<void(std::size_t begin, std::size_t end,
                                     std::size_t shard)>;

  /// Runs `fn` over [0, n) split into contiguous shards and blocks until
  /// every shard finished. Safe to call repeatedly (the hot loop calls it
  /// several times per step); not reentrant from within a shard body.
  void parallel_for(std::size_t n, const ShardFn& fn);

  /// Observation hook: called once per non-empty shard per job with the
  /// wall-clock nanoseconds the shard body ran for. Invoked on the thread
  /// that ran the shard, so it fires concurrently for different shards —
  /// observers must be safe for that (per-shard accumulator lanes are
  /// enough, see obs::Tracer). Must not be swapped while a job is in
  /// flight. Pass nullptr to disable. Observation-only: the timings must
  /// never feed back into simulation state.
  using ShardObserver = std::function<void(std::size_t shard, std::uint64_t busy_ns)>;
  void set_shard_observer(ShardObserver observer) { observer_ = std::move(observer); }

 private:
  void worker_loop(std::size_t worker_index);
  /// Runs one shard of the current job, capturing any exception.
  void run_shard(std::size_t shard);

  std::size_t shard_count_ = 1;
  std::vector<std::thread> workers_;
  ShardObserver observer_;  ///< optional per-shard busy-time tap

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const ShardFn* job_fn_ = nullptr;  ///< valid while a job is in flight
  std::size_t job_n_ = 0;
  std::uint64_t job_generation_ = 0;  ///< bumped to publish a job
  std::size_t shards_remaining_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> shard_errors_;  ///< one slot per shard
};

}  // namespace agrarsec::core
