#include "core/geometry.h"

#include <algorithm>
#include <limits>
#include <numbers>

namespace agrarsec::core {

double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

double wrap_angle(double radians) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  double a = std::fmod(radians, two_pi);
  if (a <= -std::numbers::pi) a += two_pi;
  if (a > std::numbers::pi) a -= two_pi;
  return a;
}

double angular_distance(double a, double b) { return std::abs(wrap_angle(a - b)); }

Vec2 Aabb::clamp(Vec2 p) const {
  return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len_sq = ab.norm_sq();
  if (len_sq == 0.0) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len_sq, 0.0, 1.0);
  return distance(p, a + ab * t);
}

bool segment_intersects_circle(Vec2 a, Vec2 b, const Circle& c) {
  return point_segment_distance(c.center, a, b) < c.radius;
}

void traverse_grid(Vec2 a, Vec2 b, double cell,
                   const std::function<bool(std::int64_t, std::int64_t)>& visit) {
  // Amanatides & Woo voxel traversal in 2D.
  auto cell_of = [cell](double v) {
    return static_cast<std::int64_t>(std::floor(v / cell));
  };
  std::int64_t cx = cell_of(a.x), cy = cell_of(a.y);
  const std::int64_t ex = cell_of(b.x), ey = cell_of(b.y);

  const Vec2 d = b - a;
  const int step_x = d.x > 0 ? 1 : (d.x < 0 ? -1 : 0);
  const int step_y = d.y > 0 ? 1 : (d.y < 0 ? -1 : 0);

  auto boundary = [cell](std::int64_t c, int step) {
    return (step > 0 ? static_cast<double>(c + 1) : static_cast<double>(c)) * cell;
  };

  double t_max_x = step_x != 0 ? (boundary(cx, step_x) - a.x) / d.x
                               : std::numeric_limits<double>::infinity();
  double t_max_y = step_y != 0 ? (boundary(cy, step_y) - a.y) / d.y
                               : std::numeric_limits<double>::infinity();
  const double t_delta_x =
      step_x != 0 ? cell / std::abs(d.x) : std::numeric_limits<double>::infinity();
  const double t_delta_y =
      step_y != 0 ? cell / std::abs(d.y) : std::numeric_limits<double>::infinity();

  while (true) {
    if (!visit(cx, cy)) return;
    if (cx == ex && cy == ey) return;
    if (t_max_x < t_max_y) {
      if (step_x == 0) return;  // degenerate: cannot make progress
      cx += step_x;
      t_max_x += t_delta_x;
    } else {
      if (step_y == 0) return;
      cy += step_y;
      t_max_y += t_delta_y;
    }
    // Safety net against floating-point corner cases.
    if (std::abs(cx) > 1'000'000 || std::abs(cy) > 1'000'000) return;
  }
}

}  // namespace agrarsec::core
