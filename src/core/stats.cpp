#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace agrarsec::core {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ = (n * mean_ + m * other.mean_) / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("SampleSet::percentile on empty set");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) throw std::logic_error("SampleSet::min on empty set");
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) throw std::logic_error("SampleSet::max on empty set");
  ensure_sorted();
  return samples_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(counts_.size()));
  ++counts_[std::min(i, counts_.size() - 1)];
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "%10.3f | ", bin_low(i));
    out += label;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    out += " ";
    out += std::to_string(counts_[i]);
    out += '\n';
  }
  return out;
}

}  // namespace agrarsec::core
