#include "core/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace agrarsec::core {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return next_double() < probability;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("Rng::poisson: lambda must be >= 0");
  if (lambda == 0.0) return 0;
  if (lambda > 30.0) {
    // Normal approximation with continuity correction; adequate for the
    // traffic-volume models that use large lambdas.
    const double v = normal(lambda, std::sqrt(lambda));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= next_double();
  } while (p > limit);
  return k - 1;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = next_u64();
    for (int b = 0; i < n; ++i, ++b) out[i] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  return out;
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the label through the stream so fork(0) != parent continuation.
  const std::uint64_t child_seed = next_u64() ^ (label * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng{child_seed};
}

Rng Rng::fork_stream(std::uint64_t seed, std::uint64_t domain, std::uint64_t key) {
  // Three chained splitmix rounds, each absorbing one input, give a child
  // seed that is a pure hash of (seed, domain, key). The Rng constructor
  // runs its own splitmix expansion on top, so even adjacent keys land in
  // unrelated xoshiro states.
  std::uint64_t s = seed;
  std::uint64_t h = splitmix64(s);
  s ^= domain * 0x9E3779B97F4A7C15ULL;
  h ^= splitmix64(s);
  s ^= key * 0xC2B2AE3D27D4EB4FULL;
  h ^= splitmix64(s);
  return Rng{h};
}

}  // namespace agrarsec::core
