#include "core/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace agrarsec::core {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Guards g_sink for both swap and invocation: a set_sink() concurrent
// with a write() must neither tear the std::function nor destroy the one
// a writer is executing out of.
std::mutex g_sink_mutex;
Log::Sink g_sink;  // empty => default stderr sink
}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace agrarsec::core
