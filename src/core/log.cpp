#include "core/log.h"

#include <cstdio>

namespace agrarsec::core {

namespace {
LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty => default stderr sink
}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace agrarsec::core
