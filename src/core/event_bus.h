// Topic-based publish/subscribe bus. Machines, safety monitors, the IDS and
// the SoS layer communicate through the bus when they live on the same
// compute node; cross-machine traffic instead goes through net::RadioMedium.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/time.h"

namespace agrarsec::core {

/// An event on the bus: topic + opaque payload + origin tag.
struct Event {
  std::string topic;
  std::string payload;   ///< compact text encoding (key=value;...)
  std::uint64_t origin;  ///< publisher identifier (machine/system id value)
  SimTime time = 0;
};

/// Synchronous pub/sub with subscription handles for removal.
///
/// Dispatch is copy-free: handlers run in place out of per-topic deques
/// (stable element addresses under append), bounded by the list length at
/// delivery entry. Mutations from inside handlers are safe and keep the
/// original semantics:
///  - subscribe during delivery appends past the bound — the new handler
///    does not see the event being delivered;
///  - unsubscribe during delivery tombstones the entry (it is skipped if
///    not yet reached) and the deque is compacted after the batch; a
///    handler may therefore unsubscribe itself without destroying the
///    std::function it is executing out of.
/// Topic lookup is heterogeneous (transparent hash), so publishing and
/// subscribing never build a temporary std::string key.
class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;
  using Subscription = std::uint64_t;

  /// Subscribes `handler` to an exact topic. Returns a handle.
  Subscription subscribe(std::string_view topic, Handler handler);

  /// Subscribes to every topic (IDS taps use this).
  Subscription subscribe_all(Handler handler);

  /// O(1) handle lookup; safe to call from inside a handler (including a
  /// handler removing itself). Unknown handles are ignored.
  void unsubscribe(Subscription handle);

  /// Delivers synchronously to all matching subscribers, in subscription
  /// order. Reentrant publishes are queued and drained afterwards so a
  /// handler chain cannot recurse unboundedly.
  void publish(Event event);

  [[nodiscard]] std::size_t subscriber_count() const { return live_subscribers_; }
  [[nodiscard]] std::uint64_t published_count() const { return published_; }

 private:
  struct Entry {
    Subscription handle;
    Handler handler;
    /// Tombstone: set instead of erasing while a delivery is in flight so
    /// in-flight iteration (and the executing handler itself) stay valid.
    bool dead = false;
  };

  struct TopicHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  void deliver(const Event& event);
  /// Erases tombstoned entries (and emptied topics) after a delivery batch.
  void compact();

  std::unordered_map<std::string, std::deque<Entry>, TopicHash, std::equal_to<>>
      by_topic_;
  std::deque<Entry> wildcard_;
  /// handle -> owning topic (nullopt = wildcard list), for O(1) unsubscribe.
  std::unordered_map<Subscription, std::optional<std::string>> subscriptions_;
  std::vector<Event> pending_;
  bool delivering_ = false;
  std::size_t tombstones_ = 0;
  std::size_t live_subscribers_ = 0;
  Subscription next_handle_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace agrarsec::core
