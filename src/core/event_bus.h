// Topic-based publish/subscribe bus. Machines, safety monitors, the IDS and
// the SoS layer communicate through the bus when they live on the same
// compute node; cross-machine traffic instead goes through net::RadioMedium.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/time.h"

namespace agrarsec::core {

/// An event on the bus: topic + opaque payload + origin tag.
struct Event {
  std::string topic;
  std::string payload;   ///< compact text encoding (key=value;...)
  std::uint64_t origin;  ///< publisher identifier (machine/system id value)
  SimTime time = 0;
};

/// Synchronous pub/sub with subscription handles for removal.
class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;
  using Subscription = std::uint64_t;

  /// Subscribes `handler` to an exact topic. Returns a handle.
  Subscription subscribe(const std::string& topic, Handler handler);

  /// Subscribes to every topic (IDS taps use this).
  Subscription subscribe_all(Handler handler);

  void unsubscribe(Subscription handle);

  /// Delivers synchronously to all matching subscribers, in subscription
  /// order. Reentrant publishes are queued and drained afterwards so a
  /// handler chain cannot recurse unboundedly.
  void publish(Event event);

  [[nodiscard]] std::size_t subscriber_count() const;
  [[nodiscard]] std::uint64_t published_count() const { return published_; }

 private:
  struct Entry {
    Subscription handle;
    Handler handler;
  };

  void deliver(const Event& event);

  std::unordered_map<std::string, std::vector<Entry>> by_topic_;
  std::vector<Entry> wildcard_;
  std::vector<Event> pending_;
  bool delivering_ = false;
  Subscription next_handle_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace agrarsec::core
