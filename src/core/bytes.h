// Byte-buffer utilities: hex codecs, constant-time comparison and
// endian-explicit integer load/store used by the crypto and wire-format
// layers. All functions are allocation-minimal and side-effect free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace agrarsec::core {

using Bytes = std::vector<std::uint8_t>;

/// Encodes `data` as lowercase hex.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

/// Decodes a hex string (upper or lower case, even length). Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Builds a byte vector from an ASCII string (no terminator).
[[nodiscard]] Bytes from_string(std::string_view text);

/// Constant-time equality: runtime depends only on the lengths, never on
/// the contents, so it is safe for MAC/tag comparison.
[[nodiscard]] bool constant_time_equal(std::span<const std::uint8_t> a,
                                       std::span<const std::uint8_t> b);

// Endian-explicit loads/stores. The simulator targets heterogeneous ECUs,
// so all wire formats pick an explicit byte order.
[[nodiscard]] std::uint32_t load_le32(const std::uint8_t* p);
[[nodiscard]] std::uint64_t load_le64(const std::uint8_t* p);
[[nodiscard]] std::uint32_t load_be32(const std::uint8_t* p);
[[nodiscard]] std::uint64_t load_be64(const std::uint8_t* p);
void store_le32(std::uint8_t* p, std::uint32_t v);
void store_le64(std::uint8_t* p, std::uint64_t v);
void store_be32(std::uint8_t* p, std::uint32_t v);
void store_be64(std::uint8_t* p, std::uint64_t v);

/// Appends `src` to `dst`.
void append(Bytes& dst, std::span<const std::uint8_t> src);

/// Appends a little-endian 64-bit value to `dst`.
void append_le64(Bytes& dst, std::uint64_t v);

/// Appends a big-endian 32-bit value to `dst`.
void append_be32(Bytes& dst, std::uint32_t v);

/// Length-prefixed (be32) field append; the standard TLV-ish framing used
/// by the secure-channel transcripts so concatenations are unambiguous.
void append_framed(Bytes& dst, std::span<const std::uint8_t> field);

}  // namespace agrarsec::core
