// 2D/2.5D geometry used by the worksite simulator and the sensor
// ray-casting models. The worksite is a plane with a height field; an
// elevated drone viewpoint is modelled by 3D line-of-sight against
// obstacle heights (which is exactly the occlusion property Figure 2 of
// the paper is about).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

namespace agrarsec::core {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] double norm_sq() const { return x * x + y * y; }
  [[nodiscard]] double dot(Vec2 o) const { return x * o.x + y * o.y; }
  [[nodiscard]] double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  [[nodiscard]] Vec2 rotated(double radians) const {
    const double c = std::cos(radians), s = std::sin(radians);
    return {x * c - y * s, x * s + y * c};
  }
};

/// 3D point: planar position + height above terrain datum (metres).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] Vec2 xy() const { return {x, y}; }
};

[[nodiscard]] double distance(Vec2 a, Vec2 b);
[[nodiscard]] double distance(const Vec3& a, const Vec3& b);

/// Wraps an angle to (-pi, pi].
[[nodiscard]] double wrap_angle(double radians);

/// Smallest absolute angular difference between two headings.
[[nodiscard]] double angular_distance(double a, double b);

/// Axis-aligned bounding box.
struct Aabb {
  Vec2 min;
  Vec2 max;

  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  [[nodiscard]] double width() const { return max.x - min.x; }
  [[nodiscard]] double height() const { return max.y - min.y; }
  [[nodiscard]] Vec2 clamp(Vec2 p) const;
};

/// Circle obstacle footprint (tree stems, boulders).
struct Circle {
  Vec2 center;
  double radius = 0.0;

  [[nodiscard]] bool contains(Vec2 p) const {
    return distance(center, p) <= radius;
  }
};

/// True iff segment [a,b] intersects the circle (strictly closer than the
/// radius at some point of the segment).
[[nodiscard]] bool segment_intersects_circle(Vec2 a, Vec2 b, const Circle& c);

/// Distance from point p to segment [a,b].
[[nodiscard]] double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

/// Visits grid cells of size `cell` crossed by segment [a,b] (2D DDA).
/// Callback returns false to stop traversal early.
void traverse_grid(Vec2 a, Vec2 b, double cell,
                   const std::function<bool(std::int64_t cx, std::int64_t cy)>& visit);

}  // namespace agrarsec::core
