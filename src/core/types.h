// Strongly-typed identifiers and fundamental value types shared by every
// agrarsec module. Identifiers are phantom-tagged integers so that, e.g., a
// NodeId cannot be passed where an AssetId is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace agrarsec {

/// Phantom-typed 64-bit identifier. `Tag` is never instantiated; it only
/// distinguishes identifier families at compile time.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  auto operator<=>(const Id&) const = default;

  /// Sentinel meaning "no such entity".
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  static constexpr Id invalid() { return Id{kInvalid}; }

 private:
  std::uint64_t value_ = kInvalid;
};

struct NodeIdTag {};
struct MachineIdTag {};
struct HumanIdTag {};
struct SensorIdTag {};
struct AssetIdTag {};
struct ThreatIdTag {};
struct HazardIdTag {};
struct ZoneIdTag {};
struct ConduitIdTag {};
struct GsnIdTag {};
struct EvidenceIdTag {};
struct CertSerialTag {};
struct SessionIdTag {};
struct AlertIdTag {};
struct SystemIdTag {};

using NodeId = Id<NodeIdTag>;          ///< network participant (radio node)
using MachineId = Id<MachineIdTag>;    ///< forwarder / harvester / drone
using HumanId = Id<HumanIdTag>;        ///< human worker in the worksite
using SensorId = Id<SensorIdTag>;      ///< sensor instance on a machine
using AssetId = Id<AssetIdTag>;        ///< ISO 21434 item/asset
using ThreatId = Id<ThreatIdTag>;      ///< threat scenario
using HazardId = Id<HazardIdTag>;      ///< safety hazard
using ZoneId = Id<ZoneIdTag>;          ///< IEC 62443 zone
using ConduitId = Id<ConduitIdTag>;    ///< IEC 62443 conduit
using GsnId = Id<GsnIdTag>;            ///< GSN/CAE argument element
using EvidenceId = Id<EvidenceIdTag>;  ///< assurance evidence artifact
using CertSerial = Id<CertSerialTag>;  ///< PKI certificate serial
using SessionId = Id<SessionIdTag>;    ///< secure-channel session
using AlertId = Id<AlertIdTag>;        ///< IDS alert
using SystemId = Id<SystemIdTag>;      ///< SoS constituent system

/// Monotonically increasing id generator, one per id family per container.
template <typename IdType>
class IdAllocator {
 public:
  IdType next() { return IdType{next_++}; }
  [[nodiscard]] std::uint64_t allocated() const { return next_; }

 private:
  std::uint64_t next_ = 1;  // 0 is reserved for "well-known" entities
};

}  // namespace agrarsec

namespace std {
template <typename Tag>
struct hash<agrarsec::Id<Tag>> {
  size_t operator()(const agrarsec::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
