// Deterministic RNG for the whole stack. All simulation randomness flows
// through SplitMix64-seeded xoshiro256**, so a worksite run is exactly
// reproducible from its seed — a prerequisite for the fault/attack
// injection experiments and for stable benchmarks.
#pragma once

#include <cstdint>
#include <vector>

namespace agrarsec::core {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean);

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  std::uint64_t poisson(double lambda);

  /// Random bytes (used by crypto tests and nonce generation in the sim).
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Derives an independent child stream; children with distinct labels
  /// never correlate with the parent or each other. Consumes one parent
  /// draw, so the child depends on *when* it was forked — use fork_stream
  /// when the child must be a pure function of its key.
  Rng fork(std::uint64_t label);

  /// Stateless fork-by-key: derives an independent stream from
  /// (seed, domain, key) alone, consuming no parent state. Two sites with
  /// the same seed hand an entity with the same id the same stream no
  /// matter what anything else drew first — the property the worksite's
  /// parallel stepping needs (per-entity streams keyed by entity id, not
  /// by spawn order or by sharding). `domain` separates stream families
  /// (machines vs humans vs hazards) that share a key space.
  [[nodiscard]] static Rng fork_stream(std::uint64_t seed, std::uint64_t domain,
                                       std::uint64_t key);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace agrarsec::core
