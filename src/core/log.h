// Leveled, sink-pluggable logger. Kept deliberately simple: the simulator
// and examples log human-readable lines; tests install a capturing sink.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace agrarsec::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Process-wide logger configuration. Thread-safe: the level is atomic
/// and sink swap + write share a mutex, so a warn() from inside a
/// parallel shard never races a set_sink(). The sink runs under that
/// mutex — sinks must not call back into Log (self-deadlock) and should
/// stay cheap; heavy sinks serialize the shards that log.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component, std::string_view message)>;

  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replaces the output sink (default: stderr). Pass nullptr to restore
  /// the default.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view component, std::string_view message);

  static void debug(std::string_view component, std::string_view message) {
    write(LogLevel::kDebug, component, message);
  }
  static void info(std::string_view component, std::string_view message) {
    write(LogLevel::kInfo, component, message);
  }
  static void warn(std::string_view component, std::string_view message) {
    write(LogLevel::kWarn, component, message);
  }
  static void error(std::string_view component, std::string_view message) {
    write(LogLevel::kError, component, message);
  }
};

}  // namespace agrarsec::core
