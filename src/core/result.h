// Minimal expected-style result type. C++20 has no std::expected, and the
// protocol/crypto paths want error returns without exceptions on the hot
// path (Core Guidelines E.intro: use error codes where failure is normal).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace agrarsec::core {

/// Error payload: a machine-readable code plus a human-readable message.
struct Error {
  std::string code;     ///< stable identifier, e.g. "bad_mac"
  std::string message;  ///< human-readable detail

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

/// Result<T>: either a value or an Error. Intentionally tiny — just what
/// the handshake/record/boot layers need.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// Value access. Throws std::logic_error when called on an error result —
  /// callers must check ok() first.
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::logic_error("Result::take on error: " + error().to_string());
    return std::move(std::get<T>(state_));
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<Error>(state_);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Status::error on ok");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Convenience factory.
inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

}  // namespace agrarsec::core
