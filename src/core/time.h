// Simulation time. The worksite runs on a fixed-step discrete clock;
// everything that needs "now" (sensor frames, radio slots, certificate
// validity, IDS windows) reads the same SimClock, which keeps the whole
// stack deterministic.
#pragma once

#include <cstdint>

namespace agrarsec::core {

/// Simulation timestamp in milliseconds since worksite start.
using SimTime = std::int64_t;

/// Duration in milliseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kMillisecond = 1;
constexpr SimDuration kSecond = 1000;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;

/// Fixed-step clock advanced by the worksite scheduler.
class SimClock {
 public:
  explicit SimClock(SimDuration step = 100 /*ms*/) : step_(step) {}

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] SimDuration step() const { return step_; }
  [[nodiscard]] double now_seconds() const { return static_cast<double>(now_) / kSecond; }

  /// Advances by one fixed step and returns the new time.
  SimTime tick() { return now_ += step_; }

  /// Advances to an absolute time (monotonicity enforced).
  void advance_to(SimTime t) {
    if (t >= now_) now_ = t;
  }

 private:
  SimTime now_ = 0;
  SimDuration step_;
};

}  // namespace agrarsec::core
