#include "core/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

namespace agrarsec::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shard_count_ = threads;
  shard_errors_.assign(shard_count_, nullptr);
  job_busy_ns_.assign(shard_count_, 0);
  workers_.reserve(shard_count_ > 0 ? shard_count_ - 1 : 0);
  for (std::size_t w = 1; w < shard_count_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_shard(std::size_t shard) {
  const std::size_t n = job_n_;
  if (job_assignment_ == Assignment::kContiguous) {
    // Contiguous split: shard s covers [s*n/S, (s+1)*n/S). Depends only
    // on (n, S); empty when n < S for the high shards.
    const std::size_t s = shard_count_;
    const std::size_t begin = shard * n / s;
    const std::size_t end = (shard + 1) * n / s;
    if (begin >= end) return;
    const std::uint64_t start_ns = steady_now_ns();
    try {
      (*job_fn_)(begin, end, shard);
    } catch (...) {
      shard_errors_[shard] = std::current_exception();
    }
    const std::uint64_t busy_ns = steady_now_ns() - start_ns;
    job_busy_ns_[shard] = busy_ns;
    if (observer_) observer_(shard, busy_ns);
    return;
  }

  // Work stealing: claim fixed-size chunks from the shared cursor until
  // the range is exhausted. The claim order is timing-dependent but each
  // index is claimed exactly once, and this participant is the only
  // writer under its shard id, so per-shard scratch stays race-free.
  const std::size_t chunk = job_chunk_;
  bool ran = false;
  const std::uint64_t start_ns = steady_now_ns();
  try {
    for (;;) {
      const std::size_t c = job_cursor_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t begin = c * chunk;
      if (begin >= n) break;
      ran = true;
      (*job_fn_)(begin, std::min(n, begin + chunk), shard);
    }
  } catch (...) {
    shard_errors_[shard] = std::current_exception();
  }
  if (!ran) return;
  const std::uint64_t busy_ns = steady_now_ns() - start_ns;
  job_busy_ns_[shard] = busy_ns;
  if (observer_) observer_(shard, busy_ns);
}

void ThreadPool::update_imbalance() {
  // Only jobs where every shard had work under the contiguous split are
  // meaningful balance samples (n < S legitimately idles high shards).
  if (job_n_ < shard_count_) return;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t busy : job_busy_ns_) {
    sum += busy;
    max = std::max(max, busy);
  }
  if (sum == 0) return;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(shard_count_);
  const double ratio = static_cast<double>(max) / mean;
  imbalance_ewma_ = imbalance_ewma_ == 0.0
                        ? ratio
                        : 0.8 * imbalance_ewma_ + 0.2 * ratio;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return stopping_ || job_generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = job_generation_;
    }
    // job_fn_/job_n_/job_chunk_/job_assignment_ are written before the
    // generation bump under the mutex and stay frozen until every shard
    // reports done, so reading them outside the lock is race-free.
    run_shard(worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--shards_remaining_ == 0) job_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const ShardFn& fn) {
  if (n == 0) return;
  if (shard_count_ <= 1 || workers_.empty()) {
    const bool observed = observer_ || job_observer_;
    const std::uint64_t start_ns = observed ? steady_now_ns() : 0;
    fn(0, n, 0);
    if (observed) {
      const std::uint64_t ns = steady_now_ns() - start_ns;
      if (observer_) observer_(0, ns);
      if (job_observer_) job_observer_(ns);
    }
    return;
  }

  const std::uint64_t job_start_ns = job_observer_ ? steady_now_ns() : 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_n_ = n;
    job_assignment_ = assignment_;
    // Chunks of ~n/(4S): fine enough that a slow shard sheds most of its
    // backlog, coarse enough that the cursor is not contended per item.
    job_chunk_ = std::max<std::size_t>(1, n / (shard_count_ * 4));
    job_cursor_.store(0, std::memory_order_relaxed);
    std::fill(shard_errors_.begin(), shard_errors_.end(), nullptr);
    std::fill(job_busy_ns_.begin(), job_busy_ns_.end(), 0);
    shards_remaining_ = shard_count_ - 1;  // workers; the caller runs shard 0
    ++job_generation_;
  }
  job_ready_.notify_all();

  run_shard(0);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return shards_remaining_ == 0; });
    job_fn_ = nullptr;
  }
  if (job_observer_) job_observer_(steady_now_ns() - job_start_ns);
  update_imbalance();
  // First error in shard order (deterministic regardless of timing).
  for (const std::exception_ptr& err : shard_errors_) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace agrarsec::core
