#include "core/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

namespace agrarsec::core {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shard_count_ = threads;
  shard_errors_.assign(shard_count_, nullptr);
  workers_.reserve(shard_count_ > 0 ? shard_count_ - 1 : 0);
  for (std::size_t w = 1; w < shard_count_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_shard(std::size_t shard) {
  // Contiguous split: shard s covers [s*n/S, (s+1)*n/S). Depends only on
  // (n, S); empty when n < S for the high shards.
  const std::size_t n = job_n_;
  const std::size_t s = shard_count_;
  const std::size_t begin = shard * n / s;
  const std::size_t end = (shard + 1) * n / s;
  if (begin >= end) return;
  const std::uint64_t start_ns = observer_ ? steady_now_ns() : 0;
  try {
    (*job_fn_)(begin, end, shard);
  } catch (...) {
    shard_errors_[shard] = std::current_exception();
  }
  if (observer_) observer_(shard, steady_now_ns() - start_ns);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return stopping_ || job_generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = job_generation_;
    }
    // job_fn_/job_n_ are written before the generation bump under the
    // mutex and stay frozen until every shard reports done, so reading
    // them outside the lock is race-free.
    run_shard(worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--shards_remaining_ == 0) job_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const ShardFn& fn) {
  if (n == 0) return;
  if (shard_count_ <= 1 || workers_.empty()) {
    const std::uint64_t start_ns = observer_ ? steady_now_ns() : 0;
    fn(0, n, 0);
    if (observer_) observer_(0, steady_now_ns() - start_ns);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_n_ = n;
    std::fill(shard_errors_.begin(), shard_errors_.end(), nullptr);
    shards_remaining_ = shard_count_ - 1;  // workers; the caller runs shard 0
    ++job_generation_;
  }
  job_ready_.notify_all();

  run_shard(0);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return shards_remaining_ == 0; });
    job_fn_ = nullptr;
  }
  // First error in shard order (deterministic regardless of timing).
  for (const std::exception_ptr& err : shard_errors_) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace agrarsec::core
