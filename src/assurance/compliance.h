// Compliance mapping against Regulation (EU) 2023/1230 (the new Machinery
// Regulation, in force for the paper's timeframe) — specifically its
// cybersecurity-relevant essential health and safety requirements (EHSR,
// Annex III), plus hooks for the Cyber Resilience Act obligations the
// paper lists as "may also need to be considered". Each requirement maps
// to the GSN goals that argue it; coverage is the fraction of mapped
// requirements whose goals evaluate as supported.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "assurance/evidence.h"
#include "assurance/gsn.h"

namespace agrarsec::assurance {

enum class RegulationSource : std::uint8_t {
  kMachineryRegulation = 0,  ///< Regulation (EU) 2023/1230
  kCyberResilienceAct = 1,   ///< CRA proposal obligations
};

struct Requirement {
  std::string id;           ///< e.g. "MR-1.1.9"
  RegulationSource source = RegulationSource::kMachineryRegulation;
  std::string title;
  std::string text;
};

/// Cybersecurity-relevant requirement set for autonomous machinery.
[[nodiscard]] std::vector<Requirement> machinery_requirements();

struct RequirementStatus {
  Requirement requirement;
  std::vector<std::string> goal_labels;  ///< mapped GSN goals
  bool mapped = false;
  bool supported = false;   ///< all mapped goals supported
  double confidence = 0.0;  ///< min over mapped goals
};

class ComplianceMap {
 public:
  explicit ComplianceMap(std::vector<Requirement> requirements);

  /// Maps a requirement to a GSN goal label.
  void map(const std::string& requirement_id, const std::string& goal_label);

  /// Evaluates coverage against an argument + evidence.
  [[nodiscard]] std::vector<RequirementStatus> evaluate(
      const ArgumentModel& argument, const EvidenceOracle& oracle) const;

  /// Fraction of requirements fully supported.
  [[nodiscard]] double coverage(const ArgumentModel& argument,
                                const EvidenceOracle& oracle) const;

  [[nodiscard]] const std::vector<Requirement>& requirements() const {
    return requirements_;
  }

  /// Requirement id -> mapped goal labels (the walkable view analyzers
  /// iterate; unordered — walk requirements() for a deterministic order).
  [[nodiscard]] const std::unordered_map<std::string, std::vector<std::string>>&
  mapping() const {
    return mapping_;
  }

 private:
  std::vector<Requirement> requirements_;
  std::unordered_map<std::string, std::vector<std::string>> mapping_;
};

}  // namespace agrarsec::assurance
