#include "assurance/gsn.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace agrarsec::assurance {

std::string_view gsn_type_name(GsnType type) {
  switch (type) {
    case GsnType::kGoal: return "goal";
    case GsnType::kStrategy: return "strategy";
    case GsnType::kSolution: return "solution";
    case GsnType::kContext: return "context";
    case GsnType::kAssumption: return "assumption";
    case GsnType::kJustification: return "justification";
  }
  return "?";
}

std::string_view support_status_name(SupportStatus status) {
  switch (status) {
    case SupportStatus::kSupported: return "supported";
    case SupportStatus::kPartial: return "partial";
    case SupportStatus::kUnsupported: return "unsupported";
    case SupportStatus::kUndeveloped: return "undeveloped";
  }
  return "?";
}

GsnId ArgumentModel::add(GsnType type, std::string label, std::string statement) {
  if (by_label_.contains(label)) {
    throw std::invalid_argument("duplicate GSN label: " + label);
  }
  GsnNode node;
  node.id = ids_.next();
  node.type = type;
  node.label = std::move(label);
  node.statement = std::move(statement);
  by_id_[node.id.value()] = nodes_.size();
  by_label_[node.label] = nodes_.size();
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

namespace {
GsnNode* mutable_node(std::vector<GsnNode>& nodes,
                      const std::unordered_map<std::uint64_t, std::size_t>& by_id,
                      GsnId id) {
  const auto it = by_id.find(id.value());
  if (it == by_id.end()) throw std::invalid_argument("unknown GSN node id");
  return &nodes[it->second];
}
}  // namespace

void ArgumentModel::support(GsnId parent, GsnId child) {
  GsnNode* p = mutable_node(nodes_, by_id_, parent);
  (void)mutable_node(nodes_, by_id_, child);  // existence check
  p->supported_by.push_back(child);
}

void ArgumentModel::in_context(GsnId subject, GsnId context) {
  GsnNode* s = mutable_node(nodes_, by_id_, subject);
  (void)mutable_node(nodes_, by_id_, context);
  s->in_context_of.push_back(context);
}

void ArgumentModel::bind_evidence(GsnId solution, EvidenceId evidence) {
  GsnNode* s = mutable_node(nodes_, by_id_, solution);
  if (s->type != GsnType::kSolution) {
    throw std::invalid_argument("evidence can only bind to solutions");
  }
  s->evidence = evidence;
}

void ArgumentModel::mark_undeveloped(GsnId goal) {
  mutable_node(nodes_, by_id_, goal)->undeveloped = true;
}

const GsnNode* ArgumentModel::node(GsnId id) const {
  const auto it = by_id_.find(id.value());
  return it == by_id_.end() ? nullptr : &nodes_[it->second];
}

const GsnNode* ArgumentModel::by_label(const std::string& label) const {
  const auto it = by_label_.find(label);
  return it == by_label_.end() ? nullptr : &nodes_[it->second];
}

std::vector<const GsnNode*> ArgumentModel::roots() const {
  std::vector<bool> has_parent(nodes_.size(), false);
  for (const GsnNode& n : nodes_) {
    for (GsnId child : n.supported_by) {
      has_parent[by_id_.at(child.value())] = true;
    }
    for (GsnId ctx : n.in_context_of) {
      has_parent[by_id_.at(ctx.value())] = true;
    }
  }
  std::vector<const GsnNode*> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!has_parent[i] && (nodes_[i].type == GsnType::kGoal ||
                           nodes_[i].type == GsnType::kStrategy)) {
      out.push_back(&nodes_[i]);
    }
  }
  return out;
}

std::vector<std::string> ArgumentModel::validate() const {
  std::vector<std::string> problems;

  auto is_support_type = [](GsnType t) {
    return t == GsnType::kGoal || t == GsnType::kStrategy || t == GsnType::kSolution;
  };
  auto is_context_type = [](GsnType t) {
    return t == GsnType::kContext || t == GsnType::kAssumption ||
           t == GsnType::kJustification;
  };

  for (const GsnNode& n : nodes_) {
    for (GsnId child_id : n.supported_by) {
      const GsnNode* child = node(child_id);
      if (!is_support_type(child->type)) {
        problems.push_back(n.label + ": supported-by edge to " +
                           std::string(gsn_type_name(child->type)) + " " + child->label);
      }
      if (n.type == GsnType::kSolution) {
        problems.push_back(n.label + ": solutions must be leaves");
      }
    }
    for (GsnId ctx_id : n.in_context_of) {
      const GsnNode* ctx = node(ctx_id);
      if (!is_context_type(ctx->type)) {
        problems.push_back(n.label + ": in-context-of edge to non-context " +
                           ctx->label);
      }
    }
    if (n.type == GsnType::kGoal && !n.undeveloped && n.supported_by.empty()) {
      problems.push_back(n.label + ": goal has no support and is not marked undeveloped");
    }
    if (n.type == GsnType::kStrategy && n.supported_by.empty()) {
      problems.push_back(n.label + ": strategy decomposes into nothing");
    }
    if (n.type == GsnType::kSolution && !n.evidence) {
      problems.push_back(n.label + ": solution without bound evidence");
    }
  }

  // Cycle detection (DFS colors) over supported_by AND in_context_of
  // edges: context attachments between context-type nodes can close loops
  // the support edges alone never see.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(nodes_.size(), Color::kWhite);
  std::function<bool(std::size_t)> dfs = [&](std::size_t i) {
    color[i] = Color::kGray;
    for (const auto* edges : {&nodes_[i].supported_by, &nodes_[i].in_context_of}) {
      for (GsnId child : *edges) {
        const std::size_t j = by_id_.at(child.value());
        if (color[j] == Color::kGray) return true;
        if (color[j] == Color::kWhite && dfs(j)) return true;
      }
    }
    color[i] = Color::kBlack;
    return false;
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (color[i] == Color::kWhite && dfs(i)) {
      problems.push_back("argument contains a support cycle");
      break;
    }
  }
  return problems;
}

Evaluation ArgumentModel::evaluate_node(
    const GsnNode& n, const EvidenceOracle& oracle,
    std::unordered_map<std::uint64_t, Evaluation>& memo,
    std::vector<std::uint64_t>& stack) const {
  if (const auto it = memo.find(n.id.value()); it != memo.end()) return it->second;
  if (std::find(stack.begin(), stack.end(), n.id.value()) != stack.end()) {
    return {SupportStatus::kUnsupported, 0.0};  // cycle: fail safe
  }
  stack.push_back(n.id.value());

  Evaluation result;
  if (n.type == GsnType::kSolution) {
    const auto conf = n.evidence ? oracle.confidence(*n.evidence) : std::nullopt;
    if (conf) {
      result.status = *conf > 0.0 ? SupportStatus::kSupported
                                  : SupportStatus::kUnsupported;
      result.confidence = *conf;
    } else {
      result.status = SupportStatus::kUnsupported;
      result.confidence = 0.0;
    }
  } else if (n.type == GsnType::kContext || n.type == GsnType::kAssumption ||
             n.type == GsnType::kJustification) {
    result.status = SupportStatus::kSupported;
    result.confidence = 1.0;
  } else if (n.undeveloped || n.supported_by.empty()) {
    result.status = SupportStatus::kUndeveloped;
    result.confidence = 0.0;
  } else {
    std::size_t supported = 0;
    std::size_t partial = 0;
    double confidence = 1.0;
    for (GsnId child_id : n.supported_by) {
      const Evaluation child = evaluate_node(*node(child_id), oracle, memo, stack);
      if (child.status == SupportStatus::kSupported) ++supported;
      if (child.status == SupportStatus::kPartial) ++partial;
      confidence *= child.confidence;
    }
    if (supported == n.supported_by.size()) {
      result.status = SupportStatus::kSupported;
    } else if (supported > 0 || partial > 0) {
      result.status = SupportStatus::kPartial;
    } else {
      result.status = SupportStatus::kUnsupported;
    }
    result.confidence = confidence;
  }

  stack.pop_back();
  memo[n.id.value()] = result;
  return result;
}

std::unordered_map<std::uint64_t, Evaluation> ArgumentModel::evaluate(
    const EvidenceOracle& oracle) const {
  std::unordered_map<std::uint64_t, Evaluation> memo;
  std::vector<std::uint64_t> stack;
  for (const GsnNode& n : nodes_) {
    (void)evaluate_node(n, oracle, memo, stack);
  }
  return memo;
}

std::string ArgumentModel::to_dot() const {
  std::string out = "digraph assurance_case {\n  rankdir=TB;\n";
  auto shape = [](GsnType t) {
    switch (t) {
      case GsnType::kGoal: return "box";
      case GsnType::kStrategy: return "parallelogram";
      case GsnType::kSolution: return "circle";
      case GsnType::kContext: return "ellipse";
      case GsnType::kAssumption: return "ellipse";
      case GsnType::kJustification: return "ellipse";
    }
    return "box";
  };
  auto escape = [](const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"') r += "\\\"";
      else if (c == '\n') r += "\\n";
      else r += c;
    }
    return r;
  };
  for (const GsnNode& n : nodes_) {
    out += "  n" + std::to_string(n.id.value()) + " [shape=" + shape(n.type) +
           ", label=\"" + escape(n.label) + "\\n" + escape(n.statement) + "\"];\n";
  }
  for (const GsnNode& n : nodes_) {
    for (GsnId child : n.supported_by) {
      out += "  n" + std::to_string(n.id.value()) + " -> n" +
             std::to_string(child.value()) + ";\n";
    }
    for (GsnId ctx : n.in_context_of) {
      out += "  n" + std::to_string(n.id.value()) + " -> n" +
             std::to_string(ctx.value()) + " [style=dashed];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace agrarsec::assurance
