// CASCADE-style asset-driven Security Assurance Case construction (the
// approach of the paper's ref [39], which §V proposes transferring to
// forestry): the SAC skeleton is generated from the TARA — top security
// claim, one sub-goal per asset, one claim per threat scenario arguing
// its residual risk is acceptable, supported by solutions referencing the
// applied controls' verification evidence. Extended here (as the paper
// suggests) with a safety-interplay leg fed by the co-analysis.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "assurance/evidence.h"
#include "assurance/gsn.h"
#include "risk/coanalysis.h"
#include "risk/tara.h"

namespace agrarsec::assurance {

struct CascadeResult {
  ArgumentModel argument;
  /// control id -> evidence item the generator registered for it.
  std::unordered_map<std::string, EvidenceId> control_evidence;
  /// threat id value -> goal node arguing that threat's treatment.
  std::unordered_map<std::uint64_t, GsnId> threat_goals;
  GsnId top_goal;
};

struct CascadeConfig {
  /// Evidence confidence assigned to verified controls (tests green).
  double control_confidence = 0.9;
  /// Residual risk at or below this is argued acceptable without
  /// additional justification.
  risk::RiskValue acceptable_risk = 2;
};

/// Builds the SAC for an assessed TARA. `registry` receives the generated
/// evidence items (so callers can later update confidences from live
/// artifacts and re-evaluate).
[[nodiscard]] CascadeResult build_security_case(const risk::Tara& tara,
                                                EvidenceRegistry& registry,
                                                CascadeConfig config = {});

/// Adds the safety-interplay argument leg from co-analysis verdicts:
/// per hazard, a goal claiming the hazard stays controlled under the
/// linked cyber attacks, supported by the co-analysis evidence.
void extend_with_coanalysis(CascadeResult& result,
                            const std::vector<risk::HazardVerdict>& verdicts,
                            EvidenceRegistry& registry);

}  // namespace agrarsec::assurance
