#include "assurance/compliance.h"

#include <algorithm>
#include <stdexcept>

namespace agrarsec::assurance {

std::vector<Requirement> machinery_requirements() {
  using RS = RegulationSource;
  return {
      {"MR-1.1.9", RS::kMachineryRegulation,
       "Protection against corruption",
       "Connection of a device or remote access must not lead to a hazardous "
       "situation; safety software/data must be protected against accidental "
       "or intentional corruption; the machinery must collect evidence of a "
       "lawful or unlawful intervention."},
      {"MR-1.2.1", RS::kMachineryRegulation,
       "Safety and reliability of control systems",
       "Control systems must withstand, where appropriate to the "
       "circumstances and the risks, intended operating stresses and "
       "malicious attempts to create a hazardous situation."},
      {"MR-1.1.6", RS::kMachineryRegulation,
       "Ergonomics / supervision of autonomous machinery",
       "Fully or partially autonomous machinery must allow supervisory "
       "functions including the ability to stop the machinery safely."},
      {"MR-1.2.2", RS::kMachineryRegulation,
       "Control devices — remote control",
       "Where machinery is controlled remotely, loss or degradation of the "
       "communication link must not lead to a hazardous situation."},
      {"MR-1.3.7", RS::kMachineryRegulation,
       "Risks related to moving parts and persons",
       "Autonomous mobile machinery must be able to detect persons in the "
       "danger zone and prevent contact hazards."},
      {"CRA-SUR-1", RS::kCyberResilienceAct,
       "Secure by default & updates",
       "Products with digital elements must be delivered secure by default "
       "and provided with security updates over their lifetime."},
      {"CRA-SUR-2", RS::kCyberResilienceAct,
       "Vulnerability handling & logging",
       "Manufacturers must log and monitor relevant internal activity and "
       "handle vulnerabilities, with attestable integrity of the logs."},
  };
}

ComplianceMap::ComplianceMap(std::vector<Requirement> requirements)
    : requirements_(std::move(requirements)) {}

void ComplianceMap::map(const std::string& requirement_id,
                        const std::string& goal_label) {
  const bool known = std::any_of(
      requirements_.begin(), requirements_.end(),
      [&](const Requirement& r) { return r.id == requirement_id; });
  if (!known) throw std::invalid_argument("unknown requirement: " + requirement_id);
  mapping_[requirement_id].push_back(goal_label);
}

std::vector<RequirementStatus> ComplianceMap::evaluate(
    const ArgumentModel& argument, const EvidenceOracle& oracle) const {
  const auto evaluations = argument.evaluate(oracle);

  std::vector<RequirementStatus> out;
  for (const Requirement& r : requirements_) {
    RequirementStatus status;
    status.requirement = r;
    const auto it = mapping_.find(r.id);
    if (it == mapping_.end() || it->second.empty()) {
      out.push_back(std::move(status));
      continue;
    }
    status.mapped = true;
    status.supported = true;
    status.confidence = 1.0;
    status.goal_labels = it->second;
    for (const std::string& label : it->second) {
      const GsnNode* node = argument.by_label(label);
      if (node == nullptr) {
        status.supported = false;
        status.confidence = 0.0;
        continue;
      }
      const auto ev = evaluations.find(node->id.value());
      if (ev == evaluations.end() ||
          ev->second.status != SupportStatus::kSupported) {
        status.supported = false;
      }
      const double c = ev == evaluations.end() ? 0.0 : ev->second.confidence;
      status.confidence = std::min(status.confidence, c);
    }
    out.push_back(std::move(status));
  }
  return out;
}

double ComplianceMap::coverage(const ArgumentModel& argument,
                               const EvidenceOracle& oracle) const {
  const auto statuses = evaluate(argument, oracle);
  if (statuses.empty()) return 0.0;
  const auto supported = std::count_if(
      statuses.begin(), statuses.end(),
      [](const RequirementStatus& s) { return s.mapped && s.supported; });
  return static_cast<double>(supported) / static_cast<double>(statuses.size());
}

}  // namespace agrarsec::assurance
