#include "assurance/cascade.h"

#include <algorithm>

namespace agrarsec::assurance {

CascadeResult build_security_case(const risk::Tara& tara, EvidenceRegistry& registry,
                                  CascadeConfig config) {
  CascadeResult out;
  ArgumentModel& arg = out.argument;

  out.top_goal = arg.add(GsnType::kGoal, "G-top",
                         "The item '" + tara.item().name +
                             "' is acceptably secure against the assessed "
                             "threat scenarios");
  const GsnId ctx_item =
      arg.add(GsnType::kContext, "C-item", "Item definition: " + tara.item().mission);
  arg.in_context(out.top_goal, ctx_item);
  const GsnId ctx_tara = arg.add(
      GsnType::kContext, "C-tara",
      "TARA per ISO/SAE 21434 over " + std::to_string(tara.results().size()) +
          " threat scenarios");
  arg.in_context(out.top_goal, ctx_tara);

  const GsnId strategy_assets =
      arg.add(GsnType::kStrategy, "S-assets",
              "Argue security asset by asset over the item definition");
  arg.support(out.top_goal, strategy_assets);

  // One sub-goal per asset that actually has threats.
  std::unordered_map<std::uint64_t, GsnId> asset_goals;
  for (const risk::Asset& asset : tara.item().assets) {
    const bool has_threats =
        std::any_of(tara.results().begin(), tara.results().end(),
                    [&](const risk::AssessedThreat& t) {
                      return t.scenario.asset == asset.id;
                    });
    if (!has_threats) continue;
    const GsnId g = arg.add(GsnType::kGoal, "G-asset-" + asset.name,
                            "Asset '" + asset.name + "' is adequately protected");
    arg.support(strategy_assets, g);
    asset_goals[asset.id.value()] = g;
  }

  // Per threat: claim + strategy-over-controls + solutions.
  for (const risk::AssessedThreat& t : tara.results()) {
    const auto asset_goal = asset_goals.find(t.scenario.asset.value());
    if (asset_goal == asset_goals.end()) continue;

    const std::string label = "G-threat-" + t.scenario.name;
    const GsnId goal = arg.add(
        GsnType::kGoal, label,
        "Residual risk of '" + t.scenario.name + "' is acceptable (risk " +
            std::to_string(t.residual_risk) + " <= " +
            std::to_string(config.acceptable_risk) + ", " +
            std::string(risk::cal_name(t.cal)) + ")");
    arg.support(asset_goal->second, goal);
    out.threat_goals[t.scenario.id.value()] = goal;

    if (t.applied_controls.empty()) {
      if (t.residual_risk <= config.acceptable_risk) {
        // Retained low risk: justified acceptance, evidenced by the
        // assessment record itself.
        const GsnId sol =
            arg.add(GsnType::kSolution, "Sn-retain-" + t.scenario.name,
                    "TARA record: risk retained at value " +
                        std::to_string(t.residual_risk));
        const EvidenceId ev = registry.add(
            EvidenceKind::kAnalysis, "tara-" + t.scenario.name,
            "assessment record for retained risk", 0.95);
        arg.bind_evidence(sol, ev);
        arg.support(goal, sol);
      } else {
        arg.mark_undeveloped(goal);  // open point: needs treatment
      }
      continue;
    }

    const GsnId strategy =
        arg.add(GsnType::kStrategy, "S-controls-" + t.scenario.name,
                "Argue over the implemented controls reducing feasibility from " +
                    std::string(risk::feasibility_name(t.initial_feasibility)) +
                    " to " +
                    std::string(risk::feasibility_name(t.residual_feasibility)));
    arg.support(goal, strategy);

    for (const std::string& control : t.applied_controls) {
      EvidenceId ev;
      if (const auto it = out.control_evidence.find(control);
          it != out.control_evidence.end()) {
        ev = it->second;
      } else {
        ev = registry.add(EvidenceKind::kTestResult, "verify-" + control,
                          "verification results for control '" + control + "'",
                          config.control_confidence);
        out.control_evidence[control] = ev;
      }
      const std::string sol_label = "Sn-" + control + "-" + t.scenario.name;
      const GsnId sol = arg.add(GsnType::kSolution, sol_label,
                                "Control '" + control + "' implemented and verified");
      arg.bind_evidence(sol, ev);
      arg.support(strategy, sol);
    }
  }
  return out;
}

void extend_with_coanalysis(CascadeResult& result,
                            const std::vector<risk::HazardVerdict>& verdicts,
                            EvidenceRegistry& registry) {
  ArgumentModel& arg = result.argument;
  const GsnId interplay_goal = arg.add(
      GsnType::kGoal, "G-interplay",
      "Safety functions remain effective under the assessed cyber attacks");
  arg.support(result.top_goal, interplay_goal);
  const GsnId strategy = arg.add(GsnType::kStrategy, "S-hazards",
                                 "Argue hazard by hazard over the co-analysis");
  arg.support(interplay_goal, strategy);

  for (const risk::HazardVerdict& v : verdicts) {
    const GsnId g = arg.add(
        GsnType::kGoal, "G-hazard-" + v.hazard.name,
        "Hazard '" + v.hazard.name + "' controlled: requires " +
            std::string(safety::performance_level_name(v.required)) +
            (v.combined_ok ? " — combined verdict OK" : " — OPEN"));
    arg.support(strategy, g);

    if (v.combined_ok) {
      const GsnId sol = arg.add(GsnType::kSolution, "Sn-coanalysis-" + v.hazard.name,
                                "Co-analysis verdict with PL and residual-risk checks");
      const EvidenceId ev =
          registry.add(EvidenceKind::kAnalysis, "coanalysis-" + v.hazard.name,
                       "combined safety-security analysis record", 0.9);
      arg.bind_evidence(sol, ev);
      arg.support(g, sol);
    } else {
      arg.mark_undeveloped(g);
    }
  }
}

}  // namespace agrarsec::assurance
