// Modular assurance for a System of Systems (paper §V: "compliance
// requirements necessitate the separation of concerns, which calls for ...
// a modular approach for an assurance framework"). Each constituent system
// brings its own assurance case (module); the SoS-level case claims the
// composition is secure, supported by
//   (a) each module's top claim (contract: the module must expose it),
//   (b) the static composition checks (sos::SosComposition), and
//   (c) the interface contracts being protected end-to-end.
// Modules remain independently owned and re-evaluable — replacing one
// constituent's case does not touch the others, which is the property
// management independence demands.
#pragma once

#include <string>
#include <vector>

#include "assurance/evidence.h"
#include "assurance/gsn.h"
#include "sos/system.h"

namespace agrarsec::assurance {

/// A constituent's contribution to the SoS case.
struct AssuranceModule {
  std::string system_name;          ///< matches sos::ConstituentSystem::name
  std::string owner;                ///< managing organization
  /// The module's public top claim, with its standalone evaluation.
  std::string top_claim;
  SupportStatus status = SupportStatus::kUndeveloped;
  double confidence = 0.0;
};

/// Extracts a module summary from a constituent's evaluated case.
[[nodiscard]] AssuranceModule summarize_module(const std::string& system_name,
                                               const std::string& owner,
                                               const ArgumentModel& argument,
                                               GsnId top_goal,
                                               const EvidenceOracle& oracle);

struct SosCaseResult {
  ArgumentModel argument;
  GsnId top_goal;
  /// Evidence ids for each module's imported claim — update these when a
  /// constituent re-evaluates, then re-evaluate the SoS case.
  std::vector<std::pair<std::string, EvidenceId>> module_evidence;
};

/// Builds the SoS-level case over the composition and the modules.
/// Composition issues found by the static checks become undeveloped goals
/// (open points); module claims are imported as evidence whose confidence
/// is the module's standalone confidence (zero when the module's own top
/// claim is not supported).
[[nodiscard]] SosCaseResult build_sos_case(const sos::SosComposition& composition,
                                           const std::vector<AssuranceModule>& modules,
                                           EvidenceRegistry& registry);

}  // namespace agrarsec::assurance
