// Evidence registry for assurance cases: typed evidence items with
// freshness and trust, acting as the EvidenceOracle the GSN evaluator
// consumes. Benches register live artifacts (test tallies, IDS stats,
// boot reports) so the evaluated case reflects the actual system state —
// the "continuous incremental assurance" direction (paper §V).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "assurance/gsn.h"
#include "core/time.h"
#include "core/types.h"

namespace agrarsec::assurance {

enum class EvidenceKind : std::uint8_t {
  kTestResult = 0,
  kAnalysis = 1,
  kReview = 2,
  kFieldData = 3,
  kCertification = 4,
};

[[nodiscard]] std::string_view evidence_kind_name(EvidenceKind kind);

struct EvidenceItem {
  EvidenceId id;
  EvidenceKind kind = EvidenceKind::kTestResult;
  std::string name;
  std::string description;
  double confidence = 0.0;     ///< [0,1]; 0 marks failed/withdrawn evidence
  core::SimTime produced_at = 0;
  std::optional<core::SimDuration> validity;  ///< evidence ages out
};

class EvidenceRegistry final : public EvidenceOracle {
 public:
  EvidenceId add(EvidenceKind kind, const std::string& name,
                 const std::string& description, double confidence,
                 core::SimTime produced_at = 0,
                 std::optional<core::SimDuration> validity = std::nullopt);

  /// Updates the confidence of an existing item (re-running tests etc.).
  void update_confidence(EvidenceId id, double confidence);

  /// Sets "now" for freshness checks; stale evidence reports nullopt.
  void set_now(core::SimTime now) { now_ = now; }

  [[nodiscard]] std::optional<double> confidence(EvidenceId id) const override;
  [[nodiscard]] const EvidenceItem* item(EvidenceId id) const;
  [[nodiscard]] std::size_t size() const { return items_.size(); }

 private:
  std::vector<EvidenceItem> items_;
  std::unordered_map<std::uint64_t, std::size_t> by_id_;
  IdAllocator<EvidenceId> ids_;
  core::SimTime now_ = 0;
};

}  // namespace agrarsec::assurance
