#include "assurance/evidence.h"

#include <stdexcept>

namespace agrarsec::assurance {

std::string_view evidence_kind_name(EvidenceKind kind) {
  switch (kind) {
    case EvidenceKind::kTestResult: return "test-result";
    case EvidenceKind::kAnalysis: return "analysis";
    case EvidenceKind::kReview: return "review";
    case EvidenceKind::kFieldData: return "field-data";
    case EvidenceKind::kCertification: return "certification";
  }
  return "?";
}

EvidenceId EvidenceRegistry::add(EvidenceKind kind, const std::string& name,
                                 const std::string& description, double confidence,
                                 core::SimTime produced_at,
                                 std::optional<core::SimDuration> validity) {
  if (confidence < 0.0 || confidence > 1.0) {
    throw std::invalid_argument("evidence confidence must lie in [0,1]");
  }
  EvidenceItem item;
  item.id = ids_.next();
  item.kind = kind;
  item.name = name;
  item.description = description;
  item.confidence = confidence;
  item.produced_at = produced_at;
  item.validity = validity;
  by_id_[item.id.value()] = items_.size();
  items_.push_back(std::move(item));
  return items_.back().id;
}

void EvidenceRegistry::update_confidence(EvidenceId id, double confidence) {
  const auto it = by_id_.find(id.value());
  if (it == by_id_.end()) throw std::invalid_argument("unknown evidence id");
  if (confidence < 0.0 || confidence > 1.0) {
    throw std::invalid_argument("evidence confidence must lie in [0,1]");
  }
  items_[it->second].confidence = confidence;
}

std::optional<double> EvidenceRegistry::confidence(EvidenceId id) const {
  const auto it = by_id_.find(id.value());
  if (it == by_id_.end()) return std::nullopt;
  const EvidenceItem& item = items_[it->second];
  if (item.validity && item.produced_at + *item.validity < now_) {
    return std::nullopt;  // aged out
  }
  return item.confidence;
}

const EvidenceItem* EvidenceRegistry::item(EvidenceId id) const {
  const auto it = by_id_.find(id.value());
  return it == by_id_.end() ? nullptr : &items_[it->second];
}

}  // namespace agrarsec::assurance
