#include "assurance/modular.h"

#include <algorithm>

namespace agrarsec::assurance {

AssuranceModule summarize_module(const std::string& system_name,
                                 const std::string& owner,
                                 const ArgumentModel& argument, GsnId top_goal,
                                 const EvidenceOracle& oracle) {
  AssuranceModule module;
  module.system_name = system_name;
  module.owner = owner;
  const GsnNode* top = argument.node(top_goal);
  module.top_claim = top != nullptr ? top->statement : "(missing top goal)";
  const auto eval = argument.evaluate(oracle);
  if (const auto it = eval.find(top_goal.value()); it != eval.end()) {
    module.status = it->second.status;
    module.confidence = it->second.confidence;
  }
  return module;
}

SosCaseResult build_sos_case(const sos::SosComposition& composition,
                             const std::vector<AssuranceModule>& modules,
                             EvidenceRegistry& registry) {
  SosCaseResult out;
  ArgumentModel& arg = out.argument;

  out.top_goal = arg.add(GsnType::kGoal, "G-sos",
                         "The worksite system-of-systems is acceptably secure "
                         "as composed");
  const GsnId ctx = arg.add(
      GsnType::kContext, "C-sos",
      std::to_string(composition.systems().size()) + " constituent systems, " +
          std::to_string(composition.contracts().size()) + " interface contracts");
  arg.in_context(out.top_goal, ctx);

  // Leg 1: each constituent is secure by its own (imported) case.
  const GsnId s_modules = arg.add(GsnType::kStrategy, "S-modules",
                                  "Argue over the constituents' own assurance "
                                  "cases (modular, separately owned)");
  arg.support(out.top_goal, s_modules);
  for (const AssuranceModule& m : modules) {
    const GsnId g = arg.add(GsnType::kGoal, "G-module-" + m.system_name,
                            "'" + m.system_name + "' (owner: " + m.owner +
                                ") upholds its module claim: " + m.top_claim);
    arg.support(s_modules, g);
    const GsnId sol = arg.add(GsnType::kSolution, "Sn-module-" + m.system_name,
                              "imported evaluation of the module's top claim");
    const double conf =
        m.status == SupportStatus::kSupported ? std::max(m.confidence, 0.01) : 0.0;
    const EvidenceId ev =
        registry.add(EvidenceKind::kCertification, "module-" + m.system_name,
                     "standalone evaluation result of the constituent's case", conf);
    arg.bind_evidence(sol, ev);
    arg.support(g, sol);
    out.module_evidence.emplace_back(m.system_name, ev);
  }

  // Leg 2: the composition itself is sound (static checks).
  const GsnId s_composition =
      arg.add(GsnType::kStrategy, "S-composition",
              "Argue over the five SoS problem areas (Waller & Craddock)");
  arg.support(out.top_goal, s_composition);

  struct Check {
    const char* label;
    std::vector<sos::CompositionIssue> issues;
  };
  const Check checks[] = {
      {"capabilities", composition.check_capabilities()},
      {"operational-independence", composition.check_operational_independence()},
      {"management-independence", composition.check_management_independence()},
      {"evolution", composition.check_evolution()},
      {"geographic", composition.check_geographic()},
  };
  for (const Check& check : checks) {
    const GsnId g = arg.add(GsnType::kGoal, std::string("G-sos-") + check.label,
                            std::string("no unresolved ") + check.label +
                                " issues in the composition");
    arg.support(s_composition, g);
    if (check.issues.empty()) {
      const GsnId sol =
          arg.add(GsnType::kSolution, std::string("Sn-sos-") + check.label,
                  "composition check passed");
      const EvidenceId ev = registry.add(EvidenceKind::kAnalysis,
                                         std::string("sos-check-") + check.label,
                                         "static composition analysis", 0.95);
      arg.bind_evidence(sol, ev);
      arg.support(g, sol);
    } else {
      arg.mark_undeveloped(g);  // open point: the issues must be resolved
    }
  }
  return out;
}

}  // namespace agrarsec::assurance
