// Goal Structuring Notation (GSN) argument model with CAE-compatible
// semantics — the Security Assurance Case machinery of the paper's §V.
// Supports construction, structural validation, evidence-driven
// evaluation with confidence propagation, and DOT export.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace agrarsec::assurance {

enum class GsnType : std::uint8_t {
  kGoal = 0,        ///< claim to be supported
  kStrategy = 1,    ///< argument decomposition
  kSolution = 2,    ///< evidence reference (CAE: Evidence)
  kContext = 3,
  kAssumption = 4,
  kJustification = 5,
};

[[nodiscard]] std::string_view gsn_type_name(GsnType type);

struct GsnNode {
  GsnId id;
  GsnType type = GsnType::kGoal;
  std::string label;       ///< short identifier, e.g. "G1"
  std::string statement;
  std::vector<GsnId> supported_by;   ///< goals/strategies/solutions
  std::vector<GsnId> in_context_of;  ///< context/assumption/justification
  std::optional<EvidenceId> evidence;  ///< solutions only
  bool undeveloped = false;            ///< explicitly marked open point
};

/// Evaluation status of a node after propagation.
enum class SupportStatus : std::uint8_t {
  kSupported = 0,
  kPartial = 1,      ///< some but not all children supported
  kUnsupported = 2,
  kUndeveloped = 3,  ///< marked undeveloped or no children at all
};

[[nodiscard]] std::string_view support_status_name(SupportStatus status);

struct Evaluation {
  SupportStatus status = SupportStatus::kUndeveloped;
  double confidence = 0.0;  ///< [0,1] product/min-combination up the tree
};

/// Evidence lookup the evaluator uses for solution nodes.
class EvidenceOracle {
 public:
  virtual ~EvidenceOracle() = default;
  /// Returns the confidence [0,1] in an evidence item; nullopt = missing.
  [[nodiscard]] virtual std::optional<double> confidence(EvidenceId id) const = 0;
};

class ArgumentModel {
 public:
  /// Creates a node; label must be unique.
  GsnId add(GsnType type, std::string label, std::string statement);

  /// child supports parent (GSN "supported by").
  void support(GsnId parent, GsnId child);
  /// context attachment.
  void in_context(GsnId subject, GsnId context);
  void bind_evidence(GsnId solution, EvidenceId evidence);
  void mark_undeveloped(GsnId goal);

  [[nodiscard]] const GsnNode* node(GsnId id) const;
  [[nodiscard]] const GsnNode* by_label(const std::string& label) const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  /// All nodes in creation order — the walkable view analyzers iterate.
  [[nodiscard]] const std::vector<GsnNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::vector<const GsnNode*> roots() const;

  /// Structural validation: returns human-readable problems (empty = ok).
  /// Checks: type rules on edges, acyclicity, solutions have no children,
  /// non-undeveloped goals have support, labels unique (enforced on add).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Evaluates the whole argument against an evidence oracle. Goal /
  /// strategy nodes AND over their support; confidence is the product of
  /// children's confidences (weakest-link flavored).
  [[nodiscard]] std::unordered_map<std::uint64_t, Evaluation> evaluate(
      const EvidenceOracle& oracle) const;

  /// Graphviz DOT rendering (shapes per GSN symbol conventions).
  [[nodiscard]] std::string to_dot() const;

 private:
  [[nodiscard]] Evaluation evaluate_node(
      const GsnNode& node, const EvidenceOracle& oracle,
      std::unordered_map<std::uint64_t, Evaluation>& memo,
      std::vector<std::uint64_t>& stack) const;

  std::vector<GsnNode> nodes_;
  std::unordered_map<std::uint64_t, std::size_t> by_id_;
  std::unordered_map<std::string, std::size_t> by_label_;
  IdAllocator<GsnId> ids_;
};

}  // namespace agrarsec::assurance
