// Process-wide metrics registry: named counters, gauges and histograms
// with O(1) hot-path updates. Instruments carry one accumulator lane per
// shard so the parallel step phases can update them without locks or
// atomics; reads merge lanes in ascending lane order, which makes every
// exported integer quantity invariant under the thread count (uint64
// addition commutes). Double-valued fields (gauge values, histogram
// sum/min/max) are exact for the integer-valued samples the simulator
// feeds them, and min/max are order-free; exports are therefore
// bit-identical across thread counts for everything the parity tests
// compare.
//
// Threading contract (mirrors the worksite's shard/fork/drain pattern):
//  - instrument creation (Registry::counter/gauge/histogram) and
//    ensure_lanes() are serial-phase only;
//  - add(n, shard) may run concurrently as long as each shard index is
//    driven by at most one thread at a time (ThreadPool guarantees this);
//  - value()/merged reads are serial-phase only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace agrarsec::obs {

class Registry;

/// Instruments whose name starts with this prefix carry wall-clock-derived
/// values (step-duration histograms, timing gauges). They are machine- and
/// timing-dependent by nature, so Telemetry::deterministic_json() excludes
/// them from the deterministic export the parity tests compare; they still
/// appear in the full artifact (Telemetry::to_json()).
inline constexpr std::string_view kWallPrefix = "wall.";

/// Monotonic counter. Hot path is a single indexed uint64 add.
class Counter {
 public:
  void add(std::uint64_t n = 1, std::size_t shard = 0) { lanes_[shard].v += n; }

  /// Sum over lanes in ascending lane order (thread-count-invariant).
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) total += lane.v;
    return total;
  }

 private:
  friend class Registry;
  /// Padded to a cache line so adjacent shard lanes never false-share.
  struct alignas(64) Lane {
    std::uint64_t v = 0;
  };
  explicit Counter(std::size_t lanes) : lanes_(lanes) {}
  std::vector<Lane> lanes_;
};

/// Point-in-time double value. Serial contexts only (no shard lanes): the
/// simulator's gauges are written from drain phases.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class Registry;
  Gauge() = default;
  double value_ = 0.0;
};

/// Fixed-range histogram with the same bin semantics as core::Stats'
/// Histogram: x < lo counts as underflow, x >= hi as overflow, otherwise
/// bin = floor((x - lo) / (hi - lo) * bins) clamped to the last bin.
class Histogram {
 public:
  void add(double x, std::size_t shard = 0);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bins() const { return bins_; }
  [[nodiscard]] double bin_low(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_);
  }

  /// Merged (lane-order) reads.
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const;
  [[nodiscard]] std::uint64_t overflow() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  ///< +inf when empty
  [[nodiscard]] double max() const;  ///< -inf when empty

 private:
  friend class Registry;
  struct alignas(64) Lane {
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  Histogram(double lo, double hi, std::size_t bins, std::size_t lanes);

  double lo_;
  double hi_;
  std::size_t bins_;
  std::vector<Lane> lanes_;
};

/// Name-keyed instrument store. Instruments live behind unique_ptr in a
/// sorted map, so handles are stable for the registry's lifetime and
/// exports iterate in name order (deterministic JSON).
class Registry {
 public:
  explicit Registry(std::size_t lanes = 1) : lanes_(lanes == 0 ? 1 : lanes) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime. For histogram(), the (lo, hi, bins) shape is fixed by the
  /// first caller; later callers get the existing instrument unchanged.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, double lo, double hi, std::size_t bins);

  /// Grows every instrument (and future ones) to at least `lanes` shard
  /// lanes. Serial-phase only; existing lane contents are preserved.
  void ensure_lanes(std::size_t lanes);
  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  /// Deterministic snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with name-sorted keys and stable field order.
  /// Instruments whose name starts with `exclude_prefix` are omitted
  /// (empty prefix = include everything); the deterministic telemetry
  /// view passes kWallPrefix to keep wall-clock instruments out.
  [[nodiscard]] std::string to_json(std::string_view exclude_prefix = {}) const;

  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn>
  void for_each_gauge(Fn&& fn) const {
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

  /// Lookup without creation (nullptr when absent).
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;

 private:
  std::size_t lanes_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace agrarsec::obs
