#include "obs/trace.h"

#include <chrono>

namespace agrarsec::obs {

PhaseId Tracer::phase(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  names_.emplace_back(name);
  stats_.emplace_back();
  return names_.size() - 1;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace agrarsec::obs
