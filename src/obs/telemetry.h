// Telemetry: the bundle a component is handed — a metrics Registry, a
// phase Tracer, and a FlightRecorder — plus the exporters. Components
// accept an optional Telemetry* and fall back to a privately owned
// instance when none is injected, so instrument code paths are identical
// either way and existing accessor APIs become thin registry adapters.
// SecuredWorksite owns the shared instance for the full stack.
//
// Two export views:
//  - deterministic_json(): registry snapshot + flight-recorder JSONL.
//    Bit-identical across thread counts and runs with the same seeds —
//    the parallel parity tests compare it directly.
//  - to_json(): the full artifact; adds tracer phases, per-shard busy
//    time and the wall-clock annex. Machine-dependent by nature.
#pragma once

#include <cstddef>
#include <string>

#include "core/event_bus.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace agrarsec::obs {

struct TelemetryConfig {
  std::size_t lanes = 1;               ///< initial shard lanes (grow via ensure_shards)
  std::size_t flight_capacity = 4096;  ///< flight-recorder ring size
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }
  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }

  /// Grows registry lanes and tracer shard lanes together. Serial only.
  void ensure_shards(std::size_t shards) {
    registry_.ensure_lanes(shards);
    tracer_.ensure_shards(shards);
  }

  /// Deterministic view (registry + flight events, no wall clock).
  /// Registry instruments named with kWallPrefix ("wall.") are excluded
  /// here — they carry timing-derived samples and only appear in the full
  /// artifact.
  [[nodiscard]] std::string deterministic_json() const;

  /// Full artifact: deterministic view + trace phases, shard busy time,
  /// flight-recorder wall annex.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`. Returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  Registry registry_;
  Tracer tracer_;
  FlightRecorder recorder_;
};

/// Counts every publish on `bus` into `telemetry`'s registry: total in
/// "bus.events" plus a per-topic "bus.topic.<topic>" counter (handles
/// cached, so steady-state cost is one hash lookup + two adds). Returns
/// the subscription handle; the telemetry must outlive the subscription.
core::EventBus::Subscription wire_event_bus(core::EventBus& bus, Telemetry& telemetry);

/// Process-global instance for tools and benches that have no simulation
/// object to hang telemetry off. Lazily constructed, never destroyed
/// before exit-time writers run.
Telemetry& global();

/// Directory bench artifacts land in. Resolution order: the last
/// set_artifact_dir() call (benches wire this to --artifact-dir), the
/// AGRARSEC_ARTIFACT_DIR environment variable, the compile-time default
/// (the build tree's artifacts/ directory), the working directory — so an
/// uninstrumented invocation from the repo root no longer litters it.
[[nodiscard]] std::string artifact_dir();
void set_artifact_dir(std::string dir);

/// Joins artifact_dir() with `filename`, creating the directory if needed.
[[nodiscard]] std::string artifact_path(const std::string& filename);

/// Strips a `--artifact-dir=DIR` / `--artifact-dir DIR` flag out of argv
/// (so bench flag loops never see it) and applies it via
/// set_artifact_dir(). Returns true when the flag was present.
bool consume_artifact_dir_flag(int& argc, char** argv);

/// Writes "<bench_name>.telemetry.json" under artifact_dir() from the
/// given telemetry. Returns false on I/O failure.
bool write_bench_artifact(const Telemetry& telemetry, const std::string& bench_name);

/// RAII helper for bench mains: times the enclosing scope into gauge
/// "bench.wall_seconds" and writes "<name>.telemetry.json" at scope exit.
/// Uses the process-global telemetry unless one is supplied.
class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name, Telemetry* telemetry = nullptr);
  ~BenchArtifact();

  BenchArtifact(const BenchArtifact&) = delete;
  BenchArtifact& operator=(const BenchArtifact&) = delete;

 private:
  std::string name_;
  Telemetry* telemetry_;
  std::uint64_t start_ns_;
};

}  // namespace agrarsec::obs
