// Flight recorder: a bounded ring of structured events (plan/replan,
// cache hit/miss, radio drop/collision, IDS alert, handshake outcome,
// audit append) for post-mortem inspection. Events carry sim-time stamps
// and dump as deterministic JSONL — stable field order, oldest first;
// the wall-clock capture timestamp is kept out of the main dump and only
// appears in an optional annex keyed by sequence number.
//
// Determinism contract: record() must only be called from serial
// contexts (effect drains, RadioMedium::step, EventBus handlers, IDS
// raise, SecuredWorksite cycles). The recorder has no shard lanes on
// purpose — a deterministic event *order* requires a serial writer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/time.h"

namespace agrarsec::obs {

struct FlightEvent {
  std::uint64_t seq = 0;       ///< monotonically increasing, survives wraparound
  core::SimTime time = 0;      ///< sim-time stamp (ms)
  std::string category;        ///< "planner" | "radio" | "ids" | "secure" | "audit" | ...
  std::string code;            ///< e.g. "cache-miss", "collision", "handshake-ok"
  std::uint64_t subject = 0;   ///< primary entity id (machine, node, unit)
  std::uint64_t a = 0;         ///< small numeric argument (event-specific)
  std::uint64_t b = 0;         ///< small numeric argument (event-specific)
  std::string detail;          ///< optional free text
  std::uint64_t wall_ns = 0;   ///< capture wall clock — annex only, never in the main dump
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(core::SimTime time, std::string_view category, std::string_view code,
              std::uint64_t subject = 0, std::uint64_t a = 0, std::uint64_t b = 0,
              std::string_view detail = {});

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return next_seq_; }
  /// Events lost to wraparound.
  [[nodiscard]] std::uint64_t dropped() const { return next_seq_ - size(); }

  /// Visits held events oldest-to-newest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) fn(at_oldest(i));
  }

  /// One JSON object per line, oldest first, stable field order:
  /// {"seq":..,"t":..,"cat":"..","code":"..","subject":..,"a":..,"b":..,"detail":".."}
  /// ("a"/"b" omitted when zero, "detail" omitted when empty). No wall clock.
  [[nodiscard]] std::string to_jsonl() const;

  /// Result of a sequenced subscription read (read_since).
  struct ReadResult {
    std::size_t events = 0;        ///< events appended to `out`
    std::uint64_t dropped = 0;     ///< events lost to wraparound before the cursor
    std::uint64_t next_cursor = 0; ///< resume cursor: seq after the last event read
  };

  /// Sequenced subscription read: appends up to `max_events` held events
  /// with seq >= `cursor` to `out`, one JSON object per line — the bytes
  /// are identical to the corresponding to_jsonl() lines by construction
  /// (both render through the same serializer). Events the ring already
  /// overwrote are skipped and counted in `dropped`, so a subscriber's
  /// lag is bounded by the ring capacity with explicit loss accounting.
  /// Pass next_cursor back in to resume exactly after the last event.
  ReadResult read_since(std::uint64_t cursor, std::size_t max_events,
                        std::string& out) const;

  /// Wall-clock annex: {"seq":..,"wall_ns":..} per held event, oldest first.
  [[nodiscard]] std::string wall_annex_jsonl() const;

 private:
  [[nodiscard]] const FlightEvent& at_oldest(std::size_t i) const;

  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;       ///< next write slot once the ring is full
  std::uint64_t next_seq_ = 0;
};

}  // namespace agrarsec::obs
