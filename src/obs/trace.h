// Step-phase tracing: lightweight wall-clock spans around the worksite's
// step phases plus per-shard busy-time lanes fed by the ThreadPool's
// shard observer. Strictly observation-only — no value read from a timer
// ever feeds back into simulation state, so determinism is untouched.
// Timings are wall-clock and therefore machine-dependent; the telemetry
// exporter keeps them out of the deterministic view (they appear only in
// the full artifact / wall-clock annex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agrarsec::obs {

using PhaseId = std::size_t;

class Tracer {
 public:
  explicit Tracer(std::size_t shards = 1) : shard_busy_(shards == 0 ? 1 : shards) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers (get-or-create) a phase by name. Serial-phase only; cache
  /// the id, phase lookup is not for hot paths.
  PhaseId phase(std::string_view name);

  struct PhaseStats {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  void record(PhaseId id, std::uint64_t ns) {
    PhaseStats& s = stats_[id];
    ++s.calls;
    s.total_ns += ns;
    if (ns > s.max_ns) s.max_ns = ns;
  }

  /// RAII span: measures the enclosing scope into `id` at destruction.
  class Span {
   public:
    Span(Tracer& tracer, PhaseId id) noexcept
        : tracer_(&tracer), id_(id), start_ns_(now_ns()) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { tracer_->record(id_, now_ns() - start_ns_); }

   private:
    Tracer* tracer_;
    PhaseId id_;
    std::uint64_t start_ns_;
  };

  [[nodiscard]] Span scoped(PhaseId id) { return Span(*this, id); }

  /// Adds busy time to a shard lane. May be called concurrently from the
  /// pool's workers as long as each shard index has one writer at a time
  /// (the pool guarantees this); lanes are cache-line padded.
  void add_shard_busy(std::size_t shard, std::uint64_t ns) {
    if (shard < shard_busy_.size()) shard_busy_[shard].ns += ns;
  }

  /// Grows the shard lane set. Serial-phase only.
  void ensure_shards(std::size_t shards) {
    if (shards > shard_busy_.size()) shard_busy_.resize(shards);
  }

  /// Accumulates one parallel job's dispatch-to-completion wall time (fed
  /// by the ThreadPool's job observer, which fires on the calling thread
  /// — a serial context). This is the exact denominator for per-shard
  /// utilization: unlike the phase spans, it excludes serial work (effect
  /// drains, index rebuilds) that runs inside the same phase scope.
  void add_parallel_wall(std::uint64_t ns) {
    parallel_wall_ns_ += ns;
    ++parallel_jobs_;
  }
  [[nodiscard]] std::uint64_t parallel_wall_ns() const { return parallel_wall_ns_; }
  [[nodiscard]] std::uint64_t parallel_jobs() const { return parallel_jobs_; }

  [[nodiscard]] std::size_t phase_count() const { return names_.size(); }
  [[nodiscard]] const std::string& phase_name(PhaseId id) const { return names_[id]; }
  [[nodiscard]] const PhaseStats& stats(PhaseId id) const { return stats_[id]; }
  [[nodiscard]] std::size_t shard_count() const { return shard_busy_.size(); }
  [[nodiscard]] std::uint64_t shard_busy_ns(std::size_t shard) const {
    return shard_busy_[shard].ns;
  }

  /// Monotonic wall clock in nanoseconds (steady_clock).
  static std::uint64_t now_ns();

 private:
  struct alignas(64) BusyLane {
    std::uint64_t ns = 0;
  };
  std::vector<std::string> names_;
  std::vector<PhaseStats> stats_;
  std::vector<BusyLane> shard_busy_;
  std::uint64_t parallel_wall_ns_ = 0;
  std::uint64_t parallel_jobs_ = 0;
};

}  // namespace agrarsec::obs
