#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace agrarsec::obs {

namespace {

/// Shortest round-trip formatting for doubles (%.17g is always exact; try
/// shorter forms first so gauges like 12.5 print as "12.5").
std::string format_double(double v) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins, std::size_t lanes)
    : lo_(lo), hi_(hi), bins_(bins == 0 ? 1 : bins), lanes_(lanes) {
  for (Lane& lane : lanes_) lane.counts.assign(bins_, 0);
}

void Histogram::add(double x, std::size_t shard) {
  Lane& lane = lanes_[shard];
  ++lane.count;
  lane.sum += x;
  lane.min = std::min(lane.min, x);
  lane.max = std::max(lane.max, x);
  if (x < lo_) {
    ++lane.underflow;
    return;
  }
  if (x >= hi_) {
    ++lane.overflow;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) * static_cast<double>(bins_));
  if (bin >= bins_) bin = bins_ - 1;
  ++lane.counts[bin];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.counts[i];
  return total;
}

std::uint64_t Histogram::underflow() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.underflow;
  return total;
}

std::uint64_t Histogram::overflow() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.overflow;
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.count;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Lane& lane : lanes_) total += lane.sum;
  return total;
}

double Histogram::min() const {
  double m = std::numeric_limits<double>::infinity();
  for (const Lane& lane : lanes_) m = std::min(m, lane.min);
  return m;
}

double Histogram::max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (const Lane& lane : lanes_) m = std::max(m, lane.max);
  return m;
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::unique_ptr<Counter>(new Counter(lanes_)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(lo, hi, bins, lanes_)))
             .first;
  }
  return *it->second;
}

void Registry::ensure_lanes(std::size_t lanes) {
  if (lanes <= lanes_) return;
  lanes_ = lanes;
  for (auto& [name, c] : counters_) c->lanes_.resize(lanes_);
  for (auto& [name, h] : histograms_) {
    const std::size_t old = h->lanes_.size();
    h->lanes_.resize(lanes_);
    for (std::size_t i = old; i < lanes_; ++i) h->lanes_[i].counts.assign(h->bins_, 0);
  }
}

const Counter* Registry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

std::string Registry::to_json(std::string_view exclude_prefix) const {
  const auto excluded = [&exclude_prefix](std::string_view name) {
    return !exclude_prefix.empty() && name.size() >= exclude_prefix.size() &&
           name.substr(0, exclude_prefix.size()) == exclude_prefix;
  };
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (excluded(name)) continue;
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (excluded(name)) continue;
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += format_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (excluded(name)) continue;
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out += ":{\"lo\":" + format_double(h->lo()) + ",\"hi\":" + format_double(h->hi());
    out += ",\"bins\":[";
    for (std::size_t i = 0; i < h->bins(); ++i) {
      if (i != 0) out.push_back(',');
      out += std::to_string(h->bin_count(i));
    }
    out += "],\"underflow\":" + std::to_string(h->underflow());
    out += ",\"overflow\":" + std::to_string(h->overflow());
    out += ",\"count\":" + std::to_string(h->count());
    if (h->count() > 0) {
      out += ",\"sum\":" + format_double(h->sum());
      out += ",\"min\":" + format_double(h->min());
      out += ",\"max\":" + format_double(h->max());
    }
    out.push_back('}');
  }
  out += "}}";
  return out;
}

}  // namespace agrarsec::obs
