#include "obs/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <system_error>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace agrarsec::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Embeds a JSONL blob as a JSON array of raw object lines.
void append_jsonl_as_array(std::string& out, const std::string& jsonl) {
  out.push_back('[');
  bool first = true;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    if (nl > pos) {
      if (!first) out.push_back(',');
      first = false;
      out.append(jsonl, pos, nl - pos);
    }
    pos = nl + 1;
  }
  out.push_back(']');
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig config)
    : registry_(config.lanes), tracer_(config.lanes), recorder_(config.flight_capacity) {}

std::string Telemetry::deterministic_json() const {
  // Wall-clock instruments (kWallPrefix) are timing-dependent; keep them
  // out of the export the cross-thread-count parity checks compare.
  std::string out = "{\"metrics\":";
  out += registry_.to_json(kWallPrefix);
  out += ",\"flight\":";
  append_jsonl_as_array(out, recorder_.to_jsonl());
  out += ",\"flight_total\":" + std::to_string(recorder_.total_recorded());
  out += ",\"flight_dropped\":" + std::to_string(recorder_.dropped());
  out.push_back('}');
  return out;
}

std::string Telemetry::to_json() const {
  std::string out = "{\"metrics\":";
  out += registry_.to_json();
  out += ",\"flight\":";
  append_jsonl_as_array(out, recorder_.to_jsonl());
  out += ",\"flight_total\":" + std::to_string(recorder_.total_recorded());
  out += ",\"flight_dropped\":" + std::to_string(recorder_.dropped());
  out += ",\"phases\":{";
  bool first = true;
  for (PhaseId id = 0; id < tracer_.phase_count(); ++id) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, tracer_.phase_name(id));
    const Tracer::PhaseStats& s = tracer_.stats(id);
    out += ":{\"calls\":" + std::to_string(s.calls);
    out += ",\"total_ns\":" + std::to_string(s.total_ns);
    out += ",\"max_ns\":" + std::to_string(s.max_ns);
    out.push_back('}');
  }
  out += "},\"shard_busy_ns\":[";
  for (std::size_t s = 0; s < tracer_.shard_count(); ++s) {
    if (s != 0) out.push_back(',');
    out += std::to_string(tracer_.shard_busy_ns(s));
  }
  out += "],\"wall_annex\":";
  append_jsonl_as_array(out, recorder_.wall_annex_jsonl());
  out.push_back('}');
  return out;
}

bool Telemetry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

core::EventBus::Subscription wire_event_bus(core::EventBus& bus, Telemetry& telemetry) {
  // Handle cache lives in the handler closure; the registry owns the
  // counters themselves, so the cached pointers stay valid.
  auto cache = std::make_shared<std::unordered_map<std::string, Counter*>>();
  Counter& total = telemetry.registry().counter("bus.events");
  Registry* registry = &telemetry.registry();
  return bus.subscribe_all(
      [cache, &total, registry](const core::Event& event) {
        total.add();
        auto it = cache->find(event.topic);
        if (it == cache->end()) {
          Counter& c = registry->counter("bus.topic." + event.topic);
          it = cache->emplace(event.topic, &c).first;
        }
        it->second->add();
      });
}

Telemetry& global() {
  static Telemetry instance;
  return instance;
}

namespace {
std::string& artifact_dir_override() {
  static std::string dir;
  return dir;
}
}  // namespace

std::string artifact_dir() {
  if (!artifact_dir_override().empty()) return artifact_dir_override();
  if (const char* env = std::getenv("AGRARSEC_ARTIFACT_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef AGRARSEC_DEFAULT_ARTIFACT_DIR
  return AGRARSEC_DEFAULT_ARTIFACT_DIR;
#else
  return ".";
#endif
}

void set_artifact_dir(std::string dir) {
  artifact_dir_override() = std::move(dir);
}

std::string artifact_path(const std::string& filename) {
  const std::string dir = artifact_dir();
  if (dir.empty() || dir == ".") return filename;
  std::error_code ec;  // best effort: write_json reports the real failure
  std::filesystem::create_directories(dir, ec);
  return dir + "/" + filename;
}

bool consume_artifact_dir_flag(int& argc, char** argv) {
  constexpr std::string_view kFlag = "--artifact-dir";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string dir;
    int consumed = 0;
    if (arg.rfind(kFlag, 0) == 0 && arg.size() > kFlag.size() &&
        arg[kFlag.size()] == '=') {
      dir = arg.substr(kFlag.size() + 1);
      consumed = 1;
    } else if (arg == kFlag && i + 1 < argc) {
      dir = argv[i + 1];
      consumed = 2;
    }
    if (consumed == 0) continue;
    set_artifact_dir(std::move(dir));
    for (int j = i + consumed; j < argc; ++j) argv[j - consumed] = argv[j];
    argc -= consumed;
    return true;
  }
  return false;
}

bool write_bench_artifact(const Telemetry& telemetry, const std::string& bench_name) {
  return telemetry.write_json(artifact_path(bench_name + ".telemetry.json"));
}

BenchArtifact::BenchArtifact(std::string name, Telemetry* telemetry)
    : name_(std::move(name)),
      telemetry_(telemetry != nullptr ? telemetry : &global()),
      start_ns_(Tracer::now_ns()) {}

BenchArtifact::~BenchArtifact() {
  const double seconds =
      static_cast<double>(Tracer::now_ns() - start_ns_) / 1e9;
  telemetry_->registry().gauge("bench.wall_seconds").set(seconds);
  write_bench_artifact(*telemetry_, name_);
}

}  // namespace agrarsec::obs
