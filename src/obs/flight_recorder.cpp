#include "obs/flight_recorder.h"

#include <cstdio>

#include "obs/trace.h"

namespace agrarsec::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// The one serializer for a flight event line — to_jsonl() and
/// read_since() both render through it, so streamed payloads are
/// byte-identical to the polled export by construction.
void append_event_line(std::string& out, const FlightEvent& e) {
  out += "{\"seq\":" + std::to_string(e.seq);
  out += ",\"t\":" + std::to_string(e.time);
  out += ",\"cat\":";
  append_json_string(out, e.category);
  out += ",\"code\":";
  append_json_string(out, e.code);
  out += ",\"subject\":" + std::to_string(e.subject);
  if (e.a != 0) out += ",\"a\":" + std::to_string(e.a);
  if (e.b != 0) out += ",\"b\":" + std::to_string(e.b);
  if (!e.detail.empty()) {
    out += ",\"detail\":";
    append_json_string(out, e.detail);
  }
  out += "}\n";
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

std::size_t FlightRecorder::size() const { return ring_.size(); }

const FlightEvent& FlightRecorder::at_oldest(std::size_t i) const {
  // Before wraparound head_ is 0 and the ring is in order; afterwards the
  // oldest element sits at head_ (the next slot to be overwritten).
  return ring_[(head_ + i) % ring_.size()];
}

void FlightRecorder::record(core::SimTime time, std::string_view category,
                            std::string_view code, std::uint64_t subject, std::uint64_t a,
                            std::uint64_t b, std::string_view detail) {
  FlightEvent* slot;
  if (ring_.size() < capacity_) {
    slot = &ring_.emplace_back();
  } else {
    slot = &ring_[head_];
    head_ = (head_ + 1) % capacity_;
  }
  slot->seq = next_seq_++;
  slot->time = time;
  slot->category.assign(category);
  slot->code.assign(code);
  slot->subject = subject;
  slot->a = a;
  slot->b = b;
  slot->detail.assign(detail);
  slot->wall_ns = Tracer::now_ns();
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for_each([&out](const FlightEvent& e) { append_event_line(out, e); });
  return out;
}

FlightRecorder::ReadResult FlightRecorder::read_since(std::uint64_t cursor,
                                                      std::size_t max_events,
                                                      std::string& out) const {
  ReadResult result;
  const std::uint64_t oldest = next_seq_ - size();
  if (cursor < oldest) {
    result.dropped = oldest - cursor;
    cursor = oldest;
  }
  result.next_cursor = cursor;
  if (cursor >= next_seq_) return result;  // caught up
  std::size_t index = static_cast<std::size_t>(cursor - oldest);
  const std::size_t held = size();
  while (index < held && result.events < max_events) {
    append_event_line(out, at_oldest(index));
    ++index;
    ++result.events;
  }
  result.next_cursor = cursor + result.events;
  return result;
}

std::string FlightRecorder::wall_annex_jsonl() const {
  std::string out;
  for_each([&out](const FlightEvent& e) {
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"wall_ns\":" + std::to_string(e.wall_ns);
    out += "}\n";
  });
  return out;
}

}  // namespace agrarsec::obs
