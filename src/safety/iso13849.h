// ISO 13849-1 performance-level calculus for safety-related parts of
// control systems (SRP/CS) — the machinery functional-safety standard the
// paper names as the baseline for CE conformity (§III-A). Implements:
//   - the risk graph (S, F, P) -> required performance level PLr,
//   - the simplified category/MTTFd/DCavg -> achieved PL table
//     (ISO 13849-1 Figure 5 / Annex K simplification),
//   - degradation of achieved PL under active cybersecurity compromise
//     (IEC TS 63074: security threats can invalidate the assumptions the
//     PL rests on).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace agrarsec::safety {

/// Severity of injury.
enum class Severity : std::uint8_t { kS1 = 0, kS2 = 1 };  // slight / serious

/// Frequency & exposure time.
enum class Frequency : std::uint8_t { kF1 = 0, kF2 = 1 };  // seldom / frequent

/// Possibility of avoiding the hazard.
enum class Avoidance : std::uint8_t { kP1 = 0, kP2 = 1 };  // possible / scarcely

/// Performance levels.
enum class PerformanceLevel : std::uint8_t { kA = 0, kB = 1, kC = 2, kD = 3, kE = 4 };

[[nodiscard]] std::string_view performance_level_name(PerformanceLevel pl);

/// Architecture categories.
enum class Category : std::uint8_t { kB = 0, k1 = 1, k2 = 2, k3 = 3, k4 = 4 };

/// Mean time to dangerous failure bands (per channel, years).
enum class MttfdBand : std::uint8_t { kLow = 0, kMedium = 1, kHigh = 2 };

/// Diagnostic coverage bands.
enum class DcBand : std::uint8_t { kNone = 0, kLow = 1, kMedium = 2, kHigh = 3 };

/// Classifies a numeric MTTFd (years) into its band; values below 3 years
/// are unusable per the standard (returns nullopt).
[[nodiscard]] std::optional<MttfdBand> classify_mttfd(double years);

/// Classifies numeric diagnostic coverage [0,1].
[[nodiscard]] DcBand classify_dc(double coverage);

/// Risk graph: required PL for a hazard.
[[nodiscard]] PerformanceLevel required_pl(Severity s, Frequency f, Avoidance p);

/// Achieved PL from the simplified table. Returns nullopt for invalid
/// combinations (e.g. Category B with high DC is not a defined column;
/// Category 3/4 require DC >= low).
[[nodiscard]] std::optional<PerformanceLevel> achieved_pl(Category category,
                                                          MttfdBand mttfd,
                                                          DcBand dc);

/// True when the achieved level satisfies the requirement.
[[nodiscard]] bool satisfies(PerformanceLevel achieved, PerformanceLevel required);

/// Security-informed degradation (IEC TS 63074 reading): an attack that
/// defeats the diagnostics drops DC to none; an attack that can disable
/// one channel drops Category 3/4 to Category 1. Returns the degraded
/// achieved PL (nullopt when the degraded architecture is invalid).
struct SecurityCompromise {
  bool diagnostics_defeated = false;   ///< e.g. spoofed test signals
  bool channel_disabled = false;       ///< e.g. one sensor channel blinded
};
[[nodiscard]] std::optional<PerformanceLevel> degraded_pl(Category category,
                                                          MttfdBand mttfd, DcBand dc,
                                                          SecurityCompromise compromise);

}  // namespace agrarsec::safety
