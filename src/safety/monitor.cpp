#include "safety/monitor.h"

#include "core/geometry.h"

namespace agrarsec::safety {

std::string_view estop_reason_name(EstopReason reason) {
  switch (reason) {
    case EstopReason::kNone: return "none";
    case EstopReason::kPersonInCriticalZone: return "person-in-critical-zone";
    case EstopReason::kRemoteCommand: return "remote-command";
    case EstopReason::kCommsLost: return "comms-lost";
    case EstopReason::kIdsCritical: return "ids-critical";
    case EstopReason::kGhostDetection: return "ghost-detection";
  }
  return "?";
}

SafetyMonitor::SafetyMonitor(sim::Machine& forwarder, MonitorConfig config,
                             core::EventBus* bus)
    : forwarder_(forwarder), config_(config), bus_(bus) {}

bool SafetyMonitor::cover_fresh(core::SimTime now) const {
  return has_cover_signal_ && last_cover_ + config_.cover_timeout >= now;
}

void SafetyMonitor::stop(EstopReason reason, core::SimTime now) {
  if (!stopped_) {
    ++stats_.estops;
    forwarder_.emergency_stop(true);
    stopped_ = true;
    clear_since_ = -1;
    if (bus_ != nullptr) {
      bus_->publish({"safety/estop",
                     "reason=" + std::string(estop_reason_name(reason)),
                     forwarder_.id().value(), now});
    }
  }
  last_reason_ = reason;
}

void SafetyMonitor::command_stop(EstopReason reason, core::SimTime now) {
  stop(reason, now);
}

void SafetyMonitor::ids_critical(core::SimTime now) {
  if (config_.stop_on_ids_critical) stop(EstopReason::kIdsCritical, now);
}

void SafetyMonitor::set_degraded_state(bool degraded, std::string_view cause,
                                       core::SimTime now) {
  if (degraded && !degraded_) {
    ++stats_.degrades;
    if (bus_ != nullptr) {
      bus_->publish({"machine/degraded", "cause=" + std::string(cause),
                     forwarder_.id().value(), now});
    }
  }
  degraded_ = degraded;
  forwarder_.set_degraded(degraded);
}

void SafetyMonitor::update(const std::vector<FusedTrack>& tracks, core::SimTime now) {
  // Zone evaluation against fused tracks.
  bool critical = false;
  bool warning = false;
  for (const FusedTrack& t : tracks) {
    const double d = core::distance(t.position, forwarder_.position());
    if (d <= config_.critical_zone_m) critical = true;
    if (d <= config_.warning_zone_m) warning = true;
  }
  if (critical) ++stats_.zone_violations;

  // Collaborative cover freshness.
  const bool cover = cover_fresh(now);
  if (has_cover_signal_ && !cover) ++stats_.cover_losses;

  if (critical) {
    stop(EstopReason::kPersonInCriticalZone, now);
    return;
  }

  if (stopped_) {
    // Auto-restart once the area has stayed clear for restart_delay.
    if (clear_since_ < 0) clear_since_ = now;
    if (now - clear_since_ >= config_.restart_delay) {
      stopped_ = false;
      forwarder_.release_stop();
      last_reason_ = EstopReason::kNone;
    }
    return;
  }

  if (!cover && has_cover_signal_) {
    if (config_.stop_on_cover_loss) {
      stop(EstopReason::kCommsLost, now);
      return;
    }
    set_degraded_state(true, "cover-lost", now);
    return;
  }

  set_degraded_state(warning, "person-in-warning-zone", now);
}

}  // namespace agrarsec::safety
