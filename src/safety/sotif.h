// SOTIF (ISO 21448) adaptation for forest machinery — the paper's §III-C:
// hazards caused not by faults but by functional insufficiencies
// (occlusion, weather-degraded sensing, unexpected human behaviour).
// The model follows the standard's scenario-area framing:
//   Area 1: known  safe      Area 2: known  hazardous
//   Area 3: unknown hazardous Area 4: unknown safe
// The goal of SOTIF activities is shrinking areas 2 and 3. Here,
// triggering conditions are catalogued, observed scenario outcomes are
// classified, and residual risk is estimated from exposure counts — which
// the Fig. 2 bench feeds from actual simulation runs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace agrarsec::safety {

/// A condition that can trigger hazardous behaviour without any fault.
struct TriggeringCondition {
  std::string id;            ///< e.g. "occlusion-boulder"
  std::string description;
  bool known = true;         ///< catalogued at design time?
  double exposure_rate = 0.0;  ///< expected encounters per operating hour
};

enum class ScenarioOutcome : std::uint8_t {
  kSafe = 0,          ///< hazard handled (detected in time / no person)
  kHazardous = 1,     ///< person undetected within the critical zone
};

/// Aggregated evidence for one triggering condition.
struct ConditionEvidence {
  std::uint64_t encounters = 0;
  std::uint64_t hazardous = 0;

  [[nodiscard]] double hazard_rate() const {
    return encounters == 0 ? 0.0
                           : static_cast<double>(hazardous) /
                                 static_cast<double>(encounters);
  }
};

class SotifAnalysis {
 public:
  /// Registers a triggering condition (design-time catalogue).
  void add_condition(TriggeringCondition condition);

  /// Records one observed encounter with a condition and its outcome.
  /// Unknown ids are auto-registered with known=false — discovering
  /// area-3 scenarios during validation is exactly the SOTIF process.
  void record(const std::string& condition_id, ScenarioOutcome outcome);

  [[nodiscard]] const std::vector<TriggeringCondition>& conditions() const {
    return conditions_;
  }
  [[nodiscard]] ConditionEvidence evidence(const std::string& condition_id) const;

  /// Overall residual hazardous-scenario rate (hazardous / encounters,
  /// over all conditions). Acceptance criterion for release.
  [[nodiscard]] double residual_risk() const;

  /// Conditions whose hazard rate exceeds `acceptance`; these demand
  /// functional modification (e.g. the drone viewpoint) before release.
  [[nodiscard]] std::vector<std::string> unacceptable_conditions(
      double acceptance) const;

  /// Scenario-area census: {known-safe, known-hazardous, unknown-*} counts.
  struct AreaCensus {
    std::uint64_t known_safe = 0;
    std::uint64_t known_hazardous = 0;
    std::uint64_t unknown_safe = 0;
    std::uint64_t unknown_hazardous = 0;
  };
  [[nodiscard]] AreaCensus census() const;

 private:
  std::vector<TriggeringCondition> conditions_;
  std::unordered_map<std::string, std::size_t> index_;
  std::unordered_map<std::string, ConditionEvidence> evidence_;
};

/// The built-in forestry triggering-condition catalogue assembled from the
/// paper's discussion (occlusion sources, weather, human factors).
[[nodiscard]] std::vector<TriggeringCondition> forestry_triggering_conditions();

}  // namespace agrarsec::safety
