// Per-forwarder safety monitor: consumes fused people detections and
// commands the drive system. Implements the collaborative-safety fallback
// the paper's use case requires: when the drone's coverage goes stale
// (comms loss, jamming, drone failure) the forwarder degrades to a slow
// mode whose stopping distance fits its *own* (occludable) sensing — the
// interplay of cybersecurity and functional safety in one mechanism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/event_bus.h"
#include "core/time.h"
#include "safety/fusion.h"
#include "sim/machine.h"

namespace agrarsec::safety {

enum class EstopReason : std::uint32_t {
  kNone = 0,
  kPersonInCriticalZone = 1,
  kRemoteCommand = 2,
  kCommsLost = 3,       ///< optional policy: stop (not just degrade) on loss
  kIdsCritical = 4,     ///< IDS escalation
  kGhostDetection = 5,  ///< spoofed sensor return (stops too — fail safe)
};

[[nodiscard]] std::string_view estop_reason_name(EstopReason reason);

struct MonitorConfig {
  double critical_zone_m = 10.0;   ///< person inside => e-stop
  double warning_zone_m = 22.0;    ///< person inside => degrade speed
  core::SimDuration cover_timeout = 3 * core::kSecond;  ///< drone staleness
  bool stop_on_cover_loss = false; ///< else: degrade only
  bool stop_on_ids_critical = true;
  core::SimDuration restart_delay = 5 * core::kSecond;  ///< after zone clears
};

struct MonitorStats {
  std::uint64_t estops = 0;
  std::uint64_t degrades = 0;
  std::uint64_t cover_losses = 0;
  std::uint64_t zone_violations = 0;  ///< fused track inside critical zone
};

class SafetyMonitor {
 public:
  SafetyMonitor(sim::Machine& forwarder, MonitorConfig config, core::EventBus* bus);

  /// Feeds the current fused tracks and advances the decision logic.
  void update(const std::vector<FusedTrack>& tracks, core::SimTime now);

  /// Marks that fresh collaborative (drone) cover was received.
  void note_cover(core::SimTime now) { last_cover_ = now; has_cover_signal_ = true; }

  /// External stop command (validated elsewhere; the monitor obeys).
  void command_stop(EstopReason reason, core::SimTime now);

  /// IDS escalation hook.
  void ids_critical(core::SimTime now);

  [[nodiscard]] const MonitorStats& stats() const { return stats_; }
  [[nodiscard]] EstopReason last_reason() const { return last_reason_; }
  [[nodiscard]] bool cover_fresh(core::SimTime now) const;

 private:
  void stop(EstopReason reason, core::SimTime now);

  sim::Machine& forwarder_;
  MonitorConfig config_;
  core::EventBus* bus_;
  MonitorStats stats_;
  EstopReason last_reason_ = EstopReason::kNone;
  core::SimTime last_cover_ = 0;
  bool has_cover_signal_ = false;
  core::SimTime clear_since_ = -1;
  bool stopped_ = false;
  bool degraded_ = false;

  void set_degraded_state(bool degraded, std::string_view cause, core::SimTime now);
};

}  // namespace agrarsec::safety
