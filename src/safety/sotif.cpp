#include "safety/sotif.h"

namespace agrarsec::safety {

void SotifAnalysis::add_condition(TriggeringCondition condition) {
  if (index_.contains(condition.id)) return;
  index_[condition.id] = conditions_.size();
  conditions_.push_back(std::move(condition));
}

void SotifAnalysis::record(const std::string& condition_id, ScenarioOutcome outcome) {
  if (!index_.contains(condition_id)) {
    TriggeringCondition unknown;
    unknown.id = condition_id;
    unknown.description = "discovered during validation";
    unknown.known = false;
    add_condition(std::move(unknown));
  }
  auto& ev = evidence_[condition_id];
  ++ev.encounters;
  if (outcome == ScenarioOutcome::kHazardous) ++ev.hazardous;
}

ConditionEvidence SotifAnalysis::evidence(const std::string& condition_id) const {
  const auto it = evidence_.find(condition_id);
  return it == evidence_.end() ? ConditionEvidence{} : it->second;
}

double SotifAnalysis::residual_risk() const {
  std::uint64_t encounters = 0, hazardous = 0;
  for (const auto& [id, ev] : evidence_) {
    encounters += ev.encounters;
    hazardous += ev.hazardous;
  }
  return encounters == 0
             ? 0.0
             : static_cast<double>(hazardous) / static_cast<double>(encounters);
}

std::vector<std::string> SotifAnalysis::unacceptable_conditions(
    double acceptance) const {
  std::vector<std::string> out;
  for (const TriggeringCondition& c : conditions_) {
    if (evidence(c.id).hazard_rate() > acceptance) out.push_back(c.id);
  }
  return out;
}

SotifAnalysis::AreaCensus SotifAnalysis::census() const {
  AreaCensus census;
  for (const TriggeringCondition& c : conditions_) {
    const ConditionEvidence ev = evidence(c.id);
    const std::uint64_t safe = ev.encounters - ev.hazardous;
    if (c.known) {
      census.known_safe += safe;
      census.known_hazardous += ev.hazardous;
    } else {
      census.unknown_safe += safe;
      census.unknown_hazardous += ev.hazardous;
    }
  }
  return census;
}

std::vector<TriggeringCondition> forestry_triggering_conditions() {
  return {
      {"occlusion-boulder", "person hidden behind boulder/rock outcrop", true, 2.0},
      {"occlusion-brush", "person hidden by understory brush", true, 4.0},
      {"occlusion-stems", "person screened by dense stem rows", true, 6.0},
      {"occlusion-terrain", "person below a terrain crest", true, 1.5},
      {"weather-fog", "fog shortens effective perception range", true, 0.5},
      {"weather-rain", "rain degrades camera contrast", true, 1.0},
      {"weather-snow", "snowfall clutters lidar returns", true, 0.7},
      {"low-sun-glare", "low sun blinds forward camera", true, 0.3},
      {"human-sudden-emerge", "worker steps out from behind machine", true, 1.2},
      {"human-prone", "worker crouching/prone (planting, inspection)", true, 0.8},
  };
}

}  // namespace agrarsec::safety
