// Collaborative people-detection fusion — the paper's Figure 2 safety
// function. The forwarder fuses its own sensor frames with detection
// reports received from the drone over the radio link. Two policies are
// provided (an ablation in the benches):
//   kUnion             any sufficiently fresh detection counts
//   kConfidenceWeighted sources are weighted and a fused score gates
#pragma once

#include <cstdint>
#include <vector>

#include "core/time.h"
#include "sensors/detection.h"

namespace agrarsec::safety {

enum class FusionPolicy : std::uint8_t { kUnion = 0, kConfidenceWeighted = 1 };

struct FusionConfig {
  FusionPolicy policy = FusionPolicy::kUnion;
  core::SimDuration freshness_window = 1500;  ///< ms; older inputs are stale
  double association_radius_m = 3.0;          ///< detections closer than this merge
  double confidence_gate = 0.5;               ///< weighted policy threshold
  double remote_weight = 0.8;                 ///< trust discount for radio reports
};

/// A fused track: best position estimate plus provenance.
struct FusedTrack {
  core::Vec2 position;
  double confidence = 0.0;
  bool local_contribution = false;
  bool remote_contribution = false;
  core::SimTime last_update = 0;
};

class DetectionFusion {
 public:
  explicit DetectionFusion(FusionConfig config = {});

  /// Feeds local (on-machine) sensor detections.
  void add_local(const std::vector<sensors::Detection>& detections);

  /// Feeds a remote report (e.g. drone detection received over the link).
  void add_remote(const sensors::Detection& detection);

  /// Produces the current fused tracks at `now`, dropping stale inputs.
  [[nodiscard]] std::vector<FusedTrack> fuse(core::SimTime now);

  [[nodiscard]] const FusionConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t remote_reports() const { return remote_reports_; }

 private:
  FusionConfig config_;
  std::vector<sensors::Detection> local_;
  std::vector<sensors::Detection> remote_;
  std::uint64_t remote_reports_ = 0;
};

}  // namespace agrarsec::safety
