#include "safety/iso13849.h"

namespace agrarsec::safety {

std::string_view performance_level_name(PerformanceLevel pl) {
  switch (pl) {
    case PerformanceLevel::kA: return "PL a";
    case PerformanceLevel::kB: return "PL b";
    case PerformanceLevel::kC: return "PL c";
    case PerformanceLevel::kD: return "PL d";
    case PerformanceLevel::kE: return "PL e";
  }
  return "?";
}

std::optional<MttfdBand> classify_mttfd(double years) {
  if (years < 3.0) return std::nullopt;      // not acceptable per the standard
  if (years < 10.0) return MttfdBand::kLow;
  if (years < 30.0) return MttfdBand::kMedium;
  return MttfdBand::kHigh;                   // capped at 100 a in the standard
}

DcBand classify_dc(double coverage) {
  if (coverage < 0.60) return DcBand::kNone;
  if (coverage < 0.90) return DcBand::kLow;
  if (coverage < 0.99) return DcBand::kMedium;
  return DcBand::kHigh;
}

PerformanceLevel required_pl(Severity s, Frequency f, Avoidance p) {
  // ISO 13849-1 risk graph (Annex A).
  if (s == Severity::kS1) {
    if (f == Frequency::kF1) {
      return p == Avoidance::kP1 ? PerformanceLevel::kA : PerformanceLevel::kB;
    }
    return p == Avoidance::kP1 ? PerformanceLevel::kB : PerformanceLevel::kC;
  }
  if (f == Frequency::kF1) {
    return p == Avoidance::kP1 ? PerformanceLevel::kC : PerformanceLevel::kD;
  }
  return p == Avoidance::kP1 ? PerformanceLevel::kD : PerformanceLevel::kE;
}

std::optional<PerformanceLevel> achieved_pl(Category category, MttfdBand mttfd,
                                            DcBand dc) {
  using PL = PerformanceLevel;
  switch (category) {
    case Category::kB:
      if (dc != DcBand::kNone) return std::nullopt;
      switch (mttfd) {
        case MttfdBand::kLow: return PL::kA;
        case MttfdBand::kMedium: return PL::kB;
        case MttfdBand::kHigh: return PL::kB;
      }
      break;
    case Category::k1:
      if (dc != DcBand::kNone) return std::nullopt;
      // Category 1 requires well-tried components: only high MTTFd defined.
      if (mttfd != MttfdBand::kHigh) return std::nullopt;
      return PL::kC;
    case Category::k2:
      switch (dc) {
        case DcBand::kNone: return std::nullopt;  // Cat 2 needs testing
        case DcBand::kLow:
          switch (mttfd) {
            case MttfdBand::kLow: return PL::kA;
            case MttfdBand::kMedium: return PL::kB;
            case MttfdBand::kHigh: return PL::kC;
          }
          break;
        case DcBand::kMedium:
        case DcBand::kHigh:
          switch (mttfd) {
            case MttfdBand::kLow: return PL::kB;
            case MttfdBand::kMedium: return PL::kC;
            case MttfdBand::kHigh: return PL::kC;
          }
          break;
      }
      break;
    case Category::k3:
      switch (dc) {
        case DcBand::kNone: return std::nullopt;
        case DcBand::kLow:
          switch (mttfd) {
            case MttfdBand::kLow: return PL::kB;
            case MttfdBand::kMedium: return PL::kC;
            case MttfdBand::kHigh: return PL::kD;
          }
          break;
        case DcBand::kMedium:
        case DcBand::kHigh:
          switch (mttfd) {
            case MttfdBand::kLow: return PL::kC;
            case MttfdBand::kMedium: return PL::kD;
            case MttfdBand::kHigh: return PL::kD;
          }
          break;
      }
      break;
    case Category::k4:
      if (dc != DcBand::kHigh) return std::nullopt;
      if (mttfd != MttfdBand::kHigh) return std::nullopt;
      return PL::kE;
  }
  return std::nullopt;
}

bool satisfies(PerformanceLevel achieved, PerformanceLevel required) {
  return static_cast<int>(achieved) >= static_cast<int>(required);
}

std::optional<PerformanceLevel> degraded_pl(Category category, MttfdBand mttfd,
                                            DcBand dc,
                                            SecurityCompromise compromise) {
  Category effective_category = category;
  DcBand effective_dc = dc;

  if (compromise.diagnostics_defeated) {
    effective_dc = DcBand::kNone;
    // Categories whose safety principle *is* the diagnostics collapse.
    if (category == Category::k2) effective_category = Category::kB;
    if (category == Category::k4) effective_category = Category::k3;
  }
  if (compromise.channel_disabled) {
    // Redundancy lost: dual-channel categories behave single-channel.
    if (effective_category == Category::k3 || effective_category == Category::k4) {
      effective_category = Category::kB;
      effective_dc = DcBand::kNone;
    }
  }
  if (compromise.diagnostics_defeated &&
      (effective_category == Category::k3)) {
    // Cat 3 without any diagnostics is architecturally Category B-ish.
    effective_category = Category::kB;
    effective_dc = DcBand::kNone;
  }
  return achieved_pl(effective_category, mttfd, effective_dc);
}

}  // namespace agrarsec::safety
