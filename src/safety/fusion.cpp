#include "safety/fusion.h"

#include <algorithm>

#include "core/geometry.h"

namespace agrarsec::safety {

DetectionFusion::DetectionFusion(FusionConfig config) : config_(config) {}

void DetectionFusion::add_local(const std::vector<sensors::Detection>& detections) {
  local_.insert(local_.end(), detections.begin(), detections.end());
}

void DetectionFusion::add_remote(const sensors::Detection& detection) {
  remote_.push_back(detection);
  ++remote_reports_;
}

std::vector<FusedTrack> DetectionFusion::fuse(core::SimTime now) {
  auto drop_stale = [&](std::vector<sensors::Detection>& v) {
    std::erase_if(v, [&](const sensors::Detection& d) {
      return d.time + config_.freshness_window < now;
    });
  };
  drop_stale(local_);
  drop_stale(remote_);

  std::vector<FusedTrack> tracks;
  auto associate = [&](const sensors::Detection& d, bool remote) {
    const double weight = remote ? config_.remote_weight : 1.0;
    const double score = d.confidence * weight;
    for (FusedTrack& t : tracks) {
      if (core::distance(t.position, d.position) <= config_.association_radius_m) {
        // Merge: keep the higher-confidence position, accumulate score
        // with a noisy-OR so two weak agreeing sources beat either alone.
        if (score > t.confidence) t.position = d.position;
        t.confidence = 1.0 - (1.0 - t.confidence) * (1.0 - score);
        t.local_contribution |= !remote;
        t.remote_contribution |= remote;
        t.last_update = std::max(t.last_update, d.time);
        return;
      }
    }
    FusedTrack t;
    t.position = d.position;
    t.confidence = score;
    t.local_contribution = !remote;
    t.remote_contribution = remote;
    t.last_update = d.time;
    tracks.push_back(t);
  };

  for (const auto& d : local_) associate(d, false);
  for (const auto& d : remote_) associate(d, true);

  if (config_.policy == FusionPolicy::kConfidenceWeighted) {
    std::erase_if(tracks, [&](const FusedTrack& t) {
      return t.confidence < config_.confidence_gate;
    });
  }
  return tracks;
}

}  // namespace agrarsec::safety
