// The forestry use-case catalogue: the AGRARSENSE-style item definition
// (autonomous forwarder + observation drone + operator station) and the
// threat scenarios derived from the eight forestry-domain characteristics
// of the paper's Table I, enriched with the attack classes its §IV-C
// survey transfers from the mining (AHS) and automotive literature.
#pragma once

#include <vector>

#include "risk/tara.h"

namespace agrarsec::risk {

/// Table I of the paper, as data.
struct ForestryCharacteristic {
  std::string name;
  std::string description;
};
[[nodiscard]] std::vector<ForestryCharacteristic> table1_characteristics();

/// Builds the worksite item definition (assets with ids assigned).
[[nodiscard]] ItemDefinition forestry_item();

/// Builds the threat catalogue against `item` (asset names must match
/// forestry_item()). Every threat is tagged with its Table I
/// characteristic.
[[nodiscard]] std::vector<ThreatScenario> forestry_threats(const ItemDefinition& item);

/// Convenience: a fully-populated TARA for the forestry worksite.
[[nodiscard]] Tara build_forestry_tara();

}  // namespace agrarsec::risk
