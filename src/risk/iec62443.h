// IEC 62443 zones, conduits and security levels, applied to the worksite
// (paper §IV-D: IEC 62443 + IEC TS 63074 are the machinery-side
// cybersecurity baseline). A zone groups assets of similar criticality;
// conduits carry the inter-zone traffic; each gets a target security
// level vector over the seven foundational requirements, and countermeasures
// yield an achieved vector; the gap drives the hardening backlog.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "risk/asset.h"

namespace agrarsec::risk {

/// The seven foundational requirements (FR) of IEC 62443-3-3.
enum class Fr : std::uint8_t {
  kIac = 0,  ///< identification & authentication control
  kUc = 1,   ///< use control
  kSi = 2,   ///< system integrity
  kDc = 3,   ///< data confidentiality
  kRdf = 4,  ///< restricted data flow
  kTre = 5,  ///< timely response to events
  kRa = 6,   ///< resource availability
};
inline constexpr std::size_t kFrCount = 7;

[[nodiscard]] std::string_view fr_name(Fr fr);

/// Security level 0..4 per FR.
using SlVector = std::array<int, kFrCount>;

[[nodiscard]] std::string sl_vector_to_string(const SlVector& v);

/// Componentwise comparison: achieved meets target iff >= in every FR.
[[nodiscard]] bool sl_meets(const SlVector& achieved, const SlVector& target);

/// Componentwise max.
[[nodiscard]] SlVector sl_max(const SlVector& a, const SlVector& b);

/// FR levels contributed by one implemented countermeasure.
struct Countermeasure {
  std::string id;           ///< matches risk::Control ids where applicable
  std::string description;
  SlVector provides{};      ///< level provided per FR (0 = no contribution)
};

/// The countermeasure catalogue for the stack in this repository.
[[nodiscard]] std::vector<Countermeasure> countermeasure_catalogue();

struct Zone {
  ZoneId id;
  std::string name;
  std::vector<AssetId> assets;
  SlVector target{};                       ///< SL-T
  std::vector<std::string> countermeasures;  ///< installed, by id
};

struct Conduit {
  ConduitId id;
  std::string name;
  ZoneId from;
  ZoneId to;
  SlVector target{};
  std::vector<std::string> countermeasures;
};

/// Zone-and-conduit model with SL gap analysis.
class ZoneModel {
 public:
  ZoneId add_zone(Zone zone);
  ConduitId add_conduit(Conduit conduit);

  [[nodiscard]] const std::vector<Zone>& zones() const { return zones_; }
  [[nodiscard]] const std::vector<Conduit>& conduits() const { return conduits_; }

  /// Achieved SL of a zone/conduit from its installed countermeasures.
  [[nodiscard]] SlVector achieved(const Zone& zone,
                                  const std::vector<Countermeasure>& catalogue) const;
  [[nodiscard]] SlVector achieved(const Conduit& conduit,
                                  const std::vector<Countermeasure>& catalogue) const;

  struct Gap {
    std::string subject;  ///< zone/conduit name
    Fr fr;
    int target = 0;
    int achieved = 0;
  };
  /// All FRs where achieved < target.
  [[nodiscard]] std::vector<Gap> gaps(
      const std::vector<Countermeasure>& catalogue) const;

  [[nodiscard]] bool compliant(const std::vector<Countermeasure>& catalogue) const {
    return gaps(catalogue).empty();
  }

 private:
  [[nodiscard]] SlVector achieved_from(
      const std::vector<std::string>& installed,
      const std::vector<Countermeasure>& catalogue) const;

  std::vector<Zone> zones_;
  std::vector<Conduit> conduits_;
  IdAllocator<ZoneId> zone_ids_;
  IdAllocator<ConduitId> conduit_ids_;
};

/// Builds the worksite zone/conduit model over forestry_item() assets:
/// safety zone (e-stop, detection), control zone, platform zone, data
/// zone, plus radio conduits between them. Targets follow the criticality
/// ordering safety > control > platform > data.
[[nodiscard]] ZoneModel forestry_zone_model(const ItemDefinition& item);

}  // namespace agrarsec::risk
