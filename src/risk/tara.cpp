#include "risk/tara.h"

#include <algorithm>

namespace agrarsec::risk {

std::string_view security_property_name(SecurityProperty p) {
  switch (p) {
    case SecurityProperty::kConfidentiality: return "confidentiality";
    case SecurityProperty::kIntegrity: return "integrity";
    case SecurityProperty::kAvailability: return "availability";
    case SecurityProperty::kAuthenticity: return "authenticity";
  }
  return "?";
}

std::string_view asset_category_name(AssetCategory c) {
  switch (c) {
    case AssetCategory::kCommunication: return "communication";
    case AssetCategory::kSensing: return "sensing";
    case AssetCategory::kControl: return "control";
    case AssetCategory::kData: return "data";
    case AssetCategory::kPlatform: return "platform";
  }
  return "?";
}

const Asset* ItemDefinition::find(AssetId id) const {
  for (const Asset& a : assets) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

const Asset* ItemDefinition::find(const std::string& name) const {
  for (const Asset& a : assets) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::string_view stride_name(Stride s) {
  switch (s) {
    case Stride::kSpoofing: return "spoofing";
    case Stride::kTampering: return "tampering";
    case Stride::kRepudiation: return "repudiation";
    case Stride::kInformationDisclosure: return "information-disclosure";
    case Stride::kDenialOfService: return "denial-of-service";
    case Stride::kElevationOfPrivilege: return "elevation-of-privilege";
  }
  return "?";
}

std::string_view impact_level_name(ImpactLevel level) {
  switch (level) {
    case ImpactLevel::kNegligible: return "negligible";
    case ImpactLevel::kModerate: return "moderate";
    case ImpactLevel::kMajor: return "major";
    case ImpactLevel::kSevere: return "severe";
  }
  return "?";
}

ImpactLevel DamageScenario::max_level() const {
  return std::max({safety, financial, operational, privacy});
}

std::string_view feasibility_name(Feasibility f) {
  switch (f) {
    case Feasibility::kVeryLow: return "very-low";
    case Feasibility::kLow: return "low";
    case Feasibility::kMedium: return "medium";
    case Feasibility::kHigh: return "high";
  }
  return "?";
}

Feasibility feasibility_from_potential(const AttackPotential& potential) {
  // ISO 21434 Annex G (attack potential -> feasibility).
  const int v = potential.total();
  if (v < 14) return Feasibility::kHigh;
  if (v < 20) return Feasibility::kMedium;
  if (v < 25) return Feasibility::kLow;
  return Feasibility::kVeryLow;
}

RiskValue risk_value(ImpactLevel impact, Feasibility feasibility) {
  // 21434 Annex H example risk matrix (values 1..5).
  static constexpr int kMatrix[4][4] = {
      // feasibility: very-low, low, medium, high     impact:
      {1, 1, 1, 1},   // negligible
      {1, 2, 2, 3},   // moderate
      {1, 2, 3, 4},   // major
      {2, 3, 4, 5},   // severe
  };
  return kMatrix[static_cast<int>(impact)][static_cast<int>(feasibility)];
}

std::string_view attack_vector_name(AttackVector v) {
  switch (v) {
    case AttackVector::kPhysical: return "physical";
    case AttackVector::kLocal: return "local";
    case AttackVector::kAdjacent: return "adjacent";
    case AttackVector::kNetwork: return "network";
  }
  return "?";
}

std::string_view cal_name(Cal cal) {
  switch (cal) {
    case Cal::kCal1: return "CAL1";
    case Cal::kCal2: return "CAL2";
    case Cal::kCal3: return "CAL3";
    case Cal::kCal4: return "CAL4";
  }
  return "?";
}

Cal determine_cal(ImpactLevel impact, AttackVector vector) {
  // 21434 Annex E style mapping: impact drives the base level, remote
  // attack vectors push one level up.
  int level;
  switch (impact) {
    case ImpactLevel::kNegligible: level = 0; break;
    case ImpactLevel::kModerate: level = 1; break;
    case ImpactLevel::kMajor: level = 2; break;
    case ImpactLevel::kSevere: level = 3; break;
    default: level = 0; break;
  }
  if (vector == AttackVector::kPhysical || vector == AttackVector::kLocal) {
    level = std::max(0, level - 1);
  }
  return static_cast<Cal>(level);
}

std::string_view treatment_name(Treatment t) {
  switch (t) {
    case Treatment::kAvoid: return "avoid";
    case Treatment::kReduce: return "reduce";
    case Treatment::kShare: return "share";
    case Treatment::kRetain: return "retain";
  }
  return "?";
}

std::vector<Control> control_catalogue() {
  // Deltas follow the attack-potential scale: a control is modelled by how
  // much harder it makes the attack, not by a binary on/off.
  return {
      {"secure-channel",
       "mutually-authenticated AEAD link (X25519/Ed25519/ChaCha20-Poly1305)",
       AttackPotential{.elapsed_time = 10, .expertise = 6, .knowledge = 3,
                       .window_of_opportunity = 0, .equipment = 4},
       {Stride::kSpoofing, Stride::kTampering, Stride::kInformationDisclosure}},
      {"secure-boot",
       "verified + measured boot with anti-rollback",
       AttackPotential{.elapsed_time = 10, .expertise = 6, .knowledge = 7,
                       .window_of_opportunity = 4, .equipment = 4},
       {Stride::kTampering, Stride::kElevationOfPrivilege}},
      {"ids",
       "on-machine intrusion detection (signatures + anomaly)",
       AttackPotential{.elapsed_time = 1, .expertise = 3, .knowledge = 3,
                       .window_of_opportunity = 4, .equipment = 0},
       {Stride::kSpoofing, Stride::kDenialOfService, Stride::kRepudiation}},
      {"gnss-plausibility",
       "GNSS/odometry cross-check gate",
       AttackPotential{.elapsed_time = 4, .expertise = 3, .knowledge = 0,
                       .window_of_opportunity = 1, .equipment = 4},
       {Stride::kSpoofing}},
      {"frequency-hopping",
       "channel agility against narrowband jamming",
       AttackPotential{.elapsed_time = 1, .expertise = 3, .knowledge = 0,
                       .window_of_opportunity = 0, .equipment = 4},
       {Stride::kDenialOfService}},
      {"signed-firmware",
       "Ed25519-signed update manifests + images",
       AttackPotential{.elapsed_time = 10, .expertise = 6, .knowledge = 3,
                       .window_of_opportunity = 4, .equipment = 0},
       {Stride::kTampering, Stride::kElevationOfPrivilege}},
      {"access-control",
       "role-bound certificates; e-stop authority enforcement",
       AttackPotential{.elapsed_time = 4, .expertise = 3, .knowledge = 3,
                       .window_of_opportunity = 1, .equipment = 0},
       {Stride::kSpoofing, Stride::kElevationOfPrivilege}},
      {"audit-log",
       "append-only signed event log",
       AttackPotential{.elapsed_time = 1, .expertise = 0, .knowledge = 0,
                       .window_of_opportunity = 1, .equipment = 0},
       {Stride::kRepudiation}},
  };
}

Tara::Tara(ItemDefinition item, TaraConfig config)
    : item_(std::move(item)), config_(config) {}

void Tara::add_threat(ThreatScenario scenario) {
  threats_.push_back(std::move(scenario));
}

AttackVector Tara::vector_for(const ThreatScenario& scenario) const {
  const Asset* asset = item_.find(scenario.asset);
  if (asset == nullptr) return AttackVector::kAdjacent;
  switch (asset->category) {
    case AssetCategory::kCommunication: return AttackVector::kAdjacent;
    case AssetCategory::kSensing: return AttackVector::kAdjacent;
    case AssetCategory::kControl: return AttackVector::kAdjacent;
    case AssetCategory::kData: return AttackVector::kNetwork;  // exfil path
    case AssetCategory::kPlatform: return AttackVector::kLocal;
  }
  return AttackVector::kAdjacent;
}

void Tara::assess(const std::vector<Control>& controls) {
  results_.clear();
  results_.reserve(threats_.size());

  for (const ThreatScenario& scenario : threats_) {
    AssessedThreat a;
    a.scenario = scenario;
    a.vector = vector_for(scenario);
    a.impact = scenario.damage.max_level();
    a.initial_feasibility = feasibility_from_potential(scenario.potential);
    a.initial_risk = risk_value(a.impact, a.initial_feasibility);
    a.cal = determine_cal(a.impact, a.vector);

    // Treatment decision.
    if (a.initial_risk >= config_.avoid_threshold &&
        scenario.damage.safety == ImpactLevel::kSevere) {
      a.treatment = Treatment::kAvoid;
    } else if (a.initial_risk >= config_.reduce_threshold) {
      a.treatment = Treatment::kReduce;
    } else if (a.impact == ImpactLevel::kNegligible) {
      a.treatment = Treatment::kRetain;
    } else {
      a.treatment = Treatment::kRetain;
    }

    // Apply every applicable control when reducing (or avoiding — the
    // redesign still carries the controls).
    AttackPotential effective = scenario.potential;
    if (a.treatment == Treatment::kReduce || a.treatment == Treatment::kAvoid) {
      for (const Control& c : controls) {
        if (std::find(c.mitigates.begin(), c.mitigates.end(), scenario.stride) ==
            c.mitigates.end()) {
          continue;
        }
        effective.elapsed_time += c.delta.elapsed_time;
        effective.expertise = std::max(effective.expertise, c.delta.expertise);
        effective.knowledge = std::max(effective.knowledge, c.delta.knowledge);
        effective.window_of_opportunity += c.delta.window_of_opportunity;
        effective.equipment = std::max(effective.equipment, c.delta.equipment);
        a.applied_controls.push_back(c.id);
      }
    }
    a.residual_feasibility = feasibility_from_potential(effective);
    a.residual_risk = risk_value(a.impact, a.residual_feasibility);
    results_.push_back(std::move(a));
  }
}

RiskValue Tara::max_initial_risk() const {
  RiskValue v = 0;
  for (const auto& r : results_) v = std::max(v, r.initial_risk);
  return v;
}

RiskValue Tara::max_residual_risk() const {
  RiskValue v = 0;
  for (const auto& r : results_) v = std::max(v, r.residual_risk);
  return v;
}

Cal Tara::max_cal() const {
  Cal c = Cal::kCal1;
  for (const auto& r : results_) c = std::max(c, r.cal);
  return c;
}

std::size_t Tara::count_at_or_above(RiskValue risk, bool residual) const {
  return static_cast<std::size_t>(std::count_if(
      results_.begin(), results_.end(), [&](const AssessedThreat& r) {
        return (residual ? r.residual_risk : r.initial_risk) >= risk;
      }));
}

std::vector<Tara::CharacteristicSummary> Tara::by_characteristic() const {
  std::vector<CharacteristicSummary> out;
  auto find = [&](const std::string& c) -> CharacteristicSummary& {
    for (auto& s : out) {
      if (s.characteristic == c) return s;
    }
    out.push_back(CharacteristicSummary{c, 0, 0, 0, Cal::kCal1});
    return out.back();
  };
  for (const auto& r : results_) {
    const std::string key =
        r.scenario.characteristic.empty() ? "(generic)" : r.scenario.characteristic;
    CharacteristicSummary& s = find(key);
    ++s.threats;
    s.max_initial_risk = std::max(s.max_initial_risk, r.initial_risk);
    s.max_residual_risk = std::max(s.max_residual_risk, r.residual_risk);
    s.max_cal = std::max(s.max_cal, r.cal);
  }
  return out;
}

}  // namespace agrarsec::risk
