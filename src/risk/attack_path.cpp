#include "risk/attack_path.h"

#include <algorithm>

namespace agrarsec::risk {

AttackPotential combine_sequential(const AttackPotential& a, const AttackPotential& b) {
  AttackPotential out;
  out.elapsed_time = a.elapsed_time + b.elapsed_time;
  out.window_of_opportunity = a.window_of_opportunity + b.window_of_opportunity;
  out.expertise = std::max(a.expertise, b.expertise);
  out.knowledge = std::max(a.knowledge, b.knowledge);
  out.equipment = std::max(a.equipment, b.equipment);
  return out;
}

AttackNode::Ptr AttackNode::leaf(AttackStep step) {
  auto node = std::shared_ptr<AttackNode>(new AttackNode{Kind::kLeaf, step.id});
  node->step_ = std::move(step);
  return node;
}

AttackNode::Ptr AttackNode::any_of(std::string label, std::vector<Ptr> children) {
  auto node = std::shared_ptr<AttackNode>(new AttackNode{Kind::kOr, std::move(label)});
  node->children_ = std::move(children);
  return node;
}

AttackNode::Ptr AttackNode::all_of(std::string label, std::vector<Ptr> children) {
  auto node = std::shared_ptr<AttackNode>(new AttackNode{Kind::kAnd, std::move(label)});
  node->children_ = std::move(children);
  return node;
}

std::optional<AttackNode::Path> AttackNode::cheapest_path(
    const std::vector<std::string>& blocked_steps) const {
  switch (kind_) {
    case Kind::kLeaf: {
      if (std::find(blocked_steps.begin(), blocked_steps.end(), step_->id) !=
          blocked_steps.end()) {
        return std::nullopt;
      }
      Path p;
      p.steps = {*step_};
      p.potential = step_->potential;
      return p;
    }
    case Kind::kOr: {
      std::optional<Path> best;
      for (const Ptr& child : children_) {
        auto candidate = child->cheapest_path(blocked_steps);
        if (!candidate) continue;
        if (!best || candidate->potential.total() < best->potential.total()) {
          best = std::move(candidate);
        }
      }
      return best;
    }
    case Kind::kAnd: {
      if (children_.empty()) return std::nullopt;
      Path combined;
      bool first = true;
      for (const Ptr& child : children_) {
        auto part = child->cheapest_path(blocked_steps);
        if (!part) return std::nullopt;  // one blocked conjunct kills the path
        combined.steps.insert(combined.steps.end(), part->steps.begin(),
                              part->steps.end());
        combined.potential = first ? part->potential
                                   : combine_sequential(combined.potential,
                                                        part->potential);
        first = false;
      }
      return combined;
    }
  }
  return std::nullopt;
}

std::optional<Feasibility> AttackNode::feasibility(
    const std::vector<std::string>& blocked_steps) const {
  const auto path = cheapest_path(blocked_steps);
  if (!path) return std::nullopt;
  return feasibility_from_potential(path->potential);
}

namespace {
AttackStep step(const char* id, const char* description, AttackPotential p) {
  return AttackStep{id, description, p};
}
}  // namespace

AttackNode::Ptr estop_replay_tree() {
  // Replay a captured stop/clear exchange to freeze or un-freeze machines.
  return AttackNode::all_of(
      "estop-replay",
      {
          AttackNode::leaf(step("approach-site", "reach radio range of the site",
                                {0, 0, 0, 1, 0})),
          AttackNode::leaf(step("capture-frames", "record e-stop traffic",
                                {0, 0, 0, 0, 0})),
          AttackNode::any_of(
              "inject",
              {
                  AttackNode::leaf(step("replay-plaintext",
                                        "retransmit captured frames verbatim",
                                        {0, 3, 0, 0, 0})),
                  AttackNode::leaf(step("break-session-crypto",
                                        "forge a valid AEAD record",
                                        {19, 8, 7, 0, 9})),
              }),
      });
}

AttackNode::Ptr malicious_update_tree() {
  return AttackNode::all_of(
      "malicious-update",
      {
          AttackNode::any_of(
              "obtain-foothold",
              {
                  AttackNode::leaf(step("phish-operator",
                                        "compromise operator credentials",
                                        {4, 3, 3, 1, 0})),
                  AttackNode::leaf(step("supply-chain",
                                        "insert payload at a tooling vendor",
                                        {19, 8, 11, 4, 7})),
              }),
          AttackNode::any_of(
              "install",
              {
                  AttackNode::leaf(step("push-unsigned",
                                        "push image without valid signature",
                                        {0, 3, 3, 0, 0})),
                  AttackNode::leaf(step("forge-signature",
                                        "break Ed25519 image signing",
                                        {19, 8, 7, 0, 9})),
              }),
      });
}

AttackNode::Ptr gnss_walkoff_tree() {
  return AttackNode::all_of(
      "gnss-walkoff",
      {
          AttackNode::leaf(step("deploy-spoofer", "position an SDR spoofer on site",
                                {1, 3, 0, 4, 4})),
          AttackNode::leaf(step("capture-lock", "pull the receiver onto the fake "
                                                "constellation",
                                {1, 6, 3, 0, 4})),
          AttackNode::any_of(
              "steer",
              {
                  AttackNode::leaf(step("fast-jump",
                                        "jump the solution (detectable)",
                                        {0, 0, 0, 0, 0})),
                  AttackNode::leaf(step("slow-creep",
                                        "walk the solution below the gate",
                                        {4, 6, 3, 0, 0})),
              }),
      });
}

}  // namespace agrarsec::risk
