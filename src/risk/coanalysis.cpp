#include "risk/coanalysis.h"

#include <algorithm>
#include <stdexcept>

namespace agrarsec::risk {

CoAnalysis::CoAnalysis(CoAnalysisConfig config) : config_(config) {}

HazardId CoAnalysis::add_hazard(Hazard hazard) {
  hazard.id = hazard_ids_.next();
  hazards_.push_back(std::move(hazard));
  return hazards_.back().id;
}

void CoAnalysis::link(ThreatHazardLink link) { links_.push_back(link); }

std::vector<HazardVerdict> CoAnalysis::analyze(const Tara& tara) const {
  std::vector<HazardVerdict> out;
  out.reserve(hazards_.size());

  for (const Hazard& h : hazards_) {
    HazardVerdict v;
    v.hazard = h;
    v.required = safety::required_pl(h.severity, h.frequency, h.avoidance);
    v.achieved = safety::achieved_pl(h.category, h.mttfd, h.dc);
    v.safety_ok = v.achieved && safety::satisfies(*v.achieved, v.required);

    const RiskValue ceiling = h.severity == safety::Severity::kS2
                                  ? config_.ceiling_s2
                                  : config_.ceiling_s1;

    v.security_ok = true;
    std::optional<safety::PerformanceLevel> worst_under_attack = v.achieved;
    for (const ThreatHazardLink& link : links_) {
      if (link.hazard != h.id) continue;
      const auto it = std::find_if(
          tara.results().begin(), tara.results().end(),
          [&](const AssessedThreat& t) { return t.scenario.id == link.threat; });
      if (it == tara.results().end()) continue;

      if (it->residual_risk > ceiling) {
        v.security_ok = false;
        v.critical_threats.push_back(link.threat);
      }

      // PL the safety function would actually deliver while this attack
      // is active.
      const auto degraded =
          safety::degraded_pl(h.category, h.mttfd, h.dc, link.compromise);
      if (!degraded) {
        worst_under_attack = std::nullopt;
      } else if (worst_under_attack &&
                 static_cast<int>(*degraded) < static_cast<int>(*worst_under_attack)) {
        worst_under_attack = degraded;
      }
    }
    v.under_attack = worst_under_attack;

    // Combined verdict is a strict conjunction — "if it's not secure,
    // it's not safe" (Bloomfield et al.): the fault-model argument AND the
    // security argument must both close. under_attack stays available as
    // diagnostic detail for the assurance case.
    v.combined_ok = v.safety_ok && v.security_ok;
    out.push_back(std::move(v));
  }
  return out;
}

ForestryCoAnalysis build_forestry_coanalysis(const Tara& tara) {
  ForestryCoAnalysis out;

  auto threat_id = [&](const std::string& name) {
    for (const AssessedThreat& t : tara.results()) {
      if (t.scenario.name == name) {
        out.bound_threats.emplace_back(name, t.scenario.id);
        return t.scenario.id;
      }
    }
    throw std::logic_error("unknown threat name: " + name);
  };

  Hazard crush;
  crush.name = "person-struck-by-forwarder";
  crush.description = "moving autonomous forwarder strikes a worker";
  crush.severity = safety::Severity::kS2;
  crush.frequency = safety::Frequency::kF1;  // people seldom in the corridor
  crush.avoidance = safety::Avoidance::kP2;  // machine is quiet-ish, fast
  crush.category = safety::Category::k3;
  crush.mttfd = safety::MttfdBand::kHigh;
  crush.dc = safety::DcBand::kMedium;
  const HazardId crush_id = out.analysis.add_hazard(std::move(crush));

  Hazard runaway;
  runaway.name = "unintended-machine-motion";
  runaway.description = "machine moves against its commanded mission";
  runaway.severity = safety::Severity::kS2;
  runaway.frequency = safety::Frequency::kF1;
  runaway.avoidance = safety::Avoidance::kP1;
  runaway.category = safety::Category::k3;
  runaway.mttfd = safety::MttfdBand::kHigh;
  runaway.dc = safety::DcBand::kMedium;
  const HazardId runaway_id = out.analysis.add_hazard(std::move(runaway));

  Hazard corridor;
  corridor.name = "corridor-departure";
  corridor.description = "forwarder leaves the cleared extraction corridor";
  corridor.severity = safety::Severity::kS2;
  corridor.frequency = safety::Frequency::kF1;  // people rarely near corridors
  corridor.avoidance = safety::Avoidance::kP1;  // slow departure is avoidable
  corridor.category = safety::Category::k2;
  corridor.mttfd = safety::MttfdBand::kHigh;
  corridor.dc = safety::DcBand::kLow;
  const HazardId corridor_id = out.analysis.add_hazard(std::move(corridor));

  // Links: which attacks trigger or defeat what.
  using LK = LinkKind;
  auto lnk = [&](const std::string& threat, HazardId hazard, LK kind,
                 bool defeats_diag, bool kills_channel) {
    ThreatHazardLink l;
    l.threat = threat_id(threat);
    l.hazard = hazard;
    l.kind = kind;
    l.compromise.diagnostics_defeated = defeats_diag;
    l.compromise.channel_disabled = kills_channel;
    out.analysis.link(l);
  };

  lnk("estop-suppression", crush_id, LK::kDefeatsMitigation, false, true);
  lnk("estop-replay", crush_id, LK::kDefeatsMitigation, true, false);
  lnk("detection-suppression", crush_id, LK::kDefeatsMitigation, false, true);
  lnk("camera-blinding", crush_id, LK::kDefeatsMitigation, false, true);
  lnk("forged-mission", runaway_id, LK::kTriggers, false, false);
  lnk("operator-station-hijack", runaway_id, LK::kTriggers, false, false);
  lnk("malicious-update", runaway_id, LK::kTriggers, true, true);
  lnk("gnss-spoof-walkoff", corridor_id, LK::kTriggers, true, false);
  lnk("gnss-jamming", corridor_id, LK::kDefeatsMitigation, false, true);

  return out;
}

}  // namespace agrarsec::risk
