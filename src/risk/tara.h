// The TARA engine (ISO/SAE 21434 clause 15): risk determination from
// impact x feasibility, CAL assignment, risk treatment with control
// catalogues, and residual-risk recomputation. This is the executable
// core of the "forestry-adapted risk assessment methodology" the paper
// announces as future work (§VI).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "risk/asset.h"
#include "risk/threat.h"

namespace agrarsec::risk {

/// Risk value 1 (lowest) .. 5 (highest) per the 21434 example matrix.
using RiskValue = int;

/// Determines risk from an impact level and a feasibility rating.
[[nodiscard]] RiskValue risk_value(ImpactLevel impact, Feasibility feasibility);

/// Cybersecurity Assurance Level (CAL1..CAL4) from impact and attack
/// vector proximity (remote attacks on severe impacts demand CAL4).
enum class AttackVector : std::uint8_t {
  kPhysical = 0,
  kLocal = 1,
  kAdjacent = 2,   ///< short-range radio — the forestry default
  kNetwork = 3,    ///< routable / long range
};
[[nodiscard]] std::string_view attack_vector_name(AttackVector v);

enum class Cal : std::uint8_t { kCal1 = 0, kCal2 = 1, kCal3 = 2, kCal4 = 3 };
[[nodiscard]] std::string_view cal_name(Cal cal);
[[nodiscard]] Cal determine_cal(ImpactLevel impact, AttackVector vector);

/// Risk treatment decision (21434 clause 15.8).
enum class Treatment : std::uint8_t { kAvoid = 0, kReduce = 1, kShare = 2, kRetain = 3 };
[[nodiscard]] std::string_view treatment_name(Treatment t);

/// A cybersecurity control and its effect on attack potential. Controls
/// raise specific potential factors (e.g. authenticated links force the
/// attacker to break crypto: expertise and time rise).
struct Control {
  std::string id;           ///< e.g. "secure-channel"
  std::string description;
  AttackPotential delta;    ///< added to the scenario's attack potential
  /// STRIDE classes this control is effective against.
  std::vector<Stride> mitigates;
};

/// Built-in control catalogue matching the stack implemented in this
/// repository (secure channel, secure boot, IDS, plausibility monitors...).
[[nodiscard]] std::vector<Control> control_catalogue();

/// One assessed threat: ratings before and after selected controls.
struct AssessedThreat {
  ThreatScenario scenario;
  AttackVector vector = AttackVector::kAdjacent;
  ImpactLevel impact = ImpactLevel::kNegligible;
  Feasibility initial_feasibility = Feasibility::kMedium;
  RiskValue initial_risk = 1;
  Cal cal = Cal::kCal1;
  Treatment treatment = Treatment::kRetain;
  std::vector<std::string> applied_controls;
  Feasibility residual_feasibility = Feasibility::kMedium;
  RiskValue residual_risk = 1;
};

struct TaraConfig {
  /// Risks at or above this value get treatment kReduce and all
  /// applicable catalogue controls applied.
  RiskValue reduce_threshold = 3;
  /// Risks at or above this with severe safety impact are "avoid"
  /// (redesign) candidates; they still receive controls.
  RiskValue avoid_threshold = 5;
};

/// Full TARA over an item + threat list.
class Tara {
 public:
  Tara(ItemDefinition item, TaraConfig config = {});

  /// Adds a threat scenario (taking the attack vector from the asset
  /// category: communication/sensing => adjacent, platform => local...).
  void add_threat(ThreatScenario scenario);

  /// Runs assessment + treatment with the given control catalogue.
  void assess(const std::vector<Control>& controls);

  [[nodiscard]] const ItemDefinition& item() const { return item_; }
  [[nodiscard]] const std::vector<AssessedThreat>& results() const { return results_; }

  /// Aggregations for reporting.
  [[nodiscard]] RiskValue max_initial_risk() const;
  [[nodiscard]] RiskValue max_residual_risk() const;
  [[nodiscard]] Cal max_cal() const;
  [[nodiscard]] std::size_t count_at_or_above(RiskValue risk, bool residual) const;

  /// Per-characteristic (Table I) rollup: threats, max initial risk, max
  /// residual risk, highest CAL.
  struct CharacteristicSummary {
    std::string characteristic;
    std::size_t threats = 0;
    RiskValue max_initial_risk = 0;
    RiskValue max_residual_risk = 0;
    Cal max_cal = Cal::kCal1;
  };
  [[nodiscard]] std::vector<CharacteristicSummary> by_characteristic() const;

 private:
  [[nodiscard]] AttackVector vector_for(const ThreatScenario& scenario) const;

  ItemDefinition item_;
  TaraConfig config_;
  std::vector<ThreatScenario> threats_;
  std::vector<AssessedThreat> results_;
};

}  // namespace agrarsec::risk
