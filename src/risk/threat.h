// Threat scenarios, damage scenarios and attack-feasibility rating per
// ISO/SAE 21434 (clauses 8.3-8.9, attack-potential approach of Annex G).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "risk/asset.h"

namespace agrarsec::risk {

/// STRIDE classification of the threat action.
enum class Stride : std::uint8_t {
  kSpoofing = 0,
  kTampering = 1,
  kRepudiation = 2,
  kInformationDisclosure = 3,
  kDenialOfService = 4,
  kElevationOfPrivilege = 5,
};

[[nodiscard]] std::string_view stride_name(Stride s);

/// ISO 21434 impact categories and rating levels.
enum class ImpactCategory : std::uint8_t {
  kSafety = 0,
  kFinancial = 1,
  kOperational = 2,
  kPrivacy = 3,
};

enum class ImpactLevel : std::uint8_t {
  kNegligible = 0,
  kModerate = 1,
  kMajor = 2,
  kSevere = 3,
};

[[nodiscard]] std::string_view impact_level_name(ImpactLevel level);

/// One damage scenario: what happens when the threat succeeds.
struct DamageScenario {
  std::string description;
  ImpactLevel safety = ImpactLevel::kNegligible;
  ImpactLevel financial = ImpactLevel::kNegligible;
  ImpactLevel operational = ImpactLevel::kNegligible;
  ImpactLevel privacy = ImpactLevel::kNegligible;

  [[nodiscard]] ImpactLevel max_level() const;
};

/// Attack-potential factors (ISO 21434 Annex G / ISO 18045 scale).
struct AttackPotential {
  int elapsed_time = 0;        ///< 0(<=1d) 1(<=1w) 4(<=1m) 10(<=6m) 19(>6m)
  int expertise = 0;           ///< 0 layman, 3 proficient, 6 expert, 8 multiple experts
  int knowledge = 0;           ///< 0 public, 3 restricted, 7 confidential, 11 strictly conf.
  int window_of_opportunity = 0;  ///< 0 unlimited, 1 easy, 4 moderate, 10 difficult
  int equipment = 0;           ///< 0 standard, 4 specialized, 7 bespoke, 9 multiple bespoke

  [[nodiscard]] int total() const {
    return elapsed_time + expertise + knowledge + window_of_opportunity + equipment;
  }
};

/// Feasibility rating derived from attack potential.
enum class Feasibility : std::uint8_t { kVeryLow = 0, kLow = 1, kMedium = 2, kHigh = 3 };

[[nodiscard]] std::string_view feasibility_name(Feasibility f);

/// ISO 21434 mapping: higher attack potential => lower feasibility.
[[nodiscard]] Feasibility feasibility_from_potential(const AttackPotential& potential);

/// A threat scenario against one asset.
struct ThreatScenario {
  ThreatId id;
  AssetId asset;
  std::string name;
  std::string description;
  Stride stride = Stride::kSpoofing;
  SecurityProperty violated = SecurityProperty::kIntegrity;
  DamageScenario damage;
  AttackPotential potential;
  /// Forestry characteristic (Table I row) this threat instantiates;
  /// empty when generic.
  std::string characteristic;
};

}  // namespace agrarsec::risk
