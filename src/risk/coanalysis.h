// Safety–security co-analysis: the "interplay" methodology the paper
// argues for (§III-B, §VI) and IEC TS 63074 requires — security threats
// that can defeat a safety function must be treated as initiators of the
// hazards that function controls ("if it's not secure, it's not safe",
// Bloomfield et al., paper ref [38]).
//
// Model: hazards carry an ISO 13849 risk graph; threats link to hazards
// they can trigger or whose mitigation they can defeat. The combined
// verdict for a hazard is a strict conjunction: the safety side (achieved
// PL >= PLr under the fault model) AND the security side (every linked
// threat's residual risk below a severity-dependent ceiling) must both
// close. The PL the function would deliver while under attack is reported
// as diagnostic detail (`under_attack`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "risk/tara.h"
#include "safety/iso13849.h"

namespace agrarsec::risk {

/// A machinery hazard (ISO 12100 terms) guarded by a safety function.
struct Hazard {
  HazardId id;
  std::string name;
  std::string description;
  safety::Severity severity = safety::Severity::kS2;
  safety::Frequency frequency = safety::Frequency::kF1;
  safety::Avoidance avoidance = safety::Avoidance::kP2;
  /// Safety function architecture implementing the mitigation.
  safety::Category category = safety::Category::k3;
  safety::MttfdBand mttfd = safety::MttfdBand::kHigh;
  safety::DcBand dc = safety::DcBand::kMedium;
};

/// How a threat interacts with a hazard.
enum class LinkKind : std::uint8_t {
  kTriggers = 0,         ///< attack directly creates the hazardous event
  kDefeatsMitigation = 1 ///< attack disables the safety function
};

struct ThreatHazardLink {
  ThreatId threat;
  HazardId hazard;
  LinkKind kind = LinkKind::kDefeatsMitigation;
  /// Which architectural assumption the attack breaks (for PL degradation).
  safety::SecurityCompromise compromise;
};

/// Verdict for one hazard after the combined analysis.
struct HazardVerdict {
  Hazard hazard;
  safety::PerformanceLevel required;
  std::optional<safety::PerformanceLevel> achieved;        ///< fault-only view
  std::optional<safety::PerformanceLevel> under_attack;    ///< worst linked compromise
  bool safety_ok = false;        ///< achieved >= required (no attack)
  bool security_ok = false;      ///< all linked threats' residual risk <= ceiling
  bool combined_ok = false;      ///< both, and PL holds under attack
  std::vector<ThreatId> critical_threats;  ///< links that break the verdict
};

struct CoAnalysisConfig {
  /// Residual risk ceiling per hazard severity: S2 hazards tolerate
  /// residual risk <= 2, S1 <= 3.
  RiskValue ceiling_s2 = 2;
  RiskValue ceiling_s1 = 3;
};

class CoAnalysis {
 public:
  explicit CoAnalysis(CoAnalysisConfig config = {});

  HazardId add_hazard(Hazard hazard);
  void link(ThreatHazardLink link);

  /// Runs the combined analysis against an assessed TARA.
  [[nodiscard]] std::vector<HazardVerdict> analyze(const Tara& tara) const;

  [[nodiscard]] const std::vector<Hazard>& hazards() const { return hazards_; }
  [[nodiscard]] const std::vector<ThreatHazardLink>& links() const { return links_; }

 private:
  CoAnalysisConfig config_;
  std::vector<Hazard> hazards_;
  std::vector<ThreatHazardLink> links_;
  IdAllocator<HazardId> hazard_ids_;
};

/// Forestry worksite hazards + links into the forestry_threats()
/// catalogue (matched by threat name).
struct ForestryCoAnalysis {
  CoAnalysis analysis;
  /// threat-name -> id mapping used for the links (diagnostics).
  std::vector<std::pair<std::string, ThreatId>> bound_threats;
};
[[nodiscard]] ForestryCoAnalysis build_forestry_coanalysis(const Tara& tara);

}  // namespace agrarsec::risk
