// Attack-path analysis (ISO/SAE 21434 clause 15.7): threat scenarios are
// refined into attack trees whose leaves are concrete attack steps; the
// scenario's attack feasibility is then *derived* from the cheapest
// realizable path instead of being asserted wholesale. Controls that block
// or harden individual steps propagate automatically into the scenario
// rating — the mechanism that keeps a continuously-reassessed TARA honest.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "risk/threat.h"

namespace agrarsec::risk {

/// One concrete attacker action (a tree leaf).
struct AttackStep {
  std::string id;           ///< e.g. "capture-frames"
  std::string description;
  AttackPotential potential;
};

/// Combination of potentials along a conjunctive path: durations and
/// opportunity windows add up; expertise/knowledge/equipment are the
/// maximum any single step demands.
[[nodiscard]] AttackPotential combine_sequential(const AttackPotential& a,
                                                 const AttackPotential& b);

/// Attack tree node. Value semantics via shared_ptr children (trees are
/// built once and shared read-only).
class AttackNode {
 public:
  using Ptr = std::shared_ptr<const AttackNode>;

  static Ptr leaf(AttackStep step);
  static Ptr any_of(std::string label, std::vector<Ptr> children);  ///< OR
  static Ptr all_of(std::string label, std::vector<Ptr> children);  ///< AND

  /// The cheapest realizable path: for a leaf, the step itself; for OR,
  /// the child with the lowest combined total; for AND, the sequential
  /// combination of every child's cheapest path. Returns nullopt when a
  /// node is infeasible (an OR with no children, or containing a blocked
  /// step per `blocked_steps`).
  struct Path {
    std::vector<AttackStep> steps;
    AttackPotential potential;
  };
  [[nodiscard]] std::optional<Path> cheapest_path(
      const std::vector<std::string>& blocked_steps = {}) const;

  /// Scenario feasibility from the cheapest path (kVeryLow-capped when no
  /// path remains — a fully blocked tree is "infeasible", reported as
  /// nullopt).
  [[nodiscard]] std::optional<Feasibility> feasibility(
      const std::vector<std::string>& blocked_steps = {}) const;

  [[nodiscard]] const std::string& label() const { return label_; }

 private:
  enum class Kind { kLeaf, kOr, kAnd };
  AttackNode(Kind kind, std::string label) : kind_(kind), label_(std::move(label)) {}

  Kind kind_;
  std::string label_;
  std::optional<AttackStep> step_;
  std::vector<Ptr> children_;
};

/// Example attack trees for the forestry catalogue's headline threats,
/// matching the threat names in forestry_threats(). Used by tests and the
/// risk example to show step-level control attribution.
[[nodiscard]] AttackNode::Ptr estop_replay_tree();
[[nodiscard]] AttackNode::Ptr malicious_update_tree();
[[nodiscard]] AttackNode::Ptr gnss_walkoff_tree();

}  // namespace agrarsec::risk
