#include "risk/iec62443.h"

#include <algorithm>
#include <stdexcept>

namespace agrarsec::risk {

std::string_view fr_name(Fr fr) {
  switch (fr) {
    case Fr::kIac: return "IAC";
    case Fr::kUc: return "UC";
    case Fr::kSi: return "SI";
    case Fr::kDc: return "DC";
    case Fr::kRdf: return "RDF";
    case Fr::kTre: return "TRE";
    case Fr::kRa: return "RA";
  }
  return "?";
}

std::string sl_vector_to_string(const SlVector& v) {
  std::string out = "{";
  for (std::size_t i = 0; i < kFrCount; ++i) {
    if (i > 0) out += ",";
    out += std::string(fr_name(static_cast<Fr>(i))) + "=" + std::to_string(v[i]);
  }
  out += "}";
  return out;
}

bool sl_meets(const SlVector& achieved, const SlVector& target) {
  for (std::size_t i = 0; i < kFrCount; ++i) {
    if (achieved[i] < target[i]) return false;
  }
  return true;
}

SlVector sl_max(const SlVector& a, const SlVector& b) {
  SlVector out{};
  for (std::size_t i = 0; i < kFrCount; ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

std::vector<Countermeasure> countermeasure_catalogue() {
  //                       IAC UC SI DC RDF TRE RA
  return {
      {"secure-channel", "mutually-authenticated encrypted links",
       SlVector{3, 0, 3, 3, 2, 0, 0}},
      {"access-control", "role-bound certificates + e-stop authority",
       SlVector{3, 3, 0, 0, 0, 0, 0}},
      {"secure-boot", "verified/measured boot, anti-rollback",
       SlVector{0, 0, 3, 0, 0, 0, 0}},
      {"signed-firmware", "signed update manifests and images",
       SlVector{0, 0, 3, 0, 0, 0, 0}},
      {"ids", "on-machine IDS with local response",
       SlVector{0, 0, 1, 0, 0, 3, 1}},
      {"gnss-plausibility", "sensor plausibility gates",
       SlVector{0, 0, 2, 0, 0, 1, 0}},
      {"frequency-hopping", "channel agility against jamming",
       SlVector{0, 0, 0, 0, 0, 0, 2}},
      {"network-segmentation", "zone separation of safety vs. data traffic",
       SlVector{0, 0, 0, 1, 3, 0, 1}},
      {"audit-log", "signed append-only event log",
       SlVector{0, 1, 1, 0, 0, 2, 0}},
      {"backup-recovery", "off-site encrypted backup + tested restore",
       SlVector{0, 0, 0, 1, 0, 0, 3}},
  };
}

ZoneId ZoneModel::add_zone(Zone zone) {
  zone.id = zone_ids_.next();
  zones_.push_back(std::move(zone));
  return zones_.back().id;
}

ConduitId ZoneModel::add_conduit(Conduit conduit) {
  conduit.id = conduit_ids_.next();
  conduits_.push_back(std::move(conduit));
  return conduits_.back().id;
}

SlVector ZoneModel::achieved_from(const std::vector<std::string>& installed,
                                  const std::vector<Countermeasure>& catalogue) const {
  SlVector out{};
  for (const std::string& id : installed) {
    const auto it = std::find_if(catalogue.begin(), catalogue.end(),
                                 [&](const Countermeasure& c) { return c.id == id; });
    if (it == catalogue.end()) {
      throw std::invalid_argument("unknown countermeasure: " + id);
    }
    out = sl_max(out, it->provides);
  }
  return out;
}

SlVector ZoneModel::achieved(const Zone& zone,
                             const std::vector<Countermeasure>& catalogue) const {
  return achieved_from(zone.countermeasures, catalogue);
}

SlVector ZoneModel::achieved(const Conduit& conduit,
                             const std::vector<Countermeasure>& catalogue) const {
  return achieved_from(conduit.countermeasures, catalogue);
}

std::vector<ZoneModel::Gap> ZoneModel::gaps(
    const std::vector<Countermeasure>& catalogue) const {
  std::vector<Gap> out;
  auto collect = [&](const std::string& subject, const SlVector& target,
                     const SlVector& achieved) {
    for (std::size_t i = 0; i < kFrCount; ++i) {
      if (achieved[i] < target[i]) {
        out.push_back(Gap{subject, static_cast<Fr>(i), target[i], achieved[i]});
      }
    }
  };
  for (const Zone& z : zones_) collect("zone:" + z.name, z.target, achieved(z, catalogue));
  for (const Conduit& c : conduits_) {
    collect("conduit:" + c.name, c.target, achieved(c, catalogue));
  }
  return out;
}

ZoneModel forestry_zone_model(const ItemDefinition& item) {
  ZoneModel model;

  auto ids = [&](std::initializer_list<const char*> names) {
    std::vector<AssetId> out;
    for (const char* n : names) {
      const Asset* a = item.find(std::string(n));
      if (a == nullptr) throw std::logic_error(std::string("unknown asset: ") + n);
      out.push_back(a->id);
    }
    return out;
  };

  Zone safety;
  safety.name = "safety";
  safety.assets = ids({"estop-function", "people-detection-chain",
                       "drone-detection-link"});
  safety.target = SlVector{3, 3, 3, 1, 2, 3, 3};
  safety.countermeasures = {"secure-channel", "access-control", "ids",
                            "gnss-plausibility", "frequency-hopping"};
  const ZoneId safety_id = model.add_zone(std::move(safety));

  Zone control;
  control.name = "control";
  control.assets = ids({"mission-control", "gnss-navigation", "m2m-radio-link"});
  control.target = SlVector{3, 3, 3, 2, 2, 2, 2};
  control.countermeasures = {"secure-channel", "access-control", "ids",
                             "gnss-plausibility"};
  const ZoneId control_id = model.add_zone(std::move(control));

  Zone platform;
  platform.name = "platform";
  platform.assets = ids({"forwarder-firmware", "drone-firmware", "pki-credentials"});
  platform.target = SlVector{2, 2, 3, 2, 1, 2, 1};
  platform.countermeasures = {"secure-boot", "signed-firmware", "access-control",
                              "audit-log", "secure-channel"};
  const ZoneId platform_id = model.add_zone(std::move(platform));

  Zone data;
  data.name = "data";
  data.assets = ids({"site-data-store", "operations-telemetry", "audit-log"});
  data.target = SlVector{2, 2, 2, 3, 2, 1, 2};
  data.countermeasures = {"secure-channel", "network-segmentation", "audit-log",
                          "backup-recovery"};
  const ZoneId data_id = model.add_zone(std::move(data));

  Conduit safety_radio;
  safety_radio.name = "safety-radio";
  safety_radio.from = safety_id;
  safety_radio.to = control_id;
  safety_radio.target = SlVector{3, 2, 3, 1, 2, 2, 3};
  safety_radio.countermeasures = {"secure-channel", "frequency-hopping", "ids",
                                  "access-control"};
  model.add_conduit(std::move(safety_radio));

  Conduit ops_radio;
  ops_radio.name = "operations-radio";
  ops_radio.from = control_id;
  ops_radio.to = data_id;
  ops_radio.target = SlVector{2, 2, 2, 3, 2, 1, 1};
  ops_radio.countermeasures = {"secure-channel", "network-segmentation",
                               "access-control"};
  model.add_conduit(std::move(ops_radio));

  Conduit update_path;
  update_path.name = "update-path";
  update_path.from = data_id;
  update_path.to = platform_id;
  update_path.target = SlVector{3, 2, 3, 1, 1, 1, 1};
  update_path.countermeasures = {"secure-channel", "signed-firmware", "access-control"};
  model.add_conduit(std::move(update_path));

  return model;
}

}  // namespace agrarsec::risk
